//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment for this workspace is offline, so the real
//! `criterion` cannot be fetched from crates.io. This shim keeps the bench
//! sources byte-compatible with criterion's API for the subset the workspace
//! uses (`Criterion`, groups, `BenchmarkId`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros) so swapping the real
//! crate back in is a one-line manifest change.
//!
//! Instead of criterion's statistical sampling it runs each routine for a
//! small fixed time budget and reports mean ns/iter — enough to compare
//! orders of magnitude in CI logs, not a substitute for real measurements.
//!
//! The budget is tunable via the `CRITERION_MEASURE_MS` environment
//! variable (the shim's equivalent of the real crate's
//! `--measurement-time` flag): CI's bench-smoke job sets a small value so
//! every bench *executes* quickly on each PR.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Default per-iteration time budget for one `Bencher::iter` measurement.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

/// The measurement budget: `CRITERION_MEASURE_MS` milliseconds when set
/// (parsed once), otherwise [`MEASURE_BUDGET`].
fn measure_budget() -> Duration {
    static BUDGET: OnceLock<Duration> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|ms| ms.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(MEASURE_BUDGET)
    })
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(None, &id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim's fixed time budget
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(Some(&self.name), &id.into(), f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(Some(&self.name), &id.into(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let budget = measure_budget();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget || iters >= MAX_ITERS {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(group: Option<&str>, id: &BenchmarkId, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    if bencher.iters == 0 {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
    } else {
        let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!(
            "{label:<48} {ns_per_iter:>14.1} ns/iter ({} iters)",
            bencher.iters
        );
    }
}

/// Expands to a function running every listed bench target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
