//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment for this workspace is offline, so the real
//! `criterion` cannot be fetched from crates.io. This shim keeps the bench
//! sources byte-compatible with criterion's API for the subset the workspace
//! uses (`Criterion`, groups, `BenchmarkId`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros) so swapping the real
//! crate back in is a one-line manifest change.
//!
//! Instead of criterion's statistical sampling it runs each routine for a
//! small fixed time budget and reports mean ns/iter — enough to compare
//! orders of magnitude in CI logs, not a substitute for real measurements.
//!
//! The budget is tunable via the `CRITERION_MEASURE_MS` environment
//! variable (the shim's equivalent of the real crate's
//! `--measurement-time` flag): CI's bench-smoke job sets a small value so
//! every bench *executes* quickly on each PR.
//!
//! When `CRITERION_JSON` names a file, every measurement is additionally
//! appended to it as one record of a growing JSON array
//! (`[{"group":…,"bench":…,"ns_per_iter":…,"iters":…}, …]`). Bench
//! binaries run sequentially under `cargo bench`, each reopening and
//! extending the same array, so the file ends the run as a single valid
//! JSON document consolidating every group — the machine-readable perf
//! trajectory CI uploads per PR (`BENCH_PR5.json`).

use std::fmt::Display;
use std::path::Path;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Default per-iteration time budget for one `Bencher::iter` measurement.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

/// The measurement budget: `CRITERION_MEASURE_MS` milliseconds when set
/// (parsed once), otherwise [`MEASURE_BUDGET`].
fn measure_budget() -> Duration {
    static BUDGET: OnceLock<Duration> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|ms| ms.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(MEASURE_BUDGET)
    })
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(None, &id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim's fixed time budget
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(Some(&self.name), &id.into(), f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(Some(&self.name), &id.into(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let budget = measure_budget();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget || iters >= MAX_ITERS {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(group: Option<&str>, id: &BenchmarkId, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    if bencher.iters == 0 {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
    } else {
        let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!(
            "{label:<48} {ns_per_iter:>14.1} ns/iter ({} iters)",
            bencher.iters
        );
        if let Some(path) = std::env::var_os("CRITERION_JSON") {
            let path = Path::new(&path);
            json_run_boundary(path);
            append_json_record(
                path,
                group.unwrap_or(""),
                &id.id,
                ns_per_iter,
                bencher.iters,
            );
        }
    }
}

/// Starts a fresh JSON array when this is a *new bench run*, so repeated
/// local runs do not accumulate duplicate records. Every bench binary of
/// one `cargo bench` invocation shares the same parent process, so the
/// parent pid (recorded in a `.runid` sidecar) identifies the run: the
/// first binary of a new invocation truncates the file, its successors
/// append. Checked once per process. On platforms without a parent-pid
/// API the file keeps pure append semantics (delete it between runs).
fn json_run_boundary(path: &Path) {
    static BOUNDARY: OnceLock<()> = OnceLock::new();
    BOUNDARY.get_or_init(|| {
        #[cfg(unix)]
        start_run_if_new(path, &std::os::unix::process::parent_id().to_string());
        #[cfg(not(unix))]
        let _ = path;
    });
}

/// The boundary logic behind [`json_run_boundary`]: truncate `path` and
/// re-stamp the sidecar unless it already records `run_id`.
fn start_run_if_new(path: &Path, run_id: &str) {
    let sidecar = path.with_extension("runid");
    let same_run =
        std::fs::read_to_string(&sidecar).is_ok_and(|recorded| recorded.trim() == run_id);
    if !same_run {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::write(&sidecar, run_id);
    }
}

/// Appends one measurement to the growing JSON array at `path` (creating
/// `[record]` on first write). Best-effort: IO errors must never fail a
/// bench run, so they are reported to stderr and swallowed.
fn append_json_record(path: &Path, group: &str, bench: &str, ns_per_iter: f64, iters: u64) {
    let record = format!(
        r#"{{"group":"{}","bench":"{}","ns_per_iter":{ns_per_iter},"iters":{iters}}}"#,
        escape_json(group),
        escape_json(bench),
    );
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                // Extend the array — unless it is empty, in which case the
                // new record is its first element.
                Some(init) if !init.trim_end().ends_with('[') => {
                    format!("{init},\n  {record}\n]\n", init = init.trim_end())
                }
                _ => format!("[\n  {record}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {record}\n]\n"),
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

/// Minimal JSON string escaping (labels are benign identifiers, but a
/// stray quote or backslash must not corrupt the document).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Expands to a function running every listed bench target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_records_accumulate_into_one_array() {
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_json_{}_{}.json",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        append_json_record(&path, "g1", "warm/256", 123.5, 10);
        append_json_record(&path, "g2", "a \"quoted\" bench", 7.0, 2);
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(body.trim_start().starts_with('['), "{body}");
        assert!(body.trim_end().ends_with(']'), "{body}");
        assert!(body.contains(r#""group":"g1","bench":"warm/256","ns_per_iter":123.5"#));
        assert!(body.contains(r#"\"quoted\""#), "escaped: {body}");
        assert_eq!(body.matches("ns_per_iter").count(), 2);
    }

    #[test]
    fn escape_json_handles_control_chars() {
        assert_eq!(escape_json("a\tb"), "a\\u0009b");
        assert_eq!(escape_json(r#"p\q"#), r#"p\\q"#);
    }

    #[test]
    fn stale_run_id_truncates_the_json_file() {
        let base = std::env::temp_dir().join(format!(
            "criterion_shim_runid_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let json = base.with_extension("json");
        let sidecar = json.with_extension("runid");
        std::fs::write(&json, "[\n  {\"stale\":true}\n]\n").unwrap();
        std::fs::write(&sidecar, "previous-invocation").unwrap();
        // A new run id truncates the stale records and re-stamps the
        // sidecar…
        start_run_if_new(&json, "this-invocation");
        assert!(!json.exists(), "stale records must be dropped");
        append_json_record(&json, "g", "b", 1.0, 1);
        // …while the same run id appends.
        start_run_if_new(&json, "this-invocation");
        append_json_record(&json, "g", "b2", 2.0, 1);
        let body = std::fs::read_to_string(&json).unwrap();
        std::fs::remove_file(&json).unwrap();
        std::fs::remove_file(&sidecar).unwrap();
        assert!(!body.contains("stale"), "{body}");
        assert_eq!(body.matches("ns_per_iter").count(), 2, "{body}");
    }
}
