//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this workspace is fully offline, so the real
//! `proptest` cannot be fetched from crates.io. This shim implements exactly
//! the subset of the API the workspace uses — deterministic seeds, uniform
//! range/tuple/vec/select strategies, `prop_map`/`prop_flat_map`, and the
//! `proptest!`/`prop_assert*`/`prop_assume!` macros — with the same source
//! syntax, so swapping the real crate back in is a one-line manifest change.
//!
//! Deliberate simplifications versus the real crate:
//! - shrinking is *strategy-level*, not value-level: on failure the runner
//!   repeatedly halves every range strategy toward its boundary-biased seed
//!   (range minimum / zero), re-draws from the shrunken strategies, and
//!   reports the smallest re-drawn input that still fails — small
//!   counterexamples without per-value shrink trees;
//! - rejection via `prop_assume!` retries with a fresh seed, bounded by a
//!   global reject cap rather than a per-strategy local one.
//!
//! Like the real crate, range strategies are biased toward boundary
//! values: a quarter of all draws yield the range's minimum, maximum, or
//! zero (when zero lies inside the range), so properties actually probe
//! the edges instead of relying on a uniform draw to land there.

pub mod test_runner {
    /// Runner configuration; `proptest::prelude` re-exports this as
    /// `ProptestConfig` to match the real crate.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the string is the rendered failure message.
        Fail(String),
        /// A `prop_assume!` precondition rejected the inputs.
        Reject,
    }

    /// SplitMix64: tiny, fast, and plenty uniform for test-input generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEECE66D,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the fully-qualified test name: stable across runs and
    /// platforms, so failures are reproducible from the reported seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Halves this strategy's value space toward its boundary-biased
        /// seed (range minimum / zero), consuming `self`. Returns the
        /// shrunken strategy and whether anything actually shrank; the
        /// default is "cannot shrink". The `proptest!` runner calls this
        /// after a failure to hunt for a smaller counterexample.
        fn shrink(self) -> (Self, bool)
        where
            Self: Sized,
        {
            (self, false)
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }

        fn shrink(self) -> (Self, bool) {
            let (inner, shrunk) = self.inner.shrink();
            (Map { inner, f: self.f }, shrunk)
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }

        fn shrink(self) -> (Self, bool) {
            // Only the driving strategy shrinks; the derived one follows it.
            let (inner, shrunk) = self.inner.shrink();
            (FlatMap { inner, f: self.f }, shrunk)
        }
    }

    /// Draws from `[lo, hi]` (inclusive, as `i128`) with boundary bias:
    /// a quarter of draws pick `lo`, `hi`, or zero (when in range) in
    /// rotation; the rest are uniform over the whole span (a fresh full
    /// 64-bit draw, so u64-wide ranges keep all their entropy).
    fn biased_int(lo: i128, hi: i128, rng: &mut TestRng) -> i128 {
        debug_assert!(lo <= hi);
        let roll = rng.next_u64();
        if roll % 8 < 2 {
            let edges = [lo, hi, 0];
            let n = if lo <= 0 && 0 <= hi { 3 } else { 2 };
            return edges[(roll as usize >> 3) % n];
        }
        let span = (hi - lo) as u128 + 1;
        let off = (rng.next_u64() as u128) % span;
        lo + off as i128
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    biased_int(self.start as i128, self.end as i128 - 1, rng) as $t
                }

                fn shrink(self) -> (Self, bool) {
                    // Halve toward the range minimum (the boundary-biased
                    // seed), keeping the range non-empty.
                    let span = (self.end as i128) - (self.start as i128);
                    if span <= 1 {
                        return (self, false);
                    }
                    let end = (self.start as i128 + (span + 1) / 2) as $t;
                    (self.start..end, true)
                }
            }

            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    biased_int(lo as i128, hi as i128, rng) as $t
                }

                fn shrink(self) -> (Self, bool) {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128) - (lo as i128);
                    if span == 0 {
                        return (self, false);
                    }
                    let hi = (lo as i128 + span / 2) as $t;
                    (lo..=hi, true)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let roll = rng.next_u64();
                    // Boundary bias: the range minimum, and zero when it
                    // lies inside (the exclusive end cannot be produced).
                    if roll % 8 < 2 {
                        let zero_ok = self.start <= 0.0 && 0.0 < self.end;
                        if zero_ok && (roll >> 3) % 2 == 0 {
                            return 0.0;
                        }
                        return self.start;
                    }
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }

                fn shrink(self) -> (Self, bool) {
                    let width = self.end - self.start;
                    let half = self.start + width / 2.0;
                    if half <= self.start {
                        return (self, false); // width exhausted
                    }
                    (self.start..half, true)
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                fn shrink(self) -> (Self, bool) {
                    let mut any = false;
                    let shrunk = ($(
                        {
                            let (s, did) = self.$idx.shrink();
                            any |= did;
                            s
                        },
                    )+);
                    (shrunk, any)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s of exactly `size` elements.
    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.size).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(self) -> (Self, bool) {
            // Shrink the element space; the length is part of the
            // property's contract and stays fixed.
            let (element, did) = self.element.shrink();
            (
                VecStrategy {
                    element,
                    size: self.size,
                },
                did,
            )
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy that picks uniformly from a fixed list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.next_u64() as usize % self.options.len()].clone()
        }

        fn shrink(mut self) -> (Self, bool) {
            if self.options.len() <= 1 {
                return (self, false);
            }
            self.options.truncate(self.options.len().div_ceil(2));
            (self, true)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors `proptest::prelude::prop`, the module alias the real crate
    /// exposes for qualified strategy constructors.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}\n{}",
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `left != right`\n  both: {left:?}"),
            ));
        }
    }};
}

/// The `proptest!` block: each contained `#[test] fn name(pat in strategy, …)`
/// expands to a plain `#[test]` that generates inputs and runs the body for
/// `Config::cases` accepted cases. On failure the runner shrinks: it halves
/// every range strategy toward its boundary-biased seed, re-draws, and
/// keeps going while the shrunken spaces still produce failures — the
/// smallest failing input found is reported alongside the original.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
pub mod __runner {
    //! Generic driving loop behind the `proptest!` macro. Routing the test
    //! body through `Fn(S::Value)` bounds is what lets closure parameter
    //! types be inferred from the strategy (a bare closure called on
    //! `generate`'s output trips E0282 for `impl Strategy` factories).

    use crate::strategy::Strategy;
    use crate::test_runner::{TestCaseError, TestRng};

    const GOLDEN: u64 = 0x9E3779B97F4A7C15;

    /// Identity helper that ties a closure's parameter type to the
    /// strategy's `Value` at the definition site, so the `proptest!` macro
    /// can bind the body to a variable without tripping E0282.
    pub fn as_case<S, F>(_strat: &S, body: F) -> F
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        body
    }

    /// Draws one case from `strat` at `seed` and runs the body. Rendering
    /// is deliberately *not* done here: the draw is deterministic in
    /// `seed`, so the failure path re-draws via [`render_input`] and the
    /// happy path pays no `Debug` formatting or allocation.
    pub fn run_one<S, F>(strat: &S, seed: u64, body: &F) -> Result<(), TestCaseError>
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::new(seed);
        body(strat.generate(&mut rng))
    }

    /// Re-draws the (deterministic) case `seed` produces from `strat` and
    /// renders it for a failure report.
    pub fn render_input<S>(strat: &S, seed: u64) -> String
    where
        S: Strategy,
        S::Value: ::core::fmt::Debug,
    {
        let mut rng = TestRng::new(seed);
        format!("{:?}", strat.generate(&mut rng))
    }

    /// Strategy-level shrinking: repeatedly halve the strategies toward
    /// their boundary-biased seeds, re-draw, and keep the smallest drawn
    /// input that still fails. Returns `(rendered_input, message)` of the
    /// minimal failure found (the original if nothing smaller fails).
    pub fn shrink_failure<S, F>(
        strat: S,
        seed: u64,
        original: (String, String),
        body: &F,
    ) -> (String, String)
    where
        S: Strategy,
        S::Value: ::core::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut minimal = original;
        let mut current = strat;
        let mut shrink_seed = seed;
        for _level in 0..64u32 {
            let (next, shrunk) = current.shrink();
            current = next;
            if !shrunk {
                break;
            }
            let mut found = false;
            for _probe in 0..24u32 {
                shrink_seed = shrink_seed.wrapping_add(GOLDEN);
                if let Err(TestCaseError::Fail(msg)) = run_one(&current, shrink_seed, body) {
                    minimal = (render_input(&current, shrink_seed), msg);
                    found = true;
                    break;
                }
            }
            if !found {
                break; // the shrunken space no longer fails
            }
        }
        minimal
    }
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let strat = ($($strat,)+);
            let run_case = $crate::__runner::as_case(&strat, |value| {
                let ($($arg,)+) = value;
                $body
                ::core::result::Result::Ok(())
            });
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut seed: u64 = $crate::test_runner::seed_for(
                ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
            );
            while accepted < cfg.cases {
                seed = seed.wrapping_add(0x9E3779B97F4A7C15);
                match $crate::__runner::run_one(&strat, seed, &run_case) {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        ::core::assert!(
                            rejected <= 4096 + cfg.cases.saturating_mul(64),
                            "proptest shim: too many rejected cases in {}",
                            ::core::stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        // Shrink: halve the strategies toward their
                        // boundary-biased seeds while the smaller spaces
                        // still fail, and report the last failing draw. The
                        // printed seed reproduces the *original* input; the
                        // minimal one is re-drawn from shrunken strategies.
                        let original = $crate::__runner::render_input(&strat, seed);
                        let minimal = $crate::__runner::shrink_failure(
                            strat,
                            seed,
                            (original.clone(), msg),
                            &run_case,
                        );
                        ::core::panic!(
                            "proptest case failed (case {}, seed {:#018x} reproduces the original input):\n{}\noriginal failing input: {}\nminimal failing input: {}",
                            accepted,
                            seed,
                            minimal.1,
                            original,
                            minimal.0,
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn int_ranges_halve_toward_their_minimum() {
        let (r, did) = (0u32..100).shrink();
        assert!(did);
        assert_eq!(r, 0..50);
        let (r, did) = r.shrink();
        assert!(did);
        assert_eq!(r, 0..25);
        // A point range cannot shrink.
        let (r, did) = (7u32..8).shrink();
        assert!(!did);
        assert_eq!(r, 7..8);
    }

    #[test]
    fn inclusive_ranges_shrink_to_a_point_then_stop() {
        let (r, did) = (10u64..=11).shrink();
        assert!(did);
        assert_eq!(r, 10..=10);
        let (_, did) = r.shrink();
        assert!(!did);
    }

    #[test]
    fn tuples_shrink_while_any_component_can() {
        let t = (0u32..100, 5u32..6);
        let (t, did) = t.shrink();
        assert!(did, "first component still shrinks");
        assert_eq!(t.0, 0..50);
        assert_eq!(t.1, 5..6, "point component untouched");
    }

    #[test]
    fn float_ranges_halve_toward_their_start() {
        let (r, did) = (0.0f64..8.0).shrink();
        assert!(did);
        assert_eq!(r, 0.0..4.0);
    }

    #[test]
    fn failing_property_reports_a_minimal_input() {
        // A property that fails for every n >= 2: shrinking must walk the
        // range down and report an input from a halved space.
        let result = std::panic::catch_unwind(|| {
            crate::proptest! {
                #![proptest_config(crate::test_runner::Config::with_cases(8))]
                fn always_fails_above_one(n in 2u32..1000) {
                    crate::prop_assert!(n < 2, "n = {n}");
                }
            }
            always_fails_above_one();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("minimal failing input"),
            "panic must carry the shrunken input: {msg}"
        );
        // The fully shrunken space is 2..3, so the minimal input is (2,).
        assert!(msg.contains("(2,)"), "expected the boundary value: {msg}");
    }
}
