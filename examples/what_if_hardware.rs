//! What-if study beyond the paper (§8 future work): how the configuration
//! space and the SLO-driven optimizer behave on a different GPU generation
//! (8×A100 instances instead of the paper's 4×T4 `g4dn`).
//!
//! ```sh
//! cargo run --release --example what_if_hardware
//! ```

use cloudsim::{GpuSpec, NetFabric};
use llmsim::{CostModel, MemoryModel, ModelSpec};
use parallelism::{ConfigSpace, PerfModel};
use simkit::SimDuration;
use spotserve::ConfigOptimizer;

fn main() {
    let model = ModelSpec::llama_30b();
    println!("=== {model} on hypothetical 8xA100-40G spot instances ===\n");

    let cost = CostModel::new(GpuSpec::a100_40g(), NetFabric::g4dn_default(), 8);
    let perf = PerfModel::new(model.clone(), cost, 512, 128);
    let opt = ConfigOptimizer::new(
        perf,
        MemoryModel::default(),
        GpuSpec::a100_40g(),
        ConfigSpace::default(),
        8,
        8,
    );

    // A100s have 2.5x the memory: the model fits on far fewer GPUs.
    let (n, (p, m)) = opt
        .memory()
        .min_gpus(&model, &GpuSpec::a100_40g(), 64)
        .expect("fits");
    println!("minimum fleet: {n} GPUs, e.g. (P={p}, M={m})  [T4 needed 16]");

    for alpha in [0.2, 0.5, 1.0] {
        let d = opt.decide(4, alpha);
        match d.now {
            Some(c) => println!(
                "α={alpha:>4} req/s on 4 instances -> {c}  φ={:.2} req/s, l_exe={:.1}s",
                opt.perf().throughput(&c),
                opt.perf().exec_latency(&c).as_secs_f64()
            ),
            None => println!("α={alpha:>4} req/s -> no feasible configuration"),
        }
    }

    // SLO-driven provisioning (§3.2's alternative objective).
    println!();
    for slo_secs in [30u64, 15, 8] {
        let d = opt.decide_slo(8, 0.5, SimDuration::from_secs(slo_secs));
        match d.target {
            Some(c) => println!(
                "SLO {slo_secs:>2}s at 0.5 req/s -> {c} ({} instances)",
                c.instances_needed(8)
            ),
            None => println!("SLO {slo_secs:>2}s -> unattainable"),
        }
    }
}
