//! Inspect a single reconfiguration the way SpotServe plans it: device
//! mapping via Kuhn–Munkres, Algorithm 2's layer ordering, and the
//! resulting timeline — the paper's Figure 4a scenario,
//! `(D=1,P=2,M=8) -> (D=1,P=3,M=4)`.
//!
//! ```sh
//! cargo run --release --example migration_planning
//! ```

use cloudsim::{ColdStorage, GpuRef, InstanceId, NetFabric};
use llmsim::ModelSpec;
use migration::{evaluate_plan, plan_migration, DeviceAssignment, MigrationTask, PlannerOptions};
use parallelism::ParallelConfig;
use spotserve::devicemap::{map_devices, OldState};

fn main() {
    let model = ModelSpec::gpt_20b();
    let old_cfg = ParallelConfig::new(1, 2, 8, 8);
    let new_cfg = ParallelConfig::new(1, 3, 4, 8);
    let instances: Vec<InstanceId> = (0..4).map(InstanceId).collect();
    let gpus: Vec<GpuRef> = instances
        .iter()
        .flat_map(|&i| (0..4).map(move |s| GpuRef::new(i, s)))
        .collect();
    let old_assignment = DeviceAssignment::contiguous(&old_cfg, &gpus);

    println!("reconfiguring {} from {old_cfg} to {new_cfg}\n", model.name);

    // Step 1: device mapping (KM maximizes reusable context).
    let old = OldState {
        config_and_assignment: Some((old_cfg, old_assignment.clone())),
        cache_bytes_per_pipeline: vec![2 << 30],
        progress_per_pipeline: vec![64],
    };
    let outcome = map_devices(&model, &new_cfg, &instances, 4, &old, true);
    println!(
        "device mapper reuses {:.1} GB of context in place",
        outcome.reused_bytes as f64 / 1e9
    );
    for (pos, gpu) in outcome.assignment.iter() {
        let was = old_assignment.position_of(gpu);
        println!("  {pos} <- {gpu} (held {:?})", was.map(|p| p.to_string()));
    }

    // Step 2: Algorithm 2 planning.
    let task = MigrationTask {
        model: model.clone(),
        old_config: old_cfg,
        new_config: new_cfg,
        old_assignment,
        new_assignment: outcome.assignment.clone(),
        cache_bytes_per_pipeline: vec![2 << 30],
        pipeline_inheritance: outcome.inheritance.clone(),
    };
    let plan = plan_migration(&task, &PlannerOptions::default());
    println!(
        "\nplan: {:.1} GB over the network, {:.1} GB from storage, peak buffer {:.0} MB",
        plan.total_bytes_network() as f64 / 1e9,
        plan.total_bytes_from_storage() as f64 / 1e9,
        plan.peak_buffer_growth as f64 / 1e6
    );
    println!("layer order (first 12): {:?}", &plan.layer_order[..12]);

    // Step 3: the timeline, progressive vs naive.
    let net = NetFabric::g4dn_default();
    let storage = ColdStorage::default();
    let tl = evaluate_plan(&plan, &net, &storage);
    println!("\nprogressive timeline:");
    println!("  cache done at {:.2}s", tl.cache_done.as_secs_f64());
    for (p, ready) in tl.stage_ready.iter().enumerate() {
        println!("  stage {p} ready at {:.2}s", ready.as_secs_f64());
    }
    println!("  all transfers done at {:.2}s", tl.total.as_secs_f64());

    let naive = plan_migration(
        &task,
        &PlannerOptions {
            progressive: false,
            memory_optimized: false,
            ..PlannerOptions::default()
        },
    );
    let ntl = evaluate_plan(&naive, &net, &storage);
    println!(
        "\nnaive plan: serving pauses {:.2}s vs progressive {:.2}s, peak buffer {:.0} MB vs {:.0} MB",
        ntl.total.as_secs_f64(),
        tl.effective_pause(simkit::SimDuration::from_millis(500)).as_secs_f64(),
        naive.peak_buffer_growth as f64 / 1e6,
        plan.peak_buffer_growth as f64 / 1e6,
    );
}
