//! Head-to-head comparison of SpotServe against the two §6.1 baselines on
//! the volatile B_S trace — the scenario the paper's introduction motivates
//! (LLM serving that survives preemptions cheaply).
//!
//! ```sh
//! cargo run --release --example baseline_showdown
//! ```

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use spotserve::{Scenario, ServingSystem, SystemOptions};

fn main() {
    let model = ModelSpec::gpt_20b();
    let trace = AvailabilityTrace::paper_bs();
    println!("GPT-20B @ 0.35 req/s on the volatile B_S spot trace\n");
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "system", "avg (s)", "P99 (s)", "cost $", "preempts", "reconfigs"
    );
    let mut p99 = Vec::new();
    for (name, opts) in [
        ("SpotServe", SystemOptions::spotserve()),
        ("Reparallelization", SystemOptions::reparallelization()),
        ("Rerouting", SystemOptions::rerouting()),
    ] {
        let scenario = Scenario::paper_stable(model.clone(), trace.clone(), 0.35, 7);
        let mut report = ServingSystem::new(opts, scenario).run();
        let p = report.latency.percentiles();
        println!(
            "{:<20} {:>8.1} {:>8.1} {:>8.2} {:>10} {:>12}",
            name,
            p.mean,
            p.p99,
            report.cost_usd,
            report.preemptions,
            report.config_changes.len()
        );
        p99.push(p.p99);
    }
    println!(
        "\nSpotServe P99 improvement: {:.2}x vs Reparallelization, {:.2}x vs Rerouting",
        p99[1] / p99[0],
        p99[2] / p99[0]
    );
    println!("(paper reports 2.4-9.1x across models and traces)");
}
