//! Quickstart: serve OPT-6.7B on a preemptible fleet for 20 minutes and
//! print the latency/cost summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use spotserve::{Scenario, ServingSystem, SystemOptions};

fn main() {
    // The paper's A_S spot trace (Figure 5) and stable workload (§6.1).
    let scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::paper_as(),
        1.5, // requests per second
        42,  // seed
    );
    println!(
        "serving {} requests of OPT-6.7B on trace A_S ...",
        scenario.requests.len()
    );

    let mut report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();

    let p = report.latency.percentiles();
    println!("completed: {} (unfinished {})", p.count, report.unfinished);
    println!(
        "avg latency: {:6.1}s   P90: {:6.1}s   P99: {:6.1}s",
        p.mean, p.p90, p.p99
    );
    println!("preemptions survived: {}", report.preemptions);
    println!("fleet cost: ${:.2}", report.cost_usd);
    if let Some(cpt) = report.cost().usd_per_token {
        println!("cost per generated token: {:.2}e-5 USD", cpt * 1e5);
    }
    println!("\nconfiguration history:");
    for c in report.config_changes.iter().take(12) {
        match c.config {
            Some(cfg) => println!(
                "  t={:7.1}s -> {cfg} (pause {:.1}s, migrated {:.1} GB)",
                c.at.as_secs_f64(),
                c.pause.as_secs_f64(),
                c.migrated_bytes as f64 / 1e9
            ),
            None => println!("  t={:7.1}s -> serving halted", c.at.as_secs_f64()),
        }
    }
}
