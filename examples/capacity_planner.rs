//! Explore the configuration space the way Algorithm 1 sees it: every
//! memory-feasible `(D, P, M, B)` for a fleet size, with estimated
//! throughput and request latency — useful for capacity planning before
//! deploying a model on spot instances.
//!
//! ```sh
//! cargo run --release --example capacity_planner -- [instances] [rate]
//! ```

use llmsim::ModelSpec;
use spotserve::ConfigOptimizer;

fn main() {
    let mut args = std::env::args().skip(1);
    let instances: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let rate: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.35);

    for model in ModelSpec::paper_models() {
        let opt = ConfigOptimizer::paper_defaults(model.clone(), 16);
        println!("\n=== {model} on {instances} x g4dn.12xlarge, α = {rate} req/s ===");
        let mut rows: Vec<_> = opt
            .feasible(instances)
            .into_iter()
            .map(|c| {
                let phi = opt.perf().throughput(&c);
                let l = opt.perf().request_latency(&c, rate);
                (l, c, phi)
            })
            .collect();
        rows.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "{:<22} {:>10} {:>12} {:>10}",
            "config", "φ (req/s)", "l_req (s)", "sustains?"
        );
        for (l, c, phi) in rows.iter().take(10) {
            let lr = if *l == simkit::SimDuration::MAX {
                "overload".to_string()
            } else {
                format!("{:.1}", l.as_secs_f64())
            };
            println!(
                "{:<22} {:>10.3} {:>12} {:>10}",
                c.to_string(),
                phi,
                lr,
                if *phi >= rate { "yes" } else { "no" }
            );
        }
        let d = opt.decide(instances, rate);
        match d.now {
            Some(c) => println!("Algorithm 1 picks: {c}"),
            None => println!("Algorithm 1: no feasible configuration at this fleet size"),
        }
        if d.instance_delta != 0 {
            println!("instance manager delta: {:+}", d.instance_delta);
        }
    }
}
