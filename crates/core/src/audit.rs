//! Run-level invariant auditing: replay a [`RunReport`] (and its
//! telemetry stream, when present) and check the conservation laws every
//! run must satisfy — chaos on or off.
//!
//! The chaos harness injects unannounced kills, lost notices, lapsed
//! grants and degraded links; the serving system is supposed to *degrade*
//! under them, never to *corrupt*. The [`InvariantAuditor`] makes that
//! contract checkable after the fact, from artifacts alone:
//!
//! 1. **Request conservation** — every admitted request is finished,
//!    SLO-rejected, or unfinished *exactly once*: `completed +
//!    slo_rejections + unfinished == expected`, with no duplicate
//!    terminal outcome and no request both finished and rejected.
//! 2. **Causal outcomes** — no request finishes before it arrives, and
//!    nothing finishes after the run's own end-of-time.
//! 3. **Lease lifecycle** — replayed from telemetry: an instance must be
//!    granted before it is noticed, killed, faulted, or released; no
//!    instance dies twice (never simultaneously live and killed); the
//!    live-instance count never goes negative.
//! 4. **Monotone progress** — the cumulative [`EngineRollup`] counters
//!    (admitted, completed, generated tokens) never decrease across the
//!    stream: a migration may *pause* progress, never un-commit it.
//! 5. **Billing consistency** — per-pool [`CostRollup`] integrals are
//!    monotone, and the report's per-kind/per-pool breakdown re-sums to
//!    the authoritative `cost_usd` (the path-integral of the leases)
//!    within float-accumulation slack.
//!
//! [`EngineRollup`]: telemetry::TelemetryEvent::EngineRollup
//! [`CostRollup`]: telemetry::TelemetryEvent::CostRollup
//!
//! The auditor is pure: it holds no simulation handles, reads only the
//! report, and is itself deterministic — the same report always yields
//! the same verdict, so audits can gate CI.
//!
//! # Example
//!
//! ```
//! use spotserve::{InvariantAuditor, Scenario, ServingSystem, SystemOptions};
//!
//! let scenario = Scenario::paper_stable(
//!     llmsim::ModelSpec::opt_6_7b(),
//!     cloudsim::AvailabilityTrace::paper_as(),
//!     1.0,
//!     7,
//! );
//! let n = scenario.requests.len();
//! let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
//! let audit = InvariantAuditor::new().with_expected_requests(n).audit(&report);
//! assert!(audit.is_clean(), "{audit}");
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use telemetry::TelemetryEvent;

use crate::report::RunReport;

/// Relative slack allowed between the summed cost breakdown and the
/// authoritative billing integral (float accumulation over many leases).
const BILLING_REL_TOL: f64 = 1e-9;

/// One violated invariant: which law broke and the concrete evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short stable name of the invariant (e.g. `"request-conservation"`).
    pub invariant: &'static str,
    /// Human-readable evidence: the ids/counters that disagree.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The auditor's verdict over one run: every violated invariant, in
/// discovery order (empty = clean).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// The violations found, in check order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with every violation listed unless the run was clean.
    /// The assertion surface for test suites.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "invariant audit failed:\n{self}");
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "audit clean");
        }
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Replays a [`RunReport`] and checks the run-level conservation
/// invariants (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct InvariantAuditor {
    /// Scenario request count to conserve against; `None` skips the
    /// totals check (outcome uniqueness is still enforced).
    expected_requests: Option<usize>,
}

impl InvariantAuditor {
    /// An auditor with no expected-count pin.
    pub fn new() -> Self {
        InvariantAuditor::default()
    }

    /// Pins the scenario's request count: `completed + rejected +
    /// unfinished` must equal exactly this.
    pub fn with_expected_requests(mut self, n: usize) -> Self {
        self.expected_requests = Some(n);
        self
    }

    /// Runs every check against `report` and returns the verdict.
    pub fn audit(&self, report: &RunReport) -> AuditReport {
        let mut out = AuditReport::default();
        self.check_request_conservation(report, &mut out);
        Self::check_outcome_causality(report, &mut out);
        Self::check_billing(report, &mut out);
        if let Some(stream) = &report.telemetry {
            Self::check_lease_lifecycle(stream, &mut out);
            Self::check_monotone_progress(stream, &mut out);
        }
        out
    }

    /// Invariant 1: every request settles exactly once.
    fn check_request_conservation(&self, report: &RunReport, out: &mut AuditReport) {
        let mut finished: BTreeSet<u64> = BTreeSet::new();
        for o in report.latency.outcomes() {
            if !finished.insert(o.request.id.0) {
                out.violations.push(Violation {
                    invariant: "request-conservation",
                    detail: format!("request {} finished twice", o.request.id.0),
                });
            }
        }
        let mut rejected: BTreeSet<u64> = BTreeSet::new();
        for r in &report.slo_rejections {
            if !rejected.insert(r.id.0) {
                out.violations.push(Violation {
                    invariant: "request-conservation",
                    detail: format!("request {} rejected twice", r.id.0),
                });
            }
            if finished.contains(&r.id.0) {
                out.violations.push(Violation {
                    invariant: "request-conservation",
                    detail: format!("request {} both finished and SLO-rejected", r.id.0),
                });
            }
        }
        if let Some(expected) = self.expected_requests {
            let settled = finished.len() + rejected.len();
            if settled + report.unfinished != expected {
                out.violations.push(Violation {
                    invariant: "request-conservation",
                    detail: format!(
                        "{} finished + {} rejected + {} unfinished != {} admitted",
                        finished.len(),
                        rejected.len(),
                        report.unfinished,
                        expected
                    ),
                });
            }
        }
    }

    /// Invariant 2: outcomes are causally ordered.
    fn check_outcome_causality(report: &RunReport, out: &mut AuditReport) {
        for o in report.latency.outcomes() {
            if o.finished < o.request.arrival {
                out.violations.push(Violation {
                    invariant: "outcome-causality",
                    detail: format!(
                        "request {} finished at {}us before arriving at {}us",
                        o.request.id.0,
                        o.finished.as_micros(),
                        o.request.arrival.as_micros()
                    ),
                });
            }
            if o.finished > report.finished_at {
                out.violations.push(Violation {
                    invariant: "outcome-causality",
                    detail: format!(
                        "request {} finished at {}us, after the run ended at {}us",
                        o.request.id.0,
                        o.finished.as_micros(),
                        report.finished_at.as_micros()
                    ),
                });
            }
        }
    }

    /// Invariant 3: lease lifecycle, replayed from telemetry. Grants and
    /// deaths must alternate per instance — no instance is ever
    /// simultaneously live and killed, or killed while never granted.
    fn check_lease_lifecycle(stream: &telemetry::TelemetryStream, out: &mut AuditReport) {
        let mut live: BTreeSet<u64> = BTreeSet::new();
        for r in stream.records() {
            match r.event {
                // The insert/remove side effects run whenever the pattern
                // matches; a guard that fails (healthy transition) falls
                // through to the catch-all.
                TelemetryEvent::InstanceGrant { instance, .. } if !live.insert(instance) => {
                    out.violations.push(Violation {
                        invariant: "lease-lifecycle",
                        detail: format!(
                            "instance {instance} granted at {}us while already live",
                            r.time.as_micros()
                        ),
                    });
                }
                TelemetryEvent::KillNotice { instance, .. } if !live.contains(&instance) => {
                    out.violations.push(Violation {
                        invariant: "lease-lifecycle",
                        detail: format!(
                            "notice for dead instance {instance} at {}us",
                            r.time.as_micros()
                        ),
                    });
                }
                TelemetryEvent::InstanceKill { instance, .. }
                | TelemetryEvent::InstanceRelease { instance, .. }
                | TelemetryEvent::Fault { instance, .. }
                    if !live.remove(&instance) =>
                {
                    out.violations.push(Violation {
                        invariant: "lease-lifecycle",
                        detail: format!(
                            "instance {instance} died at {}us while not live \
                             (double kill or kill before grant)",
                            r.time.as_micros()
                        ),
                    });
                }
                _ => {}
            }
        }
    }

    /// Invariant 4: cumulative engine counters never decrease — a
    /// migration pauses progress, never un-commits tokens.
    fn check_monotone_progress(stream: &telemetry::TelemetryStream, out: &mut AuditReport) {
        let mut last: Option<(u64, u64, u64)> = None;
        for r in stream.records() {
            if let TelemetryEvent::EngineRollup {
                admitted,
                completed,
                tokens,
                ..
            } = r.event
            {
                if let Some((a0, c0, t0)) = last {
                    if admitted < a0 || completed < c0 || tokens < t0 {
                        out.violations.push(Violation {
                            invariant: "monotone-progress",
                            detail: format!(
                                "rollup at {}us went backwards: admitted {a0}->{admitted}, \
                                 completed {c0}->{completed}, tokens {t0}->{tokens}",
                                r.time.as_micros()
                            ),
                        });
                    }
                }
                last = Some((admitted, completed, tokens));
            }
        }
    }

    /// Invariant 5: billing consistency. Per-pool cost rollups are
    /// monotone, and the breakdown re-sums to the authoritative total.
    fn check_billing(report: &RunReport, out: &mut AuditReport) {
        let cost = report.cost();
        let split = cost.spot_usd + cost.ondemand_usd;
        let tol = BILLING_REL_TOL * cost.total_usd.abs().max(1.0);
        if (split - cost.total_usd).abs() > tol {
            out.violations.push(Violation {
                invariant: "billing-consistency",
                detail: format!(
                    "spot {} + on-demand {} != total {} (tolerance {tol:e})",
                    cost.spot_usd, cost.ondemand_usd, cost.total_usd
                ),
            });
        }
        let pool_sum: f64 = cost.pools.iter().map(|p| p.spot_usd + p.ondemand_usd).sum();
        if (pool_sum - cost.total_usd).abs() > tol {
            out.violations.push(Violation {
                invariant: "billing-consistency",
                detail: format!(
                    "per-pool sum {pool_sum} != total {} (tolerance {tol:e})",
                    cost.total_usd
                ),
            });
        }
        if let Some(stream) = &report.telemetry {
            let mut last: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
            for r in stream.records() {
                if let TelemetryEvent::CostRollup {
                    pool,
                    spot_microusd,
                    ondemand_microusd,
                    ..
                } = r.event
                {
                    if let Some(&(s0, o0)) = last.get(&pool) {
                        if spot_microusd < s0 || ondemand_microusd < o0 {
                            out.violations.push(Violation {
                                invariant: "billing-consistency",
                                detail: format!(
                                    "pool {pool} cost rollup at {}us went backwards: \
                                     spot {s0}->{spot_microusd}µ$, \
                                     od {o0}->{ondemand_microusd}µ$",
                                    r.time.as_micros()
                                ),
                            });
                        }
                    }
                    last.insert(pool, (spot_microusd, ondemand_microusd));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::CostBreakdown;
    use simkit::SimTime;
    use workload::{LatencyReport, Request, RequestId, RequestOutcome};

    fn report_with(outcomes: &[(u64, u64, u64)], unfinished: usize) -> RunReport {
        // (id, arrival_s, finished_s)
        let mut latency = LatencyReport::new("audit");
        for &(id, arr, fin) in outcomes {
            latency.record(RequestOutcome {
                request: Request::new(RequestId(id), SimTime::from_secs(arr), 64, 16),
                finished: SimTime::from_secs(fin),
            });
        }
        RunReport {
            latency,
            cost_usd: 0.0,
            cost_breakdown: CostBreakdown::default(),
            unfinished,
            config_changes: vec![],
            finished_at: SimTime::from_secs(10_000),
            preemptions: 0,
            faults: 0,
            lapses: 0,
            grants: 0,
            fleet_timeline: vec![],
            slo_rejections: vec![],
            telemetry: None,
        }
    }

    #[test]
    fn a_conserving_report_is_clean() {
        let rep = report_with(&[(0, 0, 5), (1, 1, 6)], 1);
        let audit = InvariantAuditor::new()
            .with_expected_requests(3)
            .audit(&rep);
        assert!(audit.is_clean(), "{audit}");
        audit.assert_clean();
    }

    #[test]
    fn a_lost_request_is_caught() {
        let rep = report_with(&[(0, 0, 5)], 0);
        let audit = InvariantAuditor::new()
            .with_expected_requests(2)
            .audit(&rep);
        assert!(!audit.is_clean());
        assert_eq!(audit.violations[0].invariant, "request-conservation");
    }

    #[test]
    fn a_double_finish_is_caught() {
        let rep = report_with(&[(7, 0, 5), (7, 0, 6)], 0);
        let audit = InvariantAuditor::new().audit(&rep);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.detail.contains("finished twice")));
    }

    #[test]
    fn time_travel_is_caught() {
        let rep = report_with(&[(0, 10, 5)], 0);
        let audit = InvariantAuditor::new().audit(&rep);
        assert_eq!(audit.violations[0].invariant, "outcome-causality");
    }

    #[test]
    fn a_finish_after_the_run_end_is_caught() {
        let mut rep = report_with(&[(0, 0, 5)], 0);
        rep.finished_at = SimTime::from_secs(3);
        let audit = InvariantAuditor::new().audit(&rep);
        assert_eq!(audit.violations[0].invariant, "outcome-causality");
    }

    #[test]
    fn a_request_both_finished_and_rejected_is_caught() {
        let mut rep = report_with(&[(4, 0, 5)], 0);
        rep.slo_rejections
            .push(Request::new(RequestId(4), SimTime::ZERO, 64, 16));
        let audit = InvariantAuditor::new().audit(&rep);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.detail.contains("both finished and SLO-rejected")));
    }

    fn stream_of(events: &[(u64, TelemetryEvent)]) -> telemetry::TelemetryStream {
        let mut rec = telemetry::Recorder::enabled();
        for &(t, ev) in events {
            rec.emit(SimTime::from_secs(t), ev);
        }
        telemetry::TelemetryStream::from_sources(vec![rec.take()])
    }

    #[test]
    fn a_double_kill_is_caught() {
        let mut rep = report_with(&[], 0);
        rep.telemetry = Some(stream_of(&[
            (
                0,
                TelemetryEvent::InstanceGrant {
                    pool: 0,
                    instance: 1,
                    ondemand: false,
                },
            ),
            (
                5,
                TelemetryEvent::InstanceKill {
                    pool: 0,
                    instance: 1,
                },
            ),
            (
                6,
                TelemetryEvent::Fault {
                    pool: 0,
                    instance: 1,
                },
            ),
        ]));
        let audit = InvariantAuditor::new().audit(&rep);
        assert_eq!(audit.violations.len(), 1);
        assert_eq!(audit.violations[0].invariant, "lease-lifecycle");
        assert!(audit.violations[0].detail.contains("instance 1"));
    }

    #[test]
    fn a_kill_before_grant_is_caught() {
        let mut rep = report_with(&[], 0);
        rep.telemetry = Some(stream_of(&[(
            2,
            TelemetryEvent::Fault {
                pool: 0,
                instance: 9,
            },
        )]));
        let audit = InvariantAuditor::new().audit(&rep);
        assert_eq!(audit.violations[0].invariant, "lease-lifecycle");
    }

    #[test]
    fn shrinking_rollups_are_caught() {
        let mut rep = report_with(&[], 0);
        let roll = |tokens| TelemetryEvent::EngineRollup {
            queue_depth: 0,
            residents: 0,
            admitted: 1,
            deferrals: 0,
            rejected: 0,
            completed: 1,
            tokens,
        };
        rep.telemetry = Some(stream_of(&[(1, roll(100)), (2, roll(90))]));
        let audit = InvariantAuditor::new().audit(&rep);
        assert_eq!(audit.violations[0].invariant, "monotone-progress");
        assert!(audit.violations[0].detail.contains("tokens 100->90"));
    }

    #[test]
    fn a_cooked_billing_total_is_caught() {
        let mut rep = report_with(&[], 0);
        rep.cost_usd = 5.0; // breakdown is empty: split sums to 0
        let audit = InvariantAuditor::new().audit(&rep);
        assert!(audit
            .violations
            .iter()
            .all(|v| v.invariant == "billing-consistency"));
        assert!(!audit.is_clean());
    }

    #[test]
    fn backwards_cost_rollups_are_caught() {
        let mut rep = report_with(&[], 0);
        let cost = |spot| TelemetryEvent::CostRollup {
            pool: 0,
            sku: "g4dn.12xlarge",
            spot_microusd: spot,
            ondemand_microusd: 0,
        };
        rep.telemetry = Some(stream_of(&[(1, cost(500)), (2, cost(400))]));
        let audit = InvariantAuditor::new().audit(&rep);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.detail.contains("went backwards")));
    }
}
