//! The sharded, deterministic parallel simulation core.
//!
//! Pools and pipelines are near-independent between fleet events, so a
//! multi-pool scenario can be partitioned into shards — each shard a full
//! [`ServingSystem`] over a contiguous slice of the pool list and a
//! round-robin slice of the request stream — and the shards advanced on
//! worker threads between synchronization barriers. Barriers sit at every
//! fleet/market event (grants, preemption notices and kills,
//! `SpotPriceStep` re-quotes) and at migration-transition commits/resumes:
//! the epoch loop advances every shard through all events at or before the
//! earliest pending sync point, joins, logs the epoch, and repeats.
//!
//! Determinism comes from partitioning, not locks. Shards share nothing;
//! within an epoch each shard advances its own `EventQueue` in `(time,
//! seq)` order, and the merged record is assembled in `(SimTime, shard_id,
//! seq)` order — so [`ScaleReport::digest`] is byte-identical for every
//! thread count, and a single-shard run executes the legacy sequential
//! path verbatim.

use simkit::{run_shards, Percentiles, Sampler, SimTime};
use telemetry::{Fnv1a, TelemetryStream};

use crate::config::SystemOptions;
use crate::report::RunReport;
use crate::system::{Scenario, ServingSystem};

/// One shard of a partitioned run.
struct Shard {
    /// `None` after the report has been taken at the end of the run.
    sys: Option<ServingSystem>,
    /// Still has events to process.
    running: bool,
}

/// A multi-pool scenario partitioned into independently-advanceable
/// shards, run in barrier-delimited epochs on up to `threads` workers.
///
/// # Example
///
/// ```no_run
/// use spotserve::{Scenario, ShardedSystem, SystemOptions};
/// # fn scenario() -> Scenario { unimplemented!() }
/// let report = ShardedSystem::new(SystemOptions::spotserve(), scenario(), 8)
///     .with_threads(4)
///     .run();
/// println!("digest={:016x}", report.digest());
/// ```
pub struct ShardedSystem {
    shards: Vec<Shard>,
    threads: usize,
}

impl ShardedSystem {
    /// Partitions `scenario` into `shards` independent serving systems:
    /// shard `i` owns a contiguous slice of the pool list, every
    /// `shards`-th request (round-robin by arrival index, preserving
    /// arrival order), a proportional share of the initial rate estimate,
    /// and a seed derived from the scenario seed and the shard id. With
    /// `shards == 1` the scenario passes through untouched, so a
    /// single-shard run is the legacy sequential system verbatim.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero, or when `shards > 1` and the scenario
    /// has fewer pools than shards.
    pub fn new(opts: SystemOptions, scenario: Scenario, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        let parts = partition(scenario, shards);
        ShardedSystem {
            shards: parts
                .into_iter()
                .map(|sc| Shard {
                    sys: Some(ServingSystem::new(opts.clone(), sc)),
                    running: true,
                })
                .collect(),
            threads: 1,
        }
    }

    /// Sets the worker-thread budget (default 1). The output is
    /// byte-identical for every value; threads only buy wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs every shard to completion in barrier-delimited epochs and
    /// merges the results in shard order.
    pub fn run(mut self) -> ScaleReport {
        let threads = self.threads;
        run_shards(&mut self.shards, threads, |_, s| {
            s.sys.as_mut().expect("not finished").start();
        });

        let mut epochs = Vec::new();
        loop {
            // The global barrier: the earliest sync point any running
            // shard still owes the others. `None` once nothing constrains
            // the fleet again — the final epoch then drains to the end.
            let mut barrier: Option<SimTime> = None;
            for s in self.shards.iter_mut().filter(|s| s.running) {
                if let Some(t) = s.sys.as_mut().expect("not finished").next_sync_time() {
                    barrier = Some(barrier.map_or(t, |b| b.min(t)));
                }
            }
            let target = barrier.unwrap_or(SimTime::MAX);

            // Fan out: every running shard processes all events at or
            // before the barrier (including its own barrier event), then
            // joins. Each shard's advance is the sequential loop verbatim.
            run_shards(&mut self.shards, threads, |_, s| {
                if s.running {
                    s.running = s.sys.as_mut().expect("not finished").advance_until(target);
                }
            });

            epochs.push(EpochRecord {
                barrier,
                events: self
                    .shards
                    .iter()
                    .map(|s| s.sys.as_ref().expect("not finished").events_processed())
                    .collect(),
                completed: self
                    .shards
                    .iter()
                    .map(|s| s.sys.as_ref().expect("not finished").completed_so_far())
                    .collect(),
            });
            if !self.shards.iter().any(|s| s.running) {
                break;
            }
        }

        // Merge in shard order — the `(time, shard_id, seq)` order within
        // an epoch, since each shard's records are already time-sorted.
        let mut shards: Vec<RunReport> = self
            .shards
            .iter_mut()
            .map(|s| s.sys.take().expect("finished once").finish())
            .collect();
        // The fleet-wide telemetry stream: per-shard streams (each already
        // deterministic in isolation) re-tagged and merged `(time, shard,
        // seq)`, so the export is identical at every thread count.
        let telemetry = shards.iter().all(|r| r.telemetry.is_some()).then(|| {
            TelemetryStream::merge_shards(
                shards
                    .iter_mut()
                    .map(|r| r.telemetry.take().expect("checked above"))
                    .collect(),
            )
        });
        let mut latencies = Sampler::new();
        let mut total_cost_usd = 0.0;
        let mut completed = 0;
        let mut unfinished = 0;
        for rep in &shards {
            let shard_latencies: Sampler = rep
                .latency
                .outcomes()
                .iter()
                .map(|o| o.latency().as_secs_f64())
                .collect();
            latencies.merge(&shard_latencies);
            total_cost_usd += rep.cost_usd;
            completed += rep.latency.completed();
            unfinished += rep.unfinished;
        }
        ScaleReport {
            latency: latencies.percentiles(),
            total_cost_usd,
            completed,
            unfinished,
            epochs,
            shards,
            telemetry,
        }
    }
}

/// Splits a scenario into per-shard scenarios (see [`ShardedSystem::new`]).
fn partition(scenario: Scenario, shards: usize) -> Vec<Scenario> {
    if shards == 1 {
        return vec![scenario];
    }
    assert!(
        scenario.pools.len() >= shards,
        "{} pools cannot fill {} shards",
        scenario.pools.len(),
        shards
    );
    let total = scenario.requests.len();
    let base = scenario.pools.len() / shards;
    let extra = scenario.pools.len() % shards;
    let mut pool_cursor = 0;
    (0..shards)
        .map(|i| {
            let n_pools = base + usize::from(i < extra);
            let pools = scenario.pools[pool_cursor..pool_cursor + n_pools].to_vec();
            pool_cursor += n_pools;
            let requests: Vec<_> = scenario
                .requests
                .iter()
                .skip(i)
                .step_by(shards)
                .copied()
                .collect();
            let share = if total == 0 {
                1.0 / shards as f64
            } else {
                requests.len() as f64 / total as f64
            };
            Scenario {
                model: scenario.model.clone(),
                trace: scenario.trace.clone(),
                pools,
                requests,
                cloud: scenario.cloud.clone(),
                storage: scenario.storage,
                // Golden-ratio mixing keeps shard streams independent while
                // shard 0 of a 1-shard split keeps the scenario seed.
                seed: scenario
                    .seed
                    .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                initial_rate: scenario.initial_rate * share,
            }
        })
        .collect()
}

/// One barrier-delimited epoch of a sharded run.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// The sync point this epoch advanced to, `None` for the final drain
    /// epoch (no fleet event or transition pending anywhere).
    pub barrier: Option<SimTime>,
    /// Cumulative events processed per shard when the epoch joined.
    pub events: Vec<u64>,
    /// Cumulative completions per shard when the epoch joined.
    pub completed: Vec<usize>,
}

/// Everything a sharded run produced: the per-shard [`RunReport`]s in
/// shard order, the epoch log, and fleet-wide merged summaries.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<RunReport>,
    /// The barrier log, in epoch order.
    pub epochs: Vec<EpochRecord>,
    /// Request latencies merged across shards (exact quantiles — the
    /// merged sampler holds every shard's samples).
    pub latency: Percentiles,
    /// Fleet-wide spend, summed in shard order.
    pub total_cost_usd: f64,
    /// Completions across all shards.
    pub completed: usize,
    /// Requests still unfinished across all shards.
    pub unfinished: usize,
    /// The fleet-wide telemetry stream, merged `(time, shard, seq)` from
    /// the per-shard streams (which are drained into it — the per-shard
    /// [`RunReport::telemetry`] fields here are `None`). `Some` only when
    /// the run was built with [`SystemOptions::with_telemetry`].
    pub telemetry: Option<TelemetryStream>,
}

impl ScaleReport {
    /// Streams the byte-exact rendering of the whole sharded run: the
    /// epoch log, the merged summaries (float bits), and every shard's
    /// [`RunReport::canonical_into`] section in shard order.
    pub fn canonical_into(&self, out: &mut impl std::fmt::Write) {
        for (i, e) in self.epochs.iter().enumerate() {
            write!(
                out,
                "epoch {i} barrier_us={}",
                e.barrier.map(|t| t.as_micros() as i128).unwrap_or(-1)
            )
            .expect("write");
            write!(out, " events=").expect("write");
            for (j, n) in e.events.iter().enumerate() {
                write!(out, "{}{n}", if j > 0 { "," } else { "" }).expect("write");
            }
            write!(out, " completed=").expect("write");
            for (j, n) in e.completed.iter().enumerate() {
                write!(out, "{}{n}", if j > 0 { "," } else { "" }).expect("write");
            }
            writeln!(out).expect("write");
        }
        writeln!(
            out,
            "total_cost_bits={:016x}",
            self.total_cost_usd.to_bits()
        )
        .expect("write");
        writeln!(
            out,
            "latency count={} mean_bits={:016x} p50_bits={:016x} p99_bits={:016x} max_bits={:016x}",
            self.latency.count,
            self.latency.mean.to_bits(),
            self.latency.p50.to_bits(),
            self.latency.p99.to_bits(),
            self.latency.max.to_bits(),
        )
        .expect("write");
        writeln!(
            out,
            "completed={} unfinished={}",
            self.completed, self.unfinished
        )
        .expect("write");
        for (i, rep) in self.shards.iter().enumerate() {
            writeln!(out, "shard {i}").expect("write");
            rep.canonical_into(out);
        }
    }

    /// FNV-1a (64-bit) over [`canonical_into`](Self::canonical_into) —
    /// stable across platforms and builds, so 1-thread and N-thread runs
    /// can be compared without materializing the (potentially huge)
    /// canonical string.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.canonical_into(&mut h);
        h.finish()
    }

    /// FNV-1a digest of the merged telemetry stream's JSONL rendering,
    /// `None` when the run was built without telemetry. Like
    /// [`digest`](Self::digest), pinned equal across thread counts.
    pub fn stream_digest(&self) -> Option<u64> {
        self.telemetry.as_ref().map(TelemetryStream::digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{AvailabilityTrace, PoolSpec};
    use llmsim::ModelSpec;

    fn scenario(pools: usize, requests_per_pool: usize) -> Scenario {
        let rate = 1.2 * pools as f64;
        let mut spec = workload::WorkloadSpec::paper_stable(rate);
        spec.duration =
            simkit::SimDuration::from_secs_f64((requests_per_pool * pools) as f64 / rate);
        let requests = spec.generate(&mut simkit::SimRng::new(11).stream("arrivals"));
        Scenario::with_requests(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(4),
            requests,
            rate,
            11,
        )
        .with_pools(
            (0..pools)
                .map(|i| PoolSpec::new(format!("z{i}"), AvailabilityTrace::constant(4)))
                .collect(),
        )
    }

    #[test]
    fn single_shard_run_is_the_legacy_run_verbatim() {
        let sc = scenario(2, 40);
        let legacy = ServingSystem::new(SystemOptions::spotserve(), sc.clone()).run();
        let sharded = ShardedSystem::new(SystemOptions::spotserve(), sc, 1).run();
        assert_eq!(sharded.shards.len(), 1);
        assert_eq!(sharded.shards[0].canonical(), legacy.canonical());
    }

    #[test]
    fn digest_is_thread_count_invariant() {
        let mk = || ShardedSystem::new(SystemOptions::spotserve(), scenario(4, 30), 4);
        let one = mk().with_threads(1).run();
        let four = mk().with_threads(4).run();
        let many = mk().with_threads(16).run();
        assert_eq!(one.digest(), four.digest());
        assert_eq!(one.digest(), many.digest());
        let mut a = String::new();
        let mut b = String::new();
        one.canonical_into(&mut a);
        four.canonical_into(&mut b);
        assert_eq!(a, b, "canonical streams match byte for byte");
    }

    #[test]
    fn telemetry_stream_is_thread_count_invariant() {
        let mk = || {
            ShardedSystem::new(
                SystemOptions::spotserve().with_telemetry(),
                scenario(4, 30),
                4,
            )
        };
        let one = mk().with_threads(1).run();
        let eight = mk().with_threads(8).run();
        assert!(one.stream_digest().is_some());
        assert_eq!(one.stream_digest(), eight.stream_digest());
        assert_eq!(
            one.telemetry.as_ref().unwrap().to_jsonl(),
            eight.telemetry.as_ref().unwrap().to_jsonl(),
            "exported JSONL matches byte for byte across thread counts"
        );
        // Observation must not perturb the run: the canonical digest with
        // telemetry on equals the telemetry-off digest.
        let off = ShardedSystem::new(SystemOptions::spotserve(), scenario(4, 30), 4).run();
        assert_eq!(off.stream_digest(), None);
        assert_eq!(off.digest(), one.digest());
    }

    #[test]
    fn partition_conserves_requests_and_pools() {
        let sc = scenario(5, 20);
        let total = sc.requests.len();
        let parts = partition(sc, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.requests.len()).sum::<usize>(), total);
        assert_eq!(parts.iter().map(|p| p.pools.len()).sum::<usize>(), 5);
        assert_eq!(parts[0].pools.len(), 2, "extras go to the first shards");
        for p in &parts {
            assert!(
                p.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
                "round-robin keeps arrival order"
            );
        }
    }

    #[test]
    fn sharded_run_settles_every_request() {
        let sc = scenario(4, 25);
        let total = sc.requests.len();
        let rep = ShardedSystem::new(SystemOptions::spotserve(), sc, 4)
            .with_threads(2)
            .run();
        assert_eq!(rep.completed + rep.unfinished, total);
        assert_eq!(rep.latency.count, rep.completed);
        assert!(!rep.epochs.is_empty());
        let last = rep.epochs.last().unwrap();
        assert_eq!(last.completed.iter().sum::<usize>(), rep.completed);
        assert!(rep.total_cost_usd > 0.0);
    }
}
