//! Algorithm 1: the adaptive configuration optimizer.
//!
//! Given the currently available instance count `N_t` and the estimated
//! arrival rate `α_t`, pick the next parallel configuration `C_{t+1}`:
//!
//! * if some configuration can sustain `α_t` (`φ(C) ≥ α_t`) within the
//!   fleet ceiling, choose — among sustaining configurations — the one
//!   minimizing end-to-end request latency `l_req(C)`, breaking ties toward
//!   fewer instances (lower cost);
//! * otherwise maximize throughput within the instances at hand (`N_t`);
//! * report the instance delta so the instance manager can allocate
//!   (on-demand and spot together, §3.2) or release (on-demand first).

use cloudsim::GpuSpec;
use llmsim::{MemoryModel, ModelSpec};
use parallelism::{enumerate_configs, ConfigSpace, ParallelConfig, PerfModel};

use crate::config::EngineMode;

/// The optimizer's verdict for one invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerDecision {
    /// The configuration to materialize *now* (fits in `N_t` instances),
    /// or `None` when even the smallest feasible mesh does not fit.
    pub now: Option<ParallelConfig>,
    /// The configuration the fleet should grow toward (may need more
    /// instances than `N_t`); equals `now` when no growth is warranted.
    pub target: Option<ParallelConfig>,
    /// `#Instances(target) − N_t` (Algorithm 1, line 6).
    pub instance_delta: i64,
}

/// The paper's Algorithm 1, parameterized by model, memory model and
/// hardware.
///
/// # Example
///
/// ```
/// use spotserve::ConfigOptimizer;
///
/// let opt = ConfigOptimizer::paper_defaults(llmsim::ModelSpec::gpt_20b(), 16);
/// // Ten 4-GPU instances, 0.35 req/s: a sustaining config exists.
/// let d = opt.decide(10, 0.35);
/// let c = d.now.expect("feasible");
/// assert!(opt.perf().throughput(&c) >= 0.35);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigOptimizer {
    perf: PerfModel,
    mem: MemoryModel,
    gpu: GpuSpec,
    space: ConfigSpace,
    gpus_per_instance: u8,
    max_instances: u32,
    /// Which engine's `φ(C)`/`l_req(C)` estimator prices candidates: the
    /// paper's fixed-batch formulas, or the re-derived continuous-batching
    /// ones ([`PerfModel::request_latency_continuous`]). Defaults to
    /// [`EngineMode::FixedBatch`] so paper-exact figures stay bit-exact;
    /// the serving system passes its own engine mode in.
    engine: EngineMode,
}

impl ConfigOptimizer {
    /// Builds an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_instance` or `max_instances` is zero.
    pub fn new(
        perf: PerfModel,
        mem: MemoryModel,
        gpu: GpuSpec,
        space: ConfigSpace,
        gpus_per_instance: u8,
        max_instances: u32,
    ) -> Self {
        assert!(gpus_per_instance > 0 && max_instances > 0);
        ConfigOptimizer {
            perf,
            mem,
            gpu,
            space,
            gpus_per_instance,
            max_instances,
            engine: EngineMode::FixedBatch,
        }
    }

    /// Prices candidates with `engine`'s estimator — Algorithm 1 should
    /// model the engine that actually serves (the continuous engine has no
    /// batch-fill delay and turns slots over faster, which shifts its
    /// latency-minimizing choices toward larger batch capacities).
    pub fn with_engine_mode(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// The engine mode whose estimator prices candidates.
    pub fn engine_mode(&self) -> EngineMode {
        self.engine
    }

    /// `φ(C)` under the selected engine's estimator.
    pub fn estimated_throughput(&self, c: &ParallelConfig) -> f64 {
        match self.engine {
            EngineMode::FixedBatch => self.perf.throughput(c),
            EngineMode::ContinuousBatching => self.perf.throughput_continuous(c),
        }
    }

    /// `l_req(C, α)` under the selected engine's estimator.
    pub fn estimated_latency(&self, c: &ParallelConfig, alpha: f64) -> simkit::SimDuration {
        match self.engine {
            EngineMode::FixedBatch => self.perf.request_latency(c, alpha),
            EngineMode::ContinuousBatching => self.perf.request_latency_continuous(c, alpha),
        }
    }

    /// The paper's evaluation setup for `model` with a fleet ceiling.
    pub fn paper_defaults(model: ModelSpec, max_instances: u32) -> Self {
        ConfigOptimizer::new(
            PerfModel::paper_defaults(model),
            MemoryModel::default(),
            GpuSpec::t4(),
            ConfigSpace::default(),
            4,
            max_instances,
        )
    }

    /// The performance model in use.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// The memory model in use.
    pub fn memory(&self) -> &MemoryModel {
        &self.mem
    }

    /// GPUs per instance.
    pub fn gpus_per_instance(&self) -> u8 {
        self.gpus_per_instance
    }

    /// Enumerates feasible configurations for a fleet of `instances`.
    pub fn feasible(&self, instances: u32) -> Vec<ParallelConfig> {
        enumerate_configs(
            self.perf.model(),
            &self.mem,
            &self.gpu,
            &self.space,
            instances * self.gpus_per_instance as u32,
        )
    }

    /// Scores candidates: minimize `l_req(C, α)`, tie-break toward fewer
    /// instances, then canonical order for determinism.
    fn best_latency(
        &self,
        configs: impl IntoIterator<Item = ParallelConfig>,
        alpha: f64,
    ) -> Option<ParallelConfig> {
        configs
            .into_iter()
            .map(|c| {
                let l = self.estimated_latency(&c, alpha);
                (l, c.instances_needed(self.gpus_per_instance), c)
            })
            .min_by(|a, b| a.cmp(b))
            .map(|(_, _, c)| c)
    }

    /// Runs Algorithm 1 for `n_instances` available instances (including
    /// grace-period arrivals, excluding instances being reclaimed) and
    /// arrival-rate estimate `alpha`.
    pub fn decide(&self, n_instances: u32, alpha: f64) -> OptimizerDecision {
        self.decide_with_incumbent(n_instances, alpha, None)
    }

    /// Like [`ConfigOptimizer::decide`], but biased toward the `incumbent`
    /// configuration: switching has a real migration cost, so the incumbent
    /// is kept whenever it still sustains `alpha` and its estimated latency
    /// is within 15% of the best candidate's.
    pub fn decide_with_incumbent(
        &self,
        n_instances: u32,
        alpha: f64,
        incumbent: Option<ParallelConfig>,
    ) -> OptimizerDecision {
        let mut d = self.decide_fresh(n_instances, alpha);
        let Some(inc) = incumbent else { return d };
        if inc.instances_needed(self.gpus_per_instance) > n_instances {
            return d;
        }
        if !self.feasible(n_instances).contains(&inc) {
            return d;
        }
        let keepable = |best: ParallelConfig| {
            let inc_l = self.estimated_latency(&inc, alpha);
            let best_l = self.estimated_latency(&best, alpha);
            self.estimated_throughput(&inc) >= alpha
                && inc_l != simkit::SimDuration::MAX
                && inc_l.as_secs_f64() <= best_l.as_secs_f64() * 1.15
        };
        if let Some(best) = d.now {
            if best != inc && keepable(best) {
                d.now = Some(inc);
            }
        }
        if let Some(best) = d.target {
            if best != inc && keepable(best) {
                d.target = Some(inc);
                d.instance_delta =
                    inc.instances_needed(self.gpus_per_instance) as i64 - n_instances as i64;
            }
        }
        d
    }

    /// The §3.2 alternative objective: instead of minimizing latency, meet
    /// a pre-defined SLO (`l_req(C) ≤ slo`) with the *cheapest* fleet.
    /// Falls back to plain latency minimization when no configuration can
    /// meet the SLO.
    pub fn decide_slo(
        &self,
        n_instances: u32,
        alpha: f64,
        slo: simkit::SimDuration,
    ) -> OptimizerDecision {
        let ceiling = self.max_instances.max(n_instances);
        let meeting: Vec<ParallelConfig> = self
            .feasible(ceiling)
            .into_iter()
            .filter(|c| self.estimated_latency(c, alpha) <= slo)
            .collect();
        if meeting.is_empty() {
            return self.decide(n_instances, alpha);
        }
        let target = meeting
            .iter()
            .copied()
            .map(|c| {
                // Cheapest first, then lowest latency, then canonical.
                (
                    c.instances_needed(self.gpus_per_instance),
                    self.estimated_latency(&c, alpha),
                    c,
                )
            })
            .min()
            .map(|(_, _, c)| c);
        let now = target
            .filter(|t| t.instances_needed(self.gpus_per_instance) <= n_instances)
            .or_else(|| {
                meeting
                    .into_iter()
                    .filter(|c| c.instances_needed(self.gpus_per_instance) <= n_instances)
                    .map(|c| {
                        (
                            c.instances_needed(self.gpus_per_instance),
                            self.estimated_latency(&c, alpha),
                            c,
                        )
                    })
                    .min()
                    .map(|(_, _, c)| c)
            })
            .or(self.decide(n_instances, alpha).now);
        let needed = target
            .map(|t| t.instances_needed(self.gpus_per_instance))
            .unwrap_or(0);
        OptimizerDecision {
            now,
            target,
            instance_delta: needed as i64 - n_instances as i64,
        }
    }

    fn decide_fresh(&self, n_instances: u32, alpha: f64) -> OptimizerDecision {
        // Line 2: does any configuration within the ceiling sustain α?
        let ceiling = self.max_instances.max(n_instances);
        let all = self.feasible(ceiling);
        let sustaining: Vec<ParallelConfig> = all
            .iter()
            .copied()
            .filter(|c| self.estimated_throughput(c) >= alpha)
            .collect();

        let target = if !sustaining.is_empty() {
            // Line 3: minimize l_req among sustaining configs.
            self.best_latency(sustaining, alpha)
        } else {
            // Line 5: maximize throughput within the current fleet.
            self.feasible(n_instances)
                .into_iter()
                .map(|c| (self.estimated_throughput(&c), std::cmp::Reverse(c)))
                .max_by(|a, b| a.partial_cmp(b).expect("throughput is finite"))
                .map(|(_, std::cmp::Reverse(c))| c)
        };

        // What can actually run right now, consistent with the target's
        // shape preference.
        let now_candidates = self.feasible(n_instances);
        let now = match target {
            Some(t) if t.instances_needed(self.gpus_per_instance) <= n_instances => Some(t),
            _ => {
                let sustaining_now: Vec<ParallelConfig> = now_candidates
                    .iter()
                    .copied()
                    .filter(|c| self.estimated_throughput(c) >= alpha)
                    .collect();
                if sustaining_now.is_empty() {
                    // Max throughput with what we have.
                    now_candidates
                        .into_iter()
                        .map(|c| (self.estimated_throughput(&c), std::cmp::Reverse(c)))
                        .max_by(|a, b| a.partial_cmp(b).expect("finite"))
                        .map(|(_, std::cmp::Reverse(c))| c)
                } else {
                    self.best_latency(sustaining_now, alpha)
                }
            }
        };

        let needed = target
            .map(|t| t.instances_needed(self.gpus_per_instance))
            .unwrap_or(0);
        OptimizerDecision {
            now,
            target,
            instance_delta: needed as i64 - n_instances as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(model: ModelSpec) -> ConfigOptimizer {
        ConfigOptimizer::paper_defaults(model, 16)
    }

    #[test]
    fn sustaining_config_minimizes_latency() {
        let o = opt(ModelSpec::gpt_20b());
        let d = o.decide(10, 0.35);
        let c = d.now.expect("feasible at 10 instances");
        assert!(o.perf().throughput(&c) >= 0.35);
        // Exhaustive check: no sustaining config within 10 instances has
        // strictly lower l_req.
        let l = o.perf().request_latency(&c, 0.35);
        for other in o.feasible(10) {
            if o.perf().throughput(&other) >= 0.35 {
                assert!(
                    o.perf().request_latency(&other, 0.35) >= l,
                    "{other} beats {c}"
                );
            }
        }
    }

    #[test]
    fn overload_maximizes_throughput() {
        let o = opt(ModelSpec::gpt_20b());
        // 3 instances = 12 GPUs: nothing sustains 0.35 req/s.
        let d = o.decide(3, 0.35);
        let c = d.now.expect("12 GPUs fit GPT-20B");
        let phi = o.perf().throughput(&c);
        for other in o.feasible(3) {
            assert!(o.perf().throughput(&other) <= phi + 1e-12, "{other}");
        }
        // The optimizer wants more instances.
        assert!(d.instance_delta > 0, "delta {}", d.instance_delta);
    }

    #[test]
    fn too_few_instances_yields_none() {
        let o = opt(ModelSpec::llama_30b());
        // LLaMA-30B needs 16 GPUs = 4 instances (Table 1).
        let d = o.decide(3, 0.2);
        assert_eq!(d.now, None);
        assert!(d.target.is_some(), "growth target exists");
        assert!(d.instance_delta > 0);
    }

    #[test]
    fn overprovision_suggests_release() {
        let o = opt(ModelSpec::opt_6_7b());
        // Tiny load: one pipeline suffices; with 12 instances the optimizer
        // should want fewer.
        let d = o.decide(12, 0.05);
        assert!(d.instance_delta < 0, "delta {}", d.instance_delta);
        let c = d.now.unwrap();
        assert!(o.perf().throughput(&c) >= 0.05);
    }

    #[test]
    fn gpt20b_paper_scenario_prefers_2_2_8_at_8_instances() {
        // §6.2: with ≥8 instances, (D=2,P=2,M=8) is the minimum-latency
        // sustaining configuration for 0.35 req/s.
        let o = opt(ModelSpec::gpt_20b());
        let d = o.decide(8, 0.35);
        let c = d.now.unwrap();
        assert_eq!(c.mesh_key(), (2, 2, 8), "picked {c}");
    }

    #[test]
    fn gpt20b_after_preemption_avoids_overload() {
        // §6.2: at 7 instances, Rerouting's fixed (1,2,8) overloads, while
        // the optimizer finds a sustaining alternative, e.g. (2,3,4).
        let o = opt(ModelSpec::gpt_20b());
        let d = o.decide(7, 0.35);
        let c = d.now.unwrap();
        assert!(
            o.perf().throughput(&c) >= 0.35,
            "{c} must sustain 0.35 req/s"
        );
        assert!(c.total_gpus() <= 28);
    }

    #[test]
    fn decisions_are_deterministic() {
        let o = opt(ModelSpec::gpt_20b());
        assert_eq!(o.decide(9, 0.4), o.decide(9, 0.4));
    }

    #[test]
    fn slo_objective_picks_cheapest_meeting_config() {
        let o = opt(ModelSpec::gpt_20b());
        // A loose SLO: many configs qualify, so the cheapest fleet wins.
        let loose = simkit::SimDuration::from_secs(120);
        let d = o.decide_slo(10, 0.35, loose);
        let c = d.now.expect("feasible");
        assert!(o.perf().request_latency(&c, 0.35) <= loose);
        // No cheaper configuration also meets the SLO.
        let needed = c.instances_needed(4);
        for other in o.feasible(10) {
            if o.perf().request_latency(&other, 0.35) <= loose {
                assert!(other.instances_needed(4) >= needed, "{other} is cheaper");
            }
        }
    }

    #[test]
    fn impossible_slo_falls_back_to_latency_minimization() {
        let o = opt(ModelSpec::gpt_20b());
        let impossible = simkit::SimDuration::from_secs(1);
        let d = o.decide_slo(10, 0.35, impossible);
        assert_eq!(d.now, o.decide(10, 0.35).now);
    }

    #[test]
    fn zero_rate_picks_cheapest_feasible() {
        let o = opt(ModelSpec::gpt_20b());
        let d = o.decide(10, 0.0);
        let c = d.now.unwrap();
        // Everything sustains α=0; latency minimization should not pick
        // more GPUs than help latency, and the tie-break favours fewer
        // instances.
        assert!(c.total_gpus() <= 40);
    }
}
