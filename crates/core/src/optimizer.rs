//! Algorithm 1: the adaptive configuration optimizer.
//!
//! Given the currently available instance count `N_t` and the estimated
//! arrival rate `α_t`, pick the next parallel configuration `C_{t+1}`:
//!
//! * if some configuration can sustain `α_t` (`φ(C) ≥ α_t`) within the
//!   fleet ceiling, choose — among sustaining configurations — the one
//!   minimizing end-to-end request latency `l_req(C)`, breaking ties toward
//!   fewer instances (lower cost);
//! * otherwise maximize throughput within the instances at hand (`N_t`);
//! * report the instance delta so the instance manager can allocate
//!   (on-demand and spot together, §3.2) or release (on-demand first).
//!
//! # Hot-path architecture
//!
//! The paper's bound is "re-decide within 1 second" (§3.2) — and with
//! multi-pool markets every grant/preemption in every pool hits this code.
//! The decision paths therefore run over a memoized
//! [`CandidateFrontier`]: the space is enumerated and priced **once** per
//! fleet ceiling, `feasible_at(n)` is a range lookup, Pareto-dominated
//! candidates are skipped, and a small per-`(N, α)` decision memo answers
//! repeated queries outright. Decisions are **bit-identical** with the
//! fresh-enumeration reference implementations
//! ([`ConfigOptimizer::decide_reference`] and friends), which are kept —
//! unchanged from the pre-frontier code — as the contract the equivalence
//! property test and the §6.2 pinned tests hold both paths to.

use std::cell::{Cell, Ref, RefCell};

use cloudsim::{GpuSpec, InstanceType};
use llmsim::{CostModel, MemoryModel, ModelSpec};
use parallelism::{
    enumerate_configs, CandidateFrontier, ConfigSpace, ParallelConfig, PerfModel, PricingMode,
};
use simkit::SimDuration;

use crate::config::EngineMode;

/// The optimizer's verdict for one invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerDecision {
    /// The configuration to materialize *now* (fits in `N_t` instances),
    /// or `None` when even the smallest feasible mesh does not fit.
    pub now: Option<ParallelConfig>,
    /// The configuration the fleet should grow toward (may need more
    /// instances than `N_t`); equals `now` when no growth is warranted.
    pub target: Option<ParallelConfig>,
    /// `#Instances(target) − N_t` (Algorithm 1, line 6).
    pub instance_delta: i64,
}

/// One memoized decision: the query key and its verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MemoKey {
    /// `decide(n, α)` (α keyed by its IEEE-754 bits: the memo must never
    /// conflate rates that price differently; keys carry the engine mode
    /// that priced them, so flipping modes invalidates per-entry instead of
    /// discarding the other mode's warm entries).
    Fresh {
        engine: EngineMode,
        n: u32,
        alpha_bits: u64,
    },
    /// `decide_slo(n, α, slo)`.
    Slo {
        engine: EngineMode,
        n: u32,
        alpha_bits: u64,
        slo: SimDuration,
    },
}

/// A small decision memo: repeated queries at the same `(N, α)` — the
/// common case under event churn, where every pool transition re-asks the
/// same question within one rate-tick window — return without touching the
/// frontier. Bounded and cleared wholesale on overflow; entries are keyed
/// by engine mode, so an engine-mode flip never evicts anything.
#[derive(Debug, Clone, Default)]
struct DecisionMemo {
    entries: Vec<(MemoKey, OptimizerDecision)>,
}

/// Entries kept before the memo is cleared wholesale (decisions are pure,
/// so eviction is only a space/speed trade-off, never a correctness one).
const MEMO_CAP: usize = 64;

impl DecisionMemo {
    fn get(&self, key: MemoKey) -> Option<OptimizerDecision> {
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, d)| *d)
    }

    fn insert(&mut self, key: MemoKey, d: OptimizerDecision) {
        if self.entries.len() >= MEMO_CAP {
            self.entries.clear();
        }
        self.entries.push((key, d));
    }
}

/// The joint verdict over a heterogeneous fleet: which SKU lane serves,
/// and what configuration on it.
///
/// `now` and `target` may name *different* lanes — e.g. keep serving on
/// the surviving L4 pool while growing toward an H100 mesh — which is
/// exactly the cross-SKU migration the device mapper prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiSkuDecision {
    /// `(lane index, config)` to materialize now, or `None` when nothing
    /// fits any lane's current availability.
    pub now: Option<(usize, ParallelConfig)>,
    /// `(lane index, config)` the fleet should grow toward.
    pub target: Option<(usize, ParallelConfig)>,
    /// `#Instances(target) − avail[target lane]` — the delta on the
    /// *target lane's* pool(s); other lanes' instances are releasable.
    pub instance_delta: i64,
}

/// Upper bound on registered SKU lanes: the memo keys availability as a
/// fixed `[u32; MAX_SKU_LANES]` so it stays `Copy`.
pub const MAX_SKU_LANES: usize = 8;

/// Memo key for [`ConfigOptimizer::decide_multi`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct MultiKey {
    engine: EngineMode,
    avail: [u32; MAX_SKU_LANES],
    alpha_bits: u64,
}

/// One instance type's decision lane: its own performance model (the
/// per-model calibration scale on that SKU's hardware terms) and its own
/// memoized frontier. Registered lanes are *additive* — the single-SKU
/// decision paths never consult them.
#[derive(Debug, Clone)]
struct SkuLane {
    ty: InstanceType,
    perf: PerfModel,
    frontier: RefCell<Option<CandidateFrontier>>,
}

/// The paper's Algorithm 1, parameterized by model, memory model and
/// hardware.
///
/// # Example
///
/// ```
/// use spotserve::ConfigOptimizer;
///
/// let opt = ConfigOptimizer::paper_defaults(llmsim::ModelSpec::gpt_20b(), 16);
/// // Ten 4-GPU instances, 0.35 req/s: a sustaining config exists.
/// let d = opt.decide(10, 0.35);
/// let c = d.now.expect("feasible");
/// assert!(opt.perf().throughput(&c) >= 0.35);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigOptimizer {
    perf: PerfModel,
    mem: MemoryModel,
    gpu: GpuSpec,
    space: ConfigSpace,
    gpus_per_instance: u8,
    max_instances: u32,
    /// Which engine's `φ(C)`/`l_req(C)` estimator prices candidates: the
    /// paper's fixed-batch formulas, or the re-derived continuous-batching
    /// ones ([`PerfModel::request_latency_continuous`]). Defaults to
    /// [`EngineMode::FixedBatch`] so paper-exact figures stay bit-exact;
    /// the serving system passes its own engine mode in.
    engine: EngineMode,
    /// The memoized candidate frontier, built lazily at the fleet ceiling
    /// (and grown if a query ever exceeds it).
    frontier: RefCell<Option<CandidateFrontier>>,
    /// Per-`(N, α)` decision memo over the frontier.
    memo: RefCell<DecisionMemo>,
    /// Registered SKU lanes for heterogeneous fleets (empty in single-SKU
    /// operation, where no decision path reads them).
    lanes: Vec<SkuLane>,
    /// Per-`(avail, α)` memo for [`ConfigOptimizer::decide_multi`].
    multi_memo: RefCell<Vec<(MultiKey, MultiSkuDecision)>>,
    /// Lifetime count of decisions answered from a memo (any of the three
    /// memos). Telemetry instrumentation: callers difference it around a
    /// `decide*` call to tag the decision memo-hit or miss.
    memo_hits: Cell<u64>,
}

impl ConfigOptimizer {
    /// Builds an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_instance` or `max_instances` is zero.
    pub fn new(
        perf: PerfModel,
        mem: MemoryModel,
        gpu: GpuSpec,
        space: ConfigSpace,
        gpus_per_instance: u8,
        max_instances: u32,
    ) -> Self {
        assert!(gpus_per_instance > 0 && max_instances > 0);
        ConfigOptimizer {
            perf,
            mem,
            gpu,
            space,
            gpus_per_instance,
            max_instances,
            engine: EngineMode::FixedBatch,
            frontier: RefCell::new(None),
            memo: RefCell::new(DecisionMemo::default()),
            lanes: Vec::new(),
            multi_memo: RefCell::new(Vec::new()),
            memo_hits: Cell::new(0),
        }
    }

    /// Prices candidates with `engine`'s estimator — Algorithm 1 should
    /// model the engine that actually serves (the continuous engine has no
    /// batch-fill delay and turns slots over faster, which shifts its
    /// latency-minimizing choices toward larger batch capacities).
    /// Memo entries are keyed by engine mode, so flipping modes leaves the
    /// other mode's warm entries intact (the frontier carries both engines'
    /// pricing tables and survives too).
    pub fn with_engine_mode(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Registers a SKU lane for heterogeneous decisions: `ty`'s hardware
    /// terms under this optimizer's model-structure calibration scale and
    /// sequence shape. Lane indices are assignment order — the caller's
    /// pool→SKU mapping must use the same order. Single-SKU decision paths
    /// (`decide*`) never read lanes, so registering them cannot perturb a
    /// homogeneous replay.
    ///
    /// # Panics
    ///
    /// Panics past [`MAX_SKU_LANES`] registered lanes.
    pub fn with_sku(mut self, ty: InstanceType) -> Self {
        assert!(self.lanes.len() < MAX_SKU_LANES, "too many SKU lanes");
        let model = self.perf.model().clone();
        let scale = llmsim::calibration::calibration_scale(&model);
        let (s_in, s_out) = self.perf.sequence_shape();
        let cost = CostModel::for_instance_type(&ty).with_scale(scale);
        let perf = PerfModel::new(model, cost, s_in, s_out);
        self.lanes.push(SkuLane {
            ty,
            perf,
            frontier: RefCell::new(None),
        });
        self.multi_memo.get_mut().clear();
        self
    }

    /// Number of live single-SKU memo entries (test instrumentation for
    /// the per-entry invalidation guarantee).
    #[cfg(test)]
    fn memo_len(&self) -> usize {
        self.memo.borrow().entries.len()
    }

    /// Lifetime count of `decide*` queries answered from a memo instead of
    /// a frontier scan. Monotone; difference around a call to learn whether
    /// that call hit.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.get()
    }

    /// Number of registered SKU lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The instance type behind lane `i`.
    pub fn lane_type(&self, i: usize) -> &InstanceType {
        &self.lanes[i].ty
    }

    /// Lane `i`'s performance model (that SKU's hardware under the shared
    /// calibration scale).
    pub fn lane_perf(&self, i: usize) -> &PerfModel {
        &self.lanes[i].perf
    }

    /// `φ(C)` on lane `i` under the selected engine's estimator.
    pub fn lane_throughput(&self, i: usize, c: &ParallelConfig) -> f64 {
        let perf = &self.lanes[i].perf;
        match self.engine {
            EngineMode::FixedBatch => perf.throughput(c),
            EngineMode::ContinuousBatching => perf.throughput_continuous(c),
        }
    }

    /// `l_req(C, α)` on lane `i` under the selected engine's estimator.
    pub fn lane_latency(&self, i: usize, c: &ParallelConfig, alpha: f64) -> SimDuration {
        let perf = &self.lanes[i].perf;
        match self.engine {
            EngineMode::FixedBatch => perf.request_latency(c, alpha),
            EngineMode::ContinuousBatching => perf.request_latency_continuous(c, alpha),
        }
    }

    /// The engine mode whose estimator prices candidates.
    pub fn engine_mode(&self) -> EngineMode {
        self.engine
    }

    fn pricing_mode(&self) -> PricingMode {
        match self.engine {
            EngineMode::FixedBatch => PricingMode::FixedBatch,
            EngineMode::ContinuousBatching => PricingMode::ContinuousBatching,
        }
    }

    /// `φ(C)` under the selected engine's estimator (served from the
    /// frontier's cache when `c` is a priced candidate).
    pub fn estimated_throughput(&self, c: &ParallelConfig) -> f64 {
        if let Some(phi) = self
            .frontier
            .borrow()
            .as_ref()
            .and_then(|f| f.lookup(c))
            .map(|cand| cand.throughput(self.pricing_mode()))
        {
            return phi;
        }
        match self.engine {
            EngineMode::FixedBatch => self.perf.throughput(c),
            EngineMode::ContinuousBatching => self.perf.throughput_continuous(c),
        }
    }

    /// `l_req(C, α)` under the selected engine's estimator (served from
    /// the frontier's cached components when `c` is a priced candidate).
    pub fn estimated_latency(&self, c: &ParallelConfig, alpha: f64) -> simkit::SimDuration {
        if let Some(l) = self
            .frontier
            .borrow()
            .as_ref()
            .and_then(|f| f.lookup(c))
            .map(|cand| cand.latency(&self.perf, self.pricing_mode(), alpha))
        {
            return l;
        }
        match self.engine {
            EngineMode::FixedBatch => self.perf.request_latency(c, alpha),
            EngineMode::ContinuousBatching => self.perf.request_latency_continuous(c, alpha),
        }
    }

    /// The paper's evaluation setup for `model` with a fleet ceiling.
    pub fn paper_defaults(model: ModelSpec, max_instances: u32) -> Self {
        ConfigOptimizer::new(
            PerfModel::paper_defaults(model),
            MemoryModel::default(),
            GpuSpec::t4(),
            ConfigSpace::default(),
            4,
            max_instances,
        )
    }

    /// The performance model in use.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// The memory model in use.
    pub fn memory(&self) -> &MemoryModel {
        &self.mem
    }

    /// GPUs per instance.
    pub fn gpus_per_instance(&self) -> u8 {
        self.gpus_per_instance
    }

    /// Enumerates feasible configurations for a fleet of `instances` —
    /// the reference enumeration (fresh, canonical order), which the
    /// frontier's range lookups are held bit-equal to.
    pub fn feasible(&self, instances: u32) -> Vec<ParallelConfig> {
        enumerate_configs(
            self.perf.model(),
            &self.mem,
            &self.gpu,
            &self.space,
            instances * self.gpus_per_instance as u32,
        )
    }

    // ---- The memoized frontier --------------------------------------

    /// Ensures the frontier exists and covers `ceiling` instances. Must
    /// not be called while a [`ConfigOptimizer::frontier_ref`] borrow is
    /// live.
    fn ensure_frontier(&self, ceiling: u32) {
        let sufficient = self
            .frontier
            .borrow()
            .as_ref()
            .is_some_and(|f| f.ceiling() >= ceiling);
        if sufficient {
            return;
        }
        let built = CandidateFrontier::new(
            &self.perf,
            &self.mem,
            &self.gpu,
            &self.space,
            self.gpus_per_instance,
            ceiling.max(self.max_instances),
        );
        *self.frontier.borrow_mut() = Some(built);
    }

    /// The live frontier (must be [`ensure`](Self::ensure_frontier)d
    /// first).
    fn frontier_ref(&self) -> Ref<'_, CandidateFrontier> {
        Ref::map(self.frontier.borrow(), |o| {
            o.as_ref().expect("frontier ensured by caller")
        })
    }

    /// Runs Algorithm 1 for `n_instances` available instances (including
    /// grace-period arrivals, excluding instances being reclaimed) and
    /// arrival-rate estimate `alpha`.
    pub fn decide(&self, n_instances: u32, alpha: f64) -> OptimizerDecision {
        self.decide_with_incumbent(n_instances, alpha, None)
    }

    /// Like [`ConfigOptimizer::decide`], but biased toward the `incumbent`
    /// configuration: switching has a real migration cost, so the incumbent
    /// is kept whenever it still sustains `alpha` and its estimated latency
    /// is within 15% of the best candidate's.
    pub fn decide_with_incumbent(
        &self,
        n_instances: u32,
        alpha: f64,
        incumbent: Option<ParallelConfig>,
    ) -> OptimizerDecision {
        let mut d = self.decide_fresh(n_instances, alpha);
        let Some(inc) = incumbent else { return d };
        if inc.instances_needed(self.gpus_per_instance) > n_instances {
            return d;
        }
        // Direct membership test: the incumbent is feasible iff it is in
        // the enumerated space and fits the fleet — a binary search over
        // the frontier, not an O(|space|) re-enumeration. (A memo hit in
        // `decide_fresh` returns before touching the frontier, so ensure
        // it here.)
        self.ensure_frontier(self.max_instances.max(n_instances));
        {
            let fr = self.frontier_ref();
            if !fr.contains(&inc, n_instances) {
                return d;
            }
        }
        let keepable = |best: ParallelConfig| {
            let inc_l = self.estimated_latency(&inc, alpha);
            let best_l = self.estimated_latency(&best, alpha);
            self.estimated_throughput(&inc) >= alpha
                && inc_l != simkit::SimDuration::MAX
                && inc_l.as_secs_f64() <= best_l.as_secs_f64() * 1.15
        };
        if let Some(best) = d.now {
            if best != inc && keepable(best) {
                d.now = Some(inc);
            }
        }
        if let Some(best) = d.target {
            if best != inc && keepable(best) {
                d.target = Some(inc);
                d.instance_delta =
                    inc.instances_needed(self.gpus_per_instance) as i64 - n_instances as i64;
            }
        }
        d
    }

    /// The §3.2 alternative objective: instead of minimizing latency, meet
    /// a pre-defined SLO (`l_req(C) ≤ slo`) with the *cheapest* fleet.
    /// Falls back to plain latency minimization when no configuration can
    /// meet the SLO.
    pub fn decide_slo(
        &self,
        n_instances: u32,
        alpha: f64,
        slo: simkit::SimDuration,
    ) -> OptimizerDecision {
        let key = MemoKey::Slo {
            engine: self.engine,
            n: n_instances,
            alpha_bits: alpha.to_bits(),
            slo,
        };
        if let Some(d) = self.memo.borrow().get(key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return d;
        }
        let ceiling = self.max_instances.max(n_instances);
        self.ensure_frontier(ceiling);
        let mode = self.pricing_mode();
        // Cheapest-meeting selection key: (instances, l_req, canonical).
        let mut target_key: Option<(u32, SimDuration, ParallelConfig)> = None;
        let mut now_key: Option<(u32, SimDuration, ParallelConfig)> = None;
        {
            let fr = self.frontier_ref();
            for cand in fr.pruned_at(ceiling, mode) {
                let l = cand.latency(&self.perf, mode, alpha);
                if l > slo {
                    continue;
                }
                let key = (cand.instances, l, cand.config);
                if target_key.is_none_or(|best| key < best) {
                    target_key = Some(key);
                }
                if cand.instances <= n_instances && now_key.is_none_or(|best| key < best) {
                    now_key = Some(key);
                }
            }
        }
        let Some((needed, _, target)) = target_key else {
            // Nothing meets the SLO anywhere: plain latency minimization —
            // memoized under the SLO key too, so a standing unmeetable SLO
            // does not re-scan the ceiling range on every event.
            let d = self.decide(n_instances, alpha);
            self.memo.borrow_mut().insert(key, d);
            return d;
        };
        let now = if needed <= n_instances {
            Some(target)
        } else {
            now_key
                .map(|(_, _, c)| c)
                .or_else(|| self.decide(n_instances, alpha).now)
        };
        let d = OptimizerDecision {
            now,
            target: Some(target),
            instance_delta: needed as i64 - n_instances as i64,
        };
        self.memo.borrow_mut().insert(key, d);
        d
    }

    // ---- Heterogeneous fleets: the joint (SKU, C, B) decision --------

    /// Ensures lane `i`'s frontier exists and covers `ceiling` instances.
    fn ensure_lane_frontier(&self, i: usize, ceiling: u32) {
        let lane = &self.lanes[i];
        let sufficient = lane
            .frontier
            .borrow()
            .as_ref()
            .is_some_and(|f| f.ceiling() >= ceiling);
        if sufficient {
            return;
        }
        let built = CandidateFrontier::new(
            &lane.perf,
            &self.mem,
            &lane.ty.gpu,
            &self.space,
            lane.ty.gpus_per_instance,
            ceiling.max(self.max_instances),
        );
        *lane.frontier.borrow_mut() = Some(built);
    }

    /// Lane `i`'s live frontier (must be ensured first).
    fn lane_frontier_ref(&self, i: usize) -> Ref<'_, CandidateFrontier> {
        Ref::map(self.lanes[i].frontier.borrow(), |o| {
            o.as_ref().expect("lane frontier ensured by caller")
        })
    }

    /// Joint maximum-throughput candidate across lanes within each lane's
    /// current availability: maximize `φ`, break ties toward the lower
    /// lane index, then canonical config order.
    fn max_throughput_multi(
        &self,
        avail: &[u32],
        mode: PricingMode,
    ) -> Option<(usize, ParallelConfig)> {
        let mut best: Option<(f64, std::cmp::Reverse<(usize, ParallelConfig)>)> = None;
        for (i, &lane_avail) in avail.iter().enumerate().take(self.lanes.len()) {
            if lane_avail == 0 {
                continue;
            }
            self.ensure_lane_frontier(i, self.max_instances.max(lane_avail));
            let fr = self.lane_frontier_ref(i);
            for cand in fr.pruned_at(lane_avail, mode) {
                let key = (cand.throughput(mode), std::cmp::Reverse((i, cand.config)));
                let better = match &best {
                    None => true,
                    Some(b) => {
                        key.partial_cmp(b).expect("throughput is finite")
                            == std::cmp::Ordering::Greater
                    }
                };
                if better {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, std::cmp::Reverse((i, c)))| (i, c))
    }

    /// Algorithm 1 over a heterogeneous fleet: given per-lane instance
    /// availability `avail[i]` (same order as [`ConfigOptimizer::with_sku`]
    /// registration), pick the best `(SKU, C, B)` jointly.
    ///
    /// The structure mirrors [`ConfigOptimizer::decide`] exactly, with the
    /// lane index inserted into each tie-break:
    ///
    /// * if any lane has a sustaining configuration within its ceiling,
    ///   minimize `(l_req, instances, lane, config)` across *all* lanes —
    ///   a lane with zero availability today is still a valid growth
    ///   target (that is the cross-SKU recovery path);
    /// * otherwise maximize throughput over what is available right now,
    ///   ties toward the lower lane index then canonical order.
    ///
    /// `now` is what can materialize immediately and may sit on a
    /// *different* lane than `target` — the serving mesh stays single-SKU,
    /// and the device mapper prices the cross-SKU migration.
    ///
    /// # Panics
    ///
    /// Panics when no lanes are registered or `avail.len()` differs from
    /// the lane count.
    pub fn decide_multi(&self, avail: &[u32], alpha: f64) -> MultiSkuDecision {
        assert!(!self.lanes.is_empty(), "no SKU lanes registered");
        assert_eq!(avail.len(), self.lanes.len(), "one entry per lane");
        let mut key = MultiKey {
            engine: self.engine,
            avail: [0; MAX_SKU_LANES],
            alpha_bits: alpha.to_bits(),
        };
        key.avail[..avail.len()].copy_from_slice(avail);
        if let Some(d) = self
            .multi_memo
            .borrow()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, d)| *d)
        {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return d;
        }
        let mode = self.pricing_mode();
        // Joint line 3: minimum-(l_req, instances, lane, config) sustaining
        // candidate, at each lane's ceiling (target) and within each
        // lane's availability (now).
        let mut target: Option<(SimDuration, u32, usize, ParallelConfig)> = None;
        let mut now_sustaining: Option<(SimDuration, u32, usize, ParallelConfig)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            let ceiling = self.max_instances.max(avail[i]);
            self.ensure_lane_frontier(i, ceiling);
            let fr = self.lane_frontier_ref(i);
            for cand in fr.pruned_at(ceiling, mode) {
                if cand.throughput(mode) < alpha {
                    continue;
                }
                let k = (
                    cand.latency(&lane.perf, mode, alpha),
                    cand.instances,
                    i,
                    cand.config,
                );
                if target.is_none_or(|b| k < b) {
                    target = Some(k);
                }
                if cand.instances <= avail[i] && now_sustaining.is_none_or(|b| k < b) {
                    now_sustaining = Some(k);
                }
            }
        }
        let d = match target {
            Some((_, needed, lane, config)) => {
                let now = if needed <= avail[lane] {
                    Some((lane, config))
                } else {
                    now_sustaining
                        .map(|(_, _, i, c)| (i, c))
                        .or_else(|| self.max_throughput_multi(avail, mode))
                };
                MultiSkuDecision {
                    now,
                    target: Some((lane, config)),
                    instance_delta: needed as i64 - avail[lane] as i64,
                }
            }
            None => {
                // Joint line 5: nothing sustains anywhere — maximize
                // throughput with the instances at hand.
                let best = self.max_throughput_multi(avail, mode);
                let delta = best
                    .map(|(i, c)| {
                        let gpi = self.lanes[i].ty.gpus_per_instance;
                        c.instances_needed(gpi) as i64 - avail[i] as i64
                    })
                    .unwrap_or(0);
                MultiSkuDecision {
                    now: best,
                    target: best,
                    instance_delta: delta,
                }
            }
        };
        let mut memo = self.multi_memo.borrow_mut();
        if memo.len() >= MEMO_CAP {
            memo.clear();
        }
        memo.push((key, d));
        d
    }

    /// Algorithm 1's core decision over the frontier, behind the memo.
    fn decide_fresh(&self, n_instances: u32, alpha: f64) -> OptimizerDecision {
        let key = MemoKey::Fresh {
            engine: self.engine,
            n: n_instances,
            alpha_bits: alpha.to_bits(),
        };
        if let Some(d) = self.memo.borrow().get(key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return d;
        }
        // Line 2: does any configuration within the ceiling sustain α?
        let ceiling = self.max_instances.max(n_instances);
        self.ensure_frontier(ceiling);
        let mode = self.pricing_mode();
        let fr = self.frontier_ref();

        // Line 3: minimize l_req among sustaining configs at the ceiling
        // — one pruned-range scan, no allocation.
        let target = min_latency_sustaining(&fr, ceiling, mode, &self.perf, alpha)
            // Line 5: maximize throughput within the current fleet.
            .or_else(|| max_throughput(&fr, n_instances, mode));

        // What can actually run right now, consistent with the target's
        // shape preference.
        let now = match target {
            Some(t) if t.instances_needed(self.gpus_per_instance) <= n_instances => Some(t),
            _ => min_latency_sustaining(&fr, n_instances, mode, &self.perf, alpha)
                .or_else(|| max_throughput(&fr, n_instances, mode)),
        };

        let needed = target
            .map(|t| t.instances_needed(self.gpus_per_instance))
            .unwrap_or(0);
        let d = OptimizerDecision {
            now,
            target,
            instance_delta: needed as i64 - n_instances as i64,
        };
        drop(fr);
        self.memo.borrow_mut().insert(key, d);
        d
    }

    // ---- Reference implementations ----------------------------------
    //
    // The pre-frontier decision paths, kept verbatim: they re-enumerate
    // the space on every call and price every candidate from the cost
    // model. The frontier-backed paths above are pinned bit-identical to
    // these by the equivalence property test (and by the §6.2 pinned
    // tests, which predate the frontier). They also serve as the
    // before/after baseline for the `control_plane` bench.

    /// Scores candidates: minimize `l_req(C, α)`, tie-break toward fewer
    /// instances, then canonical order for determinism.
    fn best_latency(
        &self,
        configs: impl IntoIterator<Item = ParallelConfig>,
        alpha: f64,
    ) -> Option<ParallelConfig> {
        configs
            .into_iter()
            .map(|c| {
                let l = self.estimated_latency_uncached(&c, alpha);
                (l, c.instances_needed(self.gpus_per_instance), c)
            })
            .min_by(|a, b| a.cmp(b))
            .map(|(_, _, c)| c)
    }

    /// `φ(C)` straight from the cost model (never the frontier cache).
    fn estimated_throughput_uncached(&self, c: &ParallelConfig) -> f64 {
        match self.engine {
            EngineMode::FixedBatch => self.perf.throughput(c),
            EngineMode::ContinuousBatching => self.perf.throughput_continuous(c),
        }
    }

    /// `l_req(C, α)` straight from the cost model (never the frontier
    /// cache).
    fn estimated_latency_uncached(&self, c: &ParallelConfig, alpha: f64) -> SimDuration {
        match self.engine {
            EngineMode::FixedBatch => self.perf.request_latency(c, alpha),
            EngineMode::ContinuousBatching => self.perf.request_latency_continuous(c, alpha),
        }
    }

    /// The pre-frontier [`ConfigOptimizer::decide`]: fresh enumeration and
    /// pricing on every call. Reference implementation — see above.
    pub fn decide_reference(&self, n_instances: u32, alpha: f64) -> OptimizerDecision {
        self.decide_with_incumbent_reference(n_instances, alpha, None)
    }

    /// The pre-frontier [`ConfigOptimizer::decide_with_incumbent`],
    /// including its `O(|space|)` incumbent membership re-enumeration.
    /// Reference implementation — see above.
    pub fn decide_with_incumbent_reference(
        &self,
        n_instances: u32,
        alpha: f64,
        incumbent: Option<ParallelConfig>,
    ) -> OptimizerDecision {
        let mut d = self.decide_fresh_reference(n_instances, alpha);
        let Some(inc) = incumbent else { return d };
        if inc.instances_needed(self.gpus_per_instance) > n_instances {
            return d;
        }
        if !self.feasible(n_instances).contains(&inc) {
            return d;
        }
        let keepable = |best: ParallelConfig| {
            let inc_l = self.estimated_latency_uncached(&inc, alpha);
            let best_l = self.estimated_latency_uncached(&best, alpha);
            self.estimated_throughput_uncached(&inc) >= alpha
                && inc_l != simkit::SimDuration::MAX
                && inc_l.as_secs_f64() <= best_l.as_secs_f64() * 1.15
        };
        if let Some(best) = d.now {
            if best != inc && keepable(best) {
                d.now = Some(inc);
            }
        }
        if let Some(best) = d.target {
            if best != inc && keepable(best) {
                d.target = Some(inc);
                d.instance_delta =
                    inc.instances_needed(self.gpus_per_instance) as i64 - n_instances as i64;
            }
        }
        d
    }

    /// The pre-frontier [`ConfigOptimizer::decide_slo`]. Reference
    /// implementation — see above.
    pub fn decide_slo_reference(
        &self,
        n_instances: u32,
        alpha: f64,
        slo: simkit::SimDuration,
    ) -> OptimizerDecision {
        let ceiling = self.max_instances.max(n_instances);
        let meeting: Vec<ParallelConfig> = self
            .feasible(ceiling)
            .into_iter()
            .filter(|c| self.estimated_latency_uncached(c, alpha) <= slo)
            .collect();
        if meeting.is_empty() {
            return self.decide_reference(n_instances, alpha);
        }
        let target = meeting
            .iter()
            .copied()
            .map(|c| {
                // Cheapest first, then lowest latency, then canonical.
                (
                    c.instances_needed(self.gpus_per_instance),
                    self.estimated_latency_uncached(&c, alpha),
                    c,
                )
            })
            .min()
            .map(|(_, _, c)| c);
        let now = target
            .filter(|t| t.instances_needed(self.gpus_per_instance) <= n_instances)
            .or_else(|| {
                meeting
                    .into_iter()
                    .filter(|c| c.instances_needed(self.gpus_per_instance) <= n_instances)
                    .map(|c| {
                        (
                            c.instances_needed(self.gpus_per_instance),
                            self.estimated_latency_uncached(&c, alpha),
                            c,
                        )
                    })
                    .min()
                    .map(|(_, _, c)| c)
            })
            .or(self.decide_reference(n_instances, alpha).now);
        let needed = target
            .map(|t| t.instances_needed(self.gpus_per_instance))
            .unwrap_or(0);
        OptimizerDecision {
            now,
            target,
            instance_delta: needed as i64 - n_instances as i64,
        }
    }

    fn decide_fresh_reference(&self, n_instances: u32, alpha: f64) -> OptimizerDecision {
        // Line 2: does any configuration within the ceiling sustain α?
        let ceiling = self.max_instances.max(n_instances);
        let all = self.feasible(ceiling);
        let sustaining: Vec<ParallelConfig> = all
            .iter()
            .copied()
            .filter(|c| self.estimated_throughput_uncached(c) >= alpha)
            .collect();

        let target = if !sustaining.is_empty() {
            // Line 3: minimize l_req among sustaining configs.
            self.best_latency(sustaining, alpha)
        } else {
            // Line 5: maximize throughput within the current fleet.
            self.feasible(n_instances)
                .into_iter()
                .map(|c| (self.estimated_throughput_uncached(&c), std::cmp::Reverse(c)))
                .max_by(|a, b| a.partial_cmp(b).expect("throughput is finite"))
                .map(|(_, std::cmp::Reverse(c))| c)
        };

        // What can actually run right now, consistent with the target's
        // shape preference.
        let now_candidates = self.feasible(n_instances);
        let now = match target {
            Some(t) if t.instances_needed(self.gpus_per_instance) <= n_instances => Some(t),
            _ => {
                let sustaining_now: Vec<ParallelConfig> = now_candidates
                    .iter()
                    .copied()
                    .filter(|c| self.estimated_throughput_uncached(c) >= alpha)
                    .collect();
                if sustaining_now.is_empty() {
                    // Max throughput with what we have.
                    now_candidates
                        .into_iter()
                        .map(|c| (self.estimated_throughput_uncached(&c), std::cmp::Reverse(c)))
                        .max_by(|a, b| a.partial_cmp(b).expect("finite"))
                        .map(|(_, std::cmp::Reverse(c))| c)
                } else {
                    self.best_latency(sustaining_now, alpha)
                }
            }
        };

        let needed = target
            .map(|t| t.instances_needed(self.gpus_per_instance))
            .unwrap_or(0);
        OptimizerDecision {
            now,
            target,
            instance_delta: needed as i64 - n_instances as i64,
        }
    }
}

/// Minimum-`(l_req, instances, canonical)` sustaining candidate within `n`
/// instances, over the pruned frontier range — `None` when nothing
/// sustains `alpha` there. Bit-identical to `best_latency` over the
/// sustaining subset of a fresh enumeration: keys are unique (the config
/// is part of the key), so the scan order cannot matter, and pruning only
/// skips candidates that lose every key comparison.
fn min_latency_sustaining(
    fr: &CandidateFrontier,
    n: u32,
    mode: PricingMode,
    perf: &PerfModel,
    alpha: f64,
) -> Option<ParallelConfig> {
    let mut best: Option<(SimDuration, u32, ParallelConfig)> = None;
    for cand in fr.pruned_at(n, mode) {
        if cand.throughput(mode) < alpha {
            continue;
        }
        let key = (cand.latency(perf, mode, alpha), cand.instances, cand.config);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, _, c)| c)
}

/// Maximum-`(φ, Reverse(canonical))` candidate within `n` instances, over
/// the pruned frontier range.
fn max_throughput(fr: &CandidateFrontier, n: u32, mode: PricingMode) -> Option<ParallelConfig> {
    let mut best: Option<(f64, std::cmp::Reverse<ParallelConfig>)> = None;
    for cand in fr.pruned_at(n, mode) {
        let key = (cand.throughput(mode), std::cmp::Reverse(cand.config));
        let better = match &best {
            None => true,
            Some(b) => {
                key.partial_cmp(b).expect("throughput is finite") == std::cmp::Ordering::Greater
            }
        };
        if better {
            best = Some(key);
        }
    }
    best.map(|(_, std::cmp::Reverse(c))| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(model: ModelSpec) -> ConfigOptimizer {
        ConfigOptimizer::paper_defaults(model, 16)
    }

    #[test]
    fn sustaining_config_minimizes_latency() {
        let o = opt(ModelSpec::gpt_20b());
        let d = o.decide(10, 0.35);
        let c = d.now.expect("feasible at 10 instances");
        assert!(o.perf().throughput(&c) >= 0.35);
        // Exhaustive check: no sustaining config within 10 instances has
        // strictly lower l_req.
        let l = o.perf().request_latency(&c, 0.35);
        for other in o.feasible(10) {
            if o.perf().throughput(&other) >= 0.35 {
                assert!(
                    o.perf().request_latency(&other, 0.35) >= l,
                    "{other} beats {c}"
                );
            }
        }
    }

    #[test]
    fn overload_maximizes_throughput() {
        let o = opt(ModelSpec::gpt_20b());
        // 3 instances = 12 GPUs: nothing sustains 0.35 req/s.
        let d = o.decide(3, 0.35);
        let c = d.now.expect("12 GPUs fit GPT-20B");
        let phi = o.perf().throughput(&c);
        for other in o.feasible(3) {
            assert!(o.perf().throughput(&other) <= phi + 1e-12, "{other}");
        }
        // The optimizer wants more instances.
        assert!(d.instance_delta > 0, "delta {}", d.instance_delta);
    }

    #[test]
    fn too_few_instances_yields_none() {
        let o = opt(ModelSpec::llama_30b());
        // LLaMA-30B needs 16 GPUs = 4 instances (Table 1).
        let d = o.decide(3, 0.2);
        assert_eq!(d.now, None);
        assert!(d.target.is_some(), "growth target exists");
        assert!(d.instance_delta > 0);
    }

    #[test]
    fn overprovision_suggests_release() {
        let o = opt(ModelSpec::opt_6_7b());
        // Tiny load: one pipeline suffices; with 12 instances the optimizer
        // should want fewer.
        let d = o.decide(12, 0.05);
        assert!(d.instance_delta < 0, "delta {}", d.instance_delta);
        let c = d.now.unwrap();
        assert!(o.perf().throughput(&c) >= 0.05);
    }

    #[test]
    fn gpt20b_paper_scenario_prefers_2_2_8_at_8_instances() {
        // §6.2: with ≥8 instances, (D=2,P=2,M=8) is the minimum-latency
        // sustaining configuration for 0.35 req/s.
        let o = opt(ModelSpec::gpt_20b());
        let d = o.decide(8, 0.35);
        let c = d.now.unwrap();
        assert_eq!(c.mesh_key(), (2, 2, 8), "picked {c}");
    }

    #[test]
    fn gpt20b_after_preemption_avoids_overload() {
        // §6.2: at 7 instances, Rerouting's fixed (1,2,8) overloads, while
        // the optimizer finds a sustaining alternative, e.g. (2,3,4).
        let o = opt(ModelSpec::gpt_20b());
        let d = o.decide(7, 0.35);
        let c = d.now.unwrap();
        assert!(
            o.perf().throughput(&c) >= 0.35,
            "{c} must sustain 0.35 req/s"
        );
        assert!(c.total_gpus() <= 28);
    }

    #[test]
    fn decisions_are_deterministic() {
        let o = opt(ModelSpec::gpt_20b());
        assert_eq!(o.decide(9, 0.4), o.decide(9, 0.4));
    }

    #[test]
    fn slo_objective_picks_cheapest_meeting_config() {
        let o = opt(ModelSpec::gpt_20b());
        // A loose SLO: many configs qualify, so the cheapest fleet wins.
        let loose = simkit::SimDuration::from_secs(120);
        let d = o.decide_slo(10, 0.35, loose);
        let c = d.now.expect("feasible");
        assert!(o.perf().request_latency(&c, 0.35) <= loose);
        // No cheaper configuration also meets the SLO.
        let needed = c.instances_needed(4);
        for other in o.feasible(10) {
            if o.perf().request_latency(&other, 0.35) <= loose {
                assert!(other.instances_needed(4) >= needed, "{other} is cheaper");
            }
        }
    }

    #[test]
    fn impossible_slo_falls_back_to_latency_minimization() {
        let o = opt(ModelSpec::gpt_20b());
        let impossible = simkit::SimDuration::from_secs(1);
        let d = o.decide_slo(10, 0.35, impossible);
        assert_eq!(d.now, o.decide(10, 0.35).now);
    }

    #[test]
    fn zero_rate_picks_cheapest_feasible() {
        let o = opt(ModelSpec::gpt_20b());
        let d = o.decide(10, 0.0);
        let c = d.now.unwrap();
        // Everything sustains α=0; latency minimization should not pick
        // more GPUs than help latency, and the tie-break favours fewer
        // instances.
        assert!(c.total_gpus() <= 40);
    }

    // ---- Frontier/memo mechanics -------------------------------------

    #[test]
    fn memoized_decisions_match_first_computation() {
        let o = opt(ModelSpec::gpt_20b());
        let first = o.decide(9, 0.4);
        for _ in 0..3 {
            assert_eq!(o.decide(9, 0.4), first, "memo must be transparent");
        }
        let slo = simkit::SimDuration::from_secs(60);
        let s1 = o.decide_slo(9, 0.4, slo);
        assert_eq!(o.decide_slo(9, 0.4, slo), s1);
    }

    #[test]
    fn memo_overflow_clears_and_keeps_answers_correct() {
        let o = opt(ModelSpec::gpt_20b());
        let pinned = o.decide_reference(8, 0.35);
        for i in 0..(2 * MEMO_CAP as u32) {
            let alpha = 0.05 + i as f64 * 0.013;
            assert_eq!(o.decide(8, alpha), o.decide_reference(8, alpha));
        }
        assert_eq!(o.decide(8, 0.35), pinned);
    }

    #[test]
    fn queries_beyond_the_ceiling_grow_the_frontier() {
        let o = opt(ModelSpec::gpt_20b());
        // Warm the frontier at the ceiling, then exceed it: the frontier
        // rebuilds at the larger fleet and the decision still matches the
        // reference.
        let _ = o.decide(8, 0.35);
        let big = o.decide(24, 0.35);
        assert_eq!(big, o.decide_reference(24, 0.35));
    }

    #[test]
    fn engine_mode_change_invalidates_the_memo() {
        let fixed = opt(ModelSpec::gpt_20b());
        let d_fixed = fixed.decide(12, 0.35);
        let cont = opt(ModelSpec::gpt_20b()).with_engine_mode(EngineMode::ContinuousBatching);
        let d_cont = cont.decide(12, 0.35);
        assert_ne!(d_fixed.now, d_cont.now, "estimator change changes picks");
        assert_eq!(d_cont, cont.decide_reference(12, 0.35));
    }

    #[test]
    fn engine_mode_flip_keeps_the_other_modes_warm_entries() {
        let mut o = opt(ModelSpec::gpt_20b()); // FixedBatch by default
        let d_fixed = o.decide(12, 0.35);
        assert_eq!(o.memo_len(), 1);
        o = o.with_engine_mode(EngineMode::ContinuousBatching);
        let d_cont = o.decide(12, 0.35);
        assert_eq!(
            o.memo_len(),
            2,
            "flip evicted nothing; new entry keyed by mode"
        );
        o = o.with_engine_mode(EngineMode::FixedBatch);
        assert_eq!(
            o.decide(12, 0.35),
            d_fixed,
            "round-trip keeps the warm entry"
        );
        assert_eq!(o.memo_len(), 2, "re-query was a memo hit, not a re-insert");
        o = o.with_engine_mode(EngineMode::ContinuousBatching);
        assert_eq!(o.decide(12, 0.35), d_cont);
        assert_eq!(o.memo_len(), 2);
    }

    // ---- Heterogeneous lanes -----------------------------------------

    use cloudsim::InstanceType;

    #[test]
    fn single_t4_lane_reproduces_the_single_sku_decision() {
        // A one-lane T4 fleet is the homogeneous problem in multi-SKU
        // clothing: `paper_defaults` prices with
        // `for_instance_type(t4()).with_scale(scale)` bitwise, so the
        // joint decision must pick the same (config, delta).
        let o = opt(ModelSpec::gpt_20b()).with_sku(InstanceType::t4());
        for (n, alpha) in [(10u32, 0.35), (3, 0.35), (8, 0.35), (12, 0.05)] {
            let single = o.decide(n, alpha);
            let multi = o.decide_multi(&[n], alpha);
            assert_eq!(multi.now.map(|(_, c)| c), single.now, "now at {n}/{alpha}");
            assert_eq!(
                multi.target.map(|(_, c)| c),
                single.target,
                "target at {n}/{alpha}"
            );
            assert_eq!(multi.instance_delta, single.instance_delta);
            assert!(multi.now.iter().all(|&(lane, _)| lane == 0));
        }
    }

    #[test]
    fn collapsed_lane_recovers_on_another_sku() {
        // T4 pool collapsed to zero, L4 pool healthy: the target must sit
        // on the L4 lane, and `now` must be materializable there.
        let o = opt(ModelSpec::gpt_20b())
            .with_sku(InstanceType::t4())
            .with_sku(InstanceType::l4());
        let d = o.decide_multi(&[0, 10], 0.35);
        let (lane, c) = d.target.expect("L4s can serve GPT-20B");
        assert_eq!(lane, 1, "target recovers on the surviving SKU");
        assert!(
            o.lane_throughput(1, &c) >= 0.35,
            "{c} must sustain 0.35 req/s on L4"
        );
        let (now_lane, now_c) = d.now.expect("10 L4 instances fit GPT-20B");
        assert_eq!(now_lane, 1);
        assert!(now_c.instances_needed(o.lane_type(1).gpus_per_instance) <= 10);
    }

    #[test]
    fn faster_sku_wins_the_latency_objective() {
        // Both lanes available: H100s dominate T4s on latency at equal
        // request rate, so the joint minimum must come from the H100 lane.
        let o = opt(ModelSpec::gpt_20b())
            .with_sku(InstanceType::t4())
            .with_sku(InstanceType::h100());
        let d = o.decide_multi(&[8, 8], 0.35);
        let (lane, c) = d.target.expect("sustaining config exists");
        assert_eq!(lane, 1, "H100 lane wins, got {c} on lane {lane}");
        // And the pick is the joint minimum: no sustaining candidate on
        // either lane has a strictly lower (l, instances, lane, config).
        let l = o.lane_latency(lane, &c, 0.35);
        for i in 0..o.lane_count() {
            let gpi = o.lane_type(i).gpus_per_instance;
            let fr_configs: Vec<_> = {
                let perf = o.lane_perf(i);
                enumerate_configs(
                    perf.model(),
                    o.memory(),
                    &o.lane_type(i).gpu,
                    &ConfigSpace::default(),
                    16 * gpi as u32,
                )
            };
            for other in fr_configs {
                if o.lane_throughput(i, &other) >= 0.35 {
                    assert!(
                        o.lane_latency(i, &other, 0.35) >= l,
                        "{other} on lane {i} beats the pick"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_memo_is_transparent_and_bounded() {
        let o = opt(ModelSpec::gpt_20b())
            .with_sku(InstanceType::t4())
            .with_sku(InstanceType::l4());
        let first = o.decide_multi(&[6, 4], 0.35);
        for _ in 0..3 {
            assert_eq!(o.decide_multi(&[6, 4], 0.35), first);
        }
        // Overflow the memo and confirm the pinned answer survives.
        for i in 0..(2 * MEMO_CAP as u32) {
            let _ = o.decide_multi(&[6, 4], 0.05 + i as f64 * 0.013);
        }
        assert_eq!(o.decide_multi(&[6, 4], 0.35), first);
    }

    #[test]
    fn model_too_big_for_lane_serves_now_on_the_capable_sku() {
        // LLaMA-30B does not fit one L4 instance (4×24 GiB): with a single
        // L4 available and T4s plentiful, `now` must materialize on the
        // T4 lane — a starved lane stays a legal *growth* target, but it
        // cannot serve today.
        let o = opt(ModelSpec::llama_30b())
            .with_sku(InstanceType::t4())
            .with_sku(InstanceType::l4());
        let d = o.decide_multi(&[8, 1], 0.2);
        let (now_lane, now_c) = d.now.expect("8 T4 instances fit LLaMA-30B");
        assert_eq!(now_lane, 0, "only the T4 fleet can serve now");
        assert!(now_c.instances_needed(4) <= 8);
    }

    #[test]
    fn incumbent_membership_is_bit_equal_with_reference() {
        let o = opt(ModelSpec::gpt_20b());
        // Sweep incumbents including infeasible and out-of-space shapes.
        let mut incumbents = o.feasible(16);
        incumbents.push(ParallelConfig::new(1, 1, 3, 5)); // outside the space
        incumbents.push(ParallelConfig::new(16, 16, 8, 8)); // beyond any fleet
        for inc in incumbents {
            for n in [3u32, 7, 10, 16] {
                assert_eq!(
                    o.decide_with_incumbent(n, 0.35, Some(inc)),
                    o.decide_with_incumbent_reference(n, 0.35, Some(inc)),
                    "incumbent {inc} at {n}"
                );
            }
        }
    }
}
