//! SpotServe: distributed generative LLM serving on preemptible instances.
//!
//! A from-scratch Rust reproduction of *SpotServe: Serving Generative Large
//! Language Models on Preemptible Instances* (ASPLOS 2024). The crate
//! implements the paper's control plane exactly — the adaptive
//! configuration optimizer (Algorithm 1), the Kuhn–Munkres device mapper
//! (§3.3), the progressive memory-optimized migration planner
//! (Algorithm 2), and stateful inference recovery with just-in-time
//! interruption arrangement (§4) — and runs it against simulated substrates
//! (cloud, network, engine) provided by the sibling crates.
//!
//! # Quick start
//!
//! ```
//! use spotserve::{Scenario, ServingSystem, SystemOptions};
//!
//! let scenario = Scenario::paper_stable(
//!     llmsim::ModelSpec::opt_6_7b(),
//!     cloudsim::AvailabilityTrace::paper_as(),
//!     1.5,   // requests/second
//!     42,    // seed
//! );
//! let mut report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
//! let p = report.latency.percentiles();
//! assert!(p.count > 0, "requests were served");
//! ```
//!
//! The three systems compared in the paper's evaluation are selectable via
//! [`SystemOptions`]: [`SystemOptions::spotserve`] (full system),
//! [`SystemOptions::reparallelization`] (adaptive configs, but every switch
//! is a cold restart — the Varuna-style baseline) and
//! [`SystemOptions::rerouting`] (fixed model-parallel shape, pipelines
//! added/dropped — the MArk/Cocktail-style baseline). Ablations toggle the
//! individual SpotServe components (Figure 9).

pub mod audit;
pub mod config;
pub mod devicemap;
pub mod optimizer;
pub mod report;
pub mod scale;
pub mod system;

pub use audit::{AuditReport, InvariantAuditor, Violation};
pub use config::{AblationFlags, EngineMode, Policy, SystemOptions};
pub use devicemap::{map_devices, map_devices_with_skus, DeviceMapOutcome, SkuTable};
pub use fleetctl::{FleetController, FleetPolicy, PreemptionEstimator};
pub use optimizer::{ConfigOptimizer, MultiSkuDecision, OptimizerDecision, MAX_SKU_LANES};
pub use report::{ConfigChange, CostReport, RunReport, SkuCost};
pub use scale::{EpochRecord, ScaleReport, ShardedSystem};
pub use system::{Scenario, ServingSystem};
pub use telemetry::{
    JsonlSink, NoopSink, Record, Recorder, StreamRecord, TelemetryEvent, TelemetrySink,
    TelemetryStream, TimeSeries, TriageVerdict, WindowStats,
};
