//! System-level options: which serving policy runs and which SpotServe
//! components are enabled (the Figure 9 ablation axes).

use fleetctl::FleetPolicy;
use simkit::SimDuration;

/// Which serving system handles preemptions (§6.1 baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The full system: proactive migration inside grace periods, KM device
    /// mapping, progressive memory-optimized migration, stateful recovery.
    SpotServe,
    /// Varuna-style: the same adaptive configuration optimizer, but every
    /// transition restarts all engines and reloads weights from storage;
    /// in-flight decoding progress is lost.
    Reparallelization,
    /// MArk/Cocktail-style: a fixed `(P, M, B)` shape; data-parallel
    /// pipelines are dropped on preemption and re-added (cold) on
    /// acquisition; interrupted requests reroute and recompute.
    Rerouting,
    /// Non-preemptible fleet of a fixed size (the Figure 7 cost baseline).
    OnDemandOnly {
        /// Fleet size in instances.
        instances: u32,
    },
}

/// Which execution engine the inference pipelines run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Iteration-level continuous batching (the default): requests are
    /// admitted and retired at decode-iteration boundaries, within the
    /// batch capacity and the engine's KV budget, and each iteration is
    /// priced from the current mixed batch.
    #[default]
    ContinuousBatching,
    /// Run-to-completion batching: a batch forms, decodes to its last
    /// token, and only then does the next batch form. The paper's §3/§6.1
    /// engine model, kept as the comparison baseline.
    FixedBatch,
}

/// Individually disable SpotServe components (Figure 9).
///
/// Flags are *disable* switches so that `default()` is the full system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AblationFlags {
    /// Freeze the parallel configuration chosen at startup (disables the
    /// parallelization controller; membership changes still re-map devices).
    pub no_controller: bool,
    /// Replace Algorithm 2 with naive index-order migration and
    /// unbounded buffers (disables the migration planner).
    pub no_migration_planner: bool,
    /// Do not migrate cache context; interrupted requests recompute
    /// (disables the interruption arranger / stateful recovery).
    pub no_interruption_arranger: bool,
    /// Replace Kuhn–Munkres mapping with an arbitrary (identity-order)
    /// mapping (disables the device mapper).
    pub no_device_mapper: bool,
}

/// Full option set for one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemOptions {
    /// The policy under test.
    pub policy: Policy,
    /// The execution engine pipelines run (all policies share it, §6.1's
    /// same-backbone fairness setup).
    pub engine: EngineMode,
    /// Sarathi-style chunked prefill for the continuous engine: prompts are
    /// split into chunks of at most this many tokens, one chunk per
    /// iteration, so decode requests never stall behind a monolithic
    /// prefill. `None` (the default) keeps monolithic prefill. Ignored by
    /// [`EngineMode::FixedBatch`].
    pub prefill_chunk: Option<u32>,
    /// Component ablations (only meaningful for [`Policy::SpotServe`]).
    pub ablation: AblationFlags,
    /// How the fleet acquires capacity from the spot market(s):
    /// [`FleetPolicy::ReactiveSpot`] (the default) keeps the paper's
    /// single-market reactive path bit-exact;
    /// [`FleetPolicy::OnDemandFallback`] and [`FleetPolicy::SpotHedge`]
    /// route acquisition through the `fleetctl` controller (multi-pool
    /// spread, on-demand top-ups, preemption-rate-sized hedging).
    pub fleet_policy: FleetPolicy,
    /// Allow mixing on-demand instances into the fleet (the `+O` traces).
    pub on_demand_mixing: bool,
    /// Extra spot instances kept as a warm candidate pool (§3.2 keeps two).
    pub spare_instances: u32,
    /// Ceiling on total fleet size the optimizer may target.
    pub max_instances: u32,
    /// Safety margin subtracted from the grace period when arranging
    /// migrations (§4.2 guards against estimate error).
    pub migration_safety_margin: SimDuration,
    /// Engine-process launch time on a fresh instance (excludes weight
    /// loading, which the migration/cold-load path accounts for).
    pub engine_launch: SimDuration,
    /// How often the arrival-rate estimate is refreshed (§3.2 footnote:
    /// "observing the request arrivals within a short past duration").
    pub rate_tick: SimDuration,
    /// Keep simulating after the arrival window until the queue drains,
    /// up to this cap.
    pub drain_cap: SimDuration,
    /// Record the typed telemetry event stream (instance lifecycle, fleet
    /// commands, transitions, optimizer decisions, epoch rollups). Off by
    /// default: the disabled recorder is a single branch per emit point and
    /// the run's canonical report bytes are unchanged either way.
    pub telemetry: bool,
}

impl SystemOptions {
    fn base(policy: Policy) -> Self {
        SystemOptions {
            policy,
            engine: EngineMode::default(),
            prefill_chunk: None,
            ablation: AblationFlags::default(),
            fleet_policy: FleetPolicy::default(),
            on_demand_mixing: false,
            spare_instances: 2,
            max_instances: 16,
            migration_safety_margin: SimDuration::from_secs(2),
            engine_launch: SimDuration::from_secs(10),
            rate_tick: SimDuration::from_secs(30),
            drain_cap: SimDuration::from_secs(3600),
            telemetry: false,
        }
    }

    /// The full SpotServe system.
    pub fn spotserve() -> Self {
        SystemOptions::base(Policy::SpotServe)
    }

    /// The Reparallelization baseline (§6.1).
    pub fn reparallelization() -> Self {
        SystemOptions::base(Policy::Reparallelization)
    }

    /// The Rerouting baseline (§6.1).
    pub fn rerouting() -> Self {
        SystemOptions::base(Policy::Rerouting)
    }

    /// The on-demand-only baseline with a fleet of `instances` (§6.2,
    /// Figure 7).
    pub fn on_demand_only(instances: u32) -> Self {
        SystemOptions::base(Policy::OnDemandOnly { instances })
    }

    /// Enables on-demand mixing (the `+O` trace variants).
    pub fn with_on_demand_mixing(mut self) -> Self {
        self.on_demand_mixing = true;
        self
    }

    /// Selects the fleet acquisition policy (see
    /// [`SystemOptions::fleet_policy`]).
    pub fn with_fleet_policy(mut self, fleet_policy: FleetPolicy) -> Self {
        self.fleet_policy = fleet_policy;
        self
    }

    /// Applies ablation flags.
    pub fn with_ablation(mut self, ablation: AblationFlags) -> Self {
        self.ablation = ablation;
        self
    }

    /// Selects the execution engine (e.g. [`EngineMode::FixedBatch`] for
    /// the run-to-completion baseline).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Enables the telemetry event stream (see
    /// [`SystemOptions::telemetry`]).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Enables chunked prefill with chunks of at most `chunk` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn with_prefill_chunk(mut self, chunk: u32) -> Self {
        assert!(chunk > 0, "a prefill chunk must carry tokens");
        self.prefill_chunk = Some(chunk);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ablation_is_full_system() {
        let a = AblationFlags::default();
        assert!(!a.no_controller && !a.no_migration_planner);
        assert!(!a.no_interruption_arranger && !a.no_device_mapper);
    }

    #[test]
    fn constructors_set_policy() {
        assert_eq!(SystemOptions::spotserve().policy, Policy::SpotServe);
        assert_eq!(SystemOptions::rerouting().policy, Policy::Rerouting);
        assert_eq!(
            SystemOptions::on_demand_only(4).policy,
            Policy::OnDemandOnly { instances: 4 }
        );
        assert!(
            SystemOptions::spotserve()
                .with_on_demand_mixing()
                .on_demand_mixing
        );
    }

    #[test]
    fn prefill_is_monolithic_by_default() {
        assert_eq!(SystemOptions::spotserve().prefill_chunk, None);
        assert_eq!(
            SystemOptions::spotserve()
                .with_prefill_chunk(64)
                .prefill_chunk,
            Some(64)
        );
    }

    #[test]
    #[should_panic(expected = "carry tokens")]
    fn zero_chunk_panics() {
        SystemOptions::spotserve().with_prefill_chunk(0);
    }

    #[test]
    fn reactive_spot_is_the_default_fleet_policy() {
        assert_eq!(
            SystemOptions::spotserve().fleet_policy,
            FleetPolicy::ReactiveSpot
        );
        assert_eq!(
            SystemOptions::spotserve()
                .with_fleet_policy(FleetPolicy::spot_hedge())
                .fleet_policy,
            FleetPolicy::spot_hedge()
        );
    }

    #[test]
    fn telemetry_is_off_by_default() {
        assert!(!SystemOptions::spotserve().telemetry);
        assert!(SystemOptions::spotserve().with_telemetry().telemetry);
    }

    #[test]
    fn continuous_batching_is_the_default_engine() {
        assert_eq!(
            SystemOptions::spotserve().engine,
            EngineMode::ContinuousBatching
        );
        assert_eq!(
            SystemOptions::rerouting()
                .with_engine(EngineMode::FixedBatch)
                .engine,
            EngineMode::FixedBatch
        );
    }
}
