//! The device mapper (§3.3): assign available GPUs to the positions of the
//! next configuration so that reusable context is maximized.
//!
//! The mapping is the paper's bipartite matching: GPUs on one side, mesh
//! positions on the other, edge weight = bytes of model context plus
//! (for inherited pipelines) cache context shared between what the GPU
//! holds and what the position needs. Multi-GPU instances use the two-step
//! hierarchical matching of the supplemental material: a Kuhn–Munkres
//! matching between *instances* and instance-sized *position groups* whose
//! edge weight is itself the optimum of the inner GPU-level matching, then
//! the inner optimum is applied within each matched pair. Position groups
//! follow canonical mesh order, which keeps tensor groups on as few
//! instances as possible.

use cloudsim::{GpuRef, InstanceId};
use kmatch::{max_weight_assignment, SkuCaps, WeightMatrix};
use llmsim::ModelSpec;
use migration::DeviceAssignment;
use parallelism::{MeshPosition, ParallelConfig, PositionContext};

/// The outcome of device mapping.
#[derive(Debug, Clone)]
pub struct DeviceMapOutcome {
    /// GPU placement for the new configuration.
    pub assignment: DeviceAssignment,
    /// For each new pipeline, the old pipeline whose requests it inherits.
    pub inheritance: Vec<Option<u32>>,
    /// Total context bytes the mapping reuses in place (the KM objective).
    pub reused_bytes: i64,
}

/// State of the old configuration relevant to mapping.
#[derive(Debug, Clone, Default)]
pub struct OldState {
    /// The configuration being left, with its surviving placement.
    pub config_and_assignment: Option<(ParallelConfig, DeviceAssignment)>,
    /// Committed KV-cache bytes per old pipeline.
    pub cache_bytes_per_pipeline: Vec<u64>,
    /// Decoding progress (committed tokens) per old pipeline; pipelines
    /// with more progress are inherited first when pipelines shrink
    /// (§3.3: "keeps the batches of requests with more decoding
    /// progresses").
    pub progress_per_pipeline: Vec<u32>,
}

/// Cross-SKU capability context for device mapping over a mixed fleet.
///
/// In a heterogeneous fleet the candidate GPUs are not interchangeable:
/// a position whose shard exceeds an instance's per-GPU memory is *no*
/// placement (the matching's `-INFINITY`), and reuse bytes missing on a
/// GPU behind a slower inter-instance link arrive late, so its edge is
/// discounted by the bandwidth asymmetry ([`kmatch::edge_weight`]).
pub struct SkuTable<'a> {
    /// The SKU capability of the instance hosting each candidate GPU.
    pub caps_of: &'a dyn Fn(InstanceId) -> SkuCaps,
    /// The SKU whose fabric holds the *source* context being migrated
    /// (the old mesh's SKU).
    pub src: SkuCaps,
    /// Device bytes one position of the new configuration must hold
    /// ([`llmsim::MemoryModel::required_bytes_per_gpu`]).
    pub required_bytes_per_gpu: u64,
}

/// Maps `instances` (each contributing `gpus_per_instance` GPUs) onto
/// `new_config`'s mesh.
///
/// With `use_km = false` (the `-DeviceMapper` ablation) the mapping is the
/// arbitrary identity order instead of the KM optimum.
///
/// # Panics
///
/// Panics if the instances provide fewer GPUs than the mesh needs.
pub fn map_devices(
    model: &ModelSpec,
    new_config: &ParallelConfig,
    instances: &[InstanceId],
    gpus_per_instance: u8,
    old: &OldState,
    use_km: bool,
) -> DeviceMapOutcome {
    map_devices_with_skus(
        model,
        new_config,
        instances,
        gpus_per_instance,
        old,
        use_km,
        None,
    )
}

/// [`map_devices`] over a possibly heterogeneous fleet: when `skus` is
/// given, edges are priced by [`kmatch::edge_weight`] — reuse minus the
/// bandwidth-asymmetry cost of the bytes that must still move, and
/// [`kmatch::FORBIDDEN`] for positions that do not fit the hosting SKU.
/// With `skus = None` (or a table whose SKUs all match the source) every
/// edge is plain reuse and the outcome is bit-identical to the single-SKU
/// mapper.
///
/// # Panics
///
/// Panics if the instances provide fewer GPUs than the mesh needs.
#[allow(clippy::too_many_arguments)]
pub fn map_devices_with_skus(
    model: &ModelSpec,
    new_config: &ParallelConfig,
    instances: &[InstanceId],
    gpus_per_instance: u8,
    old: &OldState,
    use_km: bool,
    skus: Option<&SkuTable<'_>>,
) -> DeviceMapOutcome {
    let total_gpus = instances.len() * gpus_per_instance as usize;
    assert!(
        total_gpus >= new_config.total_gpus() as usize,
        "need {} GPUs, have {total_gpus}",
        new_config.total_gpus()
    );

    // Decide pipeline inheritance first (it shapes the edge weights):
    // old pipelines in decreasing progress order fill new pipelines.
    let d_new = new_config.data as usize;
    let mut inheritance = vec![None; d_new];
    if let Some((old_cfg, _)) = &old.config_and_assignment {
        let mut order: Vec<u32> = (0..old_cfg.data).collect();
        order.sort_by_key(|&d| {
            std::cmp::Reverse(
                old.progress_per_pipeline
                    .get(d as usize)
                    .copied()
                    .unwrap_or(0),
            )
        });
        for (d_prime, d_old) in order.into_iter().take(d_new).enumerate() {
            inheritance[d_prime] = Some(d_old);
        }
    }

    // Position groups in canonical order, one instance's worth each.
    let positions: Vec<MeshPosition> = new_config.positions().collect();
    let groups: Vec<&[MeshPosition]> = positions.chunks(gpus_per_instance as usize).collect();

    let weight = |gpu: GpuRef, pos: MeshPosition| -> i64 {
        let reuse = edge_weight(model, new_config, gpu, pos, old, &inheritance);
        let Some(table) = skus else { return reuse };
        let dst = (table.caps_of)(gpu.instance);
        // Bytes the position needs that are *not* already on this GPU:
        // they cross the fabric, at the slower of the two links.
        let ctx = PositionContext::new(
            model.num_layers,
            new_config.pipeline,
            pos.stage,
            new_config.tensor,
            pos.shard,
        );
        let full = ctx.weight_overlap_bytes(&ctx, model.layer_bytes()) as i64;
        let moved = (full - reuse).max(0) as u64;
        kmatch::edge_weight(
            reuse.max(0) as u64,
            moved,
            table.required_bytes_per_gpu,
            &table.src,
            &dst,
        )
    };

    let mut sorted_instances = instances.to_vec();
    sorted_instances.sort_unstable();

    let mut assignment = DeviceAssignment::new();
    let mut reused = 0i64;

    if !use_km {
        // Ablation: arbitrary deterministic mapping.
        let gpus: Vec<GpuRef> = sorted_instances
            .iter()
            .flat_map(|&i| (0..gpus_per_instance).map(move |s| GpuRef::new(i, s)))
            .collect();
        for (pos, gpu) in positions.iter().zip(&gpus) {
            assignment.insert(*pos, *gpu);
            reused += weight(*gpu, *pos);
        }
        return DeviceMapOutcome {
            assignment,
            inheritance,
            reused_bytes: reused,
        };
    }

    // Step 1: instance-level KM; each edge weight is the optimum of the
    // inner GPU-level matching for that (instance, group) pair.
    let inner = |inst: InstanceId, group: &[MeshPosition]| -> (i64, Vec<(MeshPosition, GpuRef)>) {
        let gpus: Vec<GpuRef> = (0..gpus_per_instance)
            .map(|s| GpuRef::new(inst, s))
            .collect();
        let w = WeightMatrix::from_fn(gpus.len(), group.len(), |r, c| weight(gpus[r], group[c]));
        let a = max_weight_assignment(&w);
        let pairs = a
            .pairs()
            .map(|(r, c)| (group[c], gpus[r]))
            .collect::<Vec<_>>();
        (a.total_weight, pairs)
    };

    let outer = WeightMatrix::from_fn(sorted_instances.len(), groups.len(), |r, c| {
        inner(sorted_instances[r], groups[c]).0
    });
    let outer_match = max_weight_assignment(&outer);
    for (r, c) in outer_match.pairs() {
        let (w, pairs) = inner(sorted_instances[r], groups[c]);
        reused += w;
        for (pos, gpu) in pairs {
            assignment.insert(pos, gpu);
        }
    }

    DeviceMapOutcome {
        assignment,
        inheritance,
        reused_bytes: reused,
    }
}

fn edge_weight(
    model: &ModelSpec,
    new_config: &ParallelConfig,
    gpu: GpuRef,
    pos: MeshPosition,
    old: &OldState,
    inheritance: &[Option<u32>],
) -> i64 {
    let Some((old_cfg, old_asg)) = &old.config_and_assignment else {
        return 0;
    };
    let Some(old_pos) = old_asg.position_of(gpu) else {
        return 0;
    };
    let old_ctx = PositionContext::new(
        model.num_layers,
        old_cfg.pipeline,
        old_pos.stage,
        old_cfg.tensor,
        old_pos.shard,
    );
    let new_ctx = PositionContext::new(
        model.num_layers,
        new_config.pipeline,
        pos.stage,
        new_config.tensor,
        pos.shard,
    );
    let mut w = old_ctx.weight_overlap_bytes(&new_ctx, model.layer_bytes()) as i64;
    if inheritance.get(pos.pipeline as usize).copied().flatten() == Some(old_pos.pipeline) {
        let cache_total = old
            .cache_bytes_per_pipeline
            .get(old_pos.pipeline as usize)
            .copied()
            .unwrap_or(0);
        let cache_per_layer = cache_total / model.num_layers as u64;
        w += old_ctx.weight_overlap_bytes(&new_ctx, cache_per_layer) as i64;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelSpec {
        ModelSpec::opt_6_7b()
    }

    fn instances(n: u64) -> Vec<InstanceId> {
        (0..n).map(InstanceId).collect()
    }

    fn old_state(cfg: ParallelConfig, insts: &[InstanceId], cache: u64) -> OldState {
        let gpus: Vec<GpuRef> = insts
            .iter()
            .flat_map(|&i| (0..4).map(move |s| GpuRef::new(i, s)))
            .collect();
        OldState {
            config_and_assignment: Some((cfg, DeviceAssignment::contiguous(&cfg, &gpus))),
            cache_bytes_per_pipeline: vec![cache; cfg.data as usize],
            progress_per_pipeline: vec![10; cfg.data as usize],
        }
    }

    #[test]
    fn fresh_fleet_maps_everything() {
        let cfg = ParallelConfig::new(1, 2, 2, 8);
        let out = map_devices(&model(), &cfg, &instances(1), 4, &OldState::default(), true);
        assert_eq!(out.assignment.len(), 4);
        assert_eq!(out.reused_bytes, 0);
        assert_eq!(out.inheritance, vec![None]);
    }

    #[test]
    fn identity_reconfiguration_reuses_everything() {
        let cfg = ParallelConfig::new(1, 2, 2, 8);
        let insts = instances(1);
        let old = old_state(cfg, &insts, 0);
        let out = map_devices(&model(), &cfg, &insts, 4, &old, true);
        // Maximum possible reuse: the whole per-layer model resident once.
        let full = model().layer_bytes() as i64 * model().num_layers as i64;
        assert_eq!(out.reused_bytes, full);
        // And the mapping is exactly the old placement.
        let (_, old_asg) = old.config_and_assignment.as_ref().unwrap();
        for (pos, gpu) in old_asg.iter() {
            assert_eq!(out.assignment.gpu_at(pos), Some(gpu), "{pos}");
        }
    }

    #[test]
    fn km_beats_identity_mapping_after_shift() {
        // Old config on instances {1,2}; new fleet is {2,3}: the identity
        // order would put early positions on instance 2's GPUs regardless
        // of what they held; KM must reuse instance 2's actual context.
        let cfg = ParallelConfig::new(1, 2, 4, 8);
        let old_insts = vec![InstanceId(1), InstanceId(2)];
        let old = old_state(cfg, &old_insts, 0);
        let new_insts = vec![InstanceId(2), InstanceId(3)];
        let km = map_devices(&model(), &cfg, &new_insts, 4, &old, true);
        let naive = map_devices(&model(), &cfg, &new_insts, 4, &old, false);
        assert!(
            km.reused_bytes >= naive.reused_bytes,
            "km {} vs naive {}",
            km.reused_bytes,
            naive.reused_bytes
        );
        // Instance 2 held stage 1 (positions 4..8 in canonical order);
        // KM must keep stage 1 on instance 2.
        let pos = MeshPosition::new(0, 1, 0);
        assert_eq!(km.assignment.gpu_at(pos).unwrap().instance, InstanceId(2));
    }

    #[test]
    fn inheritance_prefers_more_progress() {
        let cfg = ParallelConfig::new(2, 1, 4, 8);
        let insts = instances(2);
        let mut old = old_state(cfg, &insts, 1 << 20);
        old.progress_per_pipeline = vec![5, 90];
        // Shrink to one pipeline: it must inherit old pipeline 1.
        let new_cfg = ParallelConfig::new(1, 1, 4, 8);
        let out = map_devices(&model(), &new_cfg, &insts[..1], 4, &old, true);
        assert_eq!(out.inheritance, vec![Some(1)]);
    }

    #[test]
    fn cache_weight_pulls_inherited_pipeline_to_its_gpus() {
        // Two identical pipelines; pipeline 1 has all the cache+progress.
        // After shrinking to D=1 on the *second* instance only, the new
        // pipeline inherits old pipeline 1, whose GPUs live on instance 1.
        let cfg = ParallelConfig::new(2, 1, 4, 8);
        let insts = instances(2);
        let mut old = old_state(cfg, &insts, 1 << 30);
        old.progress_per_pipeline = vec![0, 64];
        let new_cfg = ParallelConfig::new(1, 1, 4, 8);
        // Both instances available: KM should pick instance 1's GPUs (the
        // inherited pipeline's) because of the cache bonus.
        let out = map_devices(&model(), &new_cfg, &insts, 4, &old, true);
        let gpu = out.assignment.gpu_at(MeshPosition::new(0, 0, 0)).unwrap();
        assert_eq!(gpu.instance, InstanceId(1));
    }

    #[test]
    fn figure_4b_shape_mapping_is_optimal_for_first_stage() {
        // Figure 4b: old (D=2,P=2,M=2) on 8 GPUs (2 instances), new
        // (D=2,P=3,M=1) needs 6 GPUs. u1 = old (0,0,1) overlaps most with
        // the new first stages; the overall matching must reuse >0 bytes
        // and assign all 6 positions.
        let old_cfg = ParallelConfig::new(2, 2, 2, 8);
        let insts = instances(2);
        let old = old_state(old_cfg, &insts, 1 << 24);
        let new_cfg = ParallelConfig::new(2, 3, 1, 8);
        let out = map_devices(&model(), &new_cfg, &insts, 4, &old, true);
        assert_eq!(out.assignment.len(), 6);
        assert!(out.reused_bytes > 0);
        assert_eq!(out.inheritance, vec![Some(0), Some(1)]);
    }

    #[test]
    #[should_panic(expected = "need 8 GPUs")]
    fn too_few_instances_panics() {
        let cfg = ParallelConfig::new(1, 2, 4, 8);
        map_devices(&model(), &cfg, &instances(1), 4, &OldState::default(), true);
    }

    // ---- Cross-SKU mapping -------------------------------------------

    const T4_CAPS: SkuCaps = SkuCaps {
        memory_bytes: 16 << 30,
        link_bandwidth: 6e9,
    };
    const L4_CAPS: SkuCaps = SkuCaps {
        memory_bytes: 24 << 30,
        link_bandwidth: 4.5e9,
    };

    #[test]
    fn uniform_sku_table_is_bit_identical_with_the_plain_mapper() {
        let cfg = ParallelConfig::new(2, 2, 2, 8);
        let insts = instances(3);
        let old = old_state(ParallelConfig::new(1, 2, 4, 8), &insts[..2], 1 << 20);
        let caps_of = |_: InstanceId| T4_CAPS;
        let table = SkuTable {
            caps_of: &caps_of,
            src: T4_CAPS,
            required_bytes_per_gpu: 4 << 30,
        };
        for use_km in [true, false] {
            let plain = map_devices(&model(), &cfg, &insts, 4, &old, use_km);
            let skued =
                map_devices_with_skus(&model(), &cfg, &insts, 4, &old, use_km, Some(&table));
            assert_eq!(plain.assignment, skued.assignment, "km={use_km}");
            assert_eq!(plain.reused_bytes, skued.reused_bytes);
            assert_eq!(plain.inheritance, skued.inheritance);
        }
    }

    #[test]
    fn positions_avoid_instances_whose_sku_cannot_hold_the_shard() {
        // Four instances, mesh needs two of them; instances 0 and 2 are a
        // tiny-memory SKU the shard does not fit. KM must place the whole
        // mesh on instances 1 and 3.
        let cfg = ParallelConfig::new(1, 2, 4, 8);
        let insts = instances(4);
        let tiny = SkuCaps {
            memory_bytes: 1 << 30,
            link_bandwidth: 6e9,
        };
        let caps_of = |i: InstanceId| if i.0.is_multiple_of(2) { tiny } else { L4_CAPS };
        let table = SkuTable {
            caps_of: &caps_of,
            src: T4_CAPS,
            required_bytes_per_gpu: 8 << 30,
        };
        let out = map_devices_with_skus(
            &model(),
            &cfg,
            &insts,
            4,
            &OldState::default(),
            true,
            Some(&table),
        );
        for (pos, gpu) in out.assignment.iter() {
            assert_eq!(gpu.instance.0 % 2, 1, "{pos} landed on a tiny SKU");
        }
    }

    #[test]
    fn slower_linked_sku_discounts_missing_bytes() {
        // Old mesh on instance 0 (T4 fabric). New fleet {0, 1} where
        // instance 1 sits behind a slower link: with equal reuse the
        // discount must keep the mesh on instance 0.
        let cfg = ParallelConfig::new(1, 2, 2, 8);
        let insts = vec![InstanceId(0), InstanceId(1)];
        let old = old_state(cfg, &insts[..1], 0);
        let caps_of = |i: InstanceId| if i.0 == 0 { T4_CAPS } else { L4_CAPS };
        let table = SkuTable {
            caps_of: &caps_of,
            src: T4_CAPS,
            required_bytes_per_gpu: 4 << 30,
        };
        let out = map_devices_with_skus(&model(), &cfg, &insts, 4, &old, true, Some(&table));
        for (pos, gpu) in out.assignment.iter() {
            assert_eq!(gpu.instance, InstanceId(0), "{pos} left the fast SKU");
        }
    }

    #[test]
    fn deterministic_output() {
        let cfg = ParallelConfig::new(2, 2, 2, 8);
        let insts = instances(3);
        let old = old_state(ParallelConfig::new(1, 2, 4, 8), &insts[..2], 1 << 20);
        let a = map_devices(&model(), &cfg, &insts, 4, &old, true);
        let b = map_devices(&model(), &cfg, &insts, 4, &old, true);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.reused_bytes, b.reused_bytes);
    }
}
