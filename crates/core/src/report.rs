//! Run results: latency report, monetary cost, configuration history.

use cloudsim::{CostBreakdown, PoolCost};
use parallelism::ParallelConfig;
use simkit::{SimDuration, SimTime};
use workload::LatencyReport;

/// One reconfiguration recorded during a run (the annotations of
/// Figures 8g/8h).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigChange {
    /// When the new configuration went live.
    pub at: SimTime,
    /// The configuration adopted (`None` = serving halted, no feasible
    /// configuration).
    pub config: Option<ParallelConfig>,
    /// How long serving was paused for this transition.
    pub pause: SimDuration,
    /// Bytes moved over the network for the transition.
    pub migrated_bytes: u64,
    /// Bytes reloaded from storage for the transition.
    pub reloaded_bytes: u64,
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-request latencies.
    pub latency: LatencyReport,
    /// Total fleet spend in USD over the run.
    pub cost_usd: f64,
    /// Spend attributed per billing kind and per pool (spot vs on-demand,
    /// zone by zone). The authoritative total is [`RunReport::cost_usd`];
    /// the split may differ from it by a float ulp (see
    /// [`cloudsim::BillingMeter::usd_of_kind`]).
    pub cost_breakdown: CostBreakdown,
    /// Requests still unfinished when the drain cap hit.
    pub unfinished: usize,
    /// Configuration history.
    pub config_changes: Vec<ConfigChange>,
    /// Wall-clock end of the simulation.
    pub finished_at: SimTime,
    /// Count of preemption notices received.
    pub preemptions: u32,
    /// Count of unannounced instance deaths ([`cloudsim::CloudEvent::InstanceFailed`]):
    /// chaos kills and preemptions whose notice was lost. Always zero
    /// with fault injection off.
    pub faults: u32,
    /// Count of lapsed capacity requests
    /// ([`cloudsim::CloudEvent::RequestLapsed`]): grants the market
    /// promised but never delivered, whether shed by a capacity drop or
    /// swallowed by the chaos harness's grant-lapse channel.
    pub lapses: u32,
    /// Count of instance grants received.
    pub grants: u32,
    /// Instance-count samples over time: `(t, spot, on_demand)`
    /// (the Figure 5 / Figure 8c-d panels).
    pub fleet_timeline: Vec<(SimTime, u32, u32)>,
    /// Requests dropped by SLO-aware admission: their deadline was
    /// unmeetable even running alone, so the engine refused to burn
    /// iterations on a guaranteed violation. Empty for best-effort
    /// workloads (no deadlines).
    pub slo_rejections: Vec<workload::Request>,
    /// The typed telemetry event stream, `Some` only when the run was
    /// built with [`crate::SystemOptions::with_telemetry`]. Deliberately
    /// excluded from [`RunReport::canonical_into`]: the canonical bytes
    /// must be identical with telemetry on and off (the stream has its own
    /// replay-gated JSONL digest).
    pub telemetry: Option<telemetry::TelemetryStream>,
}

/// Spend aggregated over every pool leasing one SKU.
#[derive(Debug, Clone, PartialEq)]
pub struct SkuCost {
    /// The instance-type name.
    pub sku: &'static str,
    /// Spot spend across this SKU's pools.
    pub spot_usd: f64,
    /// On-demand spend across this SKU's pools.
    pub ondemand_usd: f64,
}

/// The consolidated cost view of a run: the authoritative total, the
/// per-kind split, per-pool and per-SKU attribution, and the run's
/// $-per-committed-token efficiency — one typed struct instead of the
/// old scatter of ad-hoc [`RunReport`] getters.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Total fleet spend in USD (the billing meter's authoritative
    /// integral; the per-kind split below may differ by a float ulp).
    pub total_usd: f64,
    /// Spot spend summed over every pool.
    pub spot_usd: f64,
    /// On-demand spend summed over every pool.
    pub ondemand_usd: f64,
    /// USD per committed (generated) output token, `None` when the run
    /// produced no tokens. The $/token figure the `CostPerToken` fleet
    /// policy optimizes.
    pub usd_per_token: Option<f64>,
    /// Per-pool attribution, in pool order.
    pub pools: Vec<PoolCost>,
}

impl CostReport {
    /// Per-SKU attribution: pools leasing the same instance type merge,
    /// in first-seen pool order.
    pub fn by_sku(&self) -> Vec<SkuCost> {
        let mut out: Vec<SkuCost> = Vec::new();
        for p in &self.pools {
            match out.iter_mut().find(|s| s.sku == p.sku) {
                Some(s) => {
                    s.spot_usd += p.spot_usd;
                    s.ondemand_usd += p.ondemand_usd;
                }
                None => out.push(SkuCost {
                    sku: p.sku,
                    spot_usd: p.spot_usd,
                    ondemand_usd: p.ondemand_usd,
                }),
            }
        }
        out
    }
}

impl RunReport {
    /// The consolidated [`CostReport`] view of this run's spend.
    pub fn cost(&self) -> CostReport {
        let tokens = self.latency.tokens_generated();
        CostReport {
            total_usd: self.cost_usd,
            spot_usd: self.cost_breakdown.spot_usd(),
            ondemand_usd: self.cost_breakdown.ondemand_usd(),
            usd_per_token: (tokens > 0).then(|| self.cost_usd / tokens as f64),
            pools: self.cost_breakdown.pools.clone(),
        }
    }

    /// The configurations adopted, in order, without pauses/bytes.
    pub fn config_sequence(&self) -> Vec<Option<ParallelConfig>> {
        self.config_changes.iter().map(|c| c.config).collect()
    }

    /// Completions + SLO rejections: every request with a terminal
    /// outcome (conservation checks add `unfinished` to reach the total).
    pub fn settled(&self) -> usize {
        self.latency.completed() + self.slo_rejections.len()
    }

    /// Streams THE byte-exact rendering of everything this run produced
    /// into `out`: floats via their IEEE-754 bit patterns (so "close
    /// enough" can never pass), including the per-kind / per-pool cost
    /// breakdown, every request outcome, and SLO rejections. The
    /// determinism gate, the fleet-policy suite, and the sharded-replay
    /// digest all consume this one rendering — a field added to
    /// `RunReport` needs threading into exactly one place to stay under
    /// the gates.
    pub fn canonical_into(&self, out: &mut impl std::fmt::Write) {
        let cost = self.cost();
        writeln!(out, "cost_usd_bits={:016x}", cost.total_usd.to_bits()).expect("write");
        writeln!(out, "spot_usd_bits={:016x}", cost.spot_usd.to_bits()).expect("write");
        writeln!(out, "od_usd_bits={:016x}", cost.ondemand_usd.to_bits()).expect("write");
        for pc in &cost.pools {
            writeln!(
                out,
                "pool {} name={} sku={} spot_bits={:016x} od_bits={:016x}",
                pc.pool,
                pc.name,
                pc.sku,
                pc.spot_usd.to_bits(),
                pc.ondemand_usd.to_bits(),
            )
            .expect("write");
        }
        writeln!(out, "unfinished={}", self.unfinished).expect("write");
        writeln!(out, "finished_at_us={}", self.finished_at.as_micros()).expect("write");
        writeln!(out, "preemptions={}", self.preemptions).expect("write");
        writeln!(out, "faults={}", self.faults).expect("write");
        writeln!(out, "lapses={}", self.lapses).expect("write");
        writeln!(out, "grants={}", self.grants).expect("write");
        writeln!(out, "latency_name={}", self.latency.name()).expect("write");
        for o in self.latency.outcomes() {
            writeln!(
                out,
                "outcome id={} arrival_us={} s_in={} s_out={} finished_us={}",
                o.request.id,
                o.request.arrival.as_micros(),
                o.request.s_in,
                o.request.s_out,
                o.finished.as_micros(),
            )
            .expect("write");
        }
        for c in &self.config_changes {
            writeln!(
                out,
                "config at_us={} config={:?} pause_us={} migrated={} reloaded={}",
                c.at.as_micros(),
                c.config,
                c.pause.as_micros(),
                c.migrated_bytes,
                c.reloaded_bytes,
            )
            .expect("write");
        }
        for (t, spot, od) in &self.fleet_timeline {
            writeln!(out, "fleet t_us={} spot={spot} od={od}", t.as_micros()).expect("write");
        }
        for r in &self.slo_rejections {
            writeln!(
                out,
                "slo_reject id={} arrival_us={} s_in={} s_out={} deadline_us={}",
                r.id,
                r.arrival.as_micros(),
                r.s_in,
                r.s_out,
                r.deadline.map(|d| d.as_micros()).unwrap_or(0),
            )
            .expect("write");
        }
    }

    /// [`canonical_into`](Self::canonical_into) rendered to a `String`.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.canonical_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;
    use workload::{Request, RequestId, RequestOutcome};

    #[test]
    fn cost_per_token() {
        let mut latency = LatencyReport::new("x");
        latency.record(RequestOutcome {
            request: Request::new(RequestId(0), SimTime::ZERO, 512, 128),
            finished: SimTime::from_secs(30),
        });
        let rep = RunReport {
            latency,
            cost_usd: 1.28,
            cost_breakdown: CostBreakdown::default(),
            unfinished: 0,
            config_changes: vec![],
            finished_at: SimTime::from_secs(100),
            preemptions: 0,
            faults: 0,
            lapses: 0,
            grants: 0,
            fleet_timeline: vec![],
            slo_rejections: vec![],
            telemetry: None,
        };
        assert!((rep.cost().usd_per_token.unwrap() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cost_report_aggregates_by_sku() {
        use cloudsim::{PoolCost, PoolId};
        let rep = RunReport {
            latency: LatencyReport::new("x"),
            cost_usd: 10.0,
            cost_breakdown: CostBreakdown {
                pools: vec![
                    PoolCost {
                        pool: PoolId(0),
                        name: "z0".into(),
                        sku: "g4dn.12xlarge",
                        spot_usd: 3.0,
                        ondemand_usd: 1.0,
                    },
                    PoolCost {
                        pool: PoolId(1),
                        name: "z1".into(),
                        sku: "g6.12xlarge",
                        spot_usd: 2.0,
                        ondemand_usd: 0.0,
                    },
                    PoolCost {
                        pool: PoolId(2),
                        name: "z2".into(),
                        sku: "g4dn.12xlarge",
                        spot_usd: 4.0,
                        ondemand_usd: 0.0,
                    },
                ],
            },
            unfinished: 0,
            config_changes: vec![],
            finished_at: SimTime::ZERO,
            preemptions: 0,
            faults: 0,
            lapses: 0,
            grants: 0,
            fleet_timeline: vec![],
            slo_rejections: vec![],
            telemetry: None,
        };
        let cost = rep.cost();
        assert_eq!(cost.spot_usd, 9.0);
        assert_eq!(cost.ondemand_usd, 1.0);
        assert_eq!(cost.usd_per_token, None, "no tokens generated");
        let by_sku = cost.by_sku();
        assert_eq!(by_sku.len(), 2, "two SKUs across three pools");
        assert_eq!(by_sku[0].sku, "g4dn.12xlarge");
        assert_eq!(by_sku[0].spot_usd, 7.0);
        assert_eq!(by_sku[0].ondemand_usd, 1.0);
        assert_eq!(by_sku[1].sku, "g6.12xlarge");
        assert_eq!(by_sku[1].spot_usd, 2.0);
    }

    #[test]
    fn empty_run_has_no_cost_per_token() {
        let rep = RunReport {
            latency: LatencyReport::new("x"),
            cost_usd: 5.0,
            cost_breakdown: CostBreakdown::default(),
            unfinished: 0,
            config_changes: vec![],
            finished_at: SimTime::ZERO,
            preemptions: 0,
            faults: 0,
            lapses: 0,
            grants: 0,
            fleet_timeline: vec![],
            slo_rejections: vec![],
            telemetry: None,
        };
        assert_eq!(rep.cost().usd_per_token, None);
    }
}
