//! Run results: latency report, monetary cost, configuration history.

use cloudsim::CostBreakdown;
use parallelism::ParallelConfig;
use simkit::{SimDuration, SimTime};
use workload::LatencyReport;

/// One reconfiguration recorded during a run (the annotations of
/// Figures 8g/8h).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigChange {
    /// When the new configuration went live.
    pub at: SimTime,
    /// The configuration adopted (`None` = serving halted, no feasible
    /// configuration).
    pub config: Option<ParallelConfig>,
    /// How long serving was paused for this transition.
    pub pause: SimDuration,
    /// Bytes moved over the network for the transition.
    pub migrated_bytes: u64,
    /// Bytes reloaded from storage for the transition.
    pub reloaded_bytes: u64,
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-request latencies.
    pub latency: LatencyReport,
    /// Total fleet spend in USD over the run.
    pub cost_usd: f64,
    /// Spend attributed per billing kind and per pool (spot vs on-demand,
    /// zone by zone). The authoritative total is [`RunReport::cost_usd`];
    /// the split may differ from it by a float ulp (see
    /// [`cloudsim::BillingMeter::usd_of_kind`]).
    pub cost_breakdown: CostBreakdown,
    /// Requests still unfinished when the drain cap hit.
    pub unfinished: usize,
    /// Configuration history.
    pub config_changes: Vec<ConfigChange>,
    /// Wall-clock end of the simulation.
    pub finished_at: SimTime,
    /// Count of preemption notices received.
    pub preemptions: u32,
    /// Count of instance grants received.
    pub grants: u32,
    /// Instance-count samples over time: `(t, spot, on_demand)`
    /// (the Figure 5 / Figure 8c-d panels).
    pub fleet_timeline: Vec<(SimTime, u32, u32)>,
    /// Requests dropped by SLO-aware admission: their deadline was
    /// unmeetable even running alone, so the engine refused to burn
    /// iterations on a guaranteed violation. Empty for best-effort
    /// workloads (no deadlines).
    pub slo_rejections: Vec<workload::Request>,
}

impl RunReport {
    /// USD per generated output token (Figure 7's cost metric), `None`
    /// when no tokens were produced.
    pub fn cost_per_token(&self) -> Option<f64> {
        let tokens = self.latency.tokens_generated();
        (tokens > 0).then(|| self.cost_usd / tokens as f64)
    }

    /// USD spent on spot leases (all pools).
    pub fn spot_usd(&self) -> f64 {
        self.cost_breakdown.spot_usd()
    }

    /// USD spent on on-demand leases (all pools).
    pub fn ondemand_usd(&self) -> f64 {
        self.cost_breakdown.ondemand_usd()
    }

    /// The configurations adopted, in order, without pauses/bytes.
    pub fn config_sequence(&self) -> Vec<Option<ParallelConfig>> {
        self.config_changes.iter().map(|c| c.config).collect()
    }

    /// Completions + SLO rejections: every request with a terminal
    /// outcome (conservation checks add `unfinished` to reach the total).
    pub fn settled(&self) -> usize {
        self.latency.completed() + self.slo_rejections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;
    use workload::{Request, RequestId, RequestOutcome};

    #[test]
    fn cost_per_token() {
        let mut latency = LatencyReport::new("x");
        latency.record(RequestOutcome {
            request: Request::new(RequestId(0), SimTime::ZERO, 512, 128),
            finished: SimTime::from_secs(30),
        });
        let rep = RunReport {
            latency,
            cost_usd: 1.28,
            cost_breakdown: CostBreakdown::default(),
            unfinished: 0,
            config_changes: vec![],
            finished_at: SimTime::from_secs(100),
            preemptions: 0,
            grants: 0,
            fleet_timeline: vec![],
            slo_rejections: vec![],
        };
        assert!((rep.cost_per_token().unwrap() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_no_cost_per_token() {
        let rep = RunReport {
            latency: LatencyReport::new("x"),
            cost_usd: 5.0,
            cost_breakdown: CostBreakdown::default(),
            unfinished: 0,
            config_changes: vec![],
            finished_at: SimTime::ZERO,
            preemptions: 0,
            grants: 0,
            fleet_timeline: vec![],
            slo_rejections: vec![],
        };
        assert_eq!(rep.cost_per_token(), None);
    }
}
