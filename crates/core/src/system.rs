//! The serving system: a discrete-event simulation wiring the cloud, the
//! engine, and SpotServe's control plane (or a baseline policy) together.
//!
//! One [`ServingSystem`] run replays an availability trace and a request
//! stream and produces a [`RunReport`]. The three §6.1 systems share every
//! mechanism except preemption handling, mirroring the paper's
//! same-backbone fairness setup:
//!
//! * **SpotServe** — on a preemption notice, keep decoding until just
//!   enough grace period remains (JIT arrangement), then migrate context
//!   (weights + KV cache) to the KM-optimal placement of the next
//!   configuration and *resume* interrupted batches token-exact;
//! * **Reparallelization** — same configuration optimizer, but transitions
//!   are reactive cold restarts: weights reload from storage and in-flight
//!   progress is lost;
//! * **Rerouting** — fixed `(P, M, B)`; preempted pipelines drop, their
//!   requests reroute and recompute; new pipelines cold-start.

use std::collections::{BTreeMap, BTreeSet};

use cloudsim::{
    AvailabilityTrace, CloudConfig, CloudEvent, CloudMarket, ColdStorage, InstanceId, InstanceKind,
    InstanceType, PoolId, PoolSpec,
};
use enginesim::{
    preemption_stop_time, recovery_worthwhile, BatchRun, ContextDaemon, EngineCounters,
    IterationScheduler, PendingQueue, RequestRun,
};
use kmatch::SkuCaps;
use llmsim::ModelSpec;
use migration::{
    evaluate_plan, plan_migration, transferable_fraction, triage, DeviceAssignment, MigrationPlan,
    MigrationTask, PlannerOptions, TriageTier,
};
use parallelism::{ParallelConfig, PerfModel};
use simkit::event::EventKey;
use simkit::{EventQueue, SimDuration, SimRng, SimTime};
use telemetry::{Recorder, TelemetryEvent, TelemetryStream, TriageVerdict};
use workload::{LatencyReport, Request, WorkloadSpec};

use fleetctl::{FleetController, FleetPolicy, FleetView, PoolCaps, PoolView};

use crate::config::{EngineMode, Policy, SystemOptions};
use crate::devicemap::{map_devices_with_skus, OldState, SkuTable};
use crate::optimizer::{ConfigOptimizer, MultiSkuDecision, OptimizerDecision};
use crate::report::{ConfigChange, RunReport};

/// A complete experiment input: model, availability trace, request stream.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The model being served.
    pub model: ModelSpec,
    /// Spot-capacity trace the cloud replays (the single-market case;
    /// ignored when [`Scenario::pools`] is non-empty).
    pub trace: AvailabilityTrace,
    /// Multi-pool market definition: when non-empty, the cloud replays
    /// one pool per spec (its own trace, grant delay, and spot price)
    /// behind a [`CloudMarket`] arbiter, and `trace` is unused.
    pub pools: Vec<PoolSpec>,
    /// The request stream (arrival-sorted).
    pub requests: Vec<Request>,
    /// Cloud tunables (grace period, grant delays, instance type).
    pub cloud: CloudConfig,
    /// Cold-storage model for weight reloads.
    pub storage: ColdStorage,
    /// Master seed (cloud tie-breaking etc.).
    pub seed: u64,
    /// Initial arrival-rate estimate used for the warm start.
    pub initial_rate: f64,
}

impl Scenario {
    /// The paper's stable-workload setup (§6.1): Gamma arrivals with CV 6
    /// at `rate` req/s for 20 minutes, `S_in = 512`, `S_out = 128`.
    pub fn paper_stable(model: ModelSpec, trace: AvailabilityTrace, rate: f64, seed: u64) -> Self {
        let spec = WorkloadSpec::paper_stable(rate);
        let requests = spec.generate(&mut SimRng::new(seed).stream("arrivals"));
        Scenario {
            model,
            trace,
            pools: Vec::new(),
            requests,
            cloud: CloudConfig::default(),
            storage: ColdStorage::default(),
            seed,
            initial_rate: rate,
        }
    }

    /// A scenario with an explicit pre-generated request stream.
    pub fn with_requests(
        model: ModelSpec,
        trace: AvailabilityTrace,
        requests: Vec<Request>,
        initial_rate: f64,
        seed: u64,
    ) -> Self {
        Scenario {
            model,
            trace,
            pools: Vec::new(),
            requests,
            cloud: CloudConfig::default(),
            storage: ColdStorage::default(),
            seed,
            initial_rate,
        }
    }

    /// Replaces the single availability trace with a multi-pool market
    /// definition (one [`PoolSpec`] per zone). With pools set, the
    /// scenario's `trace` field is unused.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty.
    pub fn with_pools(mut self, pools: Vec<PoolSpec>) -> Self {
        assert!(!pools.is_empty(), "a market needs at least one pool");
        self.pools = pools;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrival(usize),
    /// Fixed-batch engine: a run-to-completion batch finished.
    BatchDone {
        pipeline: u64,
    },
    /// Continuous engine: a scheduler segment reached its last iteration
    /// boundary (retire/admit point).
    IterBoundary {
        pipeline: u64,
    },
    InitDone {
        id: InstanceId,
    },
    TransitionCommit {
        epoch: u64,
    },
    TransitionDone {
        epoch: u64,
    },
    PipelineReady {
        pipeline: u64,
    },
    RateTick,
}

/// In-flight work carried token-exact through a SpotServe transition into
/// a new pipeline (stateful recovery, §4).
#[derive(Clone)]
enum Carried {
    /// Fixed-batch engine: a uniform batch resumed at `committed` tokens.
    Batch(Vec<Request>, u32),
    /// Continuous engine: heterogeneous per-request records, each resumed
    /// at its own committed token.
    Records(Vec<RequestRun>),
}

/// One inference pipeline (a `P × M` GPU group serving batches).
#[derive(Debug)]
struct PipelineSlot {
    /// Stable identifier (survives vector reshuffles).
    id: u64,
    daemon: ContextDaemon,
    /// Key of the pending engine event: the whole-batch completion
    /// (fixed engine) or the next iteration-boundary event (continuous).
    batch_key: Option<EventKey>,
    /// Instances this pipeline runs on (used by Rerouting teardown).
    instances: Vec<InstanceId>,
    /// The pipeline is cold-loading until this instant (Rerouting).
    ready_at: SimTime,
}

/// A reconfiguration in flight.
#[derive(Debug)]
struct Transition {
    epoch: u64,
    /// Earliest kill deadline that motivated this transition, if any.
    deadline: Option<SimTime>,
}

/// Mixed-SKU fleet state. `None` whenever every pool leases the scenario's
/// base instance type — the single-SKU decision, pricing, and placement
/// paths then execute verbatim, keeping homogeneous replays byte-identical.
#[derive(Debug)]
struct HeteroState {
    /// Optimizer lane index of each pool (lane order = first-seen SKU
    /// order across the pool list).
    pool_lane: Vec<usize>,
    /// The lane whose SKU the serving mesh currently runs on (prices
    /// running batches and the old side of a migration).
    active_lane: usize,
    /// The lane the latest decision's `now` config is shaped for (prices
    /// the new mesh; placement draws from this lane's pools). Becomes
    /// `active_lane` when the configuration is adopted.
    decided_lane: usize,
}

/// The perf model pricing the *serving* mesh: the active lane's on a mixed
/// fleet, the base model otherwise. A free function over the two fields so
/// call sites holding disjoint `&mut` borrows of the system keep compiling.
fn serving_perf<'a>(optimizer: &'a ConfigOptimizer, hetero: &Option<HeteroState>) -> &'a PerfModel {
    match hetero {
        None => optimizer.perf(),
        Some(h) => optimizer.lane_perf(h.active_lane),
    }
}

/// The perf model pricing the *decided* (incoming) mesh — differs from
/// [`serving_perf`] only mid-transition on a mixed fleet.
fn decided_perf<'a>(optimizer: &'a ConfigOptimizer, hetero: &Option<HeteroState>) -> &'a PerfModel {
    match hetero {
        None => optimizer.perf(),
        Some(h) => optimizer.lane_perf(h.decided_lane),
    }
}

/// The capability card kmatch prices cross-SKU edges with.
fn sku_caps(ty: &InstanceType) -> SkuCaps {
    SkuCaps {
        memory_bytes: ty.gpu.memory_bytes,
        link_bandwidth: ty.net.inter_bw,
    }
}

/// The discrete-event serving simulation. See the crate-level example.
/// The grace-period triage decision attached to a migration plan (see
/// [`migration::triage`]): which tier the transferable-data fraction
/// graded into, and the fraction itself (what share of the optional
/// checkpoint data the remaining grace can move).
#[derive(Debug, Clone, Copy)]
struct CheckpointTriage {
    tier: TriageTier,
    fraction: f64,
    /// The tier an undegraded link would have earned, when a chaos
    /// degraded-link window cost a tier (the transfer stretched past the
    /// grace budget and triage downgraded instead of blowing it).
    downgraded_from: Option<TriageTier>,
}

impl CheckpointTriage {
    fn full() -> Self {
        CheckpointTriage {
            tier: TriageTier::Full,
            fraction: 1.0,
            downgraded_from: None,
        }
    }
}

/// The telemetry rendering of a triage tier.
fn verdict_of(tier: TriageTier) -> TriageVerdict {
    match tier {
        TriageTier::Full => TriageVerdict::Full,
        TriageTier::Partial => TriageVerdict::Partial,
        TriageTier::Restart => TriageVerdict::Restart,
    }
}

pub struct ServingSystem {
    opts: SystemOptions,
    scenario: Scenario,
    optimizer: ConfigOptimizer,
    cloud: CloudMarket,
    /// Policy-driven acquisition (consulted for every non-reactive
    /// [`FleetPolicy`]; [`FleetPolicy::ReactiveSpot`] keeps the legacy
    /// paper-exact path below).
    fleet: FleetController,
    /// The optimizer's most recent target fleet size `N` (serving need,
    /// excluding spares) — what the fleet controller steers toward.
    fleet_target: u32,
    events: EventQueue<Ev>,
    now: SimTime,
    epoch: u64,

    // Fleet state.
    ready: BTreeSet<InstanceId>,
    initializing: BTreeMap<InstanceId, SimTime>,
    noticed: BTreeMap<InstanceId, SimTime>,

    // Serving state.
    current: Option<ParallelConfig>,
    /// The configuration whose context is materialized on `assignment` —
    /// survives serving halts (the context daemons outlive the engines).
    context_shape: Option<ParallelConfig>,
    assignment: DeviceAssignment,
    pipelines: Vec<PipelineSlot>,
    /// Waiting requests, with the EDF dirty flag the continuous engine's
    /// admission consults (pushes dirty it, boundary sorts clear it).
    pending: PendingQueue,
    transition: Option<Transition>,
    next_pipeline_id: u64,
    /// Rate-triggered reconfigurations are suppressed until this instant
    /// (hysteresis: let the previous transition settle).
    settle_until: SimTime,
    rerouting_shape: Option<(u32, u32, u32)>, // fixed (P, M, B)
    /// The bootstrap configuration (the `-Controller` ablation pins this).
    frozen_config: Option<ParallelConfig>,
    initial_fleet_target: u32,
    /// Last spot price (cents/hour) each pool was seen at, for
    /// edge-triggered price-pressure feeding under
    /// [`FleetPolicy::CostPerToken`]. Empty until first consulted.
    last_spot_cents: Vec<u32>,
    /// Mixed-SKU fleet state; `None` on homogeneous fleets (see
    /// [`HeteroState`]).
    hetero: Option<HeteroState>,

    // Accounting.
    outstanding: usize,
    arrivals_seen: Vec<SimTime>,
    slo_rejections: Vec<Request>,
    latency: LatencyReport,
    config_changes: Vec<ConfigChange>,
    fleet_timeline: Vec<(SimTime, u32, u32)>,
    preemptions: u32,
    faults: u32,
    lapses: u32,
    grants: u32,
    arrivals_end: SimTime,
    /// Pending migration-transition event instants (commit + resume), the
    /// non-cloud synchronization points the sharded runner barriers on.
    /// Values count events sharing an instant.
    sync_points: BTreeMap<SimTime, u32>,
    /// Events processed so far (epoch-log instrumentation).
    events_processed: u64,
    /// Control-plane telemetry recorder (decisions, transitions, fleet
    /// commands, rollups). Disabled unless [`SystemOptions::telemetry`];
    /// disabled it is one branch per emit point.
    telemetry: Recorder,
    /// Admission-verdict tallies of schedulers already torn down; live
    /// schedulers' counters are added at rollup time so the cumulative
    /// totals survive detach/restore cycles.
    retired_counters: EngineCounters,
}

impl ServingSystem {
    /// Builds a system ready to [`run`](ServingSystem::run).
    pub fn new(opts: SystemOptions, scenario: Scenario) -> Self {
        let gpus_per_instance = scenario.cloud.instance_type.gpus_per_instance;
        let mem = if opts.ablation.no_migration_planner {
            // Without Algorithm 2's memory-optimized ordering, engines must
            // reserve communication buffers sized like a weight shard
            // (§6.2: this is what raises GPT-20B's minimum from 12 to 16
            // GPUs). Use the shard size at the paper's largest mesh.
            let shard = scenario.model.param_bytes() / 16;
            llmsim::MemoryModel::default().with_migration_buffer(shard)
        } else {
            llmsim::MemoryModel::default()
        };
        let mut optimizer = ConfigOptimizer::new(
            parallelism::PerfModel::paper_defaults(scenario.model.clone()),
            mem,
            scenario.cloud.instance_type.gpu,
            parallelism::ConfigSpace::default(),
            gpus_per_instance,
            opts.max_instances,
        )
        // Algorithm 1 prices candidates with the estimator of the engine
        // that actually serves (fixed batch-fill delay vs iteration-level
        // slot turnover).
        .with_engine_mode(opts.engine);
        // A pool leasing a different SKU than the base type turns on the
        // heterogeneous decision path: one optimizer lane per distinct SKU,
        // pools mapped onto lanes in first-seen order.
        let base_ty = &scenario.cloud.instance_type;
        let mixed = scenario
            .pools
            .iter()
            .any(|p| p.instance_type.as_ref().is_some_and(|t| t != base_ty));
        let hetero = if mixed {
            let mut lane_types: Vec<InstanceType> = Vec::new();
            let mut pool_lane = Vec::with_capacity(scenario.pools.len());
            for p in &scenario.pools {
                let ty = p.instance_type.clone().unwrap_or_else(|| base_ty.clone());
                let lane = lane_types.iter().position(|t| *t == ty).unwrap_or_else(|| {
                    lane_types.push(ty.clone());
                    lane_types.len() - 1
                });
                pool_lane.push(lane);
            }
            for ty in lane_types {
                optimizer = optimizer.with_sku(ty);
            }
            Some(HeteroState {
                pool_lane,
                active_lane: 0,
                decided_lane: 0,
            })
        } else {
            None
        };
        let mut cloud = if scenario.pools.is_empty() {
            CloudMarket::single(
                scenario.cloud.clone(),
                scenario.trace.clone(),
                scenario.seed,
            )
        } else {
            CloudMarket::new(&scenario.cloud, &scenario.pools, scenario.seed)
        };
        if opts.telemetry {
            cloud.enable_telemetry();
        }
        let fleet = FleetController::new(
            opts.fleet_policy,
            cloud.pool_count(),
            scenario.cloud.spot_grant_delay,
        );
        let name = match opts.policy {
            Policy::SpotServe => "SpotServe",
            Policy::Reparallelization => "Reparallelization",
            Policy::Rerouting => "Rerouting",
            Policy::OnDemandOnly { .. } => "OnDemand",
        };
        let arrivals_end = scenario
            .requests
            .last()
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO);
        let telemetry = if opts.telemetry {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        };
        ServingSystem {
            opts,
            optimizer,
            cloud,
            fleet,
            fleet_target: 0,
            events: EventQueue::new(),
            now: SimTime::ZERO,
            epoch: 0,
            ready: BTreeSet::new(),
            initializing: BTreeMap::new(),
            noticed: BTreeMap::new(),
            current: None,
            context_shape: None,
            assignment: DeviceAssignment::new(),
            pipelines: Vec::new(),
            pending: PendingQueue::new(),
            transition: None,
            next_pipeline_id: 0,
            settle_until: SimTime::ZERO,
            rerouting_shape: None,
            frozen_config: None,
            initial_fleet_target: 0,
            last_spot_cents: Vec::new(),
            hetero,
            outstanding: scenario.requests.len(),
            arrivals_seen: Vec::new(),
            slo_rejections: Vec::new(),
            latency: LatencyReport::new(name),
            config_changes: Vec::new(),
            fleet_timeline: Vec::new(),
            preemptions: 0,
            faults: 0,
            lapses: 0,
            grants: 0,
            arrivals_end,
            sync_points: BTreeMap::new(),
            events_processed: 0,
            telemetry,
            retired_counters: EngineCounters::default(),
            scenario,
        }
    }

    /// GPUs per instance of the SKU new configurations are shaped for (the
    /// decided lane's on a mixed fleet, the base type's otherwise).
    fn gpus_per_instance(&self) -> u8 {
        match &self.hetero {
            None => self.scenario.cloud.instance_type.gpus_per_instance,
            Some(h) => self.optimizer.lane_type(h.decided_lane).gpus_per_instance,
        }
    }

    /// Instances usable for serving decisions: engine up, not being killed.
    fn usable(&self) -> Vec<InstanceId> {
        self.ready
            .iter()
            .copied()
            .filter(|id| !self.noticed.contains_key(id))
            .collect()
    }

    /// The SKU lane instance `id` belongs to (mixed fleets only).
    fn lane_of_instance(&self, id: InstanceId) -> usize {
        let h = self.hetero.as_ref().expect("mixed fleet");
        h.pool_lane[PoolId::of_instance(id).0 as usize]
    }

    /// Usable instances per lane, in lane registration order.
    fn lane_avail(&self) -> Vec<u32> {
        let mut avail = vec![0u32; self.optimizer.lane_count()];
        for id in self.usable() {
            avail[self.lane_of_instance(id)] += 1;
        }
        avail
    }

    /// Instances a new mesh may be placed on: every usable instance on a
    /// homogeneous fleet; the decided lane's usable instances on a mixed
    /// one (the serving mesh stays single-SKU).
    fn placement_instances(&self) -> Vec<InstanceId> {
        match &self.hetero {
            None => self.usable(),
            Some(h) => self
                .usable()
                .into_iter()
                .filter(|&id| self.lane_of_instance(id) == h.decided_lane)
                .collect(),
        }
    }

    /// Maps a lane-annotated decision onto the legacy decision shape,
    /// recording the decided lane and the target lane's fleet size.
    fn apply_multi(&mut self, d: MultiSkuDecision) -> OptimizerDecision {
        if let Some((lane, _)) = d.now {
            self.hetero.as_mut().expect("mixed fleet").decided_lane = lane;
        }
        if let Some((lane, c)) = d.target {
            self.fleet_target =
                c.instances_needed(self.optimizer.lane_type(lane).gpus_per_instance);
        }
        OptimizerDecision {
            now: d.now.map(|(_, c)| c),
            target: d.target.map(|(_, c)| c),
            instance_delta: d.instance_delta,
        }
    }

    /// Algorithm 1 for the serving loop: the legacy single-SKU path on a
    /// homogeneous fleet (bit-identical to the pre-SKU system), the joint
    /// `(SKU, C, B)` decision across lanes on a mixed one.
    fn decide_serving(&mut self, n: u32, alpha: f64) -> OptimizerDecision {
        let hits_before = self.optimizer.memo_hits();
        let d = if self.hetero.is_none() {
            let d = self.optimizer.decide_with_incumbent(n, alpha, self.current);
            self.note_target(&d);
            d
        } else {
            let d = self.optimizer.decide_multi(&self.lane_avail(), alpha);
            self.apply_multi(d)
        };
        self.note_decision(&d, hits_before);
        d
    }

    /// Telemetry surface of an Algorithm 1 decision: the `(SKU, C, B)`
    /// picked (or the halt verdict) and whether a memo answered it.
    fn note_decision(&mut self, d: &OptimizerDecision, memo_hits_before: u64) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let memo_hit = self.optimizer.memo_hits() > memo_hits_before;
        let ev = match d.now {
            Some(c) => TelemetryEvent::Decision {
                sku: match &self.hetero {
                    None => self.scenario.cloud.instance_type.name,
                    Some(h) => self.optimizer.lane_type(h.decided_lane).name,
                },
                data: c.data,
                pipe: c.pipeline,
                tensor: c.tensor,
                batch: c.batch,
                memo_hit,
            },
            None => TelemetryEvent::DecisionHalt { memo_hit },
        };
        self.telemetry.emit(self.now, ev);
    }

    /// `φ(C)` of the serving mesh under its own SKU's estimator.
    fn serving_throughput(&self, c: &ParallelConfig) -> f64 {
        match &self.hetero {
            None => self.optimizer.estimated_throughput(c),
            Some(h) => self.optimizer.lane_throughput(h.active_lane, c),
        }
    }

    /// `l_req(C, α)` of a config on the serving mesh's SKU.
    fn serving_latency(&self, c: &ParallelConfig, alpha: f64) -> SimDuration {
        match &self.hetero {
            None => self.optimizer.estimated_latency(c, alpha),
            Some(h) => self.optimizer.lane_latency(h.active_lane, c, alpha),
        }
    }

    fn sample_fleet(&mut self) {
        let spot = self
            .ready
            .iter()
            .chain(self.initializing.keys())
            .filter(|id| {
                self.cloud
                    .fleet()
                    .any(|i| i.id == **id && i.kind == InstanceKind::Spot)
            })
            .count() as u32;
        let od = self
            .ready
            .iter()
            .chain(self.initializing.keys())
            .filter(|id| {
                self.cloud
                    .fleet()
                    .any(|i| i.id == **id && i.kind == InstanceKind::OnDemand)
            })
            .count() as u32;
        self.fleet_timeline.push((self.now, spot, od));
    }

    /// Estimated arrival rate over the last rate-tick window (§3.2).
    fn rate_estimate(&self) -> f64 {
        let window = self.opts.rate_tick;
        let lo = SimTime::from_micros(self.now.as_micros().saturating_sub(window.as_micros() * 4));
        let recent = self
            .arrivals_seen
            .iter()
            .rev()
            .take_while(|&&t| t >= lo)
            .count();
        if self.now == SimTime::ZERO || self.arrivals_seen.is_empty() {
            return self.scenario.initial_rate;
        }
        let span = self.now.saturating_since(lo).as_secs_f64().max(1.0);
        recent as f64 / span
    }

    /// Runs the simulation to completion and reports.
    ///
    /// Equivalent to [`start`](Self::start), advancing through every event
    /// up to the drain cap, then [`finish`](Self::finish) — the sharded
    /// runner drives the same three phases with barriers in between, so
    /// single-shard runs execute this exact path.
    pub fn run(mut self) -> RunReport {
        self.start();
        let hard_stop = self.hard_stop();
        self.advance_until(hard_stop);
        self.finish()
    }

    /// Seeds the event horizon: warm start, the arrival stream, and the
    /// first rate tick. Called exactly once, before any stepping.
    pub(crate) fn start(&mut self) {
        self.bootstrap();
        let arrivals: Vec<(usize, SimTime)> = self
            .scenario
            .requests
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.arrival))
            .collect();
        for (i, t) in arrivals {
            self.events.schedule(t, Ev::Arrival(i));
        }
        self.events
            .schedule(SimTime::ZERO + self.opts.rate_tick, Ev::RateTick);
    }

    /// The instant past which the drain cap stops the simulation.
    fn hard_stop(&self) -> SimTime {
        self.arrivals_end + self.opts.drain_cap
    }

    /// Processes every event at or before `barrier`, in exactly the order
    /// the sequential loop would. Returns `false` once the run is over
    /// (every request settled, the event horizon empty, or the hard stop
    /// passed) and `true` when only the barrier stopped it.
    pub(crate) fn advance_until(&mut self, barrier: SimTime) -> bool {
        let hard_stop = self.hard_stop();
        loop {
            if self.outstanding == 0 {
                return false;
            }
            let next_internal = self.events.peek_time();
            let next_cloud = self.cloud.peek_time();
            let next = match (next_internal, next_cloud) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return false,
            };
            if next > hard_stop {
                return false;
            }
            if next > barrier {
                return true;
            }
            self.now = next;
            self.events_processed += 1;
            if next_cloud == Some(next) && next_internal.map(|t| next < t).unwrap_or(true) {
                let (_, ev) = self.cloud.pop_next().expect("peeked");
                self.on_cloud_event(ev);
            } else if next_internal == Some(next) {
                let (_, ev) = self.events.pop().expect("peeked");
                self.on_event(ev);
            } else {
                let (_, ev) = self.cloud.pop_next().expect("peeked");
                self.on_cloud_event(ev);
            }
        }
    }

    /// The next instant this system must synchronize with its siblings at
    /// when run as one shard of a partitioned fleet: the next market event
    /// (grant, preemption notice/kill, spot price re-quote) or pending
    /// migration-transition commit/resume. `None` when no synchronization
    /// obligations remain.
    pub(crate) fn next_sync_time(&mut self) -> Option<SimTime> {
        let cloud = self.cloud.peek_time();
        let transition = self.sync_points.keys().next().copied();
        match (cloud, transition) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Events processed so far (epoch-log instrumentation).
    pub(crate) fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Registers a scheduled migration-transition event as a sync point.
    fn note_sync_point(&mut self, t: SimTime) {
        *self.sync_points.entry(t).or_insert(0) += 1;
    }

    /// Retires one sync point at `t` once its event has popped.
    fn clear_sync_point(&mut self, t: SimTime) {
        if let Some(n) = self.sync_points.get_mut(&t) {
            *n -= 1;
            if *n == 0 {
                self.sync_points.remove(&t);
            }
        }
    }

    /// Completions recorded so far (epoch-log instrumentation).
    pub(crate) fn completed_so_far(&self) -> usize {
        self.latency.completed()
    }

    /// Releases the fleet and closes the books.
    pub(crate) fn finish(self) -> RunReport {
        let mut sys = self;
        // Close the stream with a final rollup, then capture it BEFORE the
        // teardown lease releases below: those are end-of-run bookkeeping,
        // not market events, and would drag every live-floor query to zero.
        sys.emit_rollups();
        let telemetry = sys.telemetry.is_enabled().then(|| {
            TelemetryStream::from_sources(vec![sys.cloud.take_telemetry(), sys.telemetry.take()])
        });
        let ids: Vec<InstanceId> = sys.cloud.fleet().map(|i| i.id).collect();
        for id in ids {
            sys.cloud.release(sys.now, id);
        }
        RunReport {
            cost_usd: sys.cloud.total_usd(sys.now),
            cost_breakdown: sys.cloud.cost_breakdown(sys.now),
            latency: sys.latency,
            unfinished: sys.outstanding,
            config_changes: sys.config_changes,
            finished_at: sys.now,
            preemptions: sys.preemptions,
            faults: sys.faults,
            lapses: sys.lapses,
            grants: sys.grants,
            fleet_timeline: sys.fleet_timeline,
            slo_rejections: sys.slo_rejections,
            telemetry,
        }
    }

    /// Warm start: the paper's runs begin with an initialized system.
    fn bootstrap(&mut self) {
        let alpha = self.scenario.initial_rate;
        match self.opts.policy {
            Policy::OnDemandOnly { instances } => {
                let ids = self.cloud.prewarm_on_demand(instances);
                self.ready.extend(ids);
                self.initial_fleet_target = instances;
            }
            _ => {
                // Reactive keeps the paper's single-market view (pool 0);
                // the controller policies size against every pool.
                let target = if self.hetero.is_some() {
                    // Mixed fleet: size against per-lane pool capacities;
                    // the joint decision already prices each lane's SKU.
                    let h = self.hetero.as_ref().expect("mixed fleet");
                    let mut cap = vec![0u32; self.optimizer.lane_count()];
                    for (pid, &lane) in h.pool_lane.iter().enumerate() {
                        cap[lane] += self.cloud.capacity_in(PoolId(pid as u32));
                    }
                    let d = self.optimizer.decide_multi(&cap, alpha);
                    self.apply_multi(d);
                    self.fleet_target
                } else {
                    let cap = if self.opts.fleet_policy.is_reactive() {
                        self.cloud.current_capacity()
                    } else {
                        self.cloud.total_capacity()
                    };
                    let decision = self.optimizer.decide(cap, alpha);
                    self.note_target(&decision);
                    decision
                        .target
                        .map(|c| c.instances_needed(self.gpus_per_instance()))
                        .unwrap_or(0)
                };
                let want = target + self.opts.spare_instances;
                let ids = if matches!(
                    self.opts.fleet_policy,
                    FleetPolicy::SpotHedge { .. }
                        | FleetPolicy::CostAwareHedge { .. }
                        | FleetPolicy::CostPerToken { .. }
                ) {
                    // Hedged warm start: spread target + spares + hedge
                    // across pools so no zone holds a fleet-killing share.
                    let caps: Vec<u32> = (0..self.cloud.pool_count())
                        .map(|i| self.cloud.capacity_in(PoolId(i as u32)))
                        .collect();
                    let hedge = self.fleet.hedge(target, &caps, SimTime::ZERO);
                    let alloc = fleetctl::spread(want + hedge, &caps);
                    alloc
                        .iter()
                        .enumerate()
                        .flat_map(|(i, &n)| self.cloud.prewarm_spot_in(PoolId(i as u32), n))
                        .collect()
                } else {
                    self.cloud.prewarm_spot(want)
                };
                self.ready.extend(ids);
                self.initial_fleet_target = want;
            }
        }
        if matches!(self.opts.policy, Policy::Rerouting) {
            // Fix the model-parallel shape once (§6.1: "fixed pre-defined
            // optimal model parallel configuration").
            let d = self.optimizer.decide(self.ready.len() as u32, alpha);
            if let Some(c) = d.now.or(d.target) {
                self.rerouting_shape = Some((c.pipeline, c.tensor, c.batch));
            }
        }
        // Adopt the initial configuration at zero cost (pre-loaded).
        let n = self.ready.len() as u32;
        let hits_before = self.optimizer.memo_hits();
        let decision = match &self.hetero {
            None => self.optimizer.decide(n, alpha),
            Some(_) => {
                let d = self.optimizer.decide_multi(&self.lane_avail(), alpha);
                self.apply_multi(d)
            }
        };
        self.note_decision(&decision, hits_before);
        self.frozen_config = decision.now;
        if let Some(cfg) = self.pick_config(decision.now, n) {
            self.adopt_config(cfg, SimDuration::ZERO, 0, 0);
        }
        // A capacity-limited warm start may leave the controller policies
        // short of target: let them top up (on-demand fallback, hedge
        // spread) from t = 0.
        self.steer_fleet();
        self.sample_fleet();
    }

    /// Applies the policy's configuration constraints to a decision.
    fn pick_config(&self, suggested: Option<ParallelConfig>, n: u32) -> Option<ParallelConfig> {
        match self.opts.policy {
            Policy::Rerouting => {
                let (p, m, b) = self.rerouting_shape?;
                let per =
                    ParallelConfig::new(1, p, m, b).instances_needed(self.gpus_per_instance());
                let d = n / per;
                (d > 0).then(|| ParallelConfig::new(d, p, m, b))
            }
            _ => {
                if self.opts.ablation.no_controller {
                    // The controller is frozen at the bootstrap choice: the
                    // shape never adapts; data parallelism degrades when the
                    // fleet cannot hold it and restores afterwards.
                    if let Some(frz) = self.frozen_config {
                        let per = ParallelConfig::new(1, frz.pipeline, frz.tensor, frz.batch)
                            .instances_needed(self.gpus_per_instance());
                        let d = (n / per).min(frz.data);
                        return (d > 0)
                            .then(|| ParallelConfig::new(d, frz.pipeline, frz.tensor, frz.batch));
                    }
                    suggested
                } else {
                    suggested
                }
            }
        }
    }

    fn on_cloud_event(&mut self, ev: CloudEvent) {
        match ev {
            CloudEvent::SpotGranted { id } => {
                self.grants += 1;
                // Retire the oldest outstanding request deadline for this
                // pool and reset its failure streak.
                self.fleet.observe_grant(PoolId::of_instance(id).0 as usize);
                let done = self.now + self.opts.engine_launch;
                self.initializing.insert(id, done);
                self.events.schedule(done, Ev::InitDone { id });
                self.sample_fleet();
            }
            CloudEvent::OnDemandGranted { id } => {
                self.grants += 1;
                let done = self.now + self.opts.engine_launch;
                self.initializing.insert(id, done);
                self.events.schedule(done, Ev::InitDone { id });
                self.sample_fleet();
            }
            CloudEvent::PreemptionNotice { id, kill_at } => {
                self.preemptions += 1;
                self.noticed.insert(id, kill_at);
                self.on_preemption_notice(id, kill_at);
                self.sample_fleet();
            }
            CloudEvent::Preempted { id } => {
                // Feed the per-pool churn estimator (sizes the hedge).
                self.fleet
                    .observe_kill(PoolId::of_instance(id).0 as usize, self.now);
                self.ready.remove(&id);
                self.initializing.remove(&id);
                self.noticed.remove(&id);
                self.on_instance_gone(id, false);
                self.sample_fleet();
            }
            CloudEvent::InstanceFailed { id } => {
                // An unannounced death: a chaos kill, or a preemption
                // whose notice the harness swallowed. No grace window
                // ever existed — the context on this instance is gone,
                // so take the §4.2 fault path immediately with whatever
                // survived.
                self.faults += 1;
                self.fleet
                    .observe_kill(PoolId::of_instance(id).0 as usize, self.now);
                self.ready.remove(&id);
                self.initializing.remove(&id);
                self.noticed.remove(&id);
                self.on_instance_gone(id, true);
                self.sample_fleet();
            }
            CloudEvent::RequestLapsed { pool, .. } => {
                // A promised grant never materialized (capacity shed, or
                // the chaos grant-lapse channel). The tracker's backoff
                // masks the pool from hedged spreads; the reactive
                // baseline stays paper-exact and retries blindly on its
                // own cadence.
                self.lapses += 1;
                if !self.opts.fleet_policy.is_reactive() {
                    let d = self.fleet.observe_lapse(pool.0 as usize, self.now);
                    self.note_retry(d);
                }
            }
            CloudEvent::SpotPriceStep { .. } => {
                // A market re-quote changes no lease; it is purely a
                // steering point. The controller re-reads every pool's
                // price card (and the parity mask / price-pressure feed
                // under `CostPerToken`) in `steer_fleet` below.
            }
        }
        // Every cloud transition is a steering point for the controller
        // policies (no-op under ReactiveSpot, which replenishes via the
        // legacy path above).
        self.steer_fleet();
    }

    fn on_event(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival(i) => {
                let req = self.scenario.requests[i];
                self.arrivals_seen.push(req.arrival);
                self.pending.push_back(req);
                self.dispatch_all();
            }
            Ev::BatchDone { pipeline } => {
                if let Some(idx) = self.pipelines.iter().position(|s| s.id == pipeline) {
                    self.finish_batch(idx);
                    self.dispatch_all();
                }
            }
            Ev::IterBoundary { pipeline } => {
                if let Some(idx) = self.pipelines.iter().position(|s| s.id == pipeline) {
                    self.on_iter_boundary(idx);
                    self.dispatch_all();
                }
            }
            Ev::InitDone { id } => {
                if self.initializing.remove(&id).is_some() {
                    self.ready.insert(id);
                    self.on_instance_joined(id);
                    self.rebalance_on_demand();
                    self.sample_fleet();
                }
            }
            Ev::TransitionCommit { epoch } => {
                self.clear_sync_point(self.now);
                if self.transition.as_ref().map(|t| t.epoch) == Some(epoch) {
                    self.commit_transition();
                }
            }
            Ev::TransitionDone { epoch } => {
                self.clear_sync_point(self.now);
                if epoch == self.epoch {
                    self.complete_transition();
                }
            }
            Ev::PipelineReady { pipeline } => {
                if let Some(slot) = self.pipelines.iter_mut().find(|s| s.id == pipeline) {
                    slot.ready_at = self.now;
                    self.dispatch_all();
                }
            }
            Ev::RateTick => {
                self.on_rate_tick();
                if self.outstanding > 0 {
                    self.events
                        .schedule(self.now + self.opts.rate_tick, Ev::RateTick);
                }
            }
        }
    }

    // ---- Engine lifecycle ------------------------------------------

    /// KV-cache bytes one pipeline's engine provisions under `cfg` (the
    /// scheduler's admission budget, from [`llmsim::MemoryModel`]).
    fn pipeline_kv_budget(&self, cfg: &ParallelConfig) -> u64 {
        self.optimizer
            .memory()
            .kv_bytes_per_gpu(&self.scenario.model, cfg.pipeline, cfg.tensor)
            * cfg.gpus_per_pipeline() as u64
    }

    fn dispatch_all(&mut self) {
        match self.opts.engine {
            EngineMode::ContinuousBatching => self.dispatch_continuous(),
            EngineMode::FixedBatch => self.dispatch_fixed(),
        }
    }

    /// Fixed-batch engine: form a full batch on every idle ready pipeline
    /// and run it to completion.
    fn dispatch_fixed(&mut self) {
        let Some(cfg) = self.current else { return };
        for pi in 0..self.pipelines.len() {
            if self.pending.is_empty() {
                break;
            }
            let slot = &self.pipelines[pi];
            if slot.batch_key.is_some() || slot.ready_at > self.now {
                continue;
            }
            let id = slot.id;
            let take = (cfg.batch as usize).min(self.pending.len());
            let reqs: Vec<Request> = self.pending.drain_front(take).collect();
            let run = BatchRun::start(
                reqs,
                &cfg,
                self.now,
                serving_perf(&self.optimizer, &self.hetero),
            );
            let finish = run.finish_time();
            let key = self.events.schedule(finish, Ev::BatchDone { pipeline: id });
            let slot = &mut self.pipelines[pi];
            slot.daemon.attach(run);
            slot.batch_key = Some(key);
        }
    }

    /// Accounts requests dropped by SLO-aware admission on pipeline `pi`:
    /// a hopeless deadline is a terminal outcome, not a retry.
    fn drain_rejections(&mut self, pi: usize) {
        let Some(sched) = self.pipelines[pi].daemon.scheduler_mut() else {
            return;
        };
        for req in sched.take_rejected() {
            self.outstanding -= 1;
            self.telemetry
                .emit(self.now, TelemetryEvent::SloRejection { request: req.id.0 });
            self.slo_rejections.push(req);
        }
    }

    /// Continuous engine: admit waiting requests into each ready
    /// pipeline's iteration scheduler — immediately when the pipeline is
    /// at a boundary (or idle), otherwise by truncating the running
    /// segment to the next iteration boundary.
    fn dispatch_continuous(&mut self) {
        let Some(cfg) = self.current else { return };
        let kv_budget = self.pipeline_kv_budget(&cfg);
        let kv_bpt = self.scenario.model.kv_bytes_per_token();
        let now = self.now;
        // First pass: pipelines at a boundary (or idle) admit directly.
        for pi in 0..self.pipelines.len() {
            if self.pending.is_empty() {
                return;
            }
            if self.pipelines[pi].ready_at > self.now {
                continue;
            }
            let id = self.pipelines[pi].id;
            if self.pipelines[pi].daemon.scheduler().is_none() {
                self.pipelines[pi].daemon.attach_scheduler(
                    IterationScheduler::new(cfg, kv_bpt, kv_budget)
                        .with_prefill_chunk(self.opts.prefill_chunk),
                );
            }
            let sched = self.pipelines[pi]
                .daemon
                .scheduler_mut()
                .expect("just attached");
            if sched.next_event().is_none() {
                sched.admit(
                    &mut self.pending,
                    now,
                    serving_perf(&self.optimizer, &self.hetero),
                );
                let next = sched.next_event();
                self.drain_rejections(pi);
                if let Some(t) = next {
                    let key = self.events.schedule(t, Ev::IterBoundary { pipeline: id });
                    self.pipelines[pi].batch_key = Some(key);
                }
            }
        }
        // Second pass: find the first queued request some pipeline can
        // admit right now — skipping SLO-deferred requests in place, just
        // as the scheduler's own admission scan does, so a deferred head
        // cannot stall an admittable successor for a whole segment — and
        // truncate only the target pipeline's segment (the earliest
        // upcoming boundary among those with room); the others keep
        // decoding undisturbed. A request that fits *nowhere* ends the
        // scan: that is capacity head-blocking, unchanged from before.
        let perf = serving_perf(&self.optimizer, &self.hetero);
        let mut target: Option<(usize, Request)> = None;
        for r in self.pending.iter() {
            let mut fits_somewhere = false;
            let mut best: Option<(SimTime, usize)> = None;
            for (pi, slot) in self.pipelines.iter().enumerate() {
                if slot.ready_at > now {
                    continue;
                }
                let Some(sched) = slot.daemon.scheduler() else {
                    continue;
                };
                if !sched.fits(r) {
                    continue;
                }
                fits_somewhere = true;
                if !sched.can_admit(r, now, perf) {
                    continue; // SLO-deferred on this pipeline
                }
                if let Some(t) = sched.next_boundary_after(now) {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, pi));
                    }
                }
            }
            if let Some((_, pi)) = best {
                target = Some((pi, *r));
                break;
            }
            if !fits_somewhere {
                break;
            }
        }
        if let Some((pi, r)) = target {
            let id = self.pipelines[pi].id;
            let sched = self.pipelines[pi].daemon.scheduler_mut().expect("matched");
            if let Some(new_end) = sched.interrupt_for_admission(now, &r, perf) {
                if let Some(key) = self.pipelines[pi].batch_key.take() {
                    self.events.cancel(key);
                }
                let key = self
                    .events
                    .schedule(new_end, Ev::IterBoundary { pipeline: id });
                self.pipelines[pi].batch_key = Some(key);
            }
        }
    }

    /// Continuous engine: process one pipeline's iteration boundary —
    /// retire finished requests, admit waiting ones, reschedule.
    fn on_iter_boundary(&mut self, pipeline: usize) {
        self.pipelines[pipeline].batch_key = None;
        let now = self.now;
        let Some(sched) = self.pipelines[pipeline].daemon.scheduler_mut() else {
            return;
        };
        let retired = sched.advance(
            now,
            &mut self.pending,
            serving_perf(&self.optimizer, &self.hetero),
        );
        let next = sched.next_event();
        self.drain_rejections(pipeline);
        for request in retired {
            self.latency.record(workload::RequestOutcome {
                request,
                finished: now,
            });
            self.outstanding -= 1;
        }
        if let Some(t) = next {
            let id = self.pipelines[pipeline].id;
            let key = self.events.schedule(t, Ev::IterBoundary { pipeline: id });
            self.pipelines[pipeline].batch_key = Some(key);
        }
    }

    fn finish_batch(&mut self, pipeline: usize) {
        let slot = &mut self.pipelines[pipeline];
        slot.batch_key = None;
        if let Some(run) = slot.daemon.detach() {
            for req in run.requests() {
                self.latency.record(workload::RequestOutcome {
                    request: *req,
                    finished: self.now,
                });
                self.outstanding -= 1;
            }
        }
    }

    /// Tears down a pipeline's in-flight work, requeueing its requests at
    /// the front of the queue (recomputation path: progress is lost).
    fn requeue_pipeline(&mut self, pipeline: usize) {
        let slot = &mut self.pipelines[pipeline];
        if let Some(key) = slot.batch_key.take() {
            self.events.cancel(key);
        }
        if let Some(run) = slot.daemon.detach() {
            for req in run.requests().iter().rev() {
                self.pending.push_front(*req);
            }
        }
        if let Some(sched) = slot.daemon.detach_scheduler() {
            self.retired_counters.absorb(sched.counters());
            for req in sched.into_requests().into_iter().rev() {
                self.pending.push_front(req);
            }
        }
    }

    // ---- Policy reactions ------------------------------------------

    fn on_preemption_notice(&mut self, id: InstanceId, kill_at: SimTime) {
        // Reactive baselines do nothing until the instance is gone.
        if self.opts.policy == Policy::SpotServe {
            let involved = self.assignment.instances().contains(&id);
            if involved {
                self.plan_transition(Some(kill_at));
            } else {
                // A spare is dying: just top the pool back up.
                self.replenish_fleet();
            }
        }
    }

    /// An instance left the fleet. `unannounced` marks deaths that came
    /// with no preemption notice (chaos kills, lost notices): no JIT
    /// window ever existed, so an in-flight transition timed against the
    /// old fleet is invalidated rather than left to commit stale.
    fn on_instance_gone(&mut self, id: InstanceId, unannounced: bool) {
        let involved = self.assignment.instances().contains(&id);
        self.assignment.remove_instance(id);
        if self.assignment.is_empty() {
            self.context_shape = None;
        }
        match self.opts.policy {
            Policy::SpotServe => {
                if involved {
                    // The migration should already have moved off this
                    // instance; if not (fault case §4.2), re-plan now with
                    // whatever survived.
                    if self.transition.is_none() {
                        self.plan_transition(None);
                    } else if unannounced {
                        // Mid-transition unannounced death: the pending
                        // commit was JIT-timed against a device set that
                        // no longer exists. Abandon it and re-plan
                        // immediately with the survivors — only requests
                        // whose checkpoints lived on the dead instance
                        // lose inheritance and restart.
                        self.transition = None;
                        self.plan_transition(None);
                    }
                } else {
                    self.replenish_fleet();
                }
            }
            Policy::Reparallelization => {
                if involved {
                    self.plan_transition(None);
                } else {
                    self.replenish_fleet();
                }
            }
            Policy::Rerouting => {
                // Drop every pipeline touching this instance (slot
                // membership is authoritative, not the assignment).
                let mut touched = false;
                for pi in 0..self.pipelines.len() {
                    if self.pipelines[pi].instances.contains(&id) {
                        touched = true;
                        self.requeue_pipeline(pi);
                        let slot_id = self.pipelines[pi].id;
                        self.assignment.remove_pipeline(slot_id as u32);
                        self.pipelines[pi].instances.clear();
                        self.pipelines[pi].ready_at = SimTime::MAX;
                    }
                }
                if touched {
                    self.pipelines.retain(|s| !s.instances.is_empty());
                    self.reform_rerouting_pipelines();
                }
                self.replenish_fleet();
            }
            Policy::OnDemandOnly { .. } => {}
        }
    }

    fn on_instance_joined(&mut self, _id: InstanceId) {
        match self.opts.policy {
            Policy::SpotServe | Policy::Reparallelization => {
                if self.transition.is_none() {
                    if self.current.is_none() {
                        // Halted: any capacity is worth a transition.
                        self.plan_transition(None);
                    } else {
                        // Joining capacity is an optimization opportunity,
                        // not an emergency: apply the same hysteresis as a
                        // rate tick.
                        self.on_rate_tick_decision();
                    }
                }
            }
            Policy::Rerouting => self.reform_rerouting_pipelines(),
            Policy::OnDemandOnly { .. } => {
                if self.current.is_none() {
                    self.plan_transition(None);
                }
            }
        }
    }

    fn on_rate_tick(&mut self) {
        // Rollups ride the rate tick unconditionally: the epoch cadence of
        // the stream must not depend on transition/hysteresis state.
        self.emit_rollups();
        if self.transition.is_some() || self.now < self.settle_until {
            return;
        }
        match self.opts.policy {
            Policy::SpotServe | Policy::Reparallelization => self.on_rate_tick_decision(),
            Policy::Rerouting => {
                self.reform_rerouting_pipelines();
                self.replenish_fleet();
            }
            Policy::OnDemandOnly { .. } => {}
        }
        // Re-evaluate admission with the advanced clock: a request that
        // deferred on an idle pipeline (SLO projection inconclusive) must
        // eventually admit or turn certainly-hopeless rather than sit in
        // the queue until the drain cap.
        self.dispatch_all();
    }

    /// The hysteresis-guarded reconfiguration check shared by rate ticks
    /// and instance joins.
    fn on_rate_tick_decision(&mut self) {
        if self.transition.is_some() || self.now < self.settle_until {
            return;
        }
        let alpha = self.rate_estimate();
        let n = self.usable().len() as u32;
        let decision = self.decide_serving(n, alpha);
        let next = self.pick_config(decision.now, n);
        self.manage_fleet(decision.instance_delta);
        let lane_change = self
            .hetero
            .as_ref()
            .is_some_and(|h| h.decided_lane != h.active_lane);
        if next != self.current || lane_change {
            let worthwhile = match (self.current, next) {
                (Some(cur), Some(new)) => {
                    // Batch-only changes are free: always take them (a
                    // mesh key only matches within one SKU's lane).
                    if cur.mesh_key() == new.mesh_key() && !lane_change {
                        true
                    } else {
                        let backlog = self.pending.len();
                        let cap = cur.concurrent_requests() as usize;
                        // Overload: estimated rate exceeds capacity AND a
                        // real queue has formed (§3.2: reconfigure when
                        // serving capability is incompatible with the
                        // workload, not on estimator noise). Priced with
                        // the serving engine's own estimator.
                        let overloaded = self.serving_throughput(&cur) < alpha && backlog > cap;
                        // Or a large predicted latency win while calm.
                        let cur_l = self.serving_latency(&cur, alpha);
                        let new_l = match &self.hetero {
                            None => self.optimizer.estimated_latency(&new, alpha),
                            Some(h) => self.optimizer.lane_latency(h.decided_lane, &new, alpha),
                        };
                        let big_win =
                            backlog <= cap && new_l.as_secs_f64() < cur_l.as_secs_f64() * 0.7;
                        overloaded || big_win
                    }
                }
                _ => true,
            };
            if worthwhile {
                self.plan_transition(None);
            }
        }
    }

    /// Emits the epoch-granular rollups: one engine rollup plus one cost
    /// rollup per pool, every counter cumulative over the run (consumers
    /// difference adjacent rollups for windows). Rides the rate tick, so
    /// stream volume is bounded by wall-clock, not by request count.
    fn emit_rollups(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let mut counters = self.retired_counters;
        let mut residents = 0u32;
        for slot in &self.pipelines {
            if let Some(s) = slot.daemon.scheduler() {
                counters.absorb(s.counters());
                residents += s.in_flight() as u32;
            } else if let Some(run) = slot.daemon.batch() {
                residents += run.requests().len() as u32;
            }
        }
        self.telemetry.emit(
            self.now,
            TelemetryEvent::EngineRollup {
                queue_depth: self.pending.len() as u32,
                residents,
                admitted: counters.admitted,
                deferrals: counters.deferrals,
                rejected: counters.rejected,
                completed: self.latency.completed() as u64,
                tokens: self.latency.tokens_generated(),
            },
        );
        let breakdown = self.cloud.cost_breakdown(self.now);
        for pc in &breakdown.pools {
            self.telemetry.emit(
                self.now,
                TelemetryEvent::CostRollup {
                    pool: pc.pool.0,
                    sku: pc.sku,
                    spot_microusd: (pc.spot_usd * 1e6).round() as u64,
                    ondemand_microusd: (pc.ondemand_usd * 1e6).round() as u64,
                },
            );
        }
    }

    // ---- Fleet management ------------------------------------------

    /// Records the optimizer's desired fleet size for the controller.
    fn note_target(&mut self, decision: &OptimizerDecision) {
        if let Some(t) = decision.target {
            self.fleet_target = t.instances_needed(self.gpus_per_instance());
        }
    }

    /// A point-in-time [`FleetView`] for the controller: lease-level
    /// per-pool counts from the market, plus the optimizer's target.
    fn fleet_view(&self) -> FleetView {
        let n = self.cloud.pool_count();
        let mut pools = vec![PoolView::default(); n];
        let mut live_ondemand = 0;
        for info in self.cloud.fleet() {
            match info.kind {
                InstanceKind::OnDemand => live_ondemand += 1,
                InstanceKind::Spot => {
                    let p = PoolId::of_instance(info.id).0 as usize;
                    if info.kill_at.is_some() {
                        pools[p].noticed_spot += 1;
                    } else {
                        pools[p].live_spot += 1;
                    }
                }
            }
        }
        for (i, pool) in pools.iter_mut().enumerate() {
            let pid = PoolId(i as u32);
            pool.provisioning_spot = self.cloud.provisioning_spot_in(pid);
            pool.queued_spot = self.cloud.pending_spot_in(pid);
            pool.capacity = self.cloud.capacity_in(pid);
            // Cumulative lapse count: the visible promised-but-never-
            // delivered shortfall (capacity sheds and chaos grant lapses).
            pool.lapsed_spot = self.cloud.lapsed_spot_in(pid);
            // The pool's capability/price card: price-blind policies
            // ignore it; the cost-aware hedge masks and biases by it.
            let ty = self.cloud.instance_type_in(pid);
            pool.caps = PoolCaps::of(ty);
            // Dynamically priced pools quote their *current* spot price,
            // not the SKU's list price. Constant pools round to the same
            // cents as the list price, keeping their views byte-identical.
            pool.caps.spot_cents_per_hour =
                (self.cloud.spot_price_in(pid, self.now) * 100.0).round() as u32;
            pool.caps.fits_model = self
                .optimizer
                .memory()
                .min_gpus(
                    &self.scenario.model,
                    &ty.gpu,
                    self.opts.max_instances * ty.gpus_per_instance as u32,
                )
                .is_some();
        }
        FleetView {
            pools,
            live_ondemand,
            pending_ondemand: self.cloud.pending_on_demand(),
            target: self.fleet_target,
            spares: self.opts.spare_instances,
        }
    }

    /// Emits the retry/escalation telemetry for one tracker decision.
    fn note_retry(&mut self, d: fleetctl::RetryDecision) {
        self.telemetry.emit(
            self.now,
            TelemetryEvent::RetryScheduled {
                pool: d.pool,
                attempt: d.attempt,
                at_us: d.until.as_micros(),
            },
        );
        if d.escalate {
            self.telemetry.emit(
                self.now,
                TelemetryEvent::RetryEscalated {
                    pool: d.pool,
                    attempts: d.attempt,
                },
            );
        }
    }

    /// Consults the fleet controller and executes its command (the
    /// acquisition path for every non-reactive [`FleetPolicy`]). No-op
    /// under [`FleetPolicy::ReactiveSpot`] and [`Policy::OnDemandOnly`].
    fn steer_fleet(&mut self) {
        if matches!(self.opts.policy, Policy::OnDemandOnly { .. })
            || self.opts.fleet_policy.is_reactive()
        {
            return;
        }
        if let FleetPolicy::CostPerToken {
            parity_permille, ..
        } = self.opts.fleet_policy
        {
            self.feed_price_pressure(parity_permille);
        }
        // Safety net for grants that vanished without even a lapse event:
        // overdue request deadlines convert to failures before the
        // controller reads its own backoff masks.
        for d in self.fleet.sweep_overdue(self.now) {
            self.note_retry(d);
        }
        let view = self.fleet_view();
        let cmd = self
            .fleet
            .command_traced(&view, self.now, &mut self.telemetry);
        if cmd.is_noop() {
            return;
        }
        for (i, &k) in cmd.cancel_spot.iter().enumerate() {
            if k > 0 {
                self.cloud.cancel_pending_spot_in(PoolId(i as u32), k);
                // Voluntary cancellations retire their deadlines without
                // counting as failures.
                self.fleet.note_cancel(i, k);
            }
        }
        for (i, &k) in cmd.spot.iter().enumerate() {
            if k > 0 {
                self.cloud.request_spot_in(self.now, PoolId(i as u32), k);
                // Every issued request is due a grant (or a lapse) within
                // the tracker's deadline window.
                self.fleet.note_request(i, k, self.now);
            }
        }
        if cmd.ondemand > 0 {
            match cmd.ondemand_pool {
                // Cost-aware routing: the backstop lands in the named
                // pool (and inherits its SKU). Price-blind policies leave
                // this `None` — the legacy pool-0 path, byte-identical.
                Some(p) => self
                    .cloud
                    .request_on_demand_in(self.now, PoolId(p), cmd.ondemand),
                None => self.cloud.request_on_demand(self.now, cmd.ondemand),
            }
        }
        if cmd.release > 0 {
            // Idle instances only, on-demand first (the Algorithm 1
            // line 10 release priority the controller assumes).
            self.release_surplus(cmd.release);
        }
    }

    /// Feeds spot-price spikes into the preemption estimator as an
    /// anticipatory kill signal (see
    /// [`FleetController::observe_price_pressure`]). Edge-triggered: a
    /// pool contributes pressure only when its observed price *changes*
    /// to a level at or past the parity threshold, weighted by how far
    /// past parity it landed (one kill's worth per threshold-to-2×-parity
    /// span, clamped). On clouds where preemption probability correlates
    /// with price, this widens the hedge before the notices arrive.
    fn feed_price_pressure(&mut self, parity_permille: u32) {
        let n = self.cloud.pool_count();
        if self.last_spot_cents.len() != n {
            // First consultation: baseline at the SKU list price, so a
            // scenario that *starts* spiked still registers the spike.
            self.last_spot_cents = (0..n)
                .map(|i| {
                    let ty = self.cloud.instance_type_in(PoolId(i as u32));
                    (ty.spot_price_per_hour * 100.0).round() as u32
                })
                .collect();
        }
        for i in 0..n {
            let pid = PoolId(i as u32);
            let cents = (self.cloud.spot_price_in(pid, self.now) * 100.0).round() as u32;
            if cents == self.last_spot_cents[i] {
                continue;
            }
            self.last_spot_cents[i] = cents;
            let od_cents =
                (self.cloud.instance_type_in(pid).ondemand_price_per_hour * 100.0).round() as u32;
            if od_cents == 0 {
                continue;
            }
            let parity = f64::from(parity_permille) / 1000.0;
            let ratio = f64::from(cents) / f64::from(od_cents);
            if ratio >= parity {
                let weight = ((ratio - parity) / parity.max(1e-9)).clamp(0.0, 1.0);
                self.fleet.observe_price_pressure(i, weight, self.now);
            }
        }
    }

    /// Algorithm 1 lines 6-10: allocate on positive delta (on-demand and
    /// spot together when mixing), release on negative (on-demand first).
    fn manage_fleet(&mut self, delta: i64) {
        if matches!(self.opts.policy, Policy::OnDemandOnly { .. }) {
            return;
        }
        if !self.opts.fleet_policy.is_reactive() {
            // Controller policies steer toward `fleet_target` instead of
            // chasing the raw delta.
            self.steer_fleet();
            return;
        }
        let in_flight = self.initializing.len() as u32 + self.cloud.pending_spot();
        if delta > 0 {
            let want = (delta as u32 + self.opts.spare_instances).saturating_sub(in_flight);
            if want > 0 {
                self.cloud.request_spot(self.now, want);
            }
            if self.opts.on_demand_mixing {
                // Algorithm 1 line 8: allocate on-demand alongside spot so
                // a starved spot market does not stall serving. Cover the
                // part of the serving shortfall that spot requests are
                // still queueing for.
                let unfilled = self.cloud.pending_spot().min(delta as u32);
                let od_in_flight = self.initializing_on_demand();
                let od = unfilled.saturating_sub(od_in_flight);
                if od > 0 {
                    self.cloud.request_on_demand(self.now, od);
                }
            }
        } else if delta < 0 {
            let surplus = (-delta) as u32;
            let excess = surplus.saturating_sub(self.opts.spare_instances);
            if excess > 0 {
                self.release_surplus(excess);
            }
            self.cloud.cancel_pending_spot(surplus);
        }
    }

    /// Tops the fleet back to the initial target (Rerouting / spares).
    fn replenish_fleet(&mut self) {
        if matches!(self.opts.policy, Policy::OnDemandOnly { .. }) {
            return;
        }
        if !self.opts.fleet_policy.is_reactive() {
            self.steer_fleet();
            return;
        }
        let have =
            self.usable().len() as u32 + self.initializing.len() as u32 + self.cloud.pending_spot();
        if have < self.initial_fleet_target {
            let want = self.initial_fleet_target - have;
            self.cloud.request_spot(self.now, want);
        }
        if self.opts.on_demand_mixing {
            // Cover only the serving shortfall with on-demand, never the
            // spare pool (spares are cheap-capacity insurance, §3.2).
            let unfilled = self
                .cloud
                .pending_spot()
                .saturating_sub(self.opts.spare_instances);
            let od = unfilled.saturating_sub(self.initializing_on_demand());
            if od > 0 {
                self.cloud.request_on_demand(self.now, od);
            }
        }
    }

    /// On-demand instances currently provisioning.
    fn initializing_on_demand(&self) -> u32 {
        self.initializing
            .keys()
            .filter(|id| {
                self.cloud
                    .fleet()
                    .any(|i| i.id == **id && i.kind == InstanceKind::OnDemand)
            })
            .count() as u32
    }

    /// Releases held on-demand instances that spot capacity can now cover
    /// (Algorithm 1 line 10: on-demand has release priority). On-demand is
    /// kept only to bridge a spot shortfall, never as spare capacity.
    fn rebalance_on_demand(&mut self) {
        if !self.opts.on_demand_mixing {
            return;
        }
        let needed = self
            .current
            .map(|c| c.instances_needed(self.gpus_per_instance()))
            .unwrap_or(0);
        let usable = self.usable();
        let used = self.assignment.instances();
        let spot_usable = usable
            .iter()
            .filter(|id| {
                self.cloud
                    .fleet()
                    .any(|i| i.id == **id && i.kind == InstanceKind::Spot)
            })
            .count() as u32;
        let od_held: Vec<InstanceId> = usable
            .iter()
            .copied()
            .filter(|id| {
                self.cloud
                    .fleet()
                    .any(|i| i.id == *id && i.kind == InstanceKind::OnDemand)
            })
            .collect();
        let shortfall = needed.saturating_sub(spot_usable);
        let keep = shortfall.min(od_held.len() as u32);
        // Release idle on-demand first, then any excess.
        let mut excess: Vec<InstanceId> = od_held
            .iter()
            .copied()
            .filter(|id| !used.contains(id))
            .chain(od_held.iter().copied().filter(|id| used.contains(id)))
            .skip(keep as usize)
            .collect();
        excess.retain(|id| !used.contains(id));
        for id in excess {
            self.ready.remove(&id);
            self.cloud.release(self.now, id);
        }
    }

    /// Releases up to `n` instances not used by the current assignment,
    /// on-demand first (§3.2: "on-demand instances have higher priority due
    /// to their costs").
    fn release_surplus(&mut self, n: u32) {
        let used = self.assignment.instances();
        let mut idle: Vec<(bool, InstanceId)> = self
            .usable()
            .into_iter()
            .filter(|id| !used.contains(id))
            .map(|id| {
                let od = self
                    .cloud
                    .fleet()
                    .any(|i| i.id == id && i.kind == InstanceKind::OnDemand);
                (!od, id) // false sorts first: on-demand first
            })
            .collect();
        idle.sort_unstable();
        for (_, id) in idle.into_iter().take(n as usize) {
            self.ready.remove(&id);
            self.cloud.release(self.now, id);
        }
    }

    // ---- Transitions (SpotServe / Reparallelization) ----------------

    /// Decides the next configuration and schedules the transition: for
    /// SpotServe under a deadline, decoding continues until the JIT-arranged
    /// stop; otherwise the transition commits immediately.
    fn plan_transition(&mut self, deadline: Option<SimTime>) {
        if self.transition.is_some() {
            return;
        }
        let alpha = self.rate_estimate();
        let n = self.usable().len() as u32;
        let decision = self.decide_serving(n, alpha);
        let target = self.pick_config(decision.now, n);
        self.manage_fleet(decision.instance_delta);
        let lane_change = self
            .hetero
            .as_ref()
            .is_some_and(|h| h.decided_lane != h.active_lane);
        if target == self.current && deadline.is_none() && !lane_change {
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.transition = Some(Transition { epoch, deadline });
        self.telemetry.emit(
            self.now,
            TelemetryEvent::TransitionBegin {
                epoch: epoch as u32,
                deadline_us: deadline.map(|t| t.as_micros()).unwrap_or(u64::MAX),
            },
        );
        let commit_at = match (self.opts.policy, deadline) {
            (Policy::SpotServe, Some(kill_at)) => {
                // JIT arrangement: estimate migration cost, decode until
                // just enough grace remains (§4.1).
                let est = self.estimate_migration(target);
                preemption_stop_time(self.now, kill_at, est, self.opts.migration_safety_margin)
            }
            _ => self.now,
        };
        self.events
            .schedule(commit_at, Ev::TransitionCommit { epoch });
        self.note_sync_point(commit_at);
    }

    /// The worst (minimum) chaos bandwidth multiplier across the pools
    /// hosting `instances` and the current assignment, as of now — the
    /// factor a checkpoint transfer crossing those links is slowed by.
    /// Exactly `1.0` whenever no degraded-link window is active.
    fn link_factor(&self, instances: &[InstanceId]) -> f64 {
        let mut pools: BTreeSet<u32> = BTreeSet::new();
        for &id in instances {
            pools.insert(PoolId::of_instance(id).0);
        }
        for id in self.assignment.instances() {
            pools.insert(PoolId::of_instance(id).0);
        }
        pools
            .iter()
            .map(|&p| self.cloud.bandwidth_factor_in(PoolId(p), self.now))
            .fold(1.0, f64::min)
    }

    /// Stretches a transfer duration by a degraded-link factor. The
    /// `factor == 1.0` guard keeps faults-off timelines bit-exact (no
    /// float round-trip on the clean path).
    fn stretch(d: SimDuration, factor: f64) -> SimDuration {
        if factor < 1.0 {
            SimDuration::from_secs_f64(d.as_secs_f64() / factor)
        } else {
            d
        }
    }

    /// Rough migration-time estimate for JIT arrangement (recomputed
    /// exactly at commit time). Accounts for any active degraded-link
    /// window: a slowed transfer needs the decode loop to stop earlier.
    fn estimate_migration(&self, target: Option<ParallelConfig>) -> SimDuration {
        let Some(cfg) = target else {
            return SimDuration::ZERO;
        };
        let usable = self.placement_instances();
        let needed = cfg.instances_needed(self.gpus_per_instance()) as usize;
        if usable.len() < needed {
            return SimDuration::ZERO;
        }
        let (plan, _, _) = self.build_plan(cfg, &usable, SimTime::MAX);
        let tl = evaluate_plan(
            &plan,
            decided_perf(&self.optimizer, &self.hetero)
                .cost_model()
                .net(),
            &self.scenario.storage,
        );
        Self::stretch(tl.total, self.link_factor(&usable))
    }

    /// Builds the migration task + plan toward `cfg` on `instances`,
    /// triaging the checkpoint when the `deadline` cannot fit the full
    /// plan (§4.2 fault tolerance, graded by the transferable-data
    /// fraction — see [`migration::triage`]). Returns the plan, the
    /// device-map outcome, and the triage decision the commit must apply
    /// to carried requests.
    fn build_plan(
        &self,
        cfg: ParallelConfig,
        instances: &[InstanceId],
        deadline: SimTime,
    ) -> (
        MigrationPlan,
        crate::devicemap::DeviceMapOutcome,
        CheckpointTriage,
    ) {
        let stateful = !self.opts.ablation.no_interruption_arranger;
        let cache_bytes: Vec<u64> = self
            .pipelines
            .iter()
            .map(|s| {
                if stateful {
                    s.daemon.cache_bytes_at(self.now)
                } else {
                    0
                }
            })
            .collect();
        let progress: Vec<u32> = self
            .pipelines
            .iter()
            .map(|s| s.daemon.committed_iters_at(self.now))
            .collect();
        let old = OldState {
            config_and_assignment: self.context_shape.map(|c| (c, self.assignment.clone())),
            cache_bytes_per_pipeline: cache_bytes.clone(),
            progress_per_pipeline: progress,
        };
        // On a mixed fleet the mapper prices edges with each SKU's
        // capability card: forbidden where the shard exceeds the target
        // GPU's memory, discounted where the reuse crosses into a slower
        // fabric. Homogeneous fleets pass no table — the legacy matrix.
        let caps_of =
            |id: InstanceId| sku_caps(self.cloud.instance_type_in(PoolId::of_instance(id)));
        let table = self.hetero.as_ref().map(|h| {
            let src_lane = self
                .assignment
                .instances()
                .first()
                .map(|&id| self.lane_of_instance(id))
                .unwrap_or(h.active_lane);
            SkuTable {
                caps_of: &caps_of,
                src: sku_caps(self.optimizer.lane_type(src_lane)),
                required_bytes_per_gpu: self.optimizer.memory().required_bytes_per_gpu(
                    &self.scenario.model,
                    cfg.pipeline,
                    cfg.tensor,
                ),
            }
        });
        let outcome = map_devices_with_skus(
            &self.scenario.model,
            &cfg,
            instances,
            self.gpus_per_instance(),
            &old,
            !self.opts.ablation.no_device_mapper,
            table.as_ref(),
        );
        let planner_opts = PlannerOptions {
            memory_optimized: !self.opts.ablation.no_migration_planner,
            progressive: !self.opts.ablation.no_migration_planner,
            ..PlannerOptions::default()
        };
        let mut task = MigrationTask {
            model: self.scenario.model.clone(),
            old_config: self.context_shape.unwrap_or(cfg),
            new_config: cfg,
            old_assignment: self.assignment.clone(),
            new_assignment: outcome.assignment.clone(),
            cache_bytes_per_pipeline: cache_bytes,
            pipeline_inheritance: outcome.inheritance.clone(),
        };
        let net = decided_perf(&self.optimizer, &self.hetero)
            .cost_model()
            .net();
        let plan = plan_migration(&task, &planner_opts);
        let tl = evaluate_plan(&plan, net, &self.scenario.storage);
        // A chaos degraded-link window stretches the transfer: triage
        // against the *effective* timeline, so a mid-grace slowdown
        // downgrades the tier instead of blowing the deadline.
        let factor = self.link_factor(instances);
        if self.now + Self::stretch(tl.total, factor) <= deadline {
            return (plan, outcome, CheckpointTriage::full());
        }
        // Grace too short for the full checkpoint: grade what the budget
        // *can* move against the weights-only floor and triage — full
        // migration, partial checkpoint, or restart (§4.2, refined by the
        // ≥80% / 30–80% / <30% transferable-fraction rule).
        let full_cache = task.cache_bytes_per_pipeline.clone();
        let full_inherit = task.pipeline_inheritance.clone();
        task.cache_bytes_per_pipeline = vec![0; full_cache.len()];
        task.pipeline_inheritance = vec![None; cfg.data as usize];
        let zero_plan = plan_migration(&task, &planner_opts);
        let t_zero = evaluate_plan(&zero_plan, net, &self.scenario.storage).total;
        let budget = deadline.saturating_since(self.now);
        let fraction = transferable_fraction(
            budget,
            Self::stretch(t_zero, factor),
            Self::stretch(tl.total, factor),
        );
        let tier = triage(fraction);
        // The tier an undegraded link would have earned: when the
        // slowdown cost a tier, the commit reports the downgrade.
        let clean_tier = if factor < 1.0 {
            if self.now + tl.total <= deadline {
                TriageTier::Full
            } else {
                triage(transferable_fraction(budget, t_zero, tl.total))
            }
        } else {
            tier
        };
        let tri = CheckpointTriage {
            tier,
            fraction,
            downgraded_from: (tier < clean_tier).then_some(clean_tier),
        };
        match tri.tier {
            // Nearly everything fits: accept the small overrun and move
            // the complete checkpoint (the fault path re-plans if the
            // kill truly lands first).
            TriageTier::Full => (plan, outcome, tri),
            // Move the deepest `fraction` of each pipeline's cache;
            // inheritance survives, shallow requests recompute.
            TriageTier::Partial => {
                task.cache_bytes_per_pipeline = full_cache
                    .iter()
                    .map(|&b| (b as f64 * fraction) as u64)
                    .collect();
                task.pipeline_inheritance = full_inherit;
                let plan = plan_migration(&task, &planner_opts);
                (plan, outcome, tri)
            }
            // Not worth the budget: weights only, all context abandoned.
            TriageTier::Restart => {
                let mut outcome = outcome;
                outcome.inheritance = vec![None; cfg.data as usize];
                (zero_plan, outcome, tri)
            }
        }
    }

    /// Executes the transition decided earlier: freeze engines, migrate or
    /// restart, schedule completion.
    fn commit_transition(&mut self) {
        let Some(tr) = self.transition.as_ref() else {
            return;
        };
        let deadline = tr.deadline;
        let t_epoch = tr.epoch as u32;
        // Re-decide with the fleet as of now (it may have changed while
        // decoding through the grace period).
        let alpha = self.rate_estimate();
        let n = self.usable().len() as u32;
        let decision = self.decide_serving(n, alpha);
        let target = self.pick_config(decision.now, n);
        let lane_change = self
            .hetero
            .as_ref()
            .is_some_and(|h| h.decided_lane != h.active_lane);

        // Batch-size-only change: same mesh, nothing to migrate — adopt
        // instantly without touching running batches or resident context.
        // A mesh key only matches within one SKU: crossing lanes always
        // migrates.
        if let (Some(cur), Some(cfg)) = (self.current, target) {
            if cur.mesh_key() == cfg.mesh_key() && cur != cfg && !lane_change {
                self.current = Some(cfg);
                self.context_shape = Some(cfg);
                // Running schedulers adopt the new batch capacity in place.
                for slot in &mut self.pipelines {
                    if let Some(s) = slot.daemon.scheduler_mut() {
                        s.set_config(cfg);
                    }
                }
                self.config_changes.push(ConfigChange {
                    at: self.now,
                    config: Some(cfg),
                    pause: SimDuration::ZERO,
                    migrated_bytes: 0,
                    reloaded_bytes: 0,
                });
                self.telemetry.emit(
                    self.now,
                    TelemetryEvent::TransitionCommit {
                        epoch: t_epoch,
                        verdict: TriageVerdict::Full,
                        fraction_ppm: 1_000_000,
                        migrated_bytes: 0,
                        reloaded_bytes: 0,
                        pause_us: 0,
                    },
                );
                self.transition = None;
                self.dispatch_all();
                return;
            }
            if cur == cfg && deadline.is_none() && !lane_change {
                self.transition = None;
                return;
            }
        }

        let Some(cfg) = target else {
            // Nothing feasible: drop all batches and halt serving; the
            // context daemons keep the model context resident for reuse.
            for pi in 0..self.pipelines.len() {
                self.requeue_pipeline(pi);
            }
            self.pipelines.clear();
            self.current = None;
            self.config_changes.push(ConfigChange {
                at: self.now,
                config: None,
                pause: SimDuration::ZERO,
                migrated_bytes: 0,
                reloaded_bytes: 0,
            });
            self.telemetry
                .emit(self.now, TelemetryEvent::TransitionHalt { epoch: t_epoch });
            self.transition = None;
            return;
        };

        match self.opts.policy {
            Policy::SpotServe => {
                let usable = self.placement_instances();
                let (plan, outcome, tri) =
                    self.build_plan(cfg, &usable, deadline.unwrap_or(SimTime::MAX));
                let net = *decided_perf(&self.optimizer, &self.hetero)
                    .cost_model()
                    .net();
                let tl = evaluate_plan(&plan, &net, &self.scenario.storage);
                // Stage step for progressive overlap: one stage's share of
                // a prefill pass (the incoming mesh's SKU sets the pace).
                let perf = decided_perf(&self.optimizer, &self.hetero);
                let (s_in, _) = perf.sequence_shape();
                let stage_step = perf.cost_model().prefill_time(
                    &self.scenario.model,
                    cfg.pipeline,
                    cfg.tensor,
                    cfg.batch,
                    s_in,
                ) / cfg.pipeline as u64;
                let pause = if self.opts.ablation.no_migration_planner {
                    tl.total
                } else {
                    tl.effective_pause(stage_step)
                };
                // The transfer physically crosses the (possibly degraded)
                // links: the serving pause stretches with them.
                let pause = Self::stretch(pause, self.link_factor(&usable));
                self.telemetry.emit(
                    self.now,
                    TelemetryEvent::TransitionCommit {
                        epoch: t_epoch,
                        verdict: verdict_of(tri.tier),
                        fraction_ppm: (tri.fraction * 1e6).round() as u32,
                        migrated_bytes: tl.network_bytes,
                        reloaded_bytes: tl.storage_bytes,
                        pause_us: pause.as_micros(),
                    },
                );
                if let Some(from) = tri.downgraded_from {
                    self.telemetry.emit(
                        self.now,
                        TelemetryEvent::TriageDowngrade {
                            epoch: t_epoch,
                            from: verdict_of(from),
                            to: verdict_of(tri.tier),
                        },
                    );
                }

                // Freeze pipelines, preserving progress where the cache
                // migrates (stateful recovery) and requeueing the rest.
                let keep: Vec<bool> = outcome
                    .inheritance
                    .iter()
                    .map(|inh| inh.is_some())
                    .collect();
                let mut carried: Vec<Option<Carried>> = vec![None; cfg.data as usize];
                for pi in 0..self.pipelines.len() {
                    let inherit_to = outcome
                        .inheritance
                        .iter()
                        .position(|inh| *inh == Some(pi as u32));
                    let slot = &mut self.pipelines[pi];
                    if let Some(key) = slot.batch_key.take() {
                        self.events.cancel(key);
                    }
                    // Fixed-batch engine: a monolithic batch at uniform
                    // progress.
                    if let Some(run) = slot.daemon.detach() {
                        let committed = run.committed_iters_at(self.now);
                        let finished = run.finished_at(self.now);
                        if finished {
                            for req in run.requests() {
                                self.latency.record(workload::RequestOutcome {
                                    request: *req,
                                    finished: self.now,
                                });
                                self.outstanding -= 1;
                            }
                            continue;
                        }
                        // Partial triage moved only `fraction` of the
                        // cache: the batch resumes from the matching
                        // (token-exact) shallower depth.
                        let committed = match tri.tier {
                            TriageTier::Partial => (f64::from(committed) * tri.fraction) as u32,
                            _ => committed,
                        };
                        let worthwhile = recovery_worthwhile(
                            tl.total,
                            run.finish_time().saturating_since(run.started()),
                            run.iter_time(),
                            committed,
                        );
                        match inherit_to {
                            Some(d_new)
                                if keep[d_new]
                                    && committed > 0
                                    && worthwhile
                                    && !self.opts.ablation.no_interruption_arranger =>
                            {
                                carried[d_new] =
                                    Some(Carried::Batch(run.requests().to_vec(), committed));
                            }
                            _ => {
                                for req in run.requests().iter().rev() {
                                    self.pending.push_front(*req);
                                }
                            }
                        }
                        continue;
                    }
                    // Continuous engine: a heterogeneous in-flight set,
                    // checkpointed token-exact per request.
                    let Some(mut sched) = self.pipelines[pi].daemon.detach_scheduler() else {
                        continue;
                    };
                    self.retired_counters.absorb(sched.counters());
                    let records = sched.freeze(self.now);
                    let mut live: Vec<RequestRun> = Vec::new();
                    for r in records {
                        if r.is_done() {
                            // Last token committed exactly at the freeze.
                            self.latency.record(workload::RequestOutcome {
                                request: *r.request(),
                                finished: self.now,
                            });
                            self.outstanding -= 1;
                        } else {
                            live.push(r);
                        }
                    }
                    // Anything with cached tokens — committed output *or*
                    // prefill chunks of a half-prefilled prompt — is a
                    // checkpoint worth considering; truly fresh requests
                    // (no KV yet) recompute via the queue.
                    let progressed: Vec<RequestRun> = live
                        .iter()
                        .copied()
                        .filter(RequestRun::has_progress)
                        .collect();
                    // Partial triage: the plan moves only `fraction` of
                    // this pipeline's cache, so carry the deepest
                    // checkpoints that fit that share (ties broken by
                    // arrival order); the rest recompute via the queue.
                    let progressed: Vec<RequestRun> = match tri.tier {
                        TriageTier::Partial => {
                            let cached = |r: &RequestRun| u64::from(r.prefilled() + r.committed());
                            let total: u64 = progressed.iter().map(cached).sum();
                            let budget = (total as f64 * tri.fraction) as u64;
                            let mut order: Vec<usize> = (0..progressed.len()).collect();
                            order.sort_by_key(|&i| (std::cmp::Reverse(cached(&progressed[i])), i));
                            let mut keep_rec = vec![false; progressed.len()];
                            let mut used = 0u64;
                            for &i in &order {
                                let c = cached(&progressed[i]);
                                if used + c <= budget {
                                    used += c;
                                    keep_rec[i] = true;
                                }
                            }
                            progressed
                                .iter()
                                .enumerate()
                                .filter_map(|(i, r)| keep_rec[i].then_some(*r))
                                .collect()
                        }
                        _ => progressed,
                    };
                    // The paper's recovery guard, applied to the deepest
                    // request: migrating the cache must beat recomputing
                    // the committed tokens under the new configuration.
                    let max_committed = progressed
                        .iter()
                        .map(RequestRun::committed)
                        .max()
                        .unwrap_or(0);
                    let max_prefilled = progressed
                        .iter()
                        .map(RequestRun::prefilled)
                        .max()
                        .unwrap_or(0);
                    let worthwhile = !progressed.is_empty() && {
                        let n = progressed.len() as u32;
                        let s_in = progressed
                            .iter()
                            .map(|r| r.request().s_in)
                            .max()
                            .expect("non-empty");
                        let cost = decided_perf(&self.optimizer, &self.hetero).cost_model();
                        let prefill = cost.prefill_time(
                            &self.scenario.model,
                            cfg.pipeline,
                            cfg.tensor,
                            n,
                            s_in,
                        );
                        let iter = cost.decode_time(
                            &self.scenario.model,
                            cfg.pipeline,
                            cfg.tensor,
                            n,
                            s_in + max_committed / 2,
                        );
                        if max_committed > 0 {
                            recovery_worthwhile(tl.total, prefill, iter, max_committed)
                        } else {
                            // Only prefill chunks are cached: migrating the
                            // partial cache must beat redoing the deepest
                            // prefill's cached share.
                            let redo = prefill * max_prefilled as u64 / s_in.max(1) as u64;
                            tl.total < redo
                        }
                    };
                    match inherit_to {
                        Some(d_new)
                            if keep[d_new]
                                && worthwhile
                                && !self.opts.ablation.no_interruption_arranger =>
                        {
                            // Carry the cached requests; fresh ones (no
                            // KV yet) and triaged-out checkpoints
                            // recompute via the queue.
                            let carried_ids: BTreeSet<workload::RequestId> =
                                progressed.iter().map(|r| r.request().id).collect();
                            for r in live
                                .iter()
                                .rev()
                                .filter(|r| !carried_ids.contains(&r.request().id))
                            {
                                self.pending.push_front(*r.request());
                            }
                            carried[d_new] = Some(Carried::Records(progressed));
                        }
                        _ => {
                            for r in live.iter().rev() {
                                self.pending.push_front(*r.request());
                            }
                        }
                    }
                }
                self.pipelines.clear();
                self.adopt_config_with_carry(
                    cfg,
                    outcome.assignment,
                    pause,
                    tl.network_bytes,
                    tl.storage_bytes,
                    carried,
                );
            }
            Policy::Reparallelization | Policy::OnDemandOnly { .. } => {
                // Cold restart: requeue everything, reload from storage.
                for pi in 0..self.pipelines.len() {
                    self.requeue_pipeline(pi);
                }
                self.pipelines.clear();
                let instances = cfg.instances_needed(self.gpus_per_instance());
                let pause = self.opts.engine_launch
                    + self
                        .scenario
                        .storage
                        .load_time(self.scenario.model.param_bytes(), instances);
                self.telemetry.emit(
                    self.now,
                    TelemetryEvent::TransitionCommit {
                        epoch: t_epoch,
                        verdict: TriageVerdict::Restart,
                        fraction_ppm: 0,
                        migrated_bytes: 0,
                        reloaded_bytes: self.scenario.model.param_bytes(),
                        pause_us: pause.as_micros(),
                    },
                );
                let usable = self.placement_instances();
                let gpus: Vec<cloudsim::GpuRef> = usable
                    .iter()
                    .flat_map(|&i| {
                        (0..self.gpus_per_instance()).map(move |s| cloudsim::GpuRef::new(i, s))
                    })
                    .collect();
                let assignment = DeviceAssignment::contiguous(&cfg, &gpus);
                self.adopt_config_with_carry(
                    cfg,
                    assignment,
                    pause,
                    0,
                    self.scenario.model.param_bytes(),
                    vec![None; cfg.data as usize],
                );
            }
            Policy::Rerouting => unreachable!("rerouting does not use global transitions"),
        }
    }

    fn adopt_config(
        &mut self,
        cfg: ParallelConfig,
        pause: SimDuration,
        migrated: u64,
        reloaded: u64,
    ) {
        let usable = self.placement_instances();
        let gpus: Vec<cloudsim::GpuRef> = usable
            .iter()
            .flat_map(|&i| (0..self.gpus_per_instance()).map(move |s| cloudsim::GpuRef::new(i, s)))
            .collect();
        let assignment = DeviceAssignment::contiguous(&cfg, &gpus);
        self.adopt_config_with_carry(
            cfg,
            assignment,
            pause,
            migrated,
            reloaded,
            vec![None; cfg.data as usize],
        );
        if matches!(self.opts.policy, Policy::Rerouting) {
            // Track per-pipeline instances for teardown.
            self.index_rerouting_instances();
        }
    }

    fn adopt_config_with_carry(
        &mut self,
        cfg: ParallelConfig,
        assignment: DeviceAssignment,
        pause: SimDuration,
        migrated: u64,
        reloaded: u64,
        carried: Vec<Option<Carried>>,
    ) {
        self.epoch += 1;
        // The decided SKU's mesh takes over: pricing follows it from here.
        if let Some(h) = &mut self.hetero {
            h.active_lane = h.decided_lane;
        }
        let resume_at = self.now + pause;
        self.current = Some(cfg);
        self.context_shape = Some(cfg);
        self.assignment = assignment;
        self.pipelines = (0..cfg.data)
            .map(|_| {
                let id = self.next_pipeline_id;
                self.next_pipeline_id += 1;
                PipelineSlot {
                    id,
                    daemon: ContextDaemon::new(self.scenario.model.kv_bytes_per_token()),
                    batch_key: None,
                    instances: Vec::new(),
                    ready_at: resume_at,
                }
            })
            .collect();
        // Resume carried work (stateful recovery).
        for (d, carry) in carried.into_iter().enumerate() {
            match carry {
                None => continue,
                Some(Carried::Batch(mut reqs, committed)) => {
                    // Shrinking capacity (§3.3 footnote 2): the new
                    // configuration holds fewer concurrent requests;
                    // discard the excess cache and requeue those requests
                    // for recomputation.
                    if reqs.len() > cfg.batch as usize {
                        for req in reqs.split_off(cfg.batch as usize).into_iter().rev() {
                            self.pending.push_front(req);
                        }
                    }
                    let run = if committed == 0 {
                        BatchRun::start(
                            reqs,
                            &cfg,
                            resume_at,
                            serving_perf(&self.optimizer, &self.hetero),
                        )
                    } else {
                        BatchRun::resume(
                            reqs,
                            &cfg,
                            resume_at,
                            serving_perf(&self.optimizer, &self.hetero),
                            committed,
                        )
                    };
                    let finish = run.finish_time();
                    let id = self.pipelines[d].id;
                    let key = self.events.schedule(finish, Ev::BatchDone { pipeline: id });
                    self.pipelines[d].daemon.attach(run);
                    self.pipelines[d].batch_key = Some(key);
                }
                Some(Carried::Records(records)) => {
                    // Shrink handling for a heterogeneous set (§3.3
                    // footnote 2): the scheduler applies its own admission
                    // rule, keeping the deepest-progress records within
                    // the new capacity and KV budget; the rest requeue for
                    // recomputation.
                    let (sched, dropped) = IterationScheduler::new(
                        cfg,
                        self.scenario.model.kv_bytes_per_token(),
                        self.pipeline_kv_budget(&cfg),
                    )
                    .with_prefill_chunk(self.opts.prefill_chunk)
                    .restore_within_budget(
                        records,
                        resume_at,
                        serving_perf(&self.optimizer, &self.hetero),
                    );
                    for req in dropped.into_iter().rev() {
                        self.pending.push_front(req);
                    }
                    let Some(finish) = sched.next_event() else {
                        continue;
                    };
                    let id = self.pipelines[d].id;
                    let key = self
                        .events
                        .schedule(finish, Ev::IterBoundary { pipeline: id });
                    self.pipelines[d].daemon.attach_scheduler(sched);
                    self.pipelines[d].batch_key = Some(key);
                }
            }
        }
        self.config_changes.push(ConfigChange {
            at: resume_at,
            config: Some(cfg),
            pause,
            migrated_bytes: migrated,
            reloaded_bytes: reloaded,
        });
        self.settle_until = resume_at + self.opts.rate_tick;
        let epoch = self.epoch;
        self.transition = None;
        self.events
            .schedule(resume_at, Ev::TransitionDone { epoch });
        self.note_sync_point(resume_at);
        // Give back what the new configuration does not need. Controller
        // policies size the fleet themselves (the hedge deliberately holds
        // more than `used + spares`, and the fallback's on-demand bridge
        // must not be shed here).
        if self.opts.fleet_policy.is_reactive() {
            self.rebalance_on_demand();
            let used = self.assignment.instances().len() as u32;
            let have = self.usable().len() as u32;
            if have > used + self.opts.spare_instances {
                self.release_surplus(have - used - self.opts.spare_instances);
            }
        } else {
            self.steer_fleet();
        }
    }

    fn complete_transition(&mut self) {
        self.dispatch_all();
    }

    // ---- Rerouting specifics -----------------------------------------

    fn index_rerouting_instances(&mut self) {
        let Some(cfg) = self.current else { return };
        let mut rekeyed = DeviceAssignment::new();
        for (d, slot) in self.pipelines.iter_mut().enumerate() {
            let mut insts: Vec<InstanceId> = Vec::new();
            for pos in cfg.positions().filter(|p| p.pipeline == d as u32) {
                if let Some(gpu) = self.assignment.gpu_at(pos) {
                    insts.push(gpu.instance);
                    // Re-key into the slot-id namespace (see reform).
                    rekeyed.insert(
                        parallelism::MeshPosition::new(slot.id as u32, pos.stage, pos.shard),
                        gpu,
                    );
                }
            }
            insts.sort_unstable();
            insts.dedup();
            slot.instances = insts;
        }
        self.assignment = rekeyed;
    }

    /// Forms new Rerouting pipelines from idle ready instances, cold.
    fn reform_rerouting_pipelines(&mut self) {
        let Some((p, m, b)) = self.rerouting_shape else {
            return;
        };
        let shape = ParallelConfig::new(1, p, m, b);
        let per = shape.instances_needed(self.gpus_per_instance());
        loop {
            let used: BTreeSet<InstanceId> = self
                .pipelines
                .iter()
                .flat_map(|s| s.instances.iter().copied())
                .collect();
            let idle: Vec<InstanceId> = self
                .usable()
                .into_iter()
                .filter(|id| !used.contains(id))
                .collect();
            if (idle.len() as u32) < per {
                break;
            }
            let chosen: Vec<InstanceId> = idle.into_iter().take(per as usize).collect();
            // Cold pipeline: engine relaunch + weight load for one replica.
            let ready_at = self.now
                + self.opts.engine_launch
                + self
                    .scenario
                    .storage
                    .load_time(self.scenario.model.param_bytes(), per);
            let gpus: Vec<cloudsim::GpuRef> = chosen
                .iter()
                .flat_map(|&i| {
                    (0..self.gpus_per_instance()).map(move |s| cloudsim::GpuRef::new(i, s))
                })
                .collect();
            let id = self.next_pipeline_id;
            self.next_pipeline_id += 1;
            // Extend the assignment with this pipeline's positions, using
            // the slot id as the pipeline namespace so reformations never
            // clobber a surviving pipeline's bindings.
            for (pos, gpu) in shape.positions().zip(&gpus) {
                let pos = parallelism::MeshPosition::new(id as u32, pos.stage, pos.shard);
                self.assignment.insert(pos, *gpu);
            }
            self.pipelines.push(PipelineSlot {
                id,
                daemon: ContextDaemon::new(self.scenario.model.kv_bytes_per_token()),
                batch_key: None,
                instances: chosen,
                ready_at,
            });
            self.events
                .schedule(ready_at, Ev::PipelineReady { pipeline: id });
            // Track the effective configuration for reporting.
            let d_total = self.pipelines.len() as u32;
            self.current = Some(ParallelConfig::new(d_total, p, m, b));
            self.config_changes.push(ConfigChange {
                at: ready_at,
                config: self.current,
                pause: ready_at.saturating_since(self.now),
                migrated_bytes: 0,
                reloaded_bytes: self.scenario.model.param_bytes(),
            });
        }
        if self.pipelines.is_empty() {
            self.current = None;
        } else if let Some((p, m, b)) = self.rerouting_shape {
            self.current = Some(ParallelConfig::new(self.pipelines.len() as u32, p, m, b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::AvailabilityTrace;

    fn small_scenario(trace: AvailabilityTrace, rate: f64, seed: u64) -> Scenario {
        let mut s = Scenario::paper_stable(ModelSpec::opt_6_7b(), trace, rate, seed);
        // Shorten: keep the first 120 s of arrivals.
        s.requests.retain(|r| r.arrival < SimTime::from_secs(120));
        s
    }

    #[test]
    fn serves_everything_on_a_stable_fleet() {
        let scenario = small_scenario(AvailabilityTrace::constant(6), 1.0, 7);
        let total = scenario.requests.len();
        let mut report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
        assert_eq!(report.unfinished, 0);
        assert_eq!(report.latency.percentiles().count, total);
        assert!(report.cost_usd > 0.0);
        assert_eq!(report.preemptions, 0);
    }

    #[test]
    fn all_policies_complete_without_preemptions() {
        for opts in [
            SystemOptions::spotserve(),
            SystemOptions::reparallelization(),
            SystemOptions::rerouting(),
            SystemOptions::on_demand_only(6),
        ] {
            let scenario = small_scenario(AvailabilityTrace::constant(6), 0.8, 11);
            let report = ServingSystem::new(opts.clone(), scenario).run();
            assert_eq!(
                report.unfinished, 0,
                "{:?} left requests unfinished",
                opts.policy
            );
        }
    }

    #[test]
    fn preemption_is_survived_by_all_policies() {
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(60), 5)]);
        for opts in [
            SystemOptions::spotserve(),
            SystemOptions::reparallelization(),
            SystemOptions::rerouting(),
        ] {
            let scenario = small_scenario(trace.clone(), 1.0, 13);
            let report = ServingSystem::new(opts.clone(), scenario).run();
            assert_eq!(report.unfinished, 0, "{:?}", opts.policy);
            assert!(report.preemptions >= 1, "{:?}", opts.policy);
        }
    }

    #[test]
    fn spotserve_beats_reparallelization_under_churn() {
        let trace = AvailabilityTrace::from_steps(vec![
            (SimTime::ZERO, 6),
            (SimTime::from_secs(40), 5),
            (SimTime::from_secs(80), 4),
        ]);
        let mut p99 = Vec::new();
        for opts in [
            SystemOptions::spotserve(),
            SystemOptions::reparallelization(),
        ] {
            let scenario = small_scenario(trace.clone(), 1.2, 17);
            let mut report = ServingSystem::new(opts, scenario).run();
            assert_eq!(report.unfinished, 0);
            p99.push(report.latency.percentiles().p99);
        }
        assert!(
            p99[0] < p99[1],
            "SpotServe P99 {} must beat Reparallelization {}",
            p99[0],
            p99[1]
        );
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let scenario = small_scenario(AvailabilityTrace::paper_bs(), 1.0, 23);
            let mut r = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
            (
                r.latency.percentiles().mean,
                r.cost_usd,
                r.config_changes.len(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn on_demand_only_never_sees_preemption() {
        let scenario = small_scenario(AvailabilityTrace::paper_bs(), 1.0, 29);
        let report = ServingSystem::new(SystemOptions::on_demand_only(5), scenario).run();
        assert_eq!(report.preemptions, 0);
        assert_eq!(report.unfinished, 0);
    }

    /// The tentpole's acceptance scenario in miniature: the A100 spot pool
    /// collapses, the L4 pool stays healthy, and an H100 pool offers only
    /// on-demand capacity. The system must re-serve on a *different* SKU
    /// and finish every request.
    fn mixed_sku_scenario(seed: u64) -> Scenario {
        let a100 =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(60), 0)]);
        small_scenario(AvailabilityTrace::constant(0), 0.8, seed).with_pools(vec![
            PoolSpec::new("a100", a100).with_instance_type(InstanceType::a100()),
            PoolSpec::new("l4", AvailabilityTrace::constant(6))
                .with_instance_type(InstanceType::l4()),
            PoolSpec::new("h100", AvailabilityTrace::constant(0))
                .with_instance_type(InstanceType::h100()),
        ])
    }

    #[test]
    fn mixed_sku_collapse_recovers_on_another_sku_without_loss() {
        let opts =
            SystemOptions::spotserve().with_fleet_policy(fleetctl::FleetPolicy::cost_aware_hedge());
        let report = ServingSystem::new(opts, mixed_sku_scenario(41)).run();
        assert_eq!(
            report.unfinished, 0,
            "zero request loss across the SKU switch"
        );
        assert!(report.preemptions >= 1, "the A100 collapse was observed");
        assert!(
            report
                .config_changes
                .iter()
                .any(|c| c.config.is_some() && c.at > SimTime::from_secs(60)),
            "a post-collapse configuration was adopted"
        );
        assert!(report.cost_usd > 0.0);
    }

    #[test]
    fn mixed_sku_runs_are_deterministic() {
        let run = || {
            let opts = SystemOptions::spotserve()
                .with_fleet_policy(fleetctl::FleetPolicy::cost_aware_hedge());
            let mut r = ServingSystem::new(opts, mixed_sku_scenario(43)).run();
            (
                r.latency.percentiles().mean,
                r.cost_usd.to_bits(),
                r.config_changes.len(),
                r.preemptions,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn homogeneous_pools_never_build_hetero_state() {
        // Multi-pool but single-SKU: the hetero axis must stay off so the
        // legacy decision path executes verbatim.
        let scenario = small_scenario(AvailabilityTrace::constant(0), 0.8, 47).with_pools(vec![
            PoolSpec::new("z0", AvailabilityTrace::constant(3)),
            PoolSpec::new("z1", AvailabilityTrace::constant(3))
                .with_instance_type(cloudsim::InstanceType::g4dn_12xlarge()),
        ]);
        let sys = ServingSystem::new(
            SystemOptions::spotserve().with_fleet_policy(fleetctl::FleetPolicy::spot_hedge()),
            scenario,
        );
        assert!(sys.hetero.is_none(), "explicit base SKU is not mixed");
        let report = sys.run();
        assert_eq!(report.unfinished, 0);
    }

    #[test]
    fn config_history_is_recorded() {
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(50), 4)]);
        let scenario = small_scenario(trace, 1.0, 31);
        let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
        assert!(!report.config_changes.is_empty());
        assert!(report.config_changes[0].config.is_some());
    }
}
