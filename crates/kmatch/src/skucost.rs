//! Capability/memory-aware edge costs for cross-SKU device mapping.
//!
//! SpotServe's device mapper weighs edge `(gpu, position)` by reusable
//! context bytes (§3.3) — which is the whole story only while every GPU is
//! the same SKU. Once migration can cross instance types, two capability
//! terms enter the weight:
//!
//! * **Memory feasibility.** A position whose model shard does not fit the
//!   target GPU's memory is not a worse placement, it is *no* placement —
//!   the `-INFINITY` of the matching formulation, realized here as the
//!   [`FORBIDDEN`] sentinel (so weight sums stay overflow-safe in `i64`).
//! * **Bandwidth-asymmetric transfer pricing.** Reuse bytes that must move
//!   across the SKU boundary travel at the *bottleneck* of the source and
//!   target inter-instance links. Crossing into a slower-linked SKU
//!   discounts the reuse by the extra transfer time (expressed in
//!   source-bandwidth byte-equivalents, keeping the weight scale of the
//!   single-SKU matrix); crossing into an equal- or faster-linked SKU
//!   costs nothing extra.
//!
//! When source and target are the same SKU the penalty is *exactly zero*
//! and the memory check is vacuous (the optimizer only enumerates
//! configurations that fit), so single-SKU weight matrices — and therefore
//! the plans KM derives from them — are bit-identical to the pre-SKU path.

use crate::matrix::WeightMatrix;

/// The matching formulation's `-INFINITY`: an edge weight so negative that
/// no maximum-weight perfect matching includes it unless every alternative
/// is also forbidden. Scaled well inside `i64` (not `i64::MIN`) so
/// row/column potential arithmetic and total-weight sums over matchings of
/// up to 1024 forbidden edges stay overflow-free, while still dwarfing any
/// realizable reuse-byte weight (≲ 2⁴⁰) by orders of magnitude.
pub const FORBIDDEN: i64 = i64::MIN / 1024;

/// The capability bundle of one SKU that edge pricing consumes: per-GPU
/// memory and the effective inter-instance link bandwidth.
///
/// # Example
///
/// ```
/// use kmatch::SkuCaps;
/// let t4 = SkuCaps { memory_bytes: 16 << 30, link_bandwidth: 6e9 };
/// let l4 = SkuCaps { memory_bytes: 24 << 30, link_bandwidth: 4.5e9 };
/// assert!(l4.memory_bytes > t4.memory_bytes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkuCaps {
    /// Device memory available to the serving process, bytes per GPU.
    pub memory_bytes: u64,
    /// Effective inter-instance link bandwidth, bytes/s.
    pub link_bandwidth: f64,
}

/// Extra cost (in source-bandwidth byte-equivalents) of moving
/// `move_bytes` from `src` to `dst` instead of within `src`'s fabric.
///
/// Exactly `0` when the link bandwidths are equal (the single-SKU path) or
/// when the target link is faster; positive when the target link is the
/// bottleneck: `move_bytes · (src_bw / bottleneck_bw − 1)` is the transfer
/// slowdown converted back to bytes on the source scale.
pub fn transfer_penalty_bytes(move_bytes: u64, src: &SkuCaps, dst: &SkuCaps) -> i64 {
    if src.link_bandwidth <= dst.link_bandwidth {
        // Equal fabrics (the single-SKU case) take this branch with a
        // penalty of exactly zero — bit-identical legacy matrices.
        return 0;
    }
    let slowdown = src.link_bandwidth / dst.link_bandwidth - 1.0;
    (move_bytes as f64 * slowdown) as i64
}

/// The KM edge weight for placing a context of `reuse_bytes` (of which
/// `move_bytes` must cross the inter-instance fabric) onto a position that
/// requires `required_bytes` of device memory on the target GPU.
///
/// Returns [`FORBIDDEN`] when the position's shard does not fit `dst`;
/// otherwise reuse minus the bandwidth-asymmetry penalty.
///
/// # Example
///
/// ```
/// use kmatch::{edge_weight, SkuCaps, FORBIDDEN};
/// let a100 = SkuCaps { memory_bytes: 40 << 30, link_bandwidth: 40e9 };
/// let l4 = SkuCaps { memory_bytes: 24 << 30, link_bandwidth: 4.5e9 };
/// // The shard fits the L4 but the reuse crossing the fabric is
/// // discounted by the slower target link; a 30 GiB shard is forbidden
/// // outright.
/// let w = edge_weight(1 << 30, 1 << 26, 20 << 30, &a100, &l4);
/// assert!(0 < w && w < 1 << 30);
/// assert_eq!(edge_weight(1 << 30, 0, 30 << 30, &a100, &l4), FORBIDDEN);
/// ```
pub fn edge_weight(
    reuse_bytes: u64,
    move_bytes: u64,
    required_bytes: u64,
    src: &SkuCaps,
    dst: &SkuCaps,
) -> i64 {
    if required_bytes > dst.memory_bytes {
        return FORBIDDEN;
    }
    reuse_bytes as i64 - transfer_penalty_bytes(move_bytes, src, dst)
}

/// Applies SKU capability pricing over a plain reuse-byte matrix: entry
/// `(r, c)` becomes [`edge_weight`] of the reuse value under the row GPU's
/// and column position's SKUs. `src_of(r)` names row `r`'s current SKU,
/// `dst_of(c)` the SKU hosting column `c`, and `required_of(c)` the model
/// bytes position `c` must hold. `move_of(r, c)` is the portion of the
/// reuse that crosses the fabric.
pub fn capability_priced_matrix(
    reuse: &WeightMatrix,
    src_of: impl Fn(usize) -> SkuCaps,
    dst_of: impl Fn(usize) -> SkuCaps,
    required_of: impl Fn(usize) -> u64,
    move_of: impl Fn(usize, usize) -> u64,
) -> WeightMatrix {
    WeightMatrix::from_fn(reuse.rows(), reuse.cols(), |r, c| {
        let w = reuse.get(r, c);
        debug_assert!(w >= 0, "reuse bytes are non-negative");
        edge_weight(
            w as u64,
            move_of(r, c),
            required_of(c),
            &src_of(r),
            &dst_of(c),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::max_weight_assignment;

    const T4: SkuCaps = SkuCaps {
        memory_bytes: 16 << 30,
        link_bandwidth: 6e9,
    };
    const L4: SkuCaps = SkuCaps {
        memory_bytes: 24 << 30,
        link_bandwidth: 4.5e9,
    };
    const H100: SkuCaps = SkuCaps {
        memory_bytes: 80 << 30,
        link_bandwidth: 80e9,
    };

    #[test]
    fn model_exceeding_target_memory_is_forbidden() {
        // A 20 GiB shard fits the L4 and H100 but not the T4.
        let shard = 20u64 << 30;
        assert_eq!(edge_weight(1 << 30, 0, shard, &H100, &T4), FORBIDDEN);
        assert!(edge_weight(1 << 30, 0, shard, &H100, &L4) > 0);
        assert!(edge_weight(1 << 30, 0, shard, &T4, &H100) > 0);
        // Exactly-fits is allowed: the boundary is strict excess.
        assert!(edge_weight(0, 0, T4.memory_bytes, &H100, &T4) >= 0);
    }

    #[test]
    fn forbidden_edges_lose_to_any_feasible_matching() {
        // Two GPUs, two positions; position 1 only fits on GPU 0's SKU.
        // KM must take the (0,1)/(1,0) pairing even though raw reuse
        // prefers the diagonal.
        let w = WeightMatrix::from_fn(2, 2, |r, c| {
            let (src, dst) = if r == 0 { (&H100, &T4) } else { (&T4, &T4) };
            let dst = if c == 1 { &H100 } else { dst };
            let required = if c == 1 { 30u64 << 30 } else { 1 << 30 };
            let reuse = if r == c { 1 << 30 } else { 1 << 20 };
            // GPU 1 (a T4) cannot host the 30 GiB position 1.
            let dst = if r == 1 && c == 1 { &T4 } else { dst };
            edge_weight(reuse, 0, required, src, dst)
        });
        let a = max_weight_assignment(&w);
        assert_eq!(a.col_of_row(1), Some(0), "T4 GPU avoids the big shard");
        assert_eq!(a.col_of_row(0), Some(1), "capable GPU absorbs it");
    }

    #[test]
    fn transfer_pricing_is_bandwidth_asymmetric() {
        let bytes = 1u64 << 30;
        // Into a slower link: positive penalty, scaled by the slowdown.
        let into_slow = transfer_penalty_bytes(bytes, &T4, &L4);
        assert!(into_slow > 0);
        let expect = (bytes as f64 * (6e9 / 4.5e9 - 1.0)) as i64;
        assert_eq!(into_slow, expect);
        // Into a faster link: free (the source side was already the
        // bottleneck when the bytes were cached).
        assert_eq!(transfer_penalty_bytes(bytes, &T4, &H100), 0);
        // Equal links: *exactly* zero, the single-SKU invariant.
        assert_eq!(transfer_penalty_bytes(bytes, &T4, &T4), 0);
        assert_eq!(transfer_penalty_bytes(u64::MAX >> 8, &L4, &L4), 0);
        // The edge weight reflects the discount.
        let w_slow = edge_weight(bytes, bytes, 1, &T4, &L4);
        let w_same = edge_weight(bytes, bytes, 1, &T4, &T4);
        assert!(w_slow < w_same);
        assert_eq!(w_same, bytes as i64);
    }

    #[test]
    fn forbidden_sums_stay_overflow_safe() {
        // A whole row of forbidden edges must not overflow the potentials
        // or the total: 1024 forbidden edges sum within i64.
        let sum = FORBIDDEN.checked_mul(1024).expect("no overflow");
        assert!(sum < 0);
        let w = WeightMatrix::from_fn(4, 4, |_, c| if c == 0 { FORBIDDEN } else { 1 });
        let a = max_weight_assignment(&w);
        // One row is forced onto the forbidden column (perfect matching on
        // the smaller side), but only one.
        let forbidden_used = a.pairs().filter(|&(_, c)| c == 0).count();
        assert_eq!(forbidden_used, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::hungarian::max_weight_assignment;
    use proptest::prelude::*;

    fn arb_reuse_matrix(max_dim: usize) -> impl Strategy<Value = WeightMatrix> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            proptest::collection::vec(0i64..1_000_000, r * c)
                .prop_map(move |data| WeightMatrix::from_fn(r, c, |i, j| data[i * c + j]))
        })
    }

    proptest! {
        /// Satellite 4's pin: pricing a single-SKU fleet through the
        /// capability layer reproduces today's matrices verbatim — same
        /// entries, and therefore the same KM plan.
        #[test]
        fn single_sku_matrices_reproduce_legacy_plans(reuse in arb_reuse_matrix(7)) {
            let sku = SkuCaps { memory_bytes: 16 << 30, link_bandwidth: 6e9 };
            let priced = capability_priced_matrix(
                &reuse,
                |_| sku,
                |_| sku,
                |_| 1 << 30, // fits: single-SKU configs are pre-filtered
                |r, c| reuse.get(r, c) as u64,
            );
            for r in 0..reuse.rows() {
                for c in 0..reuse.cols() {
                    prop_assert_eq!(priced.get(r, c), reuse.get(r, c));
                }
            }
            let legacy = max_weight_assignment(&reuse);
            let sku_aware = max_weight_assignment(&priced);
            prop_assert_eq!(legacy.total_weight, sku_aware.total_weight);
            let a: Vec<_> = legacy.pairs().collect();
            let b: Vec<_> = sku_aware.pairs().collect();
            prop_assert_eq!(a, b, "identical inputs must give identical plans");
        }
    }
}
