//! The O(n³) Hungarian algorithm (shortest-augmenting-path formulation).

use crate::matrix::WeightMatrix;

/// The result of solving an assignment problem.
///
/// Every row (when `rows <= cols`) or every column (when `cols < rows`) of
/// the weight matrix is matched; vertices on the larger side may stay
/// unmatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    pub(crate) row_to_col: Vec<Option<usize>>,
    pub(crate) col_to_row: Vec<Option<usize>>,
    /// Sum of weights over matched pairs.
    pub total_weight: i64,
}

impl Assignment {
    /// The column matched to `row`, if any.
    pub fn col_of_row(&self, row: usize) -> Option<usize> {
        self.row_to_col.get(row).copied().flatten()
    }

    /// The row matched to `col`, if any.
    pub fn row_of_col(&self, col: usize) -> Option<usize> {
        self.col_to_row.get(col).copied().flatten()
    }

    /// All matched `(row, col)` pairs in row order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.row_to_col
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|c| (r, c)))
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.row_to_col.iter().flatten().count()
    }

    /// Whether nothing is matched (never true for valid inputs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Finds a maximum-weight assignment matching every vertex of the smaller
/// side of `weights`.
///
/// Runs in O(`n²·m`) time for an `n × m` matrix (`n ≤ m` after an internal
/// transpose), the classic Kuhn–Munkres bound the paper cites for its device
/// mapper (§3.3).
///
/// Note this maximizes the weight of a matching that *saturates the smaller
/// side* — exactly the paper's setting, where every mesh position must
/// receive a device (or every device a position when positions are scarce).
///
/// # Example
///
/// ```
/// use kmatch::{max_weight_assignment, WeightMatrix};
/// let w = WeightMatrix::from_rows(&[
///     vec![7, 5, 11],
///     vec![5, 4, 1],
/// ]);
/// let a = max_weight_assignment(&w);
/// assert_eq!(a.total_weight, 11 + 5);
/// ```
pub fn max_weight_assignment(weights: &WeightMatrix) -> Assignment {
    if weights.rows() > weights.cols() {
        // Solve the transposed problem and flip the mapping back.
        let t = max_weight_assignment(&weights.transposed());
        let mut row_to_col = vec![None; weights.rows()];
        let mut col_to_row = vec![None; weights.cols()];
        for (c, r) in t.pairs() {
            row_to_col[r] = Some(c);
            col_to_row[c] = Some(r);
        }
        return Assignment {
            row_to_col,
            col_to_row,
            total_weight: t.total_weight,
        };
    }

    let n = weights.rows();
    let m = weights.cols();
    const INF: i64 = i64::MAX / 4;

    // Minimize cost = -weight. 1-indexed potentials as in the classic
    // formulation: u over rows, v over columns, p[j] = row matched to j.
    let cost = |i: usize, j: usize| -> i64 { -weights.get(i - 1, j - 1) };
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost(i0, j) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![None; n];
    let mut col_to_row = vec![None; m];
    let mut total = 0i64;
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = Some(j - 1);
            col_to_row[j - 1] = Some(p[j] - 1);
            total += weights.get(p[j] - 1, j - 1);
        }
    }
    Assignment {
        row_to_col,
        col_to_row,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;

    #[test]
    fn one_by_one() {
        let a = max_weight_assignment(&WeightMatrix::from_rows(&[vec![-3]]));
        assert_eq!(a.total_weight, -3);
        assert_eq!(a.col_of_row(0), Some(0));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn square_known_answer() {
        // Classic example: optimal is 5 + 8 + 4 = anti-diagonal-ish.
        let w = WeightMatrix::from_rows(&[vec![1, 2, 5], vec![8, 2, 1], vec![1, 4, 1]]);
        let a = max_weight_assignment(&w);
        assert_eq!(a.total_weight, 5 + 8 + 4);
        assert_eq!(a.col_of_row(0), Some(2));
        assert_eq!(a.col_of_row(1), Some(0));
        assert_eq!(a.col_of_row(2), Some(1));
    }

    #[test]
    fn wide_matrix_leaves_columns_unmatched() {
        let w = WeightMatrix::from_rows(&[vec![1, 9, 2, 3]]);
        let a = max_weight_assignment(&w);
        assert_eq!(a.total_weight, 9);
        assert_eq!(a.col_of_row(0), Some(1));
        assert_eq!(a.row_of_col(0), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn tall_matrix_leaves_rows_unmatched() {
        let w = WeightMatrix::from_rows(&[vec![1], vec![9], vec![2]]);
        let a = max_weight_assignment(&w);
        assert_eq!(a.total_weight, 9);
        assert_eq!(a.row_of_col(0), Some(1));
        assert_eq!(a.col_of_row(0), None);
        assert_eq!(a.col_of_row(2), None);
    }

    #[test]
    fn negative_weights_still_perfect_on_small_side() {
        let w = WeightMatrix::from_rows(&[vec![-5, -1], vec![-2, -7]]);
        let a = max_weight_assignment(&w);
        // Must match both rows; best total is -1 + -2 = -3.
        assert_eq!(a.total_weight, -3);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn matches_exhaustive_on_fixed_cases() {
        let cases = [
            WeightMatrix::from_rows(&[vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]]),
            WeightMatrix::from_rows(&[vec![0, 0, 0, 0], vec![0, 1, 0, 0], vec![0, 0, 0, 2]]),
            WeightMatrix::from_fn(5, 5, |r, c| ((r * 31 + c * 17) % 13) as i64 - 6),
        ];
        for w in &cases {
            let fast = max_weight_assignment(w);
            let slow = exhaustive::best_assignment(w);
            assert_eq!(fast.total_weight, slow.total_weight, "matrix:\n{w}");
        }
    }

    #[test]
    fn duplicate_weights_are_fine() {
        let w = WeightMatrix::from_fn(6, 6, |_, _| 7);
        let a = max_weight_assignment(&w);
        assert_eq!(a.total_weight, 42);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn large_identity_prefers_diagonal() {
        let n = 64;
        let w = WeightMatrix::from_fn(n, n, |r, c| if r == c { 1000 } else { 1 });
        let a = max_weight_assignment(&w);
        assert_eq!(a.total_weight, 1000 * n as i64);
        for r in 0..n {
            assert_eq!(a.col_of_row(r), Some(r));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::exhaustive;
    use proptest::prelude::*;

    fn arb_matrix(max_dim: usize) -> impl Strategy<Value = WeightMatrix> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-1000i64..1000, r * c)
                .prop_map(move |data| WeightMatrix::from_fn(r, c, |i, j| data[i * c + j]))
        })
    }

    proptest! {
        #[test]
        fn agrees_with_exhaustive_oracle(w in arb_matrix(6)) {
            let fast = max_weight_assignment(&w);
            let slow = exhaustive::best_assignment(&w);
            prop_assert_eq!(fast.total_weight, slow.total_weight);
        }

        #[test]
        fn assignment_is_valid_matching(w in arb_matrix(8)) {
            let a = max_weight_assignment(&w);
            // Smaller side fully matched.
            prop_assert_eq!(a.len(), w.rows().min(w.cols()));
            // Injective both ways.
            let mut cols: Vec<usize> = a.pairs().map(|(_, c)| c).collect();
            cols.sort_unstable();
            cols.dedup();
            prop_assert_eq!(cols.len(), a.len());
            // total matches the sum over pairs.
            let sum: i64 = a.pairs().map(|(r, c)| w.get(r, c)).sum();
            prop_assert_eq!(sum, a.total_weight);
        }

        #[test]
        fn invariant_under_transpose(w in arb_matrix(6)) {
            let a = max_weight_assignment(&w);
            let b = max_weight_assignment(&w.transposed());
            prop_assert_eq!(a.total_weight, b.total_weight);
        }
    }
}
