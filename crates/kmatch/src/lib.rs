//! Maximum-weight bipartite assignment (Kuhn–Munkres / Hungarian method).
//!
//! SpotServe formulates device mapping as a bipartite matching problem: left
//! vertices are available GPUs, right vertices are mesh positions of the new
//! parallel configuration, and the weight of edge `(u, v)` is the number of
//! reusable context bytes if GPU `u` is placed at position `v` (§3.3). The
//! Kuhn–Munkres algorithm finds the assignment maximizing total reuse, which
//! minimizes migration traffic.
//!
//! This crate implements the O(n³) shortest-augmenting-path variant
//! ([`max_weight_assignment`]) together with a factorial-time exhaustive
//! oracle ([`exhaustive::best_assignment`]) used by the property tests.
//!
//! # Example
//!
//! ```
//! use kmatch::{max_weight_assignment, WeightMatrix};
//!
//! // Two workers, two jobs: the off-diagonal pairing is worth more.
//! let w = WeightMatrix::from_rows(&[vec![1, 10], vec![10, 1]]);
//! let a = max_weight_assignment(&w);
//! assert_eq!(a.total_weight, 20);
//! assert_eq!(a.col_of_row(0), Some(1));
//! assert_eq!(a.col_of_row(1), Some(0));
//! ```

pub mod exhaustive;
pub mod hungarian;
pub mod matrix;
pub mod skucost;

pub use hungarian::{max_weight_assignment, Assignment};
pub use matrix::WeightMatrix;
pub use skucost::{
    capability_priced_matrix, edge_weight, transfer_penalty_bytes, SkuCaps, FORBIDDEN,
};
