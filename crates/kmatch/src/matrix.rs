//! Dense weight matrices for assignment problems.

use std::fmt;

/// A dense `rows × cols` matrix of edge weights.
///
/// Row `u` and column `v` index the two vertex sets of the bipartite graph;
/// `get(u, v)` is the benefit of assigning `u` to `v`. Weights may be
/// negative (the solver maximizes a perfect matching over the smaller side
/// regardless).
///
/// # Example
///
/// ```
/// use kmatch::WeightMatrix;
/// let mut w = WeightMatrix::zeros(2, 3);
/// w.set(1, 2, 42);
/// assert_eq!(w.get(1, 2), 42);
/// assert_eq!(w.get(0, 0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl WeightMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty weight matrix");
        WeightMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for each cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i64) -> Self {
        let mut m = WeightMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have uneven lengths.
    pub fn from_rows(rows: &[Vec<i64>]) -> Self {
        assert!(!rows.is_empty(), "no rows");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut m = WeightMatrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            for (c, &w) in row.iter().enumerate() {
                m.set(r, c, w);
            }
        }
        m
    }

    /// Number of rows (left vertices).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (right vertices).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The weight of edge `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> i64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the weight of edge `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, w: i64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = w;
    }

    /// The transposed matrix.
    pub fn transposed(&self) -> WeightMatrix {
        WeightMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }
}

impl fmt::Display for WeightMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>6}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = WeightMatrix::from_fn(3, 2, |r, c| (r * 10 + c) as i64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(2, 1), 21);
    }

    #[test]
    fn transpose_round_trips() {
        let m = WeightMatrix::from_fn(2, 4, |r, c| (r * 7 + c * 3) as i64);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(3, 1), m.get(1, 3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        WeightMatrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        WeightMatrix::from_rows(&[vec![1, 2], vec![3]]);
    }

    #[test]
    fn display_has_all_cells() {
        let m = WeightMatrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        let s = format!("{m}");
        for x in ["1", "2", "3", "4"] {
            assert!(s.contains(x));
        }
    }
}
