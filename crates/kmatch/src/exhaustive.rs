//! Factorial-time exhaustive assignment solver.
//!
//! Used as a correctness oracle in tests and benchmarks. Do not call on
//! matrices larger than ~9 on a side.

use crate::hungarian::Assignment;
use crate::matrix::WeightMatrix;

/// Finds the maximum-weight assignment by trying every injection of the
/// smaller side into the larger.
///
/// # Example
///
/// ```
/// use kmatch::{exhaustive, WeightMatrix};
/// let w = WeightMatrix::from_rows(&[vec![2, 1], vec![1, 3]]);
/// assert_eq!(exhaustive::best_assignment(&w).total_weight, 5);
/// ```
pub fn best_assignment(weights: &WeightMatrix) -> Assignment {
    if weights.rows() > weights.cols() {
        let t = best_assignment(&weights.transposed());
        let pairs: Vec<(usize, usize)> = t.pairs().map(|(c, r)| (r, c)).collect();
        return assignment_from_pairs(weights, &pairs);
    }
    let n = weights.rows();
    let m = weights.cols();
    let mut cols: Vec<usize> = (0..m).collect();
    let mut best: Option<(i64, Vec<usize>)> = None;
    // Iterate over all m!/(m-n)! injections via permutations of columns,
    // considering only the first n entries.
    permute(&mut cols, 0, &mut |perm: &[usize]| {
        let total: i64 = (0..n).map(|r| weights.get(r, perm[r])).sum();
        if best.as_ref().map(|(b, _)| total > *b).unwrap_or(true) {
            best = Some((total, perm[..n].to_vec()));
        }
    });
    let (_, cols) = best.expect("non-empty matrix");
    let pairs: Vec<(usize, usize)> = cols.iter().copied().enumerate().collect();
    assignment_from_pairs(weights, &pairs)
}

fn assignment_from_pairs(weights: &WeightMatrix, pairs: &[(usize, usize)]) -> Assignment {
    let mut builder = AssignmentBuilder::new(weights.rows(), weights.cols());
    for &(r, c) in pairs {
        builder.push(r, c, weights.get(r, c));
    }
    builder.finish()
}

struct AssignmentBuilder {
    row_to_col: Vec<Option<usize>>,
    col_to_row: Vec<Option<usize>>,
    total: i64,
}

impl AssignmentBuilder {
    fn new(rows: usize, cols: usize) -> Self {
        AssignmentBuilder {
            row_to_col: vec![None; rows],
            col_to_row: vec![None; cols],
            total: 0,
        }
    }

    fn push(&mut self, r: usize, c: usize, w: i64) {
        assert!(self.row_to_col[r].is_none() && self.col_to_row[c].is_none());
        self.row_to_col[r] = Some(c);
        self.col_to_row[c] = Some(r);
        self.total += w;
    }

    fn finish(self) -> Assignment {
        Assignment {
            row_to_col: self.row_to_col,
            col_to_row: self.col_to_row,
            total_weight: self.total,
        }
    }
}

fn permute(xs: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == xs.len() {
        visit(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, visit);
        xs.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        let w = WeightMatrix::from_rows(&[vec![5]]);
        assert_eq!(best_assignment(&w).total_weight, 5);
    }

    #[test]
    fn rectangular_both_ways() {
        let wide = WeightMatrix::from_rows(&[vec![1, 7, 3]]);
        assert_eq!(best_assignment(&wide).total_weight, 7);
        let tall = wide.transposed();
        assert_eq!(best_assignment(&tall).total_weight, 7);
    }

    #[test]
    fn three_by_three() {
        let w = WeightMatrix::from_rows(&[vec![1, 2, 5], vec![8, 2, 1], vec![1, 4, 1]]);
        assert_eq!(best_assignment(&w).total_weight, 17);
    }
}
