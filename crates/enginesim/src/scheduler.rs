//! Iteration-level continuous batching: the scheduler that admits and
//! retires requests at decode-iteration boundaries.
//!
//! The fixed-batch engine ([`crate::BatchRun`]) decodes one batch to
//! completion before the next forms, which leaves pipeline slots idle from
//! the moment a request finishes until the whole batch drains. Modern
//! serving stacks (Orca-style continuous batching) instead admit and retire
//! at *iteration* granularity: after every forward pass, finished requests
//! leave, waiting requests join — up to the configuration's batch capacity
//! **and** the engine's KV-cache budget — and the next iteration is priced
//! from the *current* mixed batch (prefill and decode tokens in one pass,
//! via [`parallelism::PerfModel::mixed_iteration_time`]).
//!
//! # Segments
//!
//! Simulating every iteration as its own event would be wasteful: between
//! membership changes the running set decodes uniformly. The scheduler
//! therefore advances in *segments* — maximal spans over which membership
//! is fixed. A segment runs until the earliest in-flight request emits its
//! last token (`K = min` remaining), with two prices: the first iteration
//! (which carries any newly admitted requests' prefills) and the steady
//! decode iteration, evaluated at each request's mid-segment context. An
//! arrival mid-segment truncates the segment at the next iteration
//! boundary so admission never happens mid-iteration.
//!
//! Progress commits only at iteration boundaries, which is what keeps
//! migration token-exact (§4.1): freezing the scheduler at any instant
//! yields, per request, exactly the tokens whose KV entries exist.
//!
//! # Chunked prefill
//!
//! With [`IterationScheduler::with_prefill_chunk`], prompts are pushed
//! through the model in chunks of at most `chunk` tokens (Sarathi-style):
//! while any member has more than one chunk of prompt left, each segment
//! is a single mixed pass — every prefilling member advances one chunk,
//! every decoding member commits one token — so no decode iteration waits
//! on more than one chunk. The *final* chunk rides the first iteration of
//! a normal segment (committing the first output token), exactly like a
//! prompt that fits one chunk — which is why `chunk >= s_in` degenerates
//! bit-exactly to the monolithic engine: chunked segmentation never
//! engages. Checkpoints carry `(prefilled, committed)`: a half-prefilled
//! request resumes its prefill chunk-exact.
//!
//! # SLO-aware admission
//!
//! Requests may carry a deadline ([`workload::Request::deadline`]). The
//! admission hook then projects completions over the mixed batch — see
//! [`IterationScheduler::slo_verdict`] — and admits, defers (stays
//! queued), or rejects (hopeless even solo; drained via
//! [`IterationScheduler::take_rejected`]). When deadlines are present the
//! waiting queue pops **earliest-deadline-first** (a stable
//! [`workload::Request::edf_key`] sort at each boundary) instead of
//! FIFO-with-skip, so the tightest deadline claims the next free slot.
//! Deadline-free workloads take the legacy FIFO path untouched —
//! byte-identical to the pre-EDF engine.

use std::cell::RefCell;

use parallelism::{ParallelConfig, PerfModel};
use simkit::{SimDuration, SimTime};
use workload::{Request, RequestId};

use llmsim::SeqWork;

use crate::queue::AdmissionQueue;

/// Per-request execution record: one request's progress through the engine.
///
/// This is what the fixed-batch engine's monolithic batch record becomes
/// under continuous batching — the unit the scheduler admits, advances,
/// retires, and (on migration) checkpoints and resumes token-exact. Under
/// chunked prefill the checkpoint is two-dimensional: `prefilled` prompt
/// tokens and `committed` output tokens both have KV entries, and a
/// half-prefilled request resumes its prefill from the exact chunk
/// boundary it froze at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRun {
    request: Request,
    /// Prompt tokens whose KV entries exist (`== s_in` once prefill is
    /// complete; strictly less while a chunked prefill is in progress).
    prefilled: u32,
    /// Output tokens committed (KV entries exist for `prefilled + committed`).
    committed: u32,
}

impl RequestRun {
    /// A fresh record with no progress (prefill still required).
    pub fn fresh(request: Request) -> Self {
        RequestRun {
            request,
            prefilled: 0,
            committed: 0,
        }
    }

    /// A record resumed from migrated KV cache holding `committed` output
    /// tokens (stateful recovery, §4). The prefill is complete by
    /// construction; see [`RequestRun::resumed_partial`] for half-prefilled
    /// checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `committed` is not less than the request's output length.
    pub fn resumed(request: Request, committed: u32) -> Self {
        assert!(
            committed < request.s_out,
            "{}: resume at {committed}/{} is already finished",
            request.id,
            request.s_out
        );
        RequestRun {
            request,
            prefilled: request.s_in,
            committed,
        }
    }

    /// A record resumed mid-prefill: `prefilled` prompt tokens are cached,
    /// `committed` output tokens exist (only once the prefill completed).
    ///
    /// # Panics
    ///
    /// Panics if `prefilled` exceeds the prompt, if the record is already
    /// finished, or if output tokens exist before the prefill completed.
    pub fn resumed_partial(request: Request, prefilled: u32, committed: u32) -> Self {
        assert!(
            prefilled <= request.s_in,
            "{}: prefilled {prefilled} exceeds prompt {}",
            request.id,
            request.s_in
        );
        assert!(
            committed < request.s_out,
            "{}: resume at {committed}/{} is already finished",
            request.id,
            request.s_out
        );
        assert!(
            committed == 0 || prefilled == request.s_in,
            "{}: output tokens cannot precede prefill completion",
            request.id
        );
        RequestRun {
            request,
            prefilled,
            committed,
        }
    }

    /// The request being executed.
    pub fn request(&self) -> &Request {
        &self.request
    }

    /// Prompt tokens whose KV entries exist.
    pub fn prefilled(&self) -> u32 {
        self.prefilled
    }

    /// Output tokens committed so far.
    pub fn committed(&self) -> u32 {
        self.committed
    }

    /// Output tokens still to generate.
    pub fn remaining(&self) -> u32 {
        self.request.s_out - self.committed
    }

    /// Whether the last output token is committed.
    pub fn is_done(&self) -> bool {
        self.committed >= self.request.s_out
    }

    /// Whether this record has any checkpointable progress (cached prompt
    /// chunks or committed output tokens).
    pub fn has_progress(&self) -> bool {
        self.prefilled > 0 || self.committed > 0
    }

    /// Whether the next iteration must run (part of) this request's
    /// prefill: prompt tokens without KV entries remain.
    pub fn needs_prefill(&self) -> bool {
        self.prefilled < self.request.s_in
    }

    /// KV tokens this request will occupy at its peak (`S_in + S_out`);
    /// the admission test provisions for the peak so a request admitted
    /// under the budget can always run to completion.
    fn peak_kv_tokens(&self) -> u64 {
        self.request.s_in as u64 + self.request.s_out as u64
    }

    /// Progress after `done` iteration boundaries under prefill chunks of
    /// `chunk` tokens: each pass advances one chunk while the prompt is
    /// incomplete (the pass consuming the final chunk also commits the
    /// first output token), then one output token per pass. With
    /// `chunk >= s_in` this is exactly the unchunked engine's
    /// `committed + done`.
    fn advanced(&self, done: u32, chunk: u32) -> (u32, u32) {
        let mut prefilled = self.prefilled;
        let mut committed = self.committed;
        let mut d = done;
        while d > 0 && prefilled < self.request.s_in {
            let step = chunk.min(self.request.s_in - prefilled);
            prefilled += step;
            if prefilled == self.request.s_in {
                committed = (committed + 1).min(self.request.s_out);
            }
            d -= 1;
        }
        committed = committed.saturating_add(d).min(self.request.s_out);
        (prefilled, committed)
    }
}

/// A reusable [`SeqWork`] pricing buffer. Scratch space, not scheduler
/// state: equality-transparent so two schedulers with identical in-flight
/// work compare equal whatever their buffers last priced, and interior
/// mutability so `&self` verdict queries can reuse it too.
#[derive(Debug, Clone, Default)]
struct SeqScratch(RefCell<Vec<SeqWork>>);

impl PartialEq for SeqScratch {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// One span of iterations over a fixed running set.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    start: SimTime,
    /// End of the first iteration (carries any admitted prefills).
    first_boundary: SimTime,
    /// Duration of each further decode iteration.
    iter_time: SimDuration,
    /// Iteration boundaries in this segment (`>= 1`).
    iters: u32,
}

impl Segment {
    /// Boundaries at or before `t` (clamped to the segment length).
    fn elapsed_iters(&self, t: SimTime) -> u32 {
        if t < self.first_boundary {
            return 0;
        }
        if self.iter_time == SimDuration::ZERO {
            return self.iters;
        }
        let extra =
            t.saturating_since(self.first_boundary).as_micros() / self.iter_time.as_micros();
        (1 + extra).min(self.iters as u64) as u32
    }

    /// The instant of boundary `k` (1-based).
    fn boundary(&self, k: u32) -> SimTime {
        debug_assert!(k >= 1 && k <= self.iters);
        self.first_boundary + self.iter_time * (k - 1) as u64
    }

    fn end(&self) -> SimTime {
        self.boundary(self.iters)
    }
}

/// The iteration-level scheduler for one inference pipeline.
///
/// Owns the pipeline's running set of [`RequestRun`]s; at each iteration
/// boundary it retires finished requests, admits waiting ones within the
/// batch capacity and KV budget, and re-prices the iteration from the
/// current mixed batch.
///
/// # Example
///
/// ```
/// use std::collections::VecDeque;
/// use enginesim::IterationScheduler;
/// use parallelism::{ParallelConfig, PerfModel};
/// use simkit::SimTime;
/// use workload::{Request, RequestId};
///
/// let model = llmsim::ModelSpec::opt_6_7b();
/// let perf = PerfModel::paper_defaults(model.clone());
/// let cfg = ParallelConfig::new(1, 1, 4, 8);
/// let mut sched = IterationScheduler::new(cfg, model.kv_bytes_per_token(), u64::MAX);
/// let mut pending: VecDeque<Request> = (0..2)
///     .map(|i| Request::new(RequestId(i), SimTime::ZERO, 512, 128))
///     .collect();
/// sched.admit(&mut pending, SimTime::ZERO, &perf);
/// assert_eq!(sched.in_flight(), 2);
/// let end = sched.next_event().expect("segment scheduled");
/// let retired = sched.advance(end, &mut pending, &perf);
/// assert_eq!(retired.len(), 2, "equal-length requests retire together");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IterationScheduler {
    cfg: ParallelConfig,
    kv_bytes_per_token: u64,
    kv_budget_bytes: u64,
    /// Prefill chunk size in prompt tokens; `u32::MAX` disables chunking
    /// (monolithic prefill in the segment's first iteration, the pre-chunk
    /// engine semantics).
    chunk: u32,
    running: Vec<RequestRun>,
    segment: Option<Segment>,
    /// Deadline-hopeless requests dropped at admission (SLO-aware
    /// admission); drained by [`IterationScheduler::take_rejected`].
    rejected: Vec<Request>,
    /// Per-resident worst-pass work, aligned with `running` — the
    /// admission projection's pricing input, maintained incrementally on
    /// admit/retire/progress instead of being rebuilt per verdict.
    slo_worst: Vec<SeqWork>,
    /// Per-resident `(deadline, remaining boundaries)`, aligned with
    /// `running` (`None` for best-effort residents) — maintained alongside
    /// `slo_worst`.
    slo_deadlines: Vec<Option<(SimTime, u64)>>,
    /// Reused mixed-pass buffer for admission verdicts.
    verdict_scratch: SeqScratch,
    /// Reused mixed-pass buffer for segment pricing.
    segment_scratch: SeqScratch,
    /// Cumulative admission/retire tallies for telemetry rollups (a few
    /// integer bumps per boundary; never read on the scheduling path).
    counters: EngineCounters,
}

/// Cumulative verdict and retirement tallies for one scheduler's
/// lifetime — the epoch-granular numbers telemetry rollups difference.
/// `deferrals` counts Defer *verdicts* (one request scanned at several
/// boundaries counts each time); `admitted`/`rejected`/`retired` count
/// requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Requests admitted into a batch.
    pub admitted: u64,
    /// Defer verdicts returned by the admission scan.
    pub deferrals: u64,
    /// Requests rejected as deadline-hopeless.
    pub rejected: u64,
    /// Requests retired (fully generated).
    pub retired: u64,
}

impl EngineCounters {
    /// Adds `other`'s tallies into this one (for absorbing a detached
    /// scheduler's counters into a system-lifetime total).
    pub fn absorb(&mut self, other: EngineCounters) {
        self.admitted += other.admitted;
        self.deferrals += other.deferrals;
        self.rejected += other.rejected;
        self.retired += other.retired;
    }
}

/// What SLO-aware admission decided for one candidate request at one
/// iteration boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Projected completion busts no deadline: join at this boundary.
    Admit,
    /// Admitting now would bust the candidate's own deadline or an
    /// already-admitted request's; the candidate stays queued (load only
    /// drains, so a later boundary may admit it).
    Defer,
    /// The candidate cannot meet its deadline even running alone on this
    /// pipeline: drop it rather than burn iterations on a guaranteed SLO
    /// violation (or let it block the queue forever).
    Reject,
}

impl IterationScheduler {
    /// Creates an idle scheduler for a pipeline of configuration `cfg`
    /// whose engine holds `kv_budget_bytes` of KV cache
    /// (see [`llmsim::MemoryModel::kv_bytes_per_gpu`] times the pipeline's
    /// GPU count). Prefill is monolithic; see
    /// [`IterationScheduler::with_prefill_chunk`].
    pub fn new(cfg: ParallelConfig, kv_bytes_per_token: u64, kv_budget_bytes: u64) -> Self {
        IterationScheduler {
            cfg,
            kv_bytes_per_token,
            kv_budget_bytes,
            chunk: u32::MAX,
            running: Vec::new(),
            segment: None,
            rejected: Vec::new(),
            slo_worst: Vec::new(),
            slo_deadlines: Vec::new(),
            verdict_scratch: SeqScratch::default(),
            segment_scratch: SeqScratch::default(),
            counters: EngineCounters::default(),
        }
    }

    /// Cumulative admission/retire tallies since this scheduler was
    /// built (resumed schedulers start from zero; the serving system
    /// absorbs a detached scheduler's tallies into its run total).
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// Enables Sarathi-style chunked prefill: prompts are pushed through
    /// the model in chunks of at most `chunk` tokens, one chunk per
    /// iteration, so decoding neighbours commit one token per pass instead
    /// of stalling behind a monolithic prefill. `None` restores monolithic
    /// prefill.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is `Some(0)`, or if the scheduler already has
    /// work in flight (the chunk size is an engine-launch parameter, not a
    /// live knob).
    pub fn with_prefill_chunk(mut self, chunk: Option<u32>) -> Self {
        assert!(chunk != Some(0), "a prefill chunk must carry tokens");
        assert!(
            self.running.is_empty() && self.segment.is_none(),
            "chunk size cannot change with work in flight"
        );
        self.chunk = chunk.unwrap_or(u32::MAX);
        self
    }

    /// The configured prefill chunk size, `None` when prefill is
    /// monolithic.
    pub fn prefill_chunk(&self) -> Option<u32> {
        (self.chunk != u32::MAX).then_some(self.chunk)
    }

    /// Rebuilds a scheduler from checkpointed records (stateful recovery
    /// after migration): records with progress resume decoding from their
    /// committed token, fresh ones re-run prefill. Starts the first
    /// segment at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `records` exceeds `cfg`'s batch capacity or contains a
    /// finished record.
    pub fn resume(
        records: Vec<RequestRun>,
        cfg: ParallelConfig,
        kv_bytes_per_token: u64,
        kv_budget_bytes: u64,
        now: SimTime,
        perf: &PerfModel,
    ) -> Self {
        IterationScheduler::new(cfg, kv_bytes_per_token, kv_budget_bytes)
            .restore(records, now, perf)
    }

    /// Installs checkpointed records into this (idle, freshly configured)
    /// scheduler and starts the first segment — the chunk-aware form of
    /// [`IterationScheduler::resume`]: build with
    /// [`IterationScheduler::with_prefill_chunk`] first and half-prefilled
    /// records continue their prefill chunk-exact.
    ///
    /// # Panics
    ///
    /// Panics as [`IterationScheduler::resume`] does, or if this scheduler
    /// already has work in flight.
    pub fn restore(mut self, records: Vec<RequestRun>, now: SimTime, perf: &PerfModel) -> Self {
        assert!(
            self.running.is_empty() && self.segment.is_none(),
            "restore onto a busy scheduler"
        );
        assert!(
            records.len() <= self.cfg.batch as usize,
            "resume of {} records exceeds B={}",
            records.len(),
            self.cfg.batch
        );
        for r in &records {
            assert!(!r.is_done(), "{} is already finished", r.request.id);
        }
        self.running = records;
        self.rebuild_slo_entries();
        if !self.running.is_empty() {
            self.start_segment(now, perf);
        }
        self
    }

    /// Like [`IterationScheduler::resume`], but applies this scheduler's
    /// own admission rule to an arbitrarily large checkpoint (§3.3
    /// footnote 2 — the new configuration may hold fewer concurrent
    /// requests): deepest-progress records are kept up to the batch
    /// capacity and KV budget, the rest come back as bare requests for
    /// recomputation via the queue.
    ///
    /// # Panics
    ///
    /// Panics if `records` contains a finished record.
    pub fn resume_within_budget(
        records: Vec<RequestRun>,
        cfg: ParallelConfig,
        kv_bytes_per_token: u64,
        kv_budget_bytes: u64,
        now: SimTime,
        perf: &PerfModel,
    ) -> (Self, Vec<Request>) {
        IterationScheduler::new(cfg, kv_bytes_per_token, kv_budget_bytes)
            .restore_within_budget(records, now, perf)
    }

    /// The chunk-aware form of [`IterationScheduler::resume_within_budget`]
    /// (see [`IterationScheduler::restore`]). Deepest-progress records —
    /// committed output tokens first, then cached prefill chunks — are
    /// kept within the capacity and KV budget; the rest come back as bare
    /// requests for recomputation. SLO admission is *not* re-applied: the
    /// records were admitted before the migration.
    ///
    /// # Panics
    ///
    /// Panics if `records` contains a finished record or this scheduler
    /// already has work in flight.
    pub fn restore_within_budget(
        mut self,
        mut records: Vec<RequestRun>,
        now: SimTime,
        perf: &PerfModel,
    ) -> (Self, Vec<Request>) {
        assert!(
            self.running.is_empty() && self.segment.is_none(),
            "restore onto a busy scheduler"
        );
        records.sort_by_key(|r| {
            (
                std::cmp::Reverse(r.committed()),
                std::cmp::Reverse(r.prefilled()),
                r.request.id,
            )
        });
        let mut dropped = Vec::new();
        for r in records {
            assert!(!r.is_done(), "{} is already finished", r.request.id);
            if self.fits(&r.request) {
                self.running.push(r);
            } else {
                dropped.push(r.request);
            }
        }
        self.rebuild_slo_entries();
        if !self.running.is_empty() {
            self.start_segment(now, perf);
        }
        (self, dropped)
    }

    /// The configuration this scheduler runs under.
    pub fn config(&self) -> &ParallelConfig {
        &self.cfg
    }

    /// Adopts a batch-size-only configuration change (same mesh, so no
    /// migration): the running segment is untouched, future admissions use
    /// the new capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` changes the mesh shape (that requires a full
    /// freeze/resume through migration).
    pub fn set_config(&mut self, cfg: ParallelConfig) {
        assert_eq!(
            self.cfg.mesh_key(),
            cfg.mesh_key(),
            "mesh changes must go through freeze/resume"
        );
        self.cfg = cfg;
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.running.len()
    }

    /// Whether nothing is running.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// The running set (progress as of the current segment's start).
    pub fn running(&self) -> &[RequestRun] {
        &self.running
    }

    /// Whether a slot is free under the batch capacity.
    pub fn has_capacity(&self) -> bool {
        self.running.len() < self.cfg.batch as usize
    }

    /// Whether `r`'s peak KV footprint fits the remaining budget. An idle
    /// pipeline always admits one request (a feasible configuration's
    /// engine can serve a single sequence by construction), so serving can
    /// never deadlock on a conservative budget.
    pub fn kv_fits(&self, r: &Request) -> bool {
        if self.running.is_empty() {
            return true;
        }
        let projected: u64 = self
            .running
            .iter()
            .map(RequestRun::peak_kv_tokens)
            .sum::<u64>()
            + r.s_in as u64
            + r.s_out as u64;
        projected.saturating_mul(self.kv_bytes_per_token) <= self.kv_budget_bytes
    }

    /// Whether `r` fits the batch capacity and KV budget (the pre-SLO
    /// admission test).
    pub fn fits(&self, r: &Request) -> bool {
        self.has_capacity() && self.kv_fits(r)
    }

    /// Whether `r` can join the running set at the next boundary: it fits
    /// the capacity and KV budget *and* SLO-aware admission projects no
    /// busted deadline.
    pub fn can_admit(&self, r: &Request, now: SimTime, perf: &PerfModel) -> bool {
        self.fits(r) && self.slo_verdict(r, now, perf) == AdmissionVerdict::Admit
    }

    /// Iteration boundaries `r` still needs: prefill chunks (the last one
    /// commits the first output token), then one output token per pass.
    fn remaining_iters(r: &RequestRun, chunk: u32) -> u64 {
        let prefill_left = r.request.s_in - r.prefilled;
        if prefill_left == 0 {
            return r.remaining() as u64;
        }
        let chunks = prefill_left.div_ceil(chunk.max(1)) as u64;
        chunks + r.remaining().saturating_sub(1) as u64
    }

    /// The heaviest single pass a record can contribute while it runs: a
    /// full prefill chunk (while its prompt is incomplete) or one decode
    /// token, priced at its *peak* attention context.
    fn worst_pass_work(s_in: u32, s_out: u32, needs_prefill: bool, chunk: u32) -> SeqWork {
        SeqWork {
            new_tokens: if needs_prefill {
                chunk.min(s_in).max(1)
            } else {
                1
            },
            ctx: s_in + s_out,
        }
    }

    /// One resident's admission-pricing entry: its worst-pass work and,
    /// when it carries a deadline, its remaining boundary count.
    fn slo_entry(r: &RequestRun, chunk: u32) -> (SeqWork, Option<(SimTime, u64)>) {
        let worst =
            Self::worst_pass_work(r.request.s_in, r.request.s_out, r.needs_prefill(), chunk);
        let deadline = r.request.deadline.map(|d| {
            (
                d,
                Self::remaining_iters(r, chunk.min(r.request.s_in).max(1)),
            )
        });
        (worst, deadline)
    }

    /// Appends the pricing entry for a record just pushed onto `running`
    /// (the admit-side half of the incremental maintenance).
    fn push_slo_entry(&mut self, r: &RequestRun) {
        let (worst, deadline) = Self::slo_entry(r, self.chunk);
        self.slo_worst.push(worst);
        self.slo_deadlines.push(deadline);
    }

    /// Recomputes every resident's pricing entry in place (no allocation:
    /// the buffers keep their capacity). Called where progress commits or
    /// membership is rebuilt wholesale — retirement, restore — the
    /// admit-side stays a push.
    fn rebuild_slo_entries(&mut self) {
        self.slo_worst.clear();
        self.slo_deadlines.clear();
        let chunk = self.chunk;
        for r in &self.running {
            let (worst, deadline) = Self::slo_entry(r, chunk);
            self.slo_worst.push(worst);
            self.slo_deadlines.push(deadline);
        }
    }

    /// Debug-build guard: the incrementally maintained entries must equal
    /// a fresh computation from the running set.
    #[cfg(debug_assertions)]
    fn debug_check_slo_entries(&self) {
        assert_eq!(self.slo_worst.len(), self.running.len(), "stale SLO data");
        assert_eq!(self.slo_deadlines.len(), self.running.len());
        for (i, r) in self.running.iter().enumerate() {
            let (worst, deadline) = Self::slo_entry(r, self.chunk);
            assert_eq!(self.slo_worst[i], worst, "stale worst-pass entry");
            assert_eq!(self.slo_deadlines[i], deadline, "stale deadline entry");
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_slo_entries(&self) {}

    /// SLO-aware admission (the scheduler's admission hook): projects the
    /// completion of the candidate and of every already-admitted
    /// deadline-carrying request, priced via the mixed-batch forward pass
    /// over the current in-flight set plus the candidate.
    ///
    /// The admit/defer projection is a deliberate **upper bound**: one pass
    /// is priced with *every* member contributing its heaviest possible
    /// work (a whole prefill chunk while its prompt is incomplete, one
    /// decode token at peak context otherwise), and each request's
    /// completion is projected as `remaining passes × that worst pass`.
    /// Every member advances exactly one pass per boundary, the mixed-pass
    /// price is monotone in membership and per-member work, and membership
    /// between admissions only shrinks — so once a projection clears a
    /// deadline it stays cleared, and every later admission re-establishes
    /// the guard for the grown membership.
    ///
    /// The reject test is the opposite, a **lower bound** on running solo
    /// (every pass at its *minimum* context), so only certainly-hopeless
    /// requests are dropped — a request the bound cannot rule out stays
    /// queued as deferred. Requests and members without deadlines
    /// short-circuit to [`AdmissionVerdict::Admit`], so best-effort
    /// workloads never touch the SLO path.
    pub fn slo_verdict(&self, r: &Request, now: SimTime, perf: &PerfModel) -> AdmissionVerdict {
        // Deadline-free fast path before any pricing or allocation: this
        // sits on `can_admit`, which every arrival's dispatch touches.
        if r.deadline.is_none() && !self.residents_carry_deadlines() {
            return AdmissionVerdict::Admit;
        }
        self.debug_check_slo_entries();
        self.slo_verdict_inner(r, now, perf)
    }

    /// Whether any in-flight request carries a deadline (i.e. admission
    /// must run the SLO projection even for best-effort candidates).
    fn residents_carry_deadlines(&self) -> bool {
        self.slo_deadlines.iter().any(Option::is_some)
    }

    /// [`IterationScheduler::slo_verdict`] against the incrementally
    /// maintained per-resident entries, pricing through the reused
    /// scratch buffer — no allocation per verdict.
    fn slo_verdict_inner(&self, r: &Request, now: SimTime, perf: &PerfModel) -> AdmissionVerdict {
        if r.deadline.is_none() && !self.residents_carry_deadlines() {
            return AdmissionVerdict::Admit;
        }
        // Same contract as admission itself: the projection arithmetic
        // below assumes at least one output token.
        assert!(r.s_out > 0, "generation must produce tokens");
        let t_worst = {
            let mut worst_seqs = self.verdict_scratch.0.borrow_mut();
            worst_seqs.clear();
            worst_seqs.extend_from_slice(&self.slo_worst);
            worst_seqs.push(Self::worst_pass_work(r.s_in, r.s_out, true, self.chunk));
            perf.mixed_iteration_time(&self.cfg, &worst_seqs)
        };
        let chunk = self.chunk.min(r.s_in).max(1);
        if let Some(deadline) = r.deadline {
            let rem = Self::remaining_iters(&RequestRun::fresh(*r), chunk);
            if now + t_worst * rem > deadline {
                // Reject only when the deadline is unmeetable even in the
                // best case: alone on the pipeline, every chunk priced at
                // its lightest shape (the first chunk's context) and every
                // decode at the smallest context. The forward-pass price is
                // monotone in context, so this underestimates the real solo
                // time — a request it cannot rule out merely defers.
                let chunks = (r.s_in.div_ceil(chunk) as u64).max(1);
                let best_chunk =
                    perf.mixed_iteration_time(&self.cfg, &[SeqWork::prefill_chunk(0, chunk)]);
                let best_decode =
                    perf.mixed_iteration_time(&self.cfg, &[SeqWork::decode(r.s_in + 1)]);
                let solo_floor = now + best_chunk * chunks + best_decode * (r.s_out - 1) as u64;
                return if solo_floor > deadline {
                    AdmissionVerdict::Reject
                } else {
                    AdmissionVerdict::Defer
                };
            }
        }
        for &(deadline, rem) in self.slo_deadlines.iter().flatten() {
            if now + t_worst * rem > deadline {
                return AdmissionVerdict::Defer;
            }
        }
        AdmissionVerdict::Admit
    }

    /// Admits from `pending` at an iteration boundary, then (re)starts the
    /// segment at `now` if anything runs and no segment is active.
    ///
    /// When any queued request carries a deadline, the queue is first
    /// stably reordered **earliest-deadline-first** ([`Request::edf_key`]):
    /// deadline carriers pop in deadline order ahead of the best-effort
    /// tail, which keeps its FIFO order. Deadline-free queues are never
    /// touched — byte-identical to the pre-EDF engine — and a queue that
    /// reports itself unchanged since the last boundary
    /// ([`AdmissionQueue::edf_may_be_dirty`], e.g. a
    /// [`crate::PendingQueue`] that only shrank) skips the re-sort
    /// entirely: admission removals preserve sorted order, so the stable
    /// sort would be the identity. The scan then stops at the first
    /// request that does not [`fit`](Self::fits) (head-blocking on
    /// capacity/memory, as before); SLO-deferred requests are *skipped* in
    /// place (they stay queued, later arrivals may still fit), and
    /// SLO-hopeless ones are dropped into the rejected drain. Returns how
    /// many requests were admitted.
    ///
    /// # Panics
    ///
    /// Panics if called mid-segment, or if an admitted request has
    /// `s_out == 0`.
    pub fn admit<Q: AdmissionQueue + ?Sized>(
        &mut self,
        pending: &mut Q,
        now: SimTime,
        perf: &PerfModel,
    ) -> usize {
        assert!(
            self.segment.is_none(),
            "admission is only legal at an iteration boundary"
        );
        // EDF ordering engages only when a deadline is present; the sort
        // is stable, so a deadline-free queue is bit-for-bit untouched.
        if pending.edf_may_be_dirty() {
            let q = pending.deque();
            if q.iter().any(|r| r.deadline.is_some()) {
                q.make_contiguous().sort_by_key(Request::edf_key);
            }
            pending.note_edf_sorted();
        } else {
            // A clean queue must actually be in EDF order when it carries
            // deadlines — catches callers that mutated the deque behind
            // the dirty flag (e.g. through `AdmissionQueue::deque`
            // instead of the flag-setting push methods).
            debug_assert!(
                {
                    let q = pending.deque();
                    !q.iter().any(|r| r.deadline.is_some())
                        || q.iter().map(Request::edf_key).is_sorted()
                },
                "queue reported clean but is not in EDF order"
            );
        }
        let pending = pending.deque();
        let mut admitted = 0;
        let mut i = 0;
        // Resident pricing entries are maintained incrementally (pushed on
        // admit, refreshed on retire/progress), so verdicts read them
        // directly — no per-scan rebuild, no per-candidate allocation. The
        // SLO path is skipped entirely while neither candidate nor
        // residents carry a deadline (admitting a best-effort request
        // cannot create a deadline).
        self.debug_check_slo_entries();
        let mut guarded = self.residents_carry_deadlines();
        while i < pending.len() {
            if !self.fits(&pending[i]) {
                break;
            }
            let verdict = if !guarded && pending[i].deadline.is_none() {
                AdmissionVerdict::Admit
            } else {
                self.slo_verdict_inner(&pending[i], now, perf)
            };
            match verdict {
                AdmissionVerdict::Admit => {
                    let req = pending.remove(i).expect("indexed");
                    assert!(req.s_out > 0, "generation must produce tokens");
                    guarded |= req.deadline.is_some();
                    let run = RequestRun::fresh(req);
                    self.running.push(run);
                    self.push_slo_entry(&run);
                    admitted += 1;
                    self.counters.admitted += 1;
                }
                AdmissionVerdict::Defer => {
                    i += 1;
                    self.counters.deferrals += 1;
                }
                AdmissionVerdict::Reject => {
                    let req = pending.remove(i).expect("indexed");
                    self.rejected.push(req);
                    self.counters.rejected += 1;
                }
            }
        }
        if !self.running.is_empty() {
            self.start_segment(now, perf);
        }
        admitted
    }

    /// Drains the requests dropped by SLO-aware admission since the last
    /// call (hopeless deadlines; see [`AdmissionVerdict::Reject`]).
    pub fn take_rejected(&mut self) -> Vec<Request> {
        std::mem::take(&mut self.rejected)
    }

    /// The instant of the current segment's last boundary — when
    /// [`IterationScheduler::advance`] must be called.
    pub fn next_event(&self) -> Option<SimTime> {
        self.segment.as_ref().map(Segment::end)
    }

    /// The first iteration boundary strictly being worked toward at `t`
    /// (the earliest instant a waiting request could join this pipeline),
    /// or `None` when no segment runs.
    pub fn next_boundary_after(&self, t: SimTime) -> Option<SimTime> {
        let seg = self.segment.as_ref()?;
        let k = (seg.elapsed_iters(t) + 1).min(seg.iters);
        Some(seg.boundary(k))
    }

    /// Processes the boundary at `now` (the segment's end): commits the
    /// segment's iterations, retires finished requests, admits waiting
    /// ones, and starts the next segment. Returns the retired requests in
    /// admission order.
    pub fn advance<Q: AdmissionQueue + ?Sized>(
        &mut self,
        now: SimTime,
        pending: &mut Q,
        perf: &PerfModel,
    ) -> Vec<Request> {
        let Some(seg) = self.segment.take() else {
            // Idle pipeline: nothing to commit, just try admission.
            self.admit(pending, now, perf);
            return Vec::new();
        };
        debug_assert!(now >= seg.end(), "boundary event fired early");
        let done = seg.iters;
        let chunk = self.chunk;
        for r in &mut self.running {
            (r.prefilled, r.committed) = r.advanced(done, chunk);
        }
        let mut retired = Vec::new();
        self.running.retain(|r| {
            if r.is_done() {
                retired.push(r.request);
                false
            } else {
                true
            }
        });
        self.counters.retired += retired.len() as u64;
        // Progress moved and membership may have shrunk: refresh the
        // admission-pricing entries in place before `admit` reads them.
        self.rebuild_slo_entries();
        // `admit` restarts the segment whenever anything is still running.
        self.admit(pending, now, perf);
        retired
    }

    /// An arrival landed at `now` while a segment is running: if `head`
    /// could join at the next boundary, truncate the segment there so the
    /// boundary event fires early. Returns the new (earlier) segment end
    /// when the caller must reschedule, `None` when nothing changed.
    pub fn interrupt_for_admission(
        &mut self,
        now: SimTime,
        head: &Request,
        perf: &PerfModel,
    ) -> Option<SimTime> {
        if !self.can_admit(head, now, perf) {
            return None;
        }
        let seg = self.segment.as_mut()?;
        let next = seg.elapsed_iters(now) + 1;
        if next >= seg.iters {
            return None; // already ending at the next boundary or sooner
        }
        seg.iters = next;
        Some(seg.end())
    }

    /// Freezes the pipeline at `now` (engine interruption): commits every
    /// boundary at or before `now` — progress is token-exact, only whole
    /// iterations count — cancels the segment, and drains the running set
    /// as checkpointable records. Requests that finished exactly at `now`
    /// come back as done records.
    pub fn freeze(&mut self, now: SimTime) -> Vec<RequestRun> {
        if let Some(seg) = self.segment.take() {
            let done = seg.elapsed_iters(now);
            let chunk = self.chunk;
            for r in &mut self.running {
                (r.prefilled, r.committed) = r.advanced(done, chunk);
            }
        }
        self.slo_worst.clear();
        self.slo_deadlines.clear();
        std::mem::take(&mut self.running)
    }

    /// Abandons all in-flight work, returning the bare requests in
    /// admission order (the recomputation path: progress is discarded).
    pub fn into_requests(mut self) -> Vec<Request> {
        self.segment = None;
        self.running.drain(..).map(|r| r.request).collect()
    }

    /// Per-request committed output tokens at `t`, including progress
    /// inside the live segment.
    pub fn committed_per_request_at(&self, t: SimTime) -> Vec<(RequestId, u32)> {
        let done = self.segment.map(|s| s.elapsed_iters(t)).unwrap_or(0);
        self.running
            .iter()
            .map(|r| (r.request.id, r.advanced(done, self.chunk).1))
            .collect()
    }

    /// The deepest per-request progress at `t` (the device mapper ranks
    /// pipelines by decoding progress when shrinking, §3.3).
    pub fn max_committed_at(&self, t: SimTime) -> u32 {
        self.committed_per_request_at(t)
            .into_iter()
            .map(|(_, c)| c)
            .max()
            .unwrap_or(0)
    }

    /// Resident KV-cache bytes at `t`: every in-flight request holds
    /// `S_in +` committed tokens. The prompt counts in full from admission
    /// — KV blocks are provisioned up front (the same peak-provisioning
    /// rule the admission budget applies), so a mid-prefill freeze still
    /// accounts the whole prompt's allocation.
    pub fn cache_bytes_at(&self, t: SimTime, kv_bytes_per_token: u64) -> u64 {
        let done = self.segment.map(|s| s.elapsed_iters(t)).unwrap_or(0);
        self.running
            .iter()
            .map(|r| {
                let tokens = r.request.s_in as u64 + r.advanced(done, self.chunk).1 as u64;
                tokens * kv_bytes_per_token
            })
            .sum()
    }

    /// Prices and installs the next segment.
    ///
    /// While any member still has **more than one chunk** of prompt left
    /// under chunked prefill, the segment is a single iteration: every
    /// prefilling member pushes one chunk, every decoding member one
    /// token, priced as one mixed pass. Membership and pricing are
    /// re-evaluated at each chunk boundary, so a decoding request never
    /// waits on more than one chunk of a neighbour's prompt.
    ///
    /// Otherwise (decode-only, monolithic prefill, or every remaining
    /// prompt fits in one chunk): `K = min` remaining iterations over a
    /// fixed membership, decode iterations evaluated at each request's
    /// mid-segment context, the first iteration carrying any pending
    /// prefill remainders through the mixed batch. Routing the *final*
    /// chunk through this path is what makes `chunk >= s_in` degenerate
    /// bit-exactly to the monolithic engine: chunked segmentation then
    /// never engages at all.
    fn start_segment(&mut self, now: SimTime, perf: &PerfModel) {
        debug_assert!(!self.running.is_empty());
        // Segment pricing runs at every boundary: reuse one scratch buffer
        // across segments instead of allocating fresh `Vec<SeqWork>`s.
        let mut seqs = self.segment_scratch.0.borrow_mut();
        if self.chunk != u32::MAX
            && self
                .running
                .iter()
                .any(|r| r.request.s_in - r.prefilled > self.chunk)
        {
            seqs.clear();
            seqs.extend(self.running.iter().map(|r| {
                if r.needs_prefill() {
                    let left = r.request.s_in - r.prefilled;
                    SeqWork::prefill_chunk(r.prefilled, left.min(self.chunk))
                } else {
                    SeqWork::decode(r.request.s_in + r.committed)
                }
            }));
            let pass = perf.mixed_iteration_time(&self.cfg, &seqs);
            self.segment = Some(Segment {
                start: now,
                first_boundary: now + pass,
                iter_time: pass,
                iters: 1,
            });
            return;
        }
        let k = self
            .running
            .iter()
            .map(RequestRun::remaining)
            .min()
            .expect("non-empty");
        debug_assert!(k >= 1, "finished requests must be retired first");
        let mid_ctx = |r: &RequestRun| {
            (r.request.s_in + r.committed + k / 2).min(r.request.s_in + r.request.s_out)
        };
        seqs.clear();
        seqs.extend(self.running.iter().map(|r| SeqWork::decode(mid_ctx(r))));
        let iter_time = perf.mixed_iteration_time(&self.cfg, &seqs);
        let first_iter = if self.running.iter().any(RequestRun::needs_prefill) {
            seqs.clear();
            seqs.extend(self.running.iter().map(|r| {
                if r.needs_prefill() {
                    // The whole remaining prompt in one pass (a record
                    // checkpointed mid-chunk resumes only the tokens it
                    // still lacks).
                    SeqWork {
                        new_tokens: r.request.s_in - r.prefilled,
                        ctx: r.request.s_in,
                    }
                } else {
                    SeqWork::decode(mid_ctx(r))
                }
            }));
            perf.mixed_iteration_time(&self.cfg, &seqs)
        } else {
            iter_time
        };
        self.segment = Some(Segment {
            start: now,
            first_boundary: now + first_iter,
            iter_time,
            iters: k,
        });
    }
}

#[cfg(test)]
mod tests {
    use std::collections::VecDeque;

    use super::*;
    use crate::batch::BatchRun;
    use llmsim::ModelSpec;

    fn perf() -> PerfModel {
        PerfModel::paper_defaults(ModelSpec::opt_6_7b())
    }

    fn cfg() -> ParallelConfig {
        ParallelConfig::new(1, 1, 4, 8)
    }

    fn req(id: u64, s_in: u32, s_out: u32) -> Request {
        Request::new(RequestId(id), SimTime::ZERO, s_in, s_out)
    }

    fn kvbpt() -> u64 {
        ModelSpec::opt_6_7b().kv_bytes_per_token()
    }

    fn sched() -> IterationScheduler {
        IterationScheduler::new(cfg(), kvbpt(), u64::MAX)
    }

    #[test]
    fn uniform_batch_matches_fixed_engine_timing() {
        // A batch admitted at once decodes exactly like the fixed-batch
        // engine's BatchRun: same prefill, same mid-context iteration.
        let p = perf();
        let reqs: Vec<Request> = (0..4).map(|i| req(i, 512, 128)).collect();
        let run = BatchRun::start(reqs.clone(), &cfg(), SimTime::ZERO, &p);
        let mut s = sched();
        let mut pending: VecDeque<Request> = reqs.into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        assert_eq!(s.next_event(), Some(run.finish_time()));
        let retired = s.advance(run.finish_time(), &mut pending, &p);
        assert_eq!(retired.len(), 4);
        assert!(s.is_idle());
    }

    #[test]
    fn short_request_retires_and_backfills() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 16), req(1, 512, 128)]
            .into_iter()
            .collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let b1 = s.next_event().unwrap();
        // Segment ends when the 16-token request finishes.
        let retired = s.advance(b1, &mut pending, &p);
        assert_eq!(retired, vec![req(0, 512, 16)]);
        assert_eq!(s.in_flight(), 1);
        // The survivor carries its 16 committed tokens into the next
        // segment.
        assert_eq!(s.running()[0].committed(), 16);
        let b2 = s.next_event().unwrap();
        let retired = s.advance(b2, &mut pending, &p);
        assert_eq!(retired, vec![req(1, 512, 128)]);
        assert!(s.next_event().is_none());
    }

    #[test]
    fn kv_budget_binds_before_batch_capacity() {
        // Budget for exactly two peak-size requests; B = 8.
        let budget = 2 * (512 + 128) * kvbpt();
        let p = perf();
        let mut s = IterationScheduler::new(cfg(), kvbpt(), budget);
        let mut pending: VecDeque<Request> = (0..4).map(|i| req(i, 512, 128)).collect();
        let admitted = s.admit(&mut pending, SimTime::ZERO, &p);
        assert_eq!(admitted, 2, "KV budget must bind before B=8");
        assert!(s.has_capacity(), "slots remain, memory does not");
        assert!(!s.can_admit(pending.front().unwrap(), SimTime::ZERO, &p));
        // Retirement frees budget: both retire together, then two more fit.
        let end = s.next_event().unwrap();
        let retired = s.advance(end, &mut pending, &p);
        assert_eq!(retired.len(), 2);
        assert_eq!(s.in_flight(), 2);
        assert!(pending.is_empty());
    }

    #[test]
    fn idle_pipeline_always_admits_one_request() {
        // A budget too small even for one request must not deadlock: the
        // first admission bypasses the check.
        let p = perf();
        let mut s = IterationScheduler::new(cfg(), kvbpt(), 1);
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128), req(1, 512, 128)]
            .into_iter()
            .collect();
        assert_eq!(s.admit(&mut pending, SimTime::ZERO, &p), 1);
        assert_eq!(s.in_flight(), 1);
    }

    #[test]
    fn retirement_of_last_in_flight_request_goes_idle() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 8)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let end = s.next_event().unwrap();
        let retired = s.advance(end, &mut pending, &p);
        assert_eq!(retired.len(), 1);
        assert!(s.is_idle());
        assert_eq!(s.next_event(), None);
        assert_eq!(s.cache_bytes_at(end, kvbpt()), 0, "cache released");
        // The idle scheduler admits again on the next dispatch.
        let mut more: VecDeque<Request> = vec![req(1, 512, 8)].into_iter().collect();
        assert_eq!(s.admit(&mut more, end, &p), 1);
    }

    #[test]
    fn freeze_exactly_on_boundary_is_token_exact() {
        // Preemption landing exactly on an iteration boundary commits that
        // boundary's token — no more, no less.
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let seg = s.segment.unwrap();
        let b3 = seg.boundary(3);
        assert_eq!(s.committed_per_request_at(b3), vec![(RequestId(0), 3)]);
        let records = s.freeze(b3);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].committed(), 3);
        assert!(s.is_idle());
    }

    #[test]
    fn freeze_mid_iteration_commits_only_whole_iterations() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let seg = s.segment.unwrap();
        let mid = seg.boundary(5) + SimDuration::from_micros(1);
        let records = s.freeze(mid);
        assert_eq!(records[0].committed(), 5, "partial iteration 6 discarded");
    }

    #[test]
    fn heterogeneous_progress_survives_freeze_and_resume() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 32), req(1, 512, 128)]
            .into_iter()
            .collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        // Run out the first segment: request 0 done, request 1 at 32.
        let b = s.next_event().unwrap();
        s.advance(b, &mut pending, &p);
        // Mid-second-segment freeze: request 1 alone, heterogeneous vs a
        // fresh admission that joins on resume.
        let seg = s.segment.unwrap();
        let records = s.freeze(seg.boundary(10));
        assert_eq!(records, vec![RequestRun::resumed(req(1, 512, 128), 42)]);
        // Resume under a different configuration: no prefill re-run.
        let new_cfg = ParallelConfig::new(1, 2, 2, 8);
        let mut r =
            IterationScheduler::resume(records, new_cfg, kvbpt(), u64::MAX, seg.boundary(10), &p);
        assert!(!r.running()[0].needs_prefill());
        let end = r.next_event().unwrap();
        let retired = r.advance(end, &mut VecDeque::new(), &p);
        assert_eq!(retired.len(), 1, "86 remaining tokens decode to the end");
    }

    #[test]
    fn mid_segment_arrival_truncates_to_next_boundary() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let old_end = s.next_event().unwrap();
        let seg = s.segment.unwrap();
        let arrival_t = seg.boundary(2) + SimDuration::from_micros(1);
        let newcomer = req(1, 512, 128);
        let new_end = s.interrupt_for_admission(arrival_t, &newcomer, &p).unwrap();
        assert_eq!(new_end, seg.boundary(3), "next boundary after arrival");
        assert!(new_end < old_end);
        // At the new boundary the newcomer joins and the survivor keeps
        // its 3 committed tokens.
        let mut q: VecDeque<Request> = vec![newcomer].into_iter().collect();
        s.advance(new_end, &mut q, &p);
        assert_eq!(s.in_flight(), 2);
        assert_eq!(
            s.committed_per_request_at(new_end),
            vec![(RequestId(0), 3), (RequestId(1), 0)]
        );
    }

    #[test]
    fn interrupt_without_room_is_ignored() {
        let p = perf();
        let small = ParallelConfig::new(1, 1, 4, 1);
        let mut s = IterationScheduler::new(small, kvbpt(), u64::MAX);
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let end = s.next_event().unwrap();
        let t = s.segment.unwrap().boundary(1) + SimDuration::from_micros(1);
        assert_eq!(s.interrupt_for_admission(t, &req(1, 512, 128), &p), None);
        assert_eq!(s.next_event(), Some(end), "segment untouched");
    }

    #[test]
    fn mixed_batch_iterations_cost_more_than_decode_only() {
        // A segment whose first iteration carries a prefill must price it
        // above the steady decode iteration.
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 64)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let b = s.next_event().unwrap();
        s.advance(b, &mut pending, &p); // retires request 0
        let mut q: VecDeque<Request> = vec![req(1, 512, 128)].into_iter().collect();
        s.admit(&mut q, b, &p);
        let seg = s.segment.unwrap();
        let first = seg.first_boundary.saturating_since(seg.start);
        assert!(
            first > seg.iter_time,
            "prefill-carrying iteration {first} must exceed decode {}",
            seg.iter_time
        );
    }

    #[test]
    fn cache_grows_with_commitment() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let kv = kvbpt();
        assert_eq!(s.cache_bytes_at(SimTime::ZERO, kv), 512 * kv);
        let end = s.next_event().unwrap();
        assert_eq!(s.cache_bytes_at(end, kv), (512 + 128) * kv);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn resumed_record_must_have_tokens_left() {
        RequestRun::resumed(req(0, 512, 128), 128);
    }

    // ---- Chunked prefill ---------------------------------------------

    fn chunked(chunk: u32) -> IterationScheduler {
        IterationScheduler::new(cfg(), kvbpt(), u64::MAX).with_prefill_chunk(Some(chunk))
    }

    #[test]
    fn chunk_covering_prompt_matches_monolithic_prefill() {
        // chunk >= S_in degenerates to the unchunked engine: identical
        // finish time for a fresh batch. Odd s_out deliberately — the
        // final chunk must ride the monolithic segment path, or the
        // mid-context rounding differs.
        let p = perf();
        let reqs: Vec<Request> = (0..3).map(|i| req(i, 512, 63)).collect();
        let mut mono = sched();
        let mut q1: VecDeque<Request> = reqs.clone().into_iter().collect();
        mono.admit(&mut q1, SimTime::ZERO, &p);
        let mono_end = {
            let mut end = SimTime::ZERO;
            while let Some(e) = mono.next_event() {
                end = e;
                mono.advance(e, &mut q1, &p);
            }
            end
        };
        let mut ch = chunked(512);
        let mut q2: VecDeque<Request> = reqs.into_iter().collect();
        ch.admit(&mut q2, SimTime::ZERO, &p);
        let ch_end = {
            let mut end = SimTime::ZERO;
            while let Some(e) = ch.next_event() {
                end = e;
                ch.advance(e, &mut q2, &p);
            }
            end
        };
        assert_eq!(mono_end, ch_end);
    }

    #[test]
    fn chunk_size_one_prefills_one_token_per_pass() {
        let p = perf();
        let mut s = chunked(1);
        let mut q: VecDeque<Request> = vec![req(0, 16, 4)].into_iter().collect();
        s.admit(&mut q, SimTime::ZERO, &p);
        // 15 single-token prefill passes, then the final prompt token
        // rides the first iteration of the closing 4-iteration segment
        // (committing output token 1) — 16 advances in total.
        let mut passes = 0;
        while !s.is_idle() {
            if passes == 15 {
                assert_eq!(s.running()[0].prefilled(), 15, "one prompt token per pass");
                assert_eq!(s.running()[0].committed(), 0);
            }
            let e = s.next_event().unwrap();
            s.advance(e, &mut q, &p);
            passes += 1;
        }
        assert_eq!(passes, 16, "15 single passes + the closing segment");
    }

    #[test]
    fn decode_neighbour_commits_a_token_every_chunk_pass() {
        // A decoding resident is never stalled behind a monolithic prefill:
        // each chunk pass commits one of its tokens.
        let p = perf();
        let mut s = chunked(128);
        let mut q: VecDeque<Request> = vec![req(0, 64, 200)].into_iter().collect();
        s.admit(&mut q, SimTime::ZERO, &p);
        // The resident's own prompt fits one chunk, so it runs a normal
        // segment; walk to its third boundary and let a long prompt arrive
        // there, truncating the segment.
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            t = s.next_boundary_after(t).unwrap();
        }
        let arrival = SimTime::from_micros(t.as_micros() + 1);
        let newcomer = req(1, 1024, 8);
        let new_end = s.interrupt_for_admission(arrival, &newcomer, &p).unwrap();
        let mut q2: VecDeque<Request> = vec![newcomer].into_iter().collect();
        s.advance(new_end, &mut q2, &p);
        assert_eq!(s.in_flight(), 2);
        assert!(s.running()[0].committed() >= 1);
        // 1024/128 = 8 chunks: 7 single-chunk passes, each committing one
        // resident token, then the final chunk rides the closing segment.
        let mut at = s.running()[0].committed();
        for pass in 0..7 {
            assert!(s.running().iter().any(RequestRun::needs_prefill));
            let e = s.next_event().unwrap();
            s.advance(e, &mut q2, &p);
            let now_committed = s
                .running()
                .iter()
                .find(|r| r.request().id == RequestId(0))
                .unwrap()
                .committed();
            assert_eq!(now_committed, at + 1, "pass {pass} must commit one token");
            at = now_committed;
        }
        // One chunk left: the closing segment's first iteration completes
        // the newcomer's prefill; the resident keeps committing one token
        // per iteration throughout.
        let newcomer_run = s
            .running()
            .iter()
            .find(|r| r.request().id == RequestId(1))
            .unwrap();
        assert_eq!(newcomer_run.prefilled(), 7 * 128);
        let e = s.next_event().unwrap();
        s.advance(e, &mut q2, &p);
        assert!(s.running().iter().all(|r| !r.needs_prefill()));
    }

    #[test]
    fn freeze_mid_chunked_prefill_is_chunk_exact() {
        let p = perf();
        let mut s = chunked(128);
        let mut q: VecDeque<Request> = vec![req(0, 1024, 32)].into_iter().collect();
        s.admit(&mut q, SimTime::ZERO, &p);
        // Run exactly 3 chunk passes.
        for _ in 0..3 {
            let e = s.next_event().unwrap();
            s.advance(e, &mut q, &p);
        }
        // Freeze mid-4th-pass: the partial chunk is discarded, the 3
        // committed chunks survive.
        let mid = SimTime::from_micros(s.next_event().unwrap().as_micros() - 1);
        let records = s.freeze(mid);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].prefilled(), 3 * 128);
        assert_eq!(records[0].committed(), 0);
        assert!(records[0].has_progress());
        // Resume under a new configuration: the prefill continues from
        // chunk 4, not from scratch.
        let new_cfg = ParallelConfig::new(1, 2, 2, 8);
        let mut r = IterationScheduler::new(new_cfg, kvbpt(), u64::MAX)
            .with_prefill_chunk(Some(128))
            .restore(records, mid, &p);
        let mut passes_to_first_token = 0;
        while r.running().first().map(|x| x.committed()) == Some(0) {
            let e = r.next_event().unwrap();
            r.advance(e, &mut VecDeque::new(), &p);
            passes_to_first_token += 1;
        }
        assert_eq!(
            passes_to_first_token,
            (1024 - 384) / 128,
            "exactly the missing chunks run again"
        );
    }

    #[test]
    fn resumed_partial_rejects_inconsistent_progress() {
        let r = RequestRun::resumed_partial(req(0, 1024, 32), 256, 0);
        assert!(r.needs_prefill());
        assert_eq!(r.prefilled(), 256);
    }

    #[test]
    #[should_panic(expected = "cannot precede prefill completion")]
    fn resumed_partial_requires_complete_prefill_for_output() {
        RequestRun::resumed_partial(req(0, 1024, 32), 256, 5);
    }

    // ---- SLO-aware admission -----------------------------------------

    fn deadline_req(id: u64, s_in: u32, s_out: u32, slo_secs: u64) -> Request {
        req(id, s_in, s_out).with_slo(SimDuration::from_secs(slo_secs))
    }

    #[test]
    fn best_effort_requests_never_touch_the_slo_path() {
        let p = perf();
        let s = sched();
        assert_eq!(
            s.slo_verdict(&req(0, 512, 128), SimTime::ZERO, &p),
            AdmissionVerdict::Admit
        );
    }

    #[test]
    fn hopeless_deadline_is_rejected_not_queued() {
        let p = perf();
        let mut s = sched();
        // 1 s for 512 output tokens: impossible even alone.
        let hopeless = deadline_req(0, 512, 512, 1);
        assert_eq!(
            s.slo_verdict(&hopeless, SimTime::ZERO, &p),
            AdmissionVerdict::Reject
        );
        let mut q: VecDeque<Request> = vec![hopeless, req(1, 512, 16)].into_iter().collect();
        let admitted = s.admit(&mut q, SimTime::ZERO, &p);
        // The hopeless request is dropped, the best-effort one behind it
        // still gets in.
        assert_eq!(admitted, 1);
        assert_eq!(s.take_rejected(), vec![hopeless]);
        assert_eq!(s.running()[0].request().id, RequestId(1));
    }

    #[test]
    fn admission_defers_rather_than_bust_an_admitted_deadline() {
        let p = perf();
        let mut s = sched();
        // A tight-but-feasible resident.
        let resident = deadline_req(0, 512, 64, 600);
        let mut q: VecDeque<Request> = vec![resident].into_iter().collect();
        assert_eq!(s.admit(&mut q, SimTime::ZERO, &p), 1);
        // A big burst of requests that each solo-fit their own deadline:
        // none may be dropped — whatever does not get in stays queued.
        let mut q2: VecDeque<Request> = (1..8).map(|i| deadline_req(i, 512, 64, 610)).collect();
        let before = q2.len();
        s.advance(s.next_event().unwrap(), &mut q2, &p);
        assert_eq!(s.take_rejected(), vec![], "feasible requests never drop");
        assert_eq!(s.in_flight() + q2.len(), before, "admitted + deferred");
        // Every admitted deadline is still projected met (the guard's own
        // invariant re-checked post-hoc).
        for r in s.running() {
            assert!(s.slo_verdict(r.request(), SimTime::ZERO, &p) != AdmissionVerdict::Reject);
        }
    }

    #[test]
    fn edf_pops_earliest_deadline_first() {
        // Arrival order r0 (loose), r1 (tight): with one slot, EDF must
        // seat the tight deadline first even though it queued second.
        let p = perf();
        let one_slot = ParallelConfig::new(1, 1, 4, 1);
        let mut s = IterationScheduler::new(one_slot, kvbpt(), u64::MAX);
        let loose = deadline_req(0, 512, 16, 3000);
        let tight = deadline_req(1, 512, 16, 600);
        let mut q: VecDeque<Request> = vec![loose, tight].into_iter().collect();
        s.admit(&mut q, SimTime::ZERO, &p);
        assert_eq!(s.running()[0].request().id, RequestId(1), "tight first");
        assert_eq!(q.front().unwrap().id, RequestId(0), "loose stays queued");
    }

    #[test]
    fn edf_orders_deadline_carriers_ahead_of_best_effort() {
        let p = perf();
        let one_slot = ParallelConfig::new(1, 1, 4, 1);
        let mut s = IterationScheduler::new(one_slot, kvbpt(), u64::MAX);
        let mut q: VecDeque<Request> = vec![
            req(0, 512, 16),
            req(1, 512, 16),
            deadline_req(2, 512, 16, 900),
        ]
        .into_iter()
        .collect();
        s.admit(&mut q, SimTime::ZERO, &p);
        assert_eq!(s.running()[0].request().id, RequestId(2));
        // The best-effort tail keeps FIFO order (stable sort).
        let ids: Vec<RequestId> = q.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![RequestId(0), RequestId(1)]);
    }

    #[test]
    fn deadline_free_queue_keeps_fifo_order() {
        // Without deadlines the EDF sort must never engage: admission pops
        // the *front* (ids deliberately out of numeric order) and leaves
        // the remainder bit-for-bit in place.
        let p = perf();
        let one_slot = ParallelConfig::new(1, 1, 4, 1);
        let mut s = IterationScheduler::new(one_slot, kvbpt(), u64::MAX);
        let q0: VecDeque<Request> = vec![req(2, 512, 8), req(0, 256, 8), req(1, 128, 8)]
            .into_iter()
            .collect();
        let mut q = q0.clone();
        s.admit(&mut q, SimTime::ZERO, &p);
        assert_eq!(s.running()[0].request().id, RequestId(2), "front admitted");
        let rest: Vec<Request> = q.iter().copied().collect();
        assert_eq!(rest, vec![q0[1], q0[2]], "remainder order untouched");
    }

    #[test]
    fn deferred_requests_admit_once_load_drains() {
        let p = perf();
        let mut s = sched();
        // Resident with a deadline tight enough that admitting a second
        // request would bust it; the second is feasible and defers.
        let resident = deadline_req(0, 512, 32, 290);
        let mut q: VecDeque<Request> = vec![resident].into_iter().collect();
        s.admit(&mut q, SimTime::ZERO, &p);
        let newcomer = deadline_req(1, 512, 32, 4000);
        let mut q2: VecDeque<Request> = vec![newcomer].into_iter().collect();
        // Drive until the newcomer gets in (at the latest when the
        // resident retires).
        let mut admitted_at = None;
        while let Some(e) = s.next_event() {
            s.advance(e, &mut q2, &p);
            if q2.is_empty() && admitted_at.is_none() {
                admitted_at = Some(e);
            }
        }
        assert!(admitted_at.is_some(), "deferred request eventually admits");
        assert!(s.take_rejected().is_empty());
    }
}
