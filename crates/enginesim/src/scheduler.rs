//! Iteration-level continuous batching: the scheduler that admits and
//! retires requests at decode-iteration boundaries.
//!
//! The fixed-batch engine ([`crate::BatchRun`]) decodes one batch to
//! completion before the next forms, which leaves pipeline slots idle from
//! the moment a request finishes until the whole batch drains. Modern
//! serving stacks (Orca-style continuous batching) instead admit and retire
//! at *iteration* granularity: after every forward pass, finished requests
//! leave, waiting requests join — up to the configuration's batch capacity
//! **and** the engine's KV-cache budget — and the next iteration is priced
//! from the *current* mixed batch (prefill and decode tokens in one pass,
//! via [`parallelism::PerfModel::mixed_iteration_time`]).
//!
//! # Segments
//!
//! Simulating every iteration as its own event would be wasteful: between
//! membership changes the running set decodes uniformly. The scheduler
//! therefore advances in *segments* — maximal spans over which membership
//! is fixed. A segment runs until the earliest in-flight request emits its
//! last token (`K = min` remaining), with two prices: the first iteration
//! (which carries any newly admitted requests' prefills) and the steady
//! decode iteration, evaluated at each request's mid-segment context. An
//! arrival mid-segment truncates the segment at the next iteration
//! boundary so admission never happens mid-iteration.
//!
//! Progress commits only at iteration boundaries, which is what keeps
//! migration token-exact (§4.1): freezing the scheduler at any instant
//! yields, per request, exactly the tokens whose KV entries exist.

use std::collections::VecDeque;

use parallelism::{ParallelConfig, PerfModel};
use simkit::{SimDuration, SimTime};
use workload::{Request, RequestId};

use llmsim::SeqWork;

/// Per-request execution record: one request's progress through the engine.
///
/// This is what the fixed-batch engine's monolithic batch record becomes
/// under continuous batching — the unit the scheduler admits, advances,
/// retires, and (on migration) checkpoints and resumes token-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRun {
    request: Request,
    /// Output tokens committed (KV entries exist for `s_in + committed`).
    committed: u32,
}

impl RequestRun {
    /// A fresh record with no progress (prefill still required).
    pub fn fresh(request: Request) -> Self {
        RequestRun {
            request,
            committed: 0,
        }
    }

    /// A record resumed from migrated KV cache holding `committed` output
    /// tokens (stateful recovery, §4).
    ///
    /// # Panics
    ///
    /// Panics if `committed` is not less than the request's output length.
    pub fn resumed(request: Request, committed: u32) -> Self {
        assert!(
            committed < request.s_out,
            "{}: resume at {committed}/{} is already finished",
            request.id,
            request.s_out
        );
        RequestRun { request, committed }
    }

    /// The request being executed.
    pub fn request(&self) -> &Request {
        &self.request
    }

    /// Output tokens committed so far.
    pub fn committed(&self) -> u32 {
        self.committed
    }

    /// Output tokens still to generate.
    pub fn remaining(&self) -> u32 {
        self.request.s_out - self.committed
    }

    /// Whether the last output token is committed.
    pub fn is_done(&self) -> bool {
        self.committed >= self.request.s_out
    }

    /// Whether the next iteration must run this request's prefill
    /// (no committed tokens means no KV cache to decode from).
    pub fn needs_prefill(&self) -> bool {
        self.committed == 0
    }

    /// KV tokens this request will occupy at its peak (`S_in + S_out`);
    /// the admission test provisions for the peak so a request admitted
    /// under the budget can always run to completion.
    fn peak_kv_tokens(&self) -> u64 {
        self.request.s_in as u64 + self.request.s_out as u64
    }
}

/// One span of iterations over a fixed running set.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    start: SimTime,
    /// End of the first iteration (carries any admitted prefills).
    first_boundary: SimTime,
    /// Duration of each further decode iteration.
    iter_time: SimDuration,
    /// Iteration boundaries in this segment (`>= 1`).
    iters: u32,
}

impl Segment {
    /// Boundaries at or before `t` (clamped to the segment length).
    fn elapsed_iters(&self, t: SimTime) -> u32 {
        if t < self.first_boundary {
            return 0;
        }
        if self.iter_time == SimDuration::ZERO {
            return self.iters;
        }
        let extra =
            t.saturating_since(self.first_boundary).as_micros() / self.iter_time.as_micros();
        (1 + extra).min(self.iters as u64) as u32
    }

    /// The instant of boundary `k` (1-based).
    fn boundary(&self, k: u32) -> SimTime {
        debug_assert!(k >= 1 && k <= self.iters);
        self.first_boundary + self.iter_time * (k - 1) as u64
    }

    fn end(&self) -> SimTime {
        self.boundary(self.iters)
    }
}

/// The iteration-level scheduler for one inference pipeline.
///
/// Owns the pipeline's running set of [`RequestRun`]s; at each iteration
/// boundary it retires finished requests, admits waiting ones within the
/// batch capacity and KV budget, and re-prices the iteration from the
/// current mixed batch.
///
/// # Example
///
/// ```
/// use std::collections::VecDeque;
/// use enginesim::IterationScheduler;
/// use parallelism::{ParallelConfig, PerfModel};
/// use simkit::SimTime;
/// use workload::{Request, RequestId};
///
/// let model = llmsim::ModelSpec::opt_6_7b();
/// let perf = PerfModel::paper_defaults(model.clone());
/// let cfg = ParallelConfig::new(1, 1, 4, 8);
/// let mut sched = IterationScheduler::new(cfg, model.kv_bytes_per_token(), u64::MAX);
/// let mut pending: VecDeque<Request> = (0..2)
///     .map(|i| Request { id: RequestId(i), arrival: SimTime::ZERO, s_in: 512, s_out: 128 })
///     .collect();
/// sched.admit(&mut pending, SimTime::ZERO, &perf);
/// assert_eq!(sched.in_flight(), 2);
/// let end = sched.next_event().expect("segment scheduled");
/// let retired = sched.advance(end, &mut pending, &perf);
/// assert_eq!(retired.len(), 2, "equal-length requests retire together");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IterationScheduler {
    cfg: ParallelConfig,
    kv_bytes_per_token: u64,
    kv_budget_bytes: u64,
    running: Vec<RequestRun>,
    segment: Option<Segment>,
}

impl IterationScheduler {
    /// Creates an idle scheduler for a pipeline of configuration `cfg`
    /// whose engine holds `kv_budget_bytes` of KV cache
    /// (see [`llmsim::MemoryModel::kv_bytes_per_gpu`] times the pipeline's
    /// GPU count).
    pub fn new(cfg: ParallelConfig, kv_bytes_per_token: u64, kv_budget_bytes: u64) -> Self {
        IterationScheduler {
            cfg,
            kv_bytes_per_token,
            kv_budget_bytes,
            running: Vec::new(),
            segment: None,
        }
    }

    /// Rebuilds a scheduler from checkpointed records (stateful recovery
    /// after migration): records with progress resume decoding from their
    /// committed token, fresh ones re-run prefill. Starts the first
    /// segment at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `records` exceeds `cfg`'s batch capacity or contains a
    /// finished record.
    pub fn resume(
        records: Vec<RequestRun>,
        cfg: ParallelConfig,
        kv_bytes_per_token: u64,
        kv_budget_bytes: u64,
        now: SimTime,
        perf: &PerfModel,
    ) -> Self {
        assert!(
            records.len() <= cfg.batch as usize,
            "resume of {} records exceeds B={}",
            records.len(),
            cfg.batch
        );
        for r in &records {
            assert!(!r.is_done(), "{} is already finished", r.request.id);
        }
        let mut sched = IterationScheduler::new(cfg, kv_bytes_per_token, kv_budget_bytes);
        sched.running = records;
        if !sched.running.is_empty() {
            sched.start_segment(now, perf);
        }
        sched
    }

    /// Like [`IterationScheduler::resume`], but applies this scheduler's
    /// own admission rule to an arbitrarily large checkpoint (§3.3
    /// footnote 2 — the new configuration may hold fewer concurrent
    /// requests): deepest-progress records are kept up to the batch
    /// capacity and KV budget, the rest come back as bare requests for
    /// recomputation via the queue.
    ///
    /// # Panics
    ///
    /// Panics if `records` contains a finished record.
    pub fn resume_within_budget(
        mut records: Vec<RequestRun>,
        cfg: ParallelConfig,
        kv_bytes_per_token: u64,
        kv_budget_bytes: u64,
        now: SimTime,
        perf: &PerfModel,
    ) -> (Self, Vec<Request>) {
        records.sort_by_key(|r| (std::cmp::Reverse(r.committed()), r.request.id));
        let mut sched = IterationScheduler::new(cfg, kv_bytes_per_token, kv_budget_bytes);
        let mut dropped = Vec::new();
        for r in records {
            assert!(!r.is_done(), "{} is already finished", r.request.id);
            if sched.can_admit(&r.request) {
                sched.running.push(r);
            } else {
                dropped.push(r.request);
            }
        }
        if !sched.running.is_empty() {
            sched.start_segment(now, perf);
        }
        (sched, dropped)
    }

    /// The configuration this scheduler runs under.
    pub fn config(&self) -> &ParallelConfig {
        &self.cfg
    }

    /// Adopts a batch-size-only configuration change (same mesh, so no
    /// migration): the running segment is untouched, future admissions use
    /// the new capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` changes the mesh shape (that requires a full
    /// freeze/resume through migration).
    pub fn set_config(&mut self, cfg: ParallelConfig) {
        assert_eq!(
            self.cfg.mesh_key(),
            cfg.mesh_key(),
            "mesh changes must go through freeze/resume"
        );
        self.cfg = cfg;
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.running.len()
    }

    /// Whether nothing is running.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// The running set (progress as of the current segment's start).
    pub fn running(&self) -> &[RequestRun] {
        &self.running
    }

    /// Whether a slot is free under the batch capacity.
    pub fn has_capacity(&self) -> bool {
        self.running.len() < self.cfg.batch as usize
    }

    /// Whether `r`'s peak KV footprint fits the remaining budget. An idle
    /// pipeline always admits one request (a feasible configuration's
    /// engine can serve a single sequence by construction), so serving can
    /// never deadlock on a conservative budget.
    pub fn kv_fits(&self, r: &Request) -> bool {
        if self.running.is_empty() {
            return true;
        }
        let projected: u64 = self
            .running
            .iter()
            .map(RequestRun::peak_kv_tokens)
            .sum::<u64>()
            + r.s_in as u64
            + r.s_out as u64;
        projected.saturating_mul(self.kv_bytes_per_token) <= self.kv_budget_bytes
    }

    /// Whether `r` can join the running set at the next boundary.
    pub fn can_admit(&self, r: &Request) -> bool {
        self.has_capacity() && self.kv_fits(r)
    }

    /// Admits from the front of `pending` while capacity and KV budget
    /// allow, then (re)starts the segment at `now` if anything runs and no
    /// segment is active. Only call at an iteration boundary or while
    /// idle. Returns how many requests were admitted.
    ///
    /// # Panics
    ///
    /// Panics if called mid-segment, or if an admitted request has
    /// `s_out == 0`.
    pub fn admit(
        &mut self,
        pending: &mut VecDeque<Request>,
        now: SimTime,
        perf: &PerfModel,
    ) -> usize {
        assert!(
            self.segment.is_none(),
            "admission is only legal at an iteration boundary"
        );
        let mut admitted = 0;
        while let Some(front) = pending.front() {
            if !self.can_admit(front) {
                break;
            }
            let req = pending.pop_front().expect("peeked");
            assert!(req.s_out > 0, "generation must produce tokens");
            self.running.push(RequestRun::fresh(req));
            admitted += 1;
        }
        if !self.running.is_empty() {
            self.start_segment(now, perf);
        }
        admitted
    }

    /// The instant of the current segment's last boundary — when
    /// [`IterationScheduler::advance`] must be called.
    pub fn next_event(&self) -> Option<SimTime> {
        self.segment.as_ref().map(Segment::end)
    }

    /// The first iteration boundary strictly being worked toward at `t`
    /// (the earliest instant a waiting request could join this pipeline),
    /// or `None` when no segment runs.
    pub fn next_boundary_after(&self, t: SimTime) -> Option<SimTime> {
        let seg = self.segment.as_ref()?;
        let k = (seg.elapsed_iters(t) + 1).min(seg.iters);
        Some(seg.boundary(k))
    }

    /// Processes the boundary at `now` (the segment's end): commits the
    /// segment's iterations, retires finished requests, admits waiting
    /// ones, and starts the next segment. Returns the retired requests in
    /// admission order.
    pub fn advance(
        &mut self,
        now: SimTime,
        pending: &mut VecDeque<Request>,
        perf: &PerfModel,
    ) -> Vec<Request> {
        let Some(seg) = self.segment.take() else {
            // Idle pipeline: nothing to commit, just try admission.
            self.admit(pending, now, perf);
            return Vec::new();
        };
        debug_assert!(now >= seg.end(), "boundary event fired early");
        let done = seg.iters;
        for r in &mut self.running {
            r.committed = (r.committed + done).min(r.request.s_out);
        }
        let mut retired = Vec::new();
        self.running.retain(|r| {
            if r.is_done() {
                retired.push(r.request);
                false
            } else {
                true
            }
        });
        self.admit(pending, now, perf);
        if !self.running.is_empty() && self.segment.is_none() {
            self.start_segment(now, perf);
        }
        retired
    }

    /// An arrival landed at `now` while a segment is running: if `head`
    /// could join at the next boundary, truncate the segment there so the
    /// boundary event fires early. Returns the new (earlier) segment end
    /// when the caller must reschedule, `None` when nothing changed.
    pub fn interrupt_for_admission(&mut self, now: SimTime, head: &Request) -> Option<SimTime> {
        if !self.can_admit(head) {
            return None;
        }
        let seg = self.segment.as_mut()?;
        let next = seg.elapsed_iters(now) + 1;
        if next >= seg.iters {
            return None; // already ending at the next boundary or sooner
        }
        seg.iters = next;
        Some(seg.end())
    }

    /// Freezes the pipeline at `now` (engine interruption): commits every
    /// boundary at or before `now` — progress is token-exact, only whole
    /// iterations count — cancels the segment, and drains the running set
    /// as checkpointable records. Requests that finished exactly at `now`
    /// come back as done records.
    pub fn freeze(&mut self, now: SimTime) -> Vec<RequestRun> {
        if let Some(seg) = self.segment.take() {
            let done = seg.elapsed_iters(now);
            for r in &mut self.running {
                r.committed = (r.committed + done).min(r.request.s_out);
            }
        }
        std::mem::take(&mut self.running)
    }

    /// Abandons all in-flight work, returning the bare requests in
    /// admission order (the recomputation path: progress is discarded).
    pub fn into_requests(mut self) -> Vec<Request> {
        self.segment = None;
        self.running.drain(..).map(|r| r.request).collect()
    }

    /// Per-request committed output tokens at `t`, including progress
    /// inside the live segment.
    pub fn committed_per_request_at(&self, t: SimTime) -> Vec<(RequestId, u32)> {
        let done = self.segment.map(|s| s.elapsed_iters(t)).unwrap_or(0);
        self.running
            .iter()
            .map(|r| (r.request.id, (r.committed + done).min(r.request.s_out)))
            .collect()
    }

    /// The deepest per-request progress at `t` (the device mapper ranks
    /// pipelines by decoding progress when shrinking, §3.3).
    pub fn max_committed_at(&self, t: SimTime) -> u32 {
        self.committed_per_request_at(t)
            .into_iter()
            .map(|(_, c)| c)
            .max()
            .unwrap_or(0)
    }

    /// Resident KV-cache bytes at `t`: every in-flight request holds
    /// `S_in +` committed tokens.
    pub fn cache_bytes_at(&self, t: SimTime, kv_bytes_per_token: u64) -> u64 {
        let done = self.segment.map(|s| s.elapsed_iters(t)).unwrap_or(0);
        self.running
            .iter()
            .map(|r| {
                let tokens =
                    r.request.s_in as u64 + ((r.committed + done).min(r.request.s_out)) as u64;
                tokens * kv_bytes_per_token
            })
            .sum()
    }

    /// Prices and installs the next segment: `K = min` remaining
    /// iterations over a fixed membership, decode iterations evaluated at
    /// each request's mid-segment context, the first iteration carrying
    /// any pending prefills through the mixed batch.
    fn start_segment(&mut self, now: SimTime, perf: &PerfModel) {
        debug_assert!(!self.running.is_empty());
        let k = self
            .running
            .iter()
            .map(RequestRun::remaining)
            .min()
            .expect("non-empty");
        debug_assert!(k >= 1, "finished requests must be retired first");
        let mid_ctx = |r: &RequestRun| {
            (r.request.s_in + r.committed + k / 2).min(r.request.s_in + r.request.s_out)
        };
        let decode_seqs: Vec<SeqWork> = self
            .running
            .iter()
            .map(|r| SeqWork::decode(mid_ctx(r)))
            .collect();
        let iter_time = perf.mixed_iteration_time(&self.cfg, &decode_seqs);
        let first_iter = if self.running.iter().any(RequestRun::needs_prefill) {
            let first_seqs: Vec<SeqWork> = self
                .running
                .iter()
                .map(|r| {
                    if r.needs_prefill() {
                        SeqWork::prefill(r.request.s_in)
                    } else {
                        SeqWork::decode(mid_ctx(r))
                    }
                })
                .collect();
            perf.mixed_iteration_time(&self.cfg, &first_seqs)
        } else {
            iter_time
        };
        self.segment = Some(Segment {
            start: now,
            first_boundary: now + first_iter,
            iter_time,
            iters: k,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRun;
    use llmsim::ModelSpec;

    fn perf() -> PerfModel {
        PerfModel::paper_defaults(ModelSpec::opt_6_7b())
    }

    fn cfg() -> ParallelConfig {
        ParallelConfig::new(1, 1, 4, 8)
    }

    fn req(id: u64, s_in: u32, s_out: u32) -> Request {
        Request {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            s_in,
            s_out,
        }
    }

    fn kvbpt() -> u64 {
        ModelSpec::opt_6_7b().kv_bytes_per_token()
    }

    fn sched() -> IterationScheduler {
        IterationScheduler::new(cfg(), kvbpt(), u64::MAX)
    }

    #[test]
    fn uniform_batch_matches_fixed_engine_timing() {
        // A batch admitted at once decodes exactly like the fixed-batch
        // engine's BatchRun: same prefill, same mid-context iteration.
        let p = perf();
        let reqs: Vec<Request> = (0..4).map(|i| req(i, 512, 128)).collect();
        let run = BatchRun::start(reqs.clone(), &cfg(), SimTime::ZERO, &p);
        let mut s = sched();
        let mut pending: VecDeque<Request> = reqs.into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        assert_eq!(s.next_event(), Some(run.finish_time()));
        let retired = s.advance(run.finish_time(), &mut pending, &p);
        assert_eq!(retired.len(), 4);
        assert!(s.is_idle());
    }

    #[test]
    fn short_request_retires_and_backfills() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 16), req(1, 512, 128)]
            .into_iter()
            .collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let b1 = s.next_event().unwrap();
        // Segment ends when the 16-token request finishes.
        let retired = s.advance(b1, &mut pending, &p);
        assert_eq!(retired, vec![req(0, 512, 16)]);
        assert_eq!(s.in_flight(), 1);
        // The survivor carries its 16 committed tokens into the next
        // segment.
        assert_eq!(s.running()[0].committed(), 16);
        let b2 = s.next_event().unwrap();
        let retired = s.advance(b2, &mut pending, &p);
        assert_eq!(retired, vec![req(1, 512, 128)]);
        assert!(s.next_event().is_none());
    }

    #[test]
    fn kv_budget_binds_before_batch_capacity() {
        // Budget for exactly two peak-size requests; B = 8.
        let budget = 2 * (512 + 128) * kvbpt();
        let p = perf();
        let mut s = IterationScheduler::new(cfg(), kvbpt(), budget);
        let mut pending: VecDeque<Request> = (0..4).map(|i| req(i, 512, 128)).collect();
        let admitted = s.admit(&mut pending, SimTime::ZERO, &p);
        assert_eq!(admitted, 2, "KV budget must bind before B=8");
        assert!(s.has_capacity(), "slots remain, memory does not");
        assert!(!s.can_admit(pending.front().unwrap()));
        // Retirement frees budget: both retire together, then two more fit.
        let end = s.next_event().unwrap();
        let retired = s.advance(end, &mut pending, &p);
        assert_eq!(retired.len(), 2);
        assert_eq!(s.in_flight(), 2);
        assert!(pending.is_empty());
    }

    #[test]
    fn idle_pipeline_always_admits_one_request() {
        // A budget too small even for one request must not deadlock: the
        // first admission bypasses the check.
        let p = perf();
        let mut s = IterationScheduler::new(cfg(), kvbpt(), 1);
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128), req(1, 512, 128)]
            .into_iter()
            .collect();
        assert_eq!(s.admit(&mut pending, SimTime::ZERO, &p), 1);
        assert_eq!(s.in_flight(), 1);
    }

    #[test]
    fn retirement_of_last_in_flight_request_goes_idle() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 8)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let end = s.next_event().unwrap();
        let retired = s.advance(end, &mut pending, &p);
        assert_eq!(retired.len(), 1);
        assert!(s.is_idle());
        assert_eq!(s.next_event(), None);
        assert_eq!(s.cache_bytes_at(end, kvbpt()), 0, "cache released");
        // The idle scheduler admits again on the next dispatch.
        let mut more: VecDeque<Request> = vec![req(1, 512, 8)].into_iter().collect();
        assert_eq!(s.admit(&mut more, end, &p), 1);
    }

    #[test]
    fn freeze_exactly_on_boundary_is_token_exact() {
        // Preemption landing exactly on an iteration boundary commits that
        // boundary's token — no more, no less.
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let seg = s.segment.unwrap();
        let b3 = seg.boundary(3);
        assert_eq!(s.committed_per_request_at(b3), vec![(RequestId(0), 3)]);
        let records = s.freeze(b3);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].committed(), 3);
        assert!(s.is_idle());
    }

    #[test]
    fn freeze_mid_iteration_commits_only_whole_iterations() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let seg = s.segment.unwrap();
        let mid = seg.boundary(5) + SimDuration::from_micros(1);
        let records = s.freeze(mid);
        assert_eq!(records[0].committed(), 5, "partial iteration 6 discarded");
    }

    #[test]
    fn heterogeneous_progress_survives_freeze_and_resume() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 32), req(1, 512, 128)]
            .into_iter()
            .collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        // Run out the first segment: request 0 done, request 1 at 32.
        let b = s.next_event().unwrap();
        s.advance(b, &mut pending, &p);
        // Mid-second-segment freeze: request 1 alone, heterogeneous vs a
        // fresh admission that joins on resume.
        let seg = s.segment.unwrap();
        let records = s.freeze(seg.boundary(10));
        assert_eq!(records, vec![RequestRun::resumed(req(1, 512, 128), 42)]);
        // Resume under a different configuration: no prefill re-run.
        let new_cfg = ParallelConfig::new(1, 2, 2, 8);
        let mut r =
            IterationScheduler::resume(records, new_cfg, kvbpt(), u64::MAX, seg.boundary(10), &p);
        assert!(!r.running()[0].needs_prefill());
        let end = r.next_event().unwrap();
        let retired = r.advance(end, &mut VecDeque::new(), &p);
        assert_eq!(retired.len(), 1, "86 remaining tokens decode to the end");
    }

    #[test]
    fn mid_segment_arrival_truncates_to_next_boundary() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let old_end = s.next_event().unwrap();
        let seg = s.segment.unwrap();
        let arrival_t = seg.boundary(2) + SimDuration::from_micros(1);
        let newcomer = req(1, 512, 128);
        let new_end = s.interrupt_for_admission(arrival_t, &newcomer).unwrap();
        assert_eq!(new_end, seg.boundary(3), "next boundary after arrival");
        assert!(new_end < old_end);
        // At the new boundary the newcomer joins and the survivor keeps
        // its 3 committed tokens.
        let mut q: VecDeque<Request> = vec![newcomer].into_iter().collect();
        s.advance(new_end, &mut q, &p);
        assert_eq!(s.in_flight(), 2);
        assert_eq!(
            s.committed_per_request_at(new_end),
            vec![(RequestId(0), 3), (RequestId(1), 0)]
        );
    }

    #[test]
    fn interrupt_without_room_is_ignored() {
        let p = perf();
        let small = ParallelConfig::new(1, 1, 4, 1);
        let mut s = IterationScheduler::new(small, kvbpt(), u64::MAX);
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let end = s.next_event().unwrap();
        let t = s.segment.unwrap().boundary(1) + SimDuration::from_micros(1);
        assert_eq!(s.interrupt_for_admission(t, &req(1, 512, 128)), None);
        assert_eq!(s.next_event(), Some(end), "segment untouched");
    }

    #[test]
    fn mixed_batch_iterations_cost_more_than_decode_only() {
        // A segment whose first iteration carries a prefill must price it
        // above the steady decode iteration.
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 64)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let b = s.next_event().unwrap();
        s.advance(b, &mut pending, &p); // retires request 0
        let mut q: VecDeque<Request> = vec![req(1, 512, 128)].into_iter().collect();
        s.admit(&mut q, b, &p);
        let seg = s.segment.unwrap();
        let first = seg.first_boundary.saturating_since(seg.start);
        assert!(
            first > seg.iter_time,
            "prefill-carrying iteration {first} must exceed decode {}",
            seg.iter_time
        );
    }

    #[test]
    fn cache_grows_with_commitment() {
        let p = perf();
        let mut s = sched();
        let mut pending: VecDeque<Request> = vec![req(0, 512, 128)].into_iter().collect();
        s.admit(&mut pending, SimTime::ZERO, &p);
        let kv = kvbpt();
        assert_eq!(s.cache_bytes_at(SimTime::ZERO, kv), 512 * kv);
        let end = s.next_event().unwrap();
        assert_eq!(s.cache_bytes_at(end, kv), (512 + 128) * kv);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn resumed_record_must_have_tokens_left() {
        RequestRun::resumed(req(0, 512, 128), 128);
    }
}
