//! The context daemon: per-pipeline context accounting that survives
//! engine interruptions.
//!
//! In the real system the daemon is a separate process per GPU holding the
//! CUDA allocations (model context + cache context) so that an engine
//! restart does not lose them (§3.1, §5). In the simulator the daemon
//! tracks, per pipeline, whose KV cache is resident and how many tokens of
//! it are committed — the inputs the device mapper and migration planner
//! need. Under the iteration-level engine the inventory is *per request*
//! (a continuous batch is heterogeneous: every in-flight request has its
//! own committed count); the monolithic [`BatchRun`] form is kept for the
//! fixed-batch baseline.

use parallelism::ParallelConfig;
use simkit::SimTime;
use workload::RequestId;

use crate::batch::BatchRun;
use crate::scheduler::IterationScheduler;

/// Context inventory for one inference pipeline.
///
/// # Example
///
/// ```
/// use enginesim::{BatchRun, ContextDaemon};
/// use parallelism::{ParallelConfig, PerfModel};
/// use simkit::SimTime;
/// use workload::{Request, RequestId};
///
/// let model = llmsim::ModelSpec::opt_6_7b();
/// let perf = PerfModel::paper_defaults(model.clone());
/// let cfg = ParallelConfig::new(1, 1, 4, 8);
/// let mut daemon = ContextDaemon::new(model.kv_bytes_per_token());
/// let run = BatchRun::start(
///     vec![Request::new(RequestId(0), SimTime::ZERO, 512, 128)],
///     &cfg, SimTime::ZERO, &perf,
/// );
/// daemon.attach(run);
/// assert!(daemon.cache_bytes_at(SimTime::ZERO) > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContextDaemon {
    kv_bytes_per_token: u64,
    batch: Option<BatchRun>,
    sched: Option<IterationScheduler>,
}

impl ContextDaemon {
    /// Creates a daemon for a model with the given whole-model KV bytes per
    /// token.
    pub fn new(kv_bytes_per_token: u64) -> Self {
        ContextDaemon {
            kv_bytes_per_token,
            batch: None,
            sched: None,
        }
    }

    /// Registers the batch whose cache this pipeline now holds.
    pub fn attach(&mut self, batch: BatchRun) {
        self.batch = Some(batch);
    }

    /// Drops the cache context (batch finished, or cache given up under
    /// fault handling §4.2).
    pub fn detach(&mut self) -> Option<BatchRun> {
        self.batch.take()
    }

    /// The resident batch, if any.
    pub fn batch(&self) -> Option<&BatchRun> {
        self.batch.as_ref()
    }

    /// Registers the iteration scheduler whose requests' caches this
    /// pipeline now holds (continuous-batching engine).
    pub fn attach_scheduler(&mut self, sched: IterationScheduler) {
        self.sched = Some(sched);
    }

    /// Drops the scheduler and its cache inventory.
    pub fn detach_scheduler(&mut self) -> Option<IterationScheduler> {
        self.sched.take()
    }

    /// The resident iteration scheduler, if any.
    pub fn scheduler(&self) -> Option<&IterationScheduler> {
        self.sched.as_ref()
    }

    /// Mutable access to the resident iteration scheduler.
    pub fn scheduler_mut(&mut self) -> Option<&mut IterationScheduler> {
        self.sched.as_mut()
    }

    /// Committed KV-cache bytes at `t` (0 when idle). Under the
    /// continuous engine this sums each in-flight request's own
    /// `S_in +` committed tokens.
    pub fn cache_bytes_at(&self, t: SimTime) -> u64 {
        let batch = self
            .batch
            .as_ref()
            .map(|b| b.cache_bytes_at(t, self.kv_bytes_per_token))
            .unwrap_or(0);
        let sched = self
            .sched
            .as_ref()
            .map(|s| s.cache_bytes_at(t, self.kv_bytes_per_token))
            .unwrap_or(0);
        batch + sched
    }

    /// Deepest committed output-token count at `t` (0 when idle): the
    /// batch's uniform progress, or — per-request under the continuous
    /// engine — the furthest request's progress (the device mapper ranks
    /// pipelines by decoding progress, §3.3).
    pub fn committed_iters_at(&self, t: SimTime) -> u32 {
        let batch = self
            .batch
            .as_ref()
            .map(|b| b.committed_iters_at(t))
            .unwrap_or(0);
        let sched = self
            .sched
            .as_ref()
            .map(|s| s.max_committed_at(t))
            .unwrap_or(0);
        batch.max(sched)
    }

    /// Per-request committed output tokens at `t` — the token-exact
    /// inventory a heterogeneous in-flight set checkpoints through a
    /// migration. A monolithic batch reports its uniform progress for
    /// every member.
    pub fn committed_per_request_at(&self, t: SimTime) -> Vec<(RequestId, u32)> {
        if let Some(s) = &self.sched {
            return s.committed_per_request_at(t);
        }
        if let Some(b) = &self.batch {
            let c = b.committed_iters_at(t);
            return b
                .requests()
                .iter()
                .map(|r| (r.id, c.min(r.s_out)))
                .collect();
        }
        Vec::new()
    }

    /// Re-registers the resident batch as resumed at `now` from its current
    /// progress under a (possibly different) configuration — the mechanics
    /// of stateful inference recovery. Returns the committed token count
    /// carried over, or `None` if idle or the batch already finished.
    pub fn rebase(
        &mut self,
        now: SimTime,
        cfg: &ParallelConfig,
        perf: &parallelism::PerfModel,
    ) -> Option<u32> {
        let batch = self.batch.take()?;
        let committed = batch.committed_iters_at(now);
        if committed >= batch.total_iters() {
            // Finished: nothing to carry.
            self.batch = Some(batch);
            return None;
        }
        let reqs = batch.requests().to_vec();
        let resumed = if committed == 0 {
            BatchRun::start(reqs, cfg, now, perf)
        } else {
            BatchRun::resume(reqs, cfg, now, perf, committed)
        };
        self.batch = Some(resumed);
        Some(committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::ModelSpec;
    use parallelism::PerfModel;
    use simkit::SimDuration;
    use workload::{Request, RequestId};

    fn setup() -> (ContextDaemon, BatchRun, PerfModel, ParallelConfig) {
        let model = ModelSpec::opt_6_7b();
        let perf = PerfModel::paper_defaults(model.clone());
        let cfg = ParallelConfig::new(1, 1, 4, 8);
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request::new(RequestId(i), SimTime::ZERO, 512, 128))
            .collect();
        let run = BatchRun::start(reqs, &cfg, SimTime::ZERO, &perf);
        (
            ContextDaemon::new(model.kv_bytes_per_token()),
            run,
            perf,
            cfg,
        )
    }

    #[test]
    fn idle_daemon_reports_zero() {
        let (daemon, ..) = setup();
        assert_eq!(daemon.cache_bytes_at(SimTime::from_secs(10)), 0);
        assert_eq!(daemon.committed_iters_at(SimTime::from_secs(10)), 0);
    }

    #[test]
    fn attach_then_detach_round_trips() {
        let (mut daemon, run, ..) = setup();
        daemon.attach(run.clone());
        assert_eq!(daemon.batch(), Some(&run));
        assert_eq!(daemon.detach(), Some(run));
        assert_eq!(daemon.batch(), None);
    }

    #[test]
    fn rebase_preserves_progress() {
        let (mut daemon, run, perf, _) = setup();
        let halfway = run.time_of_iter(64).unwrap() + SimDuration::from_micros(1);
        daemon.attach(run);
        // Resume under a different configuration (e.g. after migration).
        let new_cfg = ParallelConfig::new(1, 2, 2, 8);
        let carried = daemon.rebase(halfway, &new_cfg, &perf);
        assert_eq!(carried, Some(64));
        let b = daemon.batch().unwrap();
        assert_eq!(b.resumed_from(), 64);
        assert_eq!(b.committed_iters_at(halfway), 64);
        assert!(b.finish_time() > halfway);
    }

    #[test]
    fn rebase_before_any_token_restarts() {
        let (mut daemon, run, perf, cfg) = setup();
        daemon.attach(run);
        let carried = daemon.rebase(SimTime::from_micros(10), &cfg, &perf);
        assert_eq!(carried, Some(0));
        assert_eq!(daemon.batch().unwrap().resumed_from(), 0);
    }

    #[test]
    fn rebase_finished_batch_is_none() {
        let (mut daemon, run, perf, cfg) = setup();
        let end = run.finish_time();
        daemon.attach(run);
        assert_eq!(daemon.rebase(end, &cfg, &perf), None);
    }

    #[test]
    fn batch_reports_uniform_per_request_progress() {
        let (mut daemon, run, ..) = setup();
        let halfway = run.time_of_iter(64).unwrap();
        daemon.attach(run);
        let per = daemon.committed_per_request_at(halfway);
        assert_eq!(per.len(), 4);
        assert!(per.iter().all(|(_, c)| *c == 64));
    }

    #[test]
    fn scheduler_reports_heterogeneous_per_request_progress() {
        use crate::scheduler::IterationScheduler;
        use std::collections::VecDeque;

        let model = ModelSpec::opt_6_7b();
        let perf = PerfModel::paper_defaults(model.clone());
        let cfg = ParallelConfig::new(1, 1, 4, 8);
        let mut daemon = ContextDaemon::new(model.kv_bytes_per_token());
        let mut sched = IterationScheduler::new(cfg, model.kv_bytes_per_token(), u64::MAX);
        let mut pending: VecDeque<Request> = vec![
            Request::new(RequestId(0), SimTime::ZERO, 512, 16),
            Request::new(RequestId(1), SimTime::ZERO, 512, 128),
        ]
        .into_iter()
        .collect();
        sched.admit(&mut pending, SimTime::ZERO, &perf);
        // Run out the first segment: request 0 retires at 16, request 1
        // keeps going — heterogeneous progress.
        let b = sched.next_event().unwrap();
        sched.advance(b, &mut pending, &perf);
        daemon.attach_scheduler(sched);
        let per = daemon.committed_per_request_at(b);
        assert_eq!(per, vec![(RequestId(1), 16)]);
        assert_eq!(daemon.committed_iters_at(b), 16);
        assert_eq!(
            daemon.cache_bytes_at(b),
            (512 + 16) * model.kv_bytes_per_token()
        );
        assert!(daemon.detach_scheduler().is_some());
        assert_eq!(daemon.cache_bytes_at(b), 0);
    }
}
