//! Discrete-event inference engine: iteration-level continuous batching,
//! token-level progress, context-daemon cache accounting, and the
//! just-in-time interruption arranger.
//!
//! The paper's engine is FasterTransformer extended with a *context daemon*
//! (owns model + cache tensors, survives engine restarts) and an
//! *interruption arranger* (decides how many decoding iterations to run
//! inside a grace period, §4.1). Here the engine is simulated at token
//! granularity, in two flavors:
//!
//! * the **iteration-level scheduler** ([`IterationScheduler`]) — the
//!   serving system's default engine. It manages per-request execution
//!   records ([`RequestRun`]), retiring requests the moment their last
//!   token commits and admitting waiting requests at the next iteration
//!   boundary, within the batch capacity *and* the engine's KV budget.
//!   Each iteration is priced from the current mixed batch (prefill and
//!   decode tokens in one pass), so throughput no longer depends on
//!   batch-formation luck;
//! * the **fixed-batch record** ([`BatchRun`]) — the paper's original
//!   run-to-completion semantics, kept as the comparison baseline and as
//!   the unit the interruption arranger reasons about.
//!
//! Both know exactly how many tokens are committed at any instant, which
//! is what makes stateful recovery — resuming interrupted requests from
//! their cached tokens instead of recomputing — an executable mechanic
//! rather than bookkeeping fiction. Under continuous batching the
//! checkpoint is *heterogeneous*: each in-flight request carries its own
//! committed count through a migration, and the JIT arranger's
//! grace-period decoding simply runs more scheduler iterations before the
//! freeze.
//!
//! # Example
//!
//! ```
//! use enginesim::BatchRun;
//! use parallelism::{ParallelConfig, PerfModel};
//! use simkit::SimTime;
//! use workload::{Request, RequestId};
//!
//! let perf = PerfModel::paper_defaults(llmsim::ModelSpec::opt_6_7b());
//! let cfg = ParallelConfig::new(1, 1, 4, 8);
//! let reqs = vec![Request::new(RequestId(0), SimTime::ZERO, 512, 128)];
//! let run = BatchRun::start(reqs, &cfg, SimTime::ZERO, &perf);
//! assert_eq!(run.committed_iters_at(SimTime::ZERO), 0);
//! assert_eq!(run.committed_iters_at(run.finish_time()), 128);
//! ```

pub mod arranger;
pub mod batch;
pub mod daemon;
pub mod queue;
pub mod scheduler;

pub use arranger::{acquisition_defer_until, preemption_stop_time, recovery_worthwhile};
pub use batch::BatchRun;
pub use daemon::ContextDaemon;
pub use queue::{AdmissionQueue, PendingQueue};
pub use scheduler::{AdmissionVerdict, EngineCounters, IterationScheduler, RequestRun};
