//! Discrete-event inference engine: batch execution, token-level progress,
//! context-daemon cache accounting, and the just-in-time interruption
//! arranger.
//!
//! The paper's engine is FasterTransformer extended with a *context daemon*
//! (owns model + cache tensors, survives engine restarts) and an
//! *interruption arranger* (decides how many decoding iterations to run
//! inside a grace period, §4.1). Here the engine is simulated at token
//! granularity: a [`BatchRun`] knows exactly how many tokens are committed
//! at any instant, which is what makes stateful recovery — resuming an
//! interrupted request from its cached tokens instead of recomputing — an
//! executable mechanic rather than bookkeeping fiction.
//!
//! # Example
//!
//! ```
//! use enginesim::BatchRun;
//! use parallelism::{ParallelConfig, PerfModel};
//! use simkit::SimTime;
//! use workload::{Request, RequestId};
//!
//! let perf = PerfModel::paper_defaults(llmsim::ModelSpec::opt_6_7b());
//! let cfg = ParallelConfig::new(1, 1, 4, 8);
//! let reqs = vec![Request { id: RequestId(0), arrival: SimTime::ZERO, s_in: 512, s_out: 128 }];
//! let run = BatchRun::start(reqs, &cfg, SimTime::ZERO, &perf);
//! assert_eq!(run.committed_iters_at(SimTime::ZERO), 0);
//! assert_eq!(run.committed_iters_at(run.finish_time()), 128);
//! ```

pub mod arranger;
pub mod batch;
pub mod daemon;

pub use arranger::{acquisition_defer_until, preemption_stop_time, recovery_worthwhile};
pub use batch::BatchRun;
pub use daemon::ContextDaemon;
