//! The pending-request queue the scheduler admits from, with an EDF dirty
//! flag.
//!
//! [`IterationScheduler::admit`](crate::IterationScheduler::admit) keeps
//! deadline-carrying queues in earliest-deadline-first order by stably
//! re-sorting at each iteration boundary. Between boundaries, though, the
//! queue usually has not changed: admission only *removes* requests, and
//! removals preserve sorted order. The [`AdmissionQueue`] trait lets the
//! queue's owner tell the scheduler exactly that — [`PendingQueue`] sets a
//! dirty flag on every push (arrivals, requeues after a migration) and the
//! scheduler skips the re-sort when the flag is clear. A bare
//! [`VecDeque`] still works everywhere a queue is expected and always
//! reports dirty, which is precisely the pre-flag behavior (sort whenever
//! a deadline is present), so existing callers are untouched.

use std::collections::VecDeque;

use workload::Request;

/// A queue [`crate::IterationScheduler::admit`] can draw from.
///
/// The contract: the scheduler only ever *removes* requests from the
/// deque (which preserves EDF order), and calls
/// [`AdmissionQueue::note_edf_sorted`] after re-establishing EDF order.
/// Everyone else must report order-disturbing mutations (pushes) through
/// [`AdmissionQueue::edf_may_be_dirty`].
pub trait AdmissionQueue {
    /// The underlying FIFO.
    ///
    /// Callers other than the scheduler must not insert through this
    /// accessor: a push that bypasses the flag-setting methods leaves the
    /// dirty flag clear on an unsorted queue. Admission's debug builds
    /// assert a clean queue really is in EDF order, so such a bypass
    /// fails fast in tests instead of silently admitting out of deadline
    /// order.
    fn deque(&mut self) -> &mut VecDeque<Request>;

    /// Whether the queue may have fallen out of EDF order since admission
    /// last sorted it. The default (`true`) forces a sort check at every
    /// boundary — the conservative, pre-flag behavior.
    fn edf_may_be_dirty(&self) -> bool {
        true
    }

    /// Admission re-established EDF order (or verified the queue carries
    /// no deadline and needs none).
    fn note_edf_sorted(&mut self) {}
}

/// A bare deque is always treated as possibly-dirty: admission sorts it
/// whenever any queued request carries a deadline, exactly as before the
/// dirty flag existed.
impl AdmissionQueue for VecDeque<Request> {
    fn deque(&mut self) -> &mut VecDeque<Request> {
        self
    }
}

/// A pending-request queue that tracks whether its EDF order may be stale.
///
/// Every push sets the dirty flag; the scheduler's admission clears it
/// after sorting (or after verifying no deadline carrier is queued). A
/// queue that only shrank since the last boundary skips the re-sort
/// entirely.
///
/// # Example
///
/// ```
/// use enginesim::{AdmissionQueue, PendingQueue};
/// use simkit::SimTime;
/// use workload::{Request, RequestId};
///
/// let mut q = PendingQueue::new();
/// assert!(!q.edf_may_be_dirty(), "an empty queue is trivially sorted");
/// q.push_back(Request::new(RequestId(0), SimTime::ZERO, 512, 128));
/// assert!(q.edf_may_be_dirty());
/// q.note_edf_sorted();
/// assert!(!q.edf_may_be_dirty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PendingQueue {
    q: VecDeque<Request>,
    edf_dirty: bool,
}

impl PendingQueue {
    /// An empty queue (clean: nothing to sort).
    pub fn new() -> Self {
        PendingQueue::default()
    }

    /// Appends an arrival at the back.
    pub fn push_back(&mut self, r: Request) {
        self.q.push_back(r);
        self.edf_dirty = true;
    }

    /// Requeues a request at the front (the recomputation path after a
    /// preemption or shrink).
    pub fn push_front(&mut self, r: Request) {
        self.q.push_front(r);
        self.edf_dirty = true;
    }

    /// Queued requests.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Iterates the queue front to back.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.q.iter()
    }

    /// The request at the front.
    pub fn front(&self) -> Option<&Request> {
        self.q.front()
    }

    /// Removes and returns the first `n` requests (front removal keeps
    /// EDF order, so the flag is untouched).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`PendingQueue::len`].
    pub fn drain_front(&mut self, n: usize) -> impl Iterator<Item = Request> + '_ {
        self.q.drain(..n)
    }
}

impl AdmissionQueue for PendingQueue {
    fn deque(&mut self) -> &mut VecDeque<Request> {
        &mut self.q
    }

    fn edf_may_be_dirty(&self) -> bool {
        self.edf_dirty
    }

    fn note_edf_sorted(&mut self) {
        self.edf_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;
    use workload::RequestId;

    fn req(id: u64) -> Request {
        Request::new(RequestId(id), SimTime::ZERO, 512, 128)
    }

    #[test]
    fn pushes_dirty_the_flag_and_sorting_clears_it() {
        let mut q = PendingQueue::new();
        q.push_back(req(0));
        assert!(q.edf_may_be_dirty());
        q.note_edf_sorted();
        assert!(!q.edf_may_be_dirty());
        q.push_front(req(1));
        assert!(q.edf_may_be_dirty());
    }

    #[test]
    fn removals_keep_the_flag_clean() {
        let mut q = PendingQueue::new();
        q.push_back(req(0));
        q.push_back(req(1));
        q.note_edf_sorted();
        let drained: Vec<Request> = q.drain_front(1).collect();
        assert_eq!(drained, vec![req(0)]);
        assert!(!q.edf_may_be_dirty(), "front removal preserves order");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bare_vecdeque_is_always_dirty() {
        let q: VecDeque<Request> = VecDeque::new();
        assert!(q.edf_may_be_dirty(), "pre-flag behavior: always re-sort");
    }
}
