//! The just-in-time interruption arranger (§4.1).
//!
//! When a grace period starts, the arranger decides how long the engine
//! keeps decoding before handing its GPUs to the migration:
//!
//! * **preemption** — *maximize* the iterations run inside the grace
//!   period: decode until just enough time remains for context migration
//!   (`S_t = argmax { l_exe(S) < T⁻ − T_mig }`);
//! * **acquisition** — *minimize* early stopping: keep serving with the
//!   current configuration until the new instance finishes initializing
//!   (`S_t = argmin { l_exe(S) ≥ T⁺ }`), since migration happens *after*
//!   the acquisition completes;
//! * in both cases recovery must not hurt: if migrating the cache costs
//!   more than recomputing the committed tokens, plain rerouting wins.

use simkit::{SimDuration, SimTime};

use crate::batch::BatchRun;

/// The instant at which a preempted engine must stop decoding so that
/// context migration (estimated at `migration_estimate`, plus a safety
/// margin for estimate error, §4.2) completes before `kill_at`.
///
/// Never earlier than `now`: if the margin is already blown, stop
/// immediately.
///
/// # Example
///
/// ```
/// use enginesim::preemption_stop_time;
/// use simkit::{SimDuration, SimTime};
///
/// let now = SimTime::from_secs(100);
/// let kill = SimTime::from_secs(130);
/// let stop = preemption_stop_time(now, kill, SimDuration::from_secs(8), SimDuration::from_secs(2));
/// assert_eq!(stop, SimTime::from_secs(120));
/// ```
pub fn preemption_stop_time(
    now: SimTime,
    kill_at: SimTime,
    migration_estimate: SimDuration,
    safety_margin: SimDuration,
) -> SimTime {
    let budget = kill_at.saturating_since(now);
    let reserve = migration_estimate + safety_margin;
    let decode_window = budget.saturating_sub(reserve);
    now + decode_window
}

/// Under an acquisition notification, the earliest instant at which it is
/// worth interrupting the running batch: not before the new instance is
/// ready at `ready_at` (the migration can only start then), and not
/// mid-iteration — the next token boundary after `ready_at`.
pub fn acquisition_defer_until(batch: &BatchRun, ready_at: SimTime) -> SimTime {
    if batch.finished_at(ready_at) {
        return batch.finish_time();
    }
    let committed = batch.committed_iters_at(ready_at);
    // The boundary of the next token not yet produced at `ready_at`.
    match batch.time_of_iter(committed + 1) {
        Some(t) => t,
        None => batch.finish_time(),
    }
}

/// Whether migrating the cache context beats recomputation: the paper's
/// guard `T_mig < l_exe(S_t | C_t)` — recomputing the committed tokens
/// (initial phase + `committed` decode iterations) must cost more than the
/// migration, otherwise plain rerouting is cheaper (§4.1).
pub fn recovery_worthwhile(
    migration_estimate: SimDuration,
    prefill_time: SimDuration,
    iter_time: SimDuration,
    committed: u32,
) -> bool {
    if committed == 0 {
        return false;
    }
    let recompute = prefill_time + iter_time * committed as u64;
    migration_estimate < recompute
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::ModelSpec;
    use parallelism::{ParallelConfig, PerfModel};
    use workload::{Request, RequestId};

    fn batch() -> BatchRun {
        let perf = PerfModel::paper_defaults(ModelSpec::opt_6_7b());
        let cfg = ParallelConfig::new(1, 1, 4, 8);
        let reqs: Vec<Request> = (0..2)
            .map(|i| Request::new(RequestId(i), SimTime::ZERO, 512, 128))
            .collect();
        BatchRun::start(reqs, &cfg, SimTime::ZERO, &perf)
    }

    #[test]
    fn stop_time_reserves_migration_window() {
        let now = SimTime::from_secs(0);
        let kill = SimTime::from_secs(30);
        let stop = preemption_stop_time(now, kill, SimDuration::from_secs(10), SimDuration::ZERO);
        assert_eq!(stop, SimTime::from_secs(20));
    }

    #[test]
    fn blown_margin_stops_immediately() {
        let now = SimTime::from_secs(100);
        let kill = SimTime::from_secs(105);
        let stop = preemption_stop_time(
            now,
            kill,
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
        );
        assert_eq!(stop, now);
    }

    #[test]
    fn preemption_maximizes_iterations() {
        // With a longer grace period, strictly more tokens get committed
        // before the stop.
        let b = batch();
        let t_mig = SimDuration::from_secs(1);
        let stop_short = preemption_stop_time(
            SimTime::ZERO,
            SimTime::from_secs(3),
            t_mig,
            SimDuration::ZERO,
        );
        let stop_long = preemption_stop_time(
            SimTime::ZERO,
            SimTime::from_secs(5),
            t_mig,
            SimDuration::ZERO,
        );
        let short = b.committed_iters_at(stop_short);
        let long = b.committed_iters_at(stop_long);
        assert!(long > short, "{short} vs {long}");
        assert!(long < b.total_iters(), "batch must still be in flight");
    }

    #[test]
    fn acquisition_waits_for_ready_then_token_boundary() {
        let b = batch();
        let ready = b.time_of_iter(10).unwrap() + SimDuration::from_millis(1);
        let defer = acquisition_defer_until(&b, ready);
        assert!(defer >= ready);
        assert_eq!(b.committed_iters_at(defer), 11, "stops at next boundary");
    }

    #[test]
    fn acquisition_on_finished_batch_is_finish_time() {
        let b = batch();
        let after = b.finish_time() + SimDuration::from_secs(5);
        assert_eq!(acquisition_defer_until(&b, after), b.finish_time());
    }

    #[test]
    fn recovery_not_worth_it_for_no_progress() {
        assert!(!recovery_worthwhile(
            SimDuration::from_millis(1),
            SimDuration::from_secs(1),
            SimDuration::from_millis(50),
            0
        ));
    }

    #[test]
    fn recovery_worth_it_for_deep_progress() {
        // 100 committed tokens at 50 ms each + 1 s prefill = 6 s to redo;
        // a 2 s migration is clearly worth it.
        assert!(recovery_worthwhile(
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            SimDuration::from_millis(50),
            100
        ));
        // ... but not if migration costs 10 s.
        assert!(!recovery_worthwhile(
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
            SimDuration::from_millis(50),
            100
        ));
    }
}
