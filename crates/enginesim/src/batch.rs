//! Token-granularity execution state of one batch on one pipeline.

use parallelism::{ParallelConfig, PerfModel};
use simkit::{SimDuration, SimTime};
use workload::Request;

/// One batch being decoded by an inference pipeline.
///
/// Timing follows Eq. (1): an initial phase over the `S_in` prompt tokens
/// produces the first output token, then one decoding iteration per further
/// token. A batch resumed from migrated KV cache (stateful recovery, §4)
/// skips the initial phase and continues from its committed token count.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRun {
    requests: Vec<Request>,
    started: SimTime,
    first_token_at: SimTime,
    iter_time: SimDuration,
    total_iters: u32,
    resumed_from: u32,
}

impl BatchRun {
    /// Starts a fresh batch (initial phase + decoding) at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty or exceeds the configuration's batch
    /// capacity.
    pub fn start(
        requests: Vec<Request>,
        cfg: &ParallelConfig,
        now: SimTime,
        perf: &PerfModel,
    ) -> Self {
        Self::with_progress(requests, cfg, now, perf, 0)
    }

    /// Resumes a batch whose first `committed` output tokens are already in
    /// the (migrated) KV cache: no initial phase, no recomputation.
    ///
    /// # Panics
    ///
    /// Panics on an empty or oversized batch, or if `committed` is not less
    /// than the batch's output length.
    pub fn resume(
        requests: Vec<Request>,
        cfg: &ParallelConfig,
        now: SimTime,
        perf: &PerfModel,
        committed: u32,
    ) -> Self {
        assert!(committed > 0, "resume needs progress; use start instead");
        Self::with_progress(requests, cfg, now, perf, committed)
    }

    fn with_progress(
        requests: Vec<Request>,
        cfg: &ParallelConfig,
        now: SimTime,
        perf: &PerfModel,
        committed: u32,
    ) -> Self {
        assert!(!requests.is_empty(), "empty batch");
        assert!(
            requests.len() <= cfg.batch as usize,
            "batch of {} exceeds B={}",
            requests.len(),
            cfg.batch
        );
        let b = requests.len() as u32;
        let s_in = requests.iter().map(|r| r.s_in).max().expect("non-empty");
        let s_out = requests.iter().map(|r| r.s_out).max().expect("non-empty");
        assert!(committed < s_out, "batch already finished");
        let cost = perf.cost_model();
        let model = perf.model();
        let mid_ctx = s_in + s_out / 2;
        let iter_time = cost.decode_time(model, cfg.pipeline, cfg.tensor, b, mid_ctx);
        let first_token_at = if committed == 0 {
            now + cost.prefill_time(model, cfg.pipeline, cfg.tensor, b, s_in)
        } else {
            // The cache already holds `committed` tokens; the next token is
            // one ordinary decode iteration away.
            now + iter_time
        };
        BatchRun {
            requests,
            started: now,
            first_token_at,
            iter_time,
            total_iters: s_out,
            resumed_from: committed,
        }
    }

    /// The requests in this batch.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// When the batch was (re)started.
    pub fn started(&self) -> SimTime {
        self.started
    }

    /// Duration of one decoding iteration for this batch.
    pub fn iter_time(&self) -> SimDuration {
        self.iter_time
    }

    /// Output tokens each request must reach.
    pub fn total_iters(&self) -> u32 {
        self.total_iters
    }

    /// Committed output tokens the batch carried into this run.
    pub fn resumed_from(&self) -> u32 {
        self.resumed_from
    }

    /// When the batch's final token is committed.
    pub fn finish_time(&self) -> SimTime {
        let remaining = self.total_iters - self.resumed_from;
        debug_assert!(remaining >= 1);
        // The first of the remaining tokens lands at `first_token_at`; each
        // further one costs `iter_time`.
        self.first_token_at + self.iter_time * (remaining - 1) as u64
    }

    /// Output tokens committed per request by time `t` (token-level commit,
    /// §4.1). Monotone, clamped to the output length.
    pub fn committed_iters_at(&self, t: SimTime) -> u32 {
        if t < self.first_token_at {
            return self.resumed_from;
        }
        let extra = if self.iter_time == SimDuration::ZERO {
            u64::from(self.total_iters)
        } else {
            1 + t.saturating_since(self.first_token_at).as_micros() / self.iter_time.as_micros()
        };
        (self.resumed_from as u64 + extra).min(self.total_iters as u64) as u32
    }

    /// The instant at which `iters` tokens are committed (inverse of
    /// [`BatchRun::committed_iters_at`]), or `None` if `iters` is never
    /// reached or already carried over.
    pub fn time_of_iter(&self, iters: u32) -> Option<SimTime> {
        if iters <= self.resumed_from || iters > self.total_iters {
            return None;
        }
        Some(self.first_token_at + self.iter_time * (iters - self.resumed_from - 1) as u64)
    }

    /// Whether the batch is finished at `t`.
    pub fn finished_at(&self, t: SimTime) -> bool {
        t >= self.finish_time()
    }

    /// KV-cache bytes resident for this batch at `t`: every request holds
    /// `S_in +` committed tokens.
    pub fn cache_bytes_at(&self, t: SimTime, kv_bytes_per_token: u64) -> u64 {
        let iters = self.committed_iters_at(t) as u64;
        self.requests
            .iter()
            .map(|r| (r.s_in as u64 + iters.min(r.s_out as u64)) * kv_bytes_per_token)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::ModelSpec;
    use workload::RequestId;

    fn perf() -> PerfModel {
        PerfModel::paper_defaults(ModelSpec::opt_6_7b())
    }

    fn reqs(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| Request::new(RequestId(i), SimTime::ZERO, 512, 128))
            .collect()
    }

    fn cfg() -> ParallelConfig {
        ParallelConfig::new(1, 1, 4, 8)
    }

    #[test]
    fn fresh_batch_matches_exec_latency() {
        let p = perf();
        let run = BatchRun::start(reqs(1), &cfg(), SimTime::ZERO, &p);
        let anchor = p.exec_latency(&ParallelConfig::new(1, 1, 4, 1));
        let got = run.finish_time().saturating_since(SimTime::ZERO);
        // finish = prefill + 127·iter vs Eq.(1)'s prefill + 128·iter (the
        // prefill itself emits the first token): within one iteration.
        let diff = anchor.saturating_sub(got);
        assert!(
            diff <= run.iter_time(),
            "batch {got} vs Eq.(1) {anchor} (iter {})",
            run.iter_time()
        );
    }

    #[test]
    fn commitment_is_monotone_and_complete() {
        let run = BatchRun::start(reqs(4), &cfg(), SimTime::from_secs(5), &perf());
        let mut last = 0;
        let finish = run.finish_time();
        let span = finish.saturating_since(SimTime::from_secs(5));
        for i in 0..=100u64 {
            let t = SimTime::from_secs(5) + span.mul_f64(i as f64 / 100.0);
            let c = run.committed_iters_at(t);
            assert!(c >= last, "monotone");
            last = c;
        }
        assert_eq!(last, 128);
        assert_eq!(run.committed_iters_at(SimTime::MAX), 128);
    }

    #[test]
    fn no_tokens_before_prefill_completes() {
        let run = BatchRun::start(reqs(8), &cfg(), SimTime::ZERO, &perf());
        let just_before = SimTime::from_micros(run.time_of_iter(1).unwrap().as_micros() - 1);
        assert_eq!(run.committed_iters_at(just_before), 0);
        assert_eq!(run.committed_iters_at(run.time_of_iter(1).unwrap()), 1);
    }

    #[test]
    fn resume_skips_prefill() {
        let p = perf();
        let fresh = BatchRun::start(reqs(2), &cfg(), SimTime::ZERO, &p);
        let resumed = BatchRun::resume(reqs(2), &cfg(), SimTime::ZERO, &p, 100);
        assert!(resumed.finish_time() < fresh.finish_time());
        // 28 tokens remain; the run takes 28 iterations.
        let expect = SimTime::ZERO + resumed.iter_time() * 28;
        assert_eq!(resumed.finish_time(), expect);
        assert_eq!(resumed.committed_iters_at(SimTime::ZERO), 100);
    }

    #[test]
    fn time_of_iter_inverts_commitment() {
        let run = BatchRun::start(reqs(3), &cfg(), SimTime::from_secs(1), &perf());
        for iters in [1u32, 2, 64, 128] {
            let t = run.time_of_iter(iters).unwrap();
            assert_eq!(run.committed_iters_at(t), iters);
        }
        assert_eq!(run.time_of_iter(0), None);
        assert_eq!(run.time_of_iter(129), None);
    }

    #[test]
    fn cache_grows_with_commitment() {
        let model = ModelSpec::opt_6_7b();
        let kv = model.kv_bytes_per_token();
        let run = BatchRun::start(reqs(2), &cfg(), SimTime::ZERO, &perf());
        let at_start = run.cache_bytes_at(SimTime::ZERO, kv);
        assert_eq!(at_start, 2 * 512 * kv, "prompt KV counted immediately");
        let at_end = run.cache_bytes_at(run.finish_time(), kv);
        assert_eq!(at_end, 2 * (512 + 128) * kv);
    }

    #[test]
    #[should_panic(expected = "exceeds B=")]
    fn oversized_batch_panics() {
        BatchRun::start(reqs(9), &cfg(), SimTime::ZERO, &perf());
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn resume_beyond_end_panics() {
        BatchRun::resume(reqs(1), &cfg(), SimTime::ZERO, &perf(), 128);
    }

    #[test]
    fn bigger_batches_take_longer_but_not_linearly() {
        let p = perf();
        let one = BatchRun::start(reqs(1), &cfg(), SimTime::ZERO, &p);
        let eight = BatchRun::start(reqs(8), &cfg(), SimTime::ZERO, &p);
        let t1 = one
            .finish_time()
            .saturating_since(SimTime::ZERO)
            .as_secs_f64();
        let t8 = eight
            .finish_time()
            .saturating_since(SimTime::ZERO)
            .as_secs_f64();
        assert!(t8 > t1);
        assert!(t8 < 4.0 * t1, "batching is efficient: {t1} vs {t8}");
    }
}
