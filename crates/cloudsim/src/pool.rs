//! Spot pools: independent capacity markets behind one provider.
//!
//! SpotServe's evaluation assumes a single homogeneous spot market — one
//! availability trace, one price. Real clouds expose *several* pools
//! (availability zones, or the same zone under different SKUs), each with
//! its own capacity dynamics, provisioning latency, and spot price.
//! SkyServe-style policies exploit exactly this: spreading a fleet across
//! pools turns a single-zone capacity collapse from an outage into a
//! re-spread. A [`PoolSpec`] describes one such pool; the
//! [`CloudMarket`](crate::CloudMarket) arbiter replays all of them behind
//! one event stream.

use simkit::SimDuration;

use crate::faults::FaultSpec;
use crate::instance::{InstanceId, InstanceType};
use crate::price::PriceModel;
use crate::trace::AvailabilityTrace;

/// Identifier of one spot pool (e.g. one availability zone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u32);

impl std::fmt::Display for PoolId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "z{}", self.0)
    }
}

/// Instance-id namespace stride per pool: pool `i` allocates ids starting
/// at `i * POOL_ID_STRIDE`, so an [`InstanceId`] encodes its pool and ids
/// never collide across pools. Pool 0 starts at 0 — single-pool id
/// sequences are exactly the pre-multi-pool ones.
pub const POOL_ID_STRIDE: u64 = 1 << 40;

impl PoolId {
    /// The pool that allocated `id` (ids encode their pool; see
    /// [`POOL_ID_STRIDE`]).
    pub fn of_instance(id: InstanceId) -> PoolId {
        PoolId((id.0 / POOL_ID_STRIDE) as u32)
    }
}

/// One spot pool of a multi-pool scenario: its own availability trace and,
/// optionally, its own provisioning delay, spot-price process, and
/// instance type (pools left at `None` inherit the scenario's
/// [`CloudConfig`](crate::CloudConfig)).
///
/// # Example
///
/// ```
/// use cloudsim::{AvailabilityTrace, PoolSpec, PriceModel};
/// use simkit::SimDuration;
///
/// let pool = PoolSpec::new("us-east-1b", AvailabilityTrace::constant(6))
///     .with_spot_price(1.4)
///     .with_grant_delay(SimDuration::from_secs(55));
/// assert_eq!(pool.price, Some(PriceModel::Constant(1.4)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSpec {
    /// Human-readable pool name (zone label), used in cost breakdowns.
    pub name: String,
    /// Spot-capacity trace this pool replays.
    pub trace: AvailabilityTrace,
    /// Provisioning delay override for this pool (`None` = cloud default).
    pub spot_grant_delay: Option<SimDuration>,
    /// Spot-price process of this pool (`None` = the instance type's list
    /// spot price, forever). Pools price independently in real markets;
    /// see [`PriceModel`] for the dynamics on offer.
    pub price: Option<PriceModel>,
    /// Instance type this pool leases (`None` = the scenario's default
    /// type). Real spot markets are heterogeneous: the pool where capacity
    /// reappears after a preemption is rarely the SKU that was lost.
    pub instance_type: Option<InstanceType>,
    /// Adversarial fault injection for this pool (`None` = the polite
    /// cloud: every kill is noticed, every grant fires, links run at
    /// list bandwidth). See [`FaultSpec`] for the taxonomy.
    pub faults: Option<FaultSpec>,
}

impl PoolSpec {
    /// A pool named `name` replaying `trace`, inheriting every other
    /// tunable from the scenario's cloud configuration.
    pub fn new(name: impl Into<String>, trace: AvailabilityTrace) -> Self {
        PoolSpec {
            name: name.into(),
            trace,
            spot_grant_delay: None,
            price: None,
            instance_type: None,
            faults: None,
        }
    }

    /// Overrides this pool's provisioning delay.
    pub fn with_grant_delay(mut self, delay: SimDuration) -> Self {
        self.spot_grant_delay = Some(delay);
        self
    }

    /// Gives this pool a spot-price process (see [`PriceModel`]).
    pub fn with_price(mut self, price: PriceModel) -> Self {
        self.price = Some(price);
        self
    }

    /// Overrides this pool's spot price with a fixed value (USD per
    /// instance-hour) — a thin wrapper over
    /// [`PriceModel::Constant`], kept for the pre-dynamics call sites and
    /// pinned bit-identical to them in the determinism suite.
    pub fn with_spot_price(self, usd_per_hour: f64) -> Self {
        self.with_price(PriceModel::Constant(usd_per_hour))
    }

    /// Makes this pool lease `ty` instead of the scenario's default type.
    ///
    /// # Example
    ///
    /// ```
    /// use cloudsim::{AvailabilityTrace, InstanceType, PoolSpec};
    ///
    /// let pool = PoolSpec::new("l4-east", AvailabilityTrace::constant(8))
    ///     .with_instance_type(InstanceType::l4());
    /// assert_eq!(pool.instance_type.unwrap().gpu.name, "L4");
    /// ```
    pub fn with_instance_type(mut self, ty: InstanceType) -> Self {
        self.instance_type = Some(ty);
        self
    }

    /// Turns on deterministic fault injection for this pool.
    ///
    /// # Example
    ///
    /// ```
    /// use cloudsim::{AvailabilityTrace, FaultSpec, PoolSpec};
    ///
    /// let pool = PoolSpec::new("chaos", AvailabilityTrace::constant(4))
    ///     .with_faults(FaultSpec::pack(0.5));
    /// assert!(pool.faults.unwrap().is_active());
    /// ```
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_encode_their_pool() {
        assert_eq!(PoolId::of_instance(InstanceId(0)), PoolId(0));
        assert_eq!(PoolId::of_instance(InstanceId(POOL_ID_STRIDE)), PoolId(1));
        assert_eq!(
            PoolId::of_instance(InstanceId(3 * POOL_ID_STRIDE + 17)),
            PoolId(3)
        );
    }

    #[test]
    fn display_is_zone_style() {
        assert_eq!(format!("{}", PoolId(2)), "z2");
    }

    #[test]
    fn overrides_default_to_inherit() {
        let p = PoolSpec::new("z", AvailabilityTrace::constant(1));
        assert_eq!(p.spot_grant_delay, None);
        assert_eq!(p.price, None);
        assert_eq!(p.instance_type, None);
        assert_eq!(p.faults, None);
    }

    #[test]
    fn with_spot_price_is_the_constant_model() {
        let p = PoolSpec::new("z", AvailabilityTrace::constant(1)).with_spot_price(1.4);
        assert_eq!(p.price, Some(PriceModel::Constant(1.4)));
    }
}
