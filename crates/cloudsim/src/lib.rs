//! Trace-driven cloud substrate.
//!
//! This crate simulates the slice of a public cloud that SpotServe interacts
//! with: preemptible (spot) and on-demand GPU instances, preemption *notices*
//! followed by a grace period, stochastic acquisition delays, a hierarchical
//! network fabric (fast intra-instance links, slower inter-instance links),
//! cold model storage, and per-second billing.
//!
//! The central type is [`CloudSim`], which replays an
//! [`AvailabilityTrace`] — the number of spot instances the cloud is willing
//! to lease us over time, like the paper's Figure 5 traces `A_S`/`B_S` — and
//! turns fleet requests from the serving system into a deterministic stream
//! of [`CloudEvent`]s. A [`CloudMarket`] arbitrates *several* such pools
//! ([`PoolSpec`] per zone, each with its own trace, grant delay, and spot
//! price) behind one merged event stream; a single-pool market is bit-exact
//! with a bare `CloudSim`.
//!
//! # Example
//!
//! ```
//! use cloudsim::{AvailabilityTrace, CloudConfig, CloudSim};
//! use simkit::SimTime;
//!
//! let trace = AvailabilityTrace::constant(4);
//! let mut cloud = CloudSim::new(CloudConfig::default(), trace, 42);
//! cloud.request_spot(SimTime::ZERO, 2);
//! // Grants appear after the configured acquisition delay.
//! let (t, ev) = cloud.pop_next().expect("grant event");
//! assert!(t > SimTime::ZERO);
//! println!("{ev:?}");
//! ```

pub mod events;
pub mod faults;
pub mod gpu;
pub mod instance;
pub mod market;
pub mod network;
pub mod pool;
pub mod price;
pub mod pricing;
pub mod provider;
pub mod storage;
pub mod trace;

pub use events::CloudEvent;
pub use faults::{DegradedLink, FaultSpec};
pub use gpu::GpuSpec;
pub use instance::{GpuRef, InstanceId, InstanceKind, InstanceType};
pub use market::{CloudMarket, CostBreakdown, PoolCost};
pub use network::NetFabric;
pub use pool::{PoolId, PoolSpec, POOL_ID_STRIDE};
pub use price::{OuParams, PriceModel, PriceTrace};
pub use pricing::BillingMeter;
pub use provider::{CloudConfig, CloudSim, InstanceInfo};
pub use storage::ColdStorage;
pub use trace::{AvailabilityTrace, TraceGenerator};
