//! Cold model storage (S3 / EBS) used when parameters must be reloaded.
//!
//! The paper motivates context migration by the cost of this path:
//! "loading a GPT model with 120 billion parameters from persistent storage
//! takes more than 2 minutes on AWS" (§1). The default bandwidth below is
//! chosen so exactly that sentence holds (480 GB of fp32 weights, loaded by
//! a fleet of 8 instances in parallel, plus fixed launch overhead ≈ 130 s).

use simkit::SimDuration;

/// Time model for loading model parameters from persistent storage.
///
/// # Example
///
/// ```
/// use cloudsim::ColdStorage;
/// let s = ColdStorage::default();
/// // One instance pulling 10 GB.
/// let t = s.load_time(10 << 30, 1);
/// assert!(t.as_secs_f64() > 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdStorage {
    /// Sustained download bandwidth *per instance*, bytes/s.
    pub per_instance_bandwidth: f64,
    /// Fixed per-(re)start overhead: process launch, CUDA context creation,
    /// communicator setup.
    pub launch_overhead: SimDuration,
}

impl ColdStorage {
    /// Defaults matching the paper's observed reload times.
    pub const fn aws_default() -> Self {
        ColdStorage {
            per_instance_bandwidth: 0.55e9,
            launch_overhead: SimDuration::from_secs(10),
        }
    }

    /// Time for `instances` instances to cooperatively load `total_bytes`
    /// of parameters (each instance pulls its own shard in parallel),
    /// including the fixed launch overhead.
    ///
    /// # Panics
    ///
    /// Panics if `instances == 0`.
    pub fn load_time(&self, total_bytes: u64, instances: u32) -> SimDuration {
        assert!(instances > 0, "cannot load onto zero instances");
        let per_instance = total_bytes as f64 / instances as f64;
        self.launch_overhead
            + SimDuration::from_secs_f64(per_instance / self.per_instance_bandwidth)
    }
}

impl Default for ColdStorage {
    fn default() -> Self {
        ColdStorage::aws_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_120b_takes_over_two_minutes() {
        // The §1 anchor: 120B params in fp32 = 480 GB over 8 instances.
        let s = ColdStorage::aws_default();
        let t = s.load_time(480 * (1 << 30), 8);
        assert!(
            t.as_secs_f64() > 120.0,
            "expected >2 min, got {:.1}s",
            t.as_secs_f64()
        );
        assert!(t.as_secs_f64() < 300.0, "but not absurdly long: {t}");
    }

    #[test]
    fn more_instances_load_faster() {
        let s = ColdStorage::aws_default();
        let t4 = s.load_time(100 << 30, 4);
        let t8 = s.load_time(100 << 30, 8);
        assert!(t8 < t4);
    }

    #[test]
    fn zero_bytes_is_launch_overhead() {
        let s = ColdStorage::aws_default();
        assert_eq!(s.load_time(0, 3), s.launch_overhead);
    }

    #[test]
    #[should_panic(expected = "zero instances")]
    fn zero_instances_panics() {
        ColdStorage::aws_default().load_time(1, 0);
    }
}
