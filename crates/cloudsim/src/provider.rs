//! The trace-driven cloud provider.
//!
//! [`CloudSim`] replays an [`AvailabilityTrace`] and arbitrates the fleet:
//! the serving system asks for spot / on-demand instances and releases them;
//! the cloud grants requests subject to trace capacity, issues preemption
//! notices when capacity drops, and kills instances when their grace period
//! expires. All tie-breaking is driven by a named random stream, so replays
//! are bit-reproducible.

use std::collections::{BTreeMap, VecDeque};

use simkit::event::EventKey;
use simkit::{EventQueue, SimDuration, SimRng, SimTime};

use crate::events::CloudEvent;
use crate::faults::{FaultPlan, FaultSpec, NoticeFate};
use crate::instance::{InstanceId, InstanceKind, InstanceType};
use crate::price::PriceModel;
use crate::pricing::BillingMeter;
use crate::trace::AvailabilityTrace;

/// Tunables of the simulated cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudConfig {
    /// The instance SKU leased by default (the paper targets
    /// `g4dn.12xlarge`, §6.1). Capacity may come from several spot pools
    /// with independent traces, grant delays, prices, *and instance types*
    /// — see [`PoolSpec`](crate::PoolSpec) and
    /// [`CloudMarket`](crate::CloudMarket); a pool whose spec names an
    /// [`InstanceType`] leases that SKU instead of this one.
    pub instance_type: InstanceType,
    /// Warning the cloud gives before reclaiming a spot instance
    /// (30 s on AWS/Azure, §2).
    pub grace_period: SimDuration,
    /// Delay between a spot request being grantable and the instance
    /// becoming reachable (provisioning + boot).
    pub spot_grant_delay: SimDuration,
    /// Provisioning delay for on-demand instances.
    pub ondemand_grant_delay: SimDuration,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            // The paper's SKU comes from `InstanceType::default()` — one
            // authoritative place, shared with every pool a market builds.
            instance_type: InstanceType::default(),
            grace_period: SimDuration::from_secs(30),
            spot_grant_delay: SimDuration::from_secs(40),
            ondemand_grant_delay: SimDuration::from_secs(40),
        }
    }
}

/// A live lease as seen by the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceInfo {
    /// Lease identifier.
    pub id: InstanceId,
    /// Billing kind.
    pub kind: InstanceKind,
    /// When the lease started.
    pub granted_at: SimTime,
    /// If a preemption notice was issued, when the kill will happen.
    pub kill_at: Option<SimTime>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Internal {
    TraceStep(usize),
    PriceStep(usize),
    GrantSpot,
    GrantOnDemand,
    Kill(InstanceId),
    /// One pre-drawn unannounced-kill attempt (index into the fault
    /// plan's schedule; a no-op when the pool holds no live spot lease).
    FaultKill(usize),
}

/// Deterministic simulation of the spot/on-demand lease lifecycle.
///
/// See the [crate-level example](crate) for basic usage. The typical loop
/// interleaves [`CloudSim::peek_time`] with command calls; all commands
/// must be issued at times `>=` every event already popped.
#[derive(Debug, Clone)]
pub struct CloudSim {
    cfg: CloudConfig,
    trace: AvailabilityTrace,
    rng: SimRng,
    internal: EventQueue<Internal>,
    out: VecDeque<(SimTime, CloudEvent)>,
    // Ordered so fleet iteration (and everything downstream of it,
    // e.g. billing accumulation order) is deterministic across runs.
    active: BTreeMap<InstanceId, InstanceInfo>,
    /// Keys of scheduled-but-not-fired spot grants (cancellable).
    inflight_spot: VecDeque<EventKey>,
    /// Spot requests waiting for capacity.
    pending_spot: u32,
    /// On-demand requests whose grant has not fired yet.
    pending_on_demand: u32,
    next_id: u64,
    capacity: u32,
    meter: BillingMeter,
    started: bool,
    /// The pre-drawn spot-price path (empty = constant list price). A pure
    /// function of the seed, so lookups never depend on event-processing
    /// progress.
    price_path: Vec<(SimTime, f64)>,
    /// Per-step probability of one price-correlated preemption, aligned
    /// with `price_path`.
    price_kill_probs: Vec<f64>,
    /// Dedicated stream for price-correlated preemption draws; `None` when
    /// the price never moves, so constant-price pools draw nothing extra.
    price_rng: Option<SimRng>,
    /// Which pool of a multi-pool market this provider is (pool 0 for the
    /// single-market form); stamped on pool-scoped events like re-quotes.
    pool: crate::PoolId,
    /// The pool's fault-injection plan; `None` (the default) injects
    /// nothing and draws nothing — faults-off replays stay byte-identical.
    faults: Option<FaultPlan>,
    /// Spot requests that will never be granted: launch failures on a
    /// capacity shed plus fault-injected grant lapses. Cumulative, so the
    /// controller's view can surface the shortfall.
    lapsed_spot: u32,
}

impl CloudSim {
    /// Creates a provider replaying `trace`, with randomness derived from
    /// `seed` (victim selection on capacity drops).
    pub fn new(cfg: CloudConfig, trace: AvailabilityTrace, seed: u64) -> Self {
        CloudSim::for_pool(cfg, trace, seed, crate::PoolId(0))
    }

    /// Creates the provider for one pool of a multi-pool market: pool 0 is
    /// bit-exact with [`CloudSim::new`] (same random stream, same id
    /// sequence); pool `i > 0` draws from its own random stream and
    /// allocates ids in its own namespace
    /// ([`POOL_ID_STRIDE`](crate::POOL_ID_STRIDE)).
    pub fn for_pool(
        cfg: CloudConfig,
        trace: AvailabilityTrace,
        seed: u64,
        pool: crate::PoolId,
    ) -> Self {
        CloudSim::for_pool_priced(cfg, trace, seed, pool, None)
    }

    /// [`CloudSim::for_pool`] with a spot-price process. `None` and
    /// [`PriceModel::Constant`] keep the constant-price machinery (no path,
    /// no extra random draws, no extra events) — byte-identical to the
    /// pre-dynamics provider; a dynamic model pre-draws its path from the
    /// pool's own `"price"` stream and installs it into billing.
    pub fn for_pool_priced(
        cfg: CloudConfig,
        trace: AvailabilityTrace,
        seed: u64,
        pool: crate::PoolId,
        price: Option<&PriceModel>,
    ) -> Self {
        CloudSim::for_pool_faulted(cfg, trace, seed, pool, price, None)
    }

    /// [`CloudSim::for_pool_priced`] with a fault-injection spec. `None`
    /// builds no plan and draws nothing — byte-identical to the pre-chaos
    /// provider; a spec pre-draws its unannounced-kill schedule from the
    /// pool's own `"faults"` stream (see [`crate::faults`]) and arms the
    /// notice-loss / grant-lapse / degraded-link channels.
    pub fn for_pool_faulted(
        cfg: CloudConfig,
        trace: AvailabilityTrace,
        seed: u64,
        pool: crate::PoolId,
        price: Option<&PriceModel>,
        faults: Option<&FaultSpec>,
    ) -> Self {
        let mut meter = BillingMeter::new(cfg.instance_type.clone());
        let mut internal = EventQueue::new();
        for (i, &(t, _)) in trace.steps().iter().enumerate() {
            internal.schedule(t, Internal::TraceStep(i));
        }
        let capacity = trace.capacity_at(SimTime::ZERO);
        let rng = if pool.0 == 0 {
            SimRng::new(seed).stream("cloudsim")
        } else {
            SimRng::new(seed).stream(&format!("cloudsim/pool{}", pool.0))
        };
        let (price_path, price_kill_probs, price_rng) = match price {
            Some(model) if model.is_dynamic() => {
                let label = if pool.0 == 0 {
                    "price".to_string()
                } else {
                    format!("price/pool{}", pool.0)
                };
                let mut path_rng = SimRng::new(seed).stream(&label);
                let path = model.path(cfg.instance_type.spot_price_per_hour, &mut path_rng);
                let probs: Vec<f64> = path
                    .iter()
                    .map(|&(_, p)| model.kill_probability(p))
                    .collect();
                // Every mid-run step is an event: the re-quote surfaces as
                // a `SpotPriceStep` so consumers can steer on it (and the
                // step may additionally preempt when the model couples
                // price to kills). The `t = 0` step is the initial quote,
                // already visible before any event fires.
                for (i, &(t, _)) in path.iter().enumerate() {
                    if t > SimTime::ZERO {
                        internal.schedule(t, Internal::PriceStep(i));
                    }
                }
                meter.set_spot_path(path.clone());
                let kill_rng = SimRng::new(seed).stream(&format!("{label}/kill"));
                (path, probs, Some(kill_rng))
            }
            _ => (Vec::new(), Vec::new(), None),
        };
        let faults = faults.map(|spec| {
            let plan = FaultPlan::draw(spec, seed, pool);
            for (i, &t) in plan.kill_times().iter().enumerate() {
                internal.schedule(t, Internal::FaultKill(i));
            }
            plan
        });
        CloudSim {
            cfg,
            trace,
            rng,
            internal,
            out: VecDeque::new(),
            active: BTreeMap::new(),
            inflight_spot: VecDeque::new(),
            pending_spot: 0,
            pending_on_demand: 0,
            next_id: pool.0 as u64 * crate::POOL_ID_STRIDE,
            capacity,
            meter,
            started: false,
            price_path,
            price_kill_probs,
            price_rng,
            pool,
            faults,
            lapsed_spot: 0,
        }
    }

    /// The spot price in force at `t` (USD per instance-hour). A pure
    /// lookup into the pre-drawn path: the answer never depends on how far
    /// event processing has advanced.
    pub fn spot_price_at(&self, t: SimTime) -> f64 {
        crate::price::price_at(&self.price_path, t)
            .unwrap_or(self.cfg.instance_type.spot_price_per_hour)
    }

    /// The provider configuration.
    pub fn config(&self) -> &CloudConfig {
        &self.cfg
    }

    /// Current spot capacity according to the trace (already applied steps).
    pub fn current_capacity(&self) -> u32 {
        self.capacity
    }

    /// Live leases (including instances inside their grace period).
    pub fn fleet(&self) -> impl Iterator<Item = &InstanceInfo> {
        self.active.values()
    }

    /// Number of live leases of `kind`.
    pub fn live_count(&self, kind: InstanceKind) -> usize {
        self.active.values().filter(|i| i.kind == kind).count()
    }

    /// The billing meter (spend so far).
    pub fn meter(&self) -> &BillingMeter {
        &self.meter
    }

    /// Spot requests that are waiting for capacity (not yet provisioning).
    pub fn pending_spot(&self) -> u32 {
        self.pending_spot
    }

    /// Spot instances currently provisioning (grant scheduled, not fired).
    pub fn provisioning_spot(&self) -> u32 {
        self.inflight_spot.len() as u32
    }

    /// On-demand requests whose grant has not fired yet.
    pub fn pending_on_demand(&self) -> u32 {
        self.pending_on_demand
    }

    /// Spot requests lost for good so far: launch failures on capacity
    /// sheds plus fault-injected grant lapses. Each one was also surfaced
    /// as a [`CloudEvent::RequestLapsed`].
    pub fn lapsed_spot(&self) -> u32 {
        self.lapsed_spot
    }

    /// The pool's effective transfer-bandwidth multiplier at `t`: below
    /// `1.0` inside a fault-injected degraded-link window, exactly `1.0`
    /// otherwise. A pure lookup into the scripted windows — never depends
    /// on event-processing progress.
    pub fn bandwidth_factor_at(&self, t: SimTime) -> f64 {
        self.faults
            .as_ref()
            .map_or(1.0, |p| p.bandwidth_factor_at(t))
    }

    /// Spot leases counted against capacity: live without a pending kill,
    /// plus instances currently provisioning.
    fn spot_usage(&self) -> u32 {
        let live = self
            .active
            .values()
            .filter(|i| i.kind == InstanceKind::Spot && i.kill_at.is_none())
            .count() as u32;
        live + self.inflight_spot.len() as u32
    }

    /// Requests `n` additional spot instances at time `now`.
    ///
    /// Requests that fit under current capacity start provisioning
    /// immediately (grant after [`CloudConfig::spot_grant_delay`]); the rest
    /// queue until the trace frees capacity.
    pub fn request_spot(&mut self, now: SimTime, n: u32) {
        self.pending_spot += n;
        self.try_start_spot_grants(now);
    }

    /// Cancels up to `n` queued (not yet provisioning) spot requests,
    /// returning how many were actually cancelled.
    pub fn cancel_pending_spot(&mut self, n: u32) -> u32 {
        let k = n.min(self.pending_spot);
        self.pending_spot -= k;
        k
    }

    /// Immediately grants up to `n` spot instances at `t = 0` (bounded by
    /// initial trace capacity), returning their ids. Used for warm starts:
    /// the paper's runs begin with an already-initialized system.
    ///
    /// # Panics
    ///
    /// Panics if called after events have been produced or time has moved.
    pub fn prewarm_spot(&mut self, n: u32) -> Vec<InstanceId> {
        assert!(!self.started, "prewarm must precede all activity");
        let k = n.min(self.capacity.saturating_sub(self.spot_usage()));
        (0..k)
            .map(|_| {
                self.grant(SimTime::ZERO, InstanceKind::Spot);
                let (_, ev) = self.out.pop_back().expect("grant pushed an event");
                ev.instance().expect("grants carry an instance")
            })
            .collect()
    }

    /// Immediately grants `n` on-demand instances at `t = 0`; see
    /// [`CloudSim::prewarm_spot`].
    ///
    /// # Panics
    ///
    /// Panics if called after events have been produced or time has moved.
    pub fn prewarm_on_demand(&mut self, n: u32) -> Vec<InstanceId> {
        assert!(!self.started, "prewarm must precede all activity");
        (0..n)
            .map(|_| {
                self.grant(SimTime::ZERO, InstanceKind::OnDemand);
                let (_, ev) = self.out.pop_back().expect("grant pushed an event");
                ev.instance().expect("grants carry an instance")
            })
            .collect()
    }

    /// Requests `n` on-demand instances at time `now`; on-demand capacity is
    /// assumed unlimited, so all requests provision immediately.
    pub fn request_on_demand(&mut self, now: SimTime, n: u32) {
        self.pending_on_demand += n;
        for _ in 0..n {
            self.internal
                .schedule(now + self.cfg.ondemand_grant_delay, Internal::GrantOnDemand);
        }
    }

    /// Releases a lease voluntarily (e.g. scaling down). Unknown or already
    /// killed ids are ignored.
    pub fn release(&mut self, now: SimTime, id: InstanceId) {
        if self.active.remove(&id).is_some() {
            self.meter.lease_ended(id, now);
            // A freed spot slot may admit a queued request.
            self.try_start_spot_grants(now);
        }
    }

    /// Starts provisioning for as many queued spot requests as capacity
    /// allows.
    fn try_start_spot_grants(&mut self, now: SimTime) {
        while self.pending_spot > 0 && self.spot_usage() < self.capacity {
            self.pending_spot -= 1;
            let key = self
                .internal
                .schedule(now + self.cfg.spot_grant_delay, Internal::GrantSpot);
            self.inflight_spot.push_back(key);
        }
    }

    /// Applies a capacity change at time `t`.
    fn apply_trace_step(&mut self, t: SimTime, idx: usize) {
        self.capacity = self.trace.steps()[idx].1;
        // Shed over-capacity usage: first cancel provisioning instances
        // (they silently fail to launch), then preempt live ones.
        while self.spot_usage() > self.capacity {
            if let Some(key) = self.inflight_spot.pop_back() {
                self.internal.cancel(key);
                // The request is lost, not re-queued: a real launch
                // failure — surfaced as a lapse so the controller can
                // re-request instead of waiting on a grant that will
                // never arrive.
                self.note_lapse(t);
                continue;
            }
            let mut candidates: Vec<InstanceId> = self
                .active
                .values()
                .filter(|i| i.kind == InstanceKind::Spot && i.kill_at.is_none())
                .map(|i| i.id)
                .collect();
            candidates.sort_unstable();
            let victim = *self
                .rng
                .choose(&candidates)
                .expect("spot_usage > 0 implies a candidate");
            self.issue_preemption(t, victim);
        }
        // Freed capacity admits queued requests.
        self.try_start_spot_grants(t);
    }

    /// One step of the price path: surface the re-quote as an event, and
    /// — when the model couples price to preemption — with the step's
    /// probability reclaim one live spot instance (grace period and
    /// notice exactly like a capacity drop). Kill draws come from the
    /// pool's dedicated kill stream and only happen on steps with a
    /// nonzero coupling, so a coupling-free model draws nothing.
    fn apply_price_step(&mut self, t: SimTime, idx: usize) {
        let price = self.price_path[idx].1;
        self.out.push_back((
            t,
            CloudEvent::SpotPriceStep {
                pool: self.pool,
                cents_per_hour: (price * 100.0).round() as u32,
            },
        ));
        let p = self.price_kill_probs[idx];
        if p <= 0.0 {
            return;
        }
        let rng = self
            .price_rng
            .as_mut()
            .expect("price events imply a price stream");
        if !rng.chance(p) {
            return;
        }
        let mut candidates: Vec<InstanceId> = self
            .active
            .values()
            .filter(|i| i.kind == InstanceKind::Spot && i.kill_at.is_none())
            .map(|i| i.id)
            .collect();
        candidates.sort_unstable();
        let Some(&victim) = rng.choose(&candidates) else {
            return;
        };
        self.issue_preemption(t, victim);
    }

    /// Preempts `victim` at `t`, consulting the fault plan for the
    /// notice's fate: delivered with full grace (always, without a plan),
    /// delivered late with a truncated grace budget, or lost outright —
    /// in which case the kill fires *now* as an unannounced
    /// [`CloudEvent::InstanceFailed`].
    fn issue_preemption(&mut self, t: SimTime, victim: InstanceId) {
        let fate = match self.faults.as_mut() {
            Some(plan) => plan.notice_fate(self.cfg.grace_period),
            None => NoticeFate::Delivered,
        };
        let grace = match fate {
            NoticeFate::Lost => {
                self.fail_instance(t, victim);
                return;
            }
            NoticeFate::Truncated(left) => left,
            NoticeFate::Delivered => self.cfg.grace_period,
        };
        let kill_at = t + grace;
        self.active
            .get_mut(&victim)
            .expect("victim is active")
            .kill_at = Some(kill_at);
        self.internal.schedule(kill_at, Internal::Kill(victim));
        self.out.push_back((
            t,
            CloudEvent::PreemptionNotice {
                id: victim,
                kill_at,
            },
        ));
    }

    /// Kills `victim` with zero grace: the lease ends immediately and the
    /// death surfaces as [`CloudEvent::InstanceFailed`]. Any stale
    /// scheduled [`Internal::Kill`] for the id becomes a no-op.
    fn fail_instance(&mut self, t: SimTime, victim: InstanceId) {
        self.active.remove(&victim).expect("victim is active");
        self.meter.lease_ended(victim, t);
        self.out
            .push_back((t, CloudEvent::InstanceFailed { id: victim }));
        self.try_start_spot_grants(t);
    }

    /// Records one lost spot request and surfaces it as a
    /// [`CloudEvent::RequestLapsed`].
    fn note_lapse(&mut self, t: SimTime) {
        self.lapsed_spot += 1;
        self.out.push_back((
            t,
            CloudEvent::RequestLapsed {
                pool: self.pool,
                kind: InstanceKind::Spot,
            },
        ));
    }

    fn grant(&mut self, t: SimTime, kind: InstanceKind) {
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        self.active.insert(
            id,
            InstanceInfo {
                id,
                kind,
                granted_at: t,
                kill_at: None,
            },
        );
        self.meter.lease_started(id, kind, t);
        let ev = match kind {
            InstanceKind::Spot => CloudEvent::SpotGranted { id },
            InstanceKind::OnDemand => CloudEvent::OnDemandGranted { id },
        };
        self.out.push_back((t, ev));
    }

    fn process_internal(&mut self, t: SimTime, ev: Internal) {
        match ev {
            Internal::TraceStep(idx) => self.apply_trace_step(t, idx),
            Internal::PriceStep(idx) => self.apply_price_step(t, idx),
            Internal::GrantSpot => {
                self.inflight_spot.pop_front();
                let lapses = match self.faults.as_mut() {
                    Some(plan) => plan.grant_lapses(),
                    None => false,
                };
                if lapses {
                    // The grant lapses: the slot frees, no instance ever
                    // appears, and the loss is visible to the controller.
                    self.note_lapse(t);
                    self.try_start_spot_grants(t);
                } else {
                    self.grant(t, InstanceKind::Spot);
                }
            }
            Internal::GrantOnDemand => {
                self.pending_on_demand = self.pending_on_demand.saturating_sub(1);
                self.grant(t, InstanceKind::OnDemand);
            }
            Internal::Kill(id) => {
                if self.active.remove(&id).is_some() {
                    self.meter.lease_ended(id, t);
                    self.out.push_back((t, CloudEvent::Preempted { id }));
                    self.try_start_spot_grants(t);
                }
            }
            Internal::FaultKill(_) => {
                // Unannounced kills may hit *any* live spot lease — even
                // one already inside a grace period (its stale scheduled
                // kill then no-ops).
                let mut candidates: Vec<InstanceId> = self
                    .active
                    .values()
                    .filter(|i| i.kind == InstanceKind::Spot)
                    .map(|i| i.id)
                    .collect();
                candidates.sort_unstable();
                let victim = self
                    .faults
                    .as_mut()
                    .expect("fault events imply a plan")
                    .pick_victim(&candidates);
                if let Some(victim) = victim {
                    self.fail_instance(t, victim);
                }
            }
        }
    }

    /// Timestamp of the next deliverable event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.started = true;
        loop {
            if let Some(&(t, _)) = self.out.front() {
                return Some(t);
            }
            let (t, ev) = self.internal.pop()?;
            self.process_internal(t, ev);
        }
    }

    /// Pops the next deliverable event, advancing internal machinery.
    pub fn pop_next(&mut self) -> Option<(SimTime, CloudEvent)> {
        self.peek_time()?;
        self.out.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(cloud: &mut CloudSim) -> Vec<(SimTime, CloudEvent)> {
        std::iter::from_fn(|| cloud.pop_next()).collect()
    }

    fn sim(trace: AvailabilityTrace) -> CloudSim {
        CloudSim::new(CloudConfig::default(), trace, 7)
    }

    #[test]
    fn grants_after_delay() {
        let mut cloud = sim(AvailabilityTrace::constant(4));
        cloud.request_spot(SimTime::ZERO, 2);
        let evs = drain(&mut cloud);
        assert_eq!(evs.len(), 2);
        for (t, ev) in &evs {
            assert_eq!(*t, SimTime::from_secs(40));
            assert!(matches!(ev, CloudEvent::SpotGranted { .. }));
        }
        assert_eq!(cloud.live_count(InstanceKind::Spot), 2);
    }

    #[test]
    fn over_capacity_requests_queue() {
        let mut cloud = sim(AvailabilityTrace::constant(2));
        cloud.request_spot(SimTime::ZERO, 5);
        let evs = drain(&mut cloud);
        assert_eq!(evs.len(), 2, "only capacity-many grants fire");
        assert_eq!(cloud.pending_spot(), 3);
        // Releasing one lease admits one queued request.
        let id = evs[0].1.instance().expect("grant");
        cloud.release(SimTime::from_secs(100), id);
        let evs = drain(&mut cloud);
        assert_eq!(evs.len(), 1);
        assert_eq!(cloud.pending_spot(), 2);
    }

    #[test]
    fn capacity_drop_issues_notice_then_kill() {
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 2), (SimTime::from_secs(300), 1)]);
        let mut cloud = sim(trace);
        cloud.request_spot(SimTime::ZERO, 2);
        let evs = drain(&mut cloud);
        assert_eq!(evs.len(), 4, "2 grants, notice, preemption: {evs:?}");
        assert!(matches!(evs[0].1, CloudEvent::SpotGranted { .. }));
        assert!(matches!(evs[1].1, CloudEvent::SpotGranted { .. }));
        match evs[2] {
            (t, CloudEvent::PreemptionNotice { kill_at, .. }) => {
                assert_eq!(t, SimTime::from_secs(300));
                assert_eq!(kill_at, SimTime::from_secs(330));
            }
            ref other => panic!("expected notice, got {other:?}"),
        }
        match evs[3] {
            (t, CloudEvent::Preempted { .. }) => assert_eq!(t, SimTime::from_secs(330)),
            ref other => panic!("expected preemption, got {other:?}"),
        }
        assert_eq!(cloud.live_count(InstanceKind::Spot), 1);
    }

    #[test]
    fn released_during_grace_period_is_not_killed_twice() {
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 1), (SimTime::from_secs(300), 0)]);
        let mut cloud = sim(trace);
        cloud.request_spot(SimTime::ZERO, 1);
        let (_, grant) = cloud.pop_next().unwrap();
        let id = grant.instance().expect("grant");

        // Pop the notice, then voluntarily release before the kill fires.
        let (t, ev) = cloud.pop_next().unwrap();
        assert!(matches!(ev, CloudEvent::PreemptionNotice { .. }), "{ev:?}");
        cloud.release(t + SimDuration::from_secs(5), id);
        assert!(cloud.pop_next().is_none(), "no Preempted after release");
    }

    #[test]
    fn capacity_rise_admits_queued_requests() {
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 1), (SimTime::from_secs(600), 3)]);
        let mut cloud = sim(trace);
        cloud.request_spot(SimTime::ZERO, 3);
        let evs = drain(&mut cloud);
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].0, SimTime::from_secs(40));
        for (t, _) in &evs[1..] {
            assert_eq!(
                *t,
                SimTime::from_secs(640),
                "grants 40s after capacity rise"
            );
        }
    }

    #[test]
    fn on_demand_always_grants() {
        let mut cloud = sim(AvailabilityTrace::constant(0));
        cloud.request_on_demand(SimTime::ZERO, 3);
        let evs = drain(&mut cloud);
        assert_eq!(evs.len(), 3);
        assert!(evs
            .iter()
            .all(|(_, e)| matches!(e, CloudEvent::OnDemandGranted { .. })));
        assert_eq!(cloud.live_count(InstanceKind::OnDemand), 3);
    }

    #[test]
    fn on_demand_never_preempted() {
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 2), (SimTime::from_secs(300), 0)]);
        let mut cloud = sim(trace);
        cloud.request_on_demand(SimTime::ZERO, 2);
        cloud.request_spot(SimTime::ZERO, 2);
        let mut preempted = 0;
        while let Some((_, ev)) = cloud.pop_next() {
            if let CloudEvent::Preempted { id } = ev {
                preempted += 1;
                // Only spot instances die.
                assert!(!cloud
                    .fleet()
                    .any(|i| i.id == id && i.kind == InstanceKind::OnDemand));
            }
        }
        assert_eq!(preempted, 2);
        assert_eq!(cloud.live_count(InstanceKind::OnDemand), 2);
    }

    #[test]
    fn inflight_grants_cancelled_on_capacity_drop() {
        // Capacity drops at t=10, before the t=40 grant fires. The
        // launches fail — but visibly: each cancelled in-flight request
        // surfaces as a `RequestLapsed` at the drop.
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 2), (SimTime::from_secs(10), 0)]);
        let mut cloud = sim(trace);
        cloud.request_spot(SimTime::ZERO, 2);
        let evs = drain(&mut cloud);
        assert_eq!(evs.len(), 2, "both launch failures surface: {evs:?}");
        for (t, ev) in &evs {
            assert_eq!(*t, SimTime::from_secs(10));
            assert_eq!(
                *ev,
                CloudEvent::RequestLapsed {
                    pool: crate::PoolId(0),
                    kind: InstanceKind::Spot,
                }
            );
        }
        assert_eq!(cloud.live_count(InstanceKind::Spot), 0);
        assert_eq!(cloud.lapsed_spot(), 2);
    }

    #[test]
    fn cancel_pending_spot_requests() {
        let mut cloud = sim(AvailabilityTrace::constant(1));
        cloud.request_spot(SimTime::ZERO, 4);
        assert_eq!(cloud.pending_spot(), 3);
        assert_eq!(cloud.cancel_pending_spot(10), 3);
        assert_eq!(cloud.pending_spot(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let trace = AvailabilityTrace::paper_bs();
            let mut cloud = CloudSim::new(CloudConfig::default(), trace, 99);
            cloud.request_spot(SimTime::ZERO, 10);
            let evs = drain(&mut cloud);
            evs.iter()
                .map(|(t, e)| (*t, format!("{e:?}")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn billing_tracks_lifecycle() {
        let mut cloud = sim(AvailabilityTrace::constant(1));
        cloud.request_spot(SimTime::ZERO, 1);
        let evs = drain(&mut cloud);
        let id = evs[0].1.instance().expect("grant");
        let end = SimTime::from_secs(40 + 3600);
        cloud.release(end, id);
        assert!((cloud.meter().total_usd(end) - 1.9).abs() < 1e-9);
    }

    #[test]
    fn constant_price_model_is_bit_exact_with_no_model() {
        // `Constant` must not perturb a single draw, event, or cent.
        let run = |price: Option<&PriceModel>| {
            let trace = AvailabilityTrace::paper_bs();
            let mut cloud = CloudSim::for_pool_priced(
                CloudConfig::default(),
                trace,
                99,
                crate::PoolId(0),
                price,
            );
            cloud.request_spot(SimTime::ZERO, 10);
            let evs: Vec<String> = drain(&mut cloud)
                .iter()
                .map(|(t, e)| format!("{t} {e:?}"))
                .collect();
            (
                evs,
                cloud.meter().total_usd(SimTime::from_secs(1200)).to_bits(),
            )
        };
        assert_eq!(run(None), run(Some(&PriceModel::Constant(1.9))));
    }

    #[test]
    fn priced_pool_bills_the_path_and_reports_current_price() {
        use crate::price::PriceTrace;
        let model = PriceModel::Trace(PriceTrace::from_steps(vec![
            (SimTime::ZERO, 2.0),
            (SimTime::from_secs(1840), 6.0),
        ]));
        let mut cloud = CloudSim::for_pool_priced(
            CloudConfig::default(),
            AvailabilityTrace::constant(1),
            7,
            crate::PoolId(0),
            Some(&model),
        );
        assert_eq!(cloud.spot_price_at(SimTime::ZERO), 2.0);
        assert_eq!(cloud.spot_price_at(SimTime::from_secs(2000)), 6.0);
        cloud.request_spot(SimTime::ZERO, 1);
        let evs = drain(&mut cloud);
        let id = evs[0].1.instance().expect("grant");
        // Granted at t=40; 1800 s at $2/h then 1800 s at $6/h.
        let end = SimTime::from_secs(40 + 3600);
        cloud.release(end, id);
        let want = 2.0 * 0.5 + 6.0 * 0.5;
        assert!((cloud.meter().total_usd(end) - want).abs() < 1e-9);
    }

    #[test]
    fn price_steps_surface_as_requote_events() {
        // Every mid-run path step is delivered as a `SpotPriceStep`, so a
        // controller gets a steering point the moment the market moves.
        use crate::price::PriceTrace;
        let model = PriceModel::Trace(PriceTrace::from_steps(vec![
            (SimTime::ZERO, 2.0),
            (SimTime::from_secs(600), 6.3),
        ]));
        let mut cloud = CloudSim::for_pool_priced(
            CloudConfig::default(),
            AvailabilityTrace::constant(2),
            5,
            crate::PoolId(3),
            Some(&model),
        );
        let evs = drain(&mut cloud);
        assert_eq!(
            evs,
            vec![(
                SimTime::from_secs(600),
                CloudEvent::SpotPriceStep {
                    pool: crate::PoolId(3),
                    cents_per_hour: 630,
                },
            )],
            "one re-quote event, stamped with the pool and the cent quote"
        );
    }

    #[test]
    fn price_spikes_preempt_with_grace_and_notice() {
        // A saturating coupling (probability 1 past the mean) must reclaim
        // spot instances during the spike, with the usual notice → kill
        // sequence, while capacity never moved.
        let model = PriceModel::Ou(crate::price::OuParams {
            mean: 1.0,
            reversion_per_hour: 0.0,
            volatility: 0.0,
            daily_amplitude: 0.0,
            step: SimDuration::from_secs(600),
            horizon: SimDuration::from_secs(3600),
            floor: 5.0, // floored far above the mean: permanent "spike"
            kill_coupling: 1e9,
        });
        let mut cloud = CloudSim::for_pool_priced(
            CloudConfig::default(),
            AvailabilityTrace::constant(4),
            7,
            crate::PoolId(0),
            Some(&model),
        );
        cloud.request_spot(SimTime::ZERO, 2);
        let evs = drain(&mut cloud);
        let notices: Vec<&(SimTime, CloudEvent)> = evs
            .iter()
            .filter(|(_, e)| matches!(e, CloudEvent::PreemptionNotice { .. }))
            .collect();
        let kills = evs
            .iter()
            .filter(|(_, e)| matches!(e, CloudEvent::Preempted { .. }))
            .count();
        assert!(!notices.is_empty(), "spike must preempt: {evs:?}");
        assert_eq!(notices.len(), kills, "every notice is followed by a kill");
        for (t, ev) in &notices {
            if let CloudEvent::PreemptionNotice { kill_at, .. } = ev {
                assert_eq!(*kill_at, *t + SimDuration::from_secs(30), "grace period");
            }
        }
    }

    fn faulted(trace: AvailabilityTrace, spec: &FaultSpec, seed: u64) -> CloudSim {
        CloudSim::for_pool_faulted(
            CloudConfig::default(),
            trace,
            seed,
            crate::PoolId(0),
            None,
            Some(spec),
        )
    }

    #[test]
    fn faults_off_is_bit_exact_with_no_plan() {
        // Passing `None` faults must not perturb a single draw, event, or
        // cent relative to the pre-chaos constructor.
        let run = |chaos: bool| {
            let trace = AvailabilityTrace::paper_bs();
            let mut cloud = if chaos {
                CloudSim::for_pool_faulted(
                    CloudConfig::default(),
                    trace,
                    99,
                    crate::PoolId(0),
                    None,
                    None,
                )
            } else {
                CloudSim::new(CloudConfig::default(), trace, 99)
            };
            cloud.request_spot(SimTime::ZERO, 10);
            let evs: Vec<String> = drain(&mut cloud)
                .iter()
                .map(|(t, e)| format!("{t} {e:?}"))
                .collect();
            (
                evs,
                cloud.meter().total_usd(SimTime::from_secs(1200)).to_bits(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn unannounced_kills_fire_without_notice() {
        let spec = FaultSpec::calm().with_kill_rate(60.0);
        let mut cloud = faulted(AvailabilityTrace::constant(4), &spec, 7);
        cloud.request_spot(SimTime::ZERO, 4);
        let evs: Vec<(SimTime, CloudEvent)> = std::iter::from_fn(|| cloud.pop_next())
            .take_while(|&(t, _)| t <= SimTime::from_secs(3600))
            .collect();
        let failures = evs
            .iter()
            .filter(|(_, e)| matches!(e, CloudEvent::InstanceFailed { .. }))
            .count();
        assert!(failures > 0, "60/h for an hour must kill: {evs:?}");
        assert!(
            !evs.iter()
                .any(|(_, e)| matches!(e, CloudEvent::PreemptionNotice { .. })),
            "unannounced kills carry no notice: {evs:?}"
        );
    }

    #[test]
    fn lost_notices_kill_with_zero_grace() {
        // Every notice lost: the capacity drop at t=300 must surface as
        // an immediate InstanceFailed at t=300, never a notice or a
        // grace-period Preempted.
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 2), (SimTime::from_secs(300), 1)]);
        let spec = FaultSpec::calm().with_notice_loss(1.0);
        let mut cloud = faulted(trace, &spec, 7);
        cloud.request_spot(SimTime::ZERO, 2);
        let evs = drain(&mut cloud);
        let (t, failure) = evs
            .iter()
            .find(|(_, e)| matches!(e, CloudEvent::InstanceFailed { .. }))
            .expect("the shed must fail an instance");
        assert_eq!(*t, SimTime::from_secs(300), "zero grace: {failure:?}");
        assert!(
            !evs.iter().any(|(_, e)| matches!(
                e,
                CloudEvent::PreemptionNotice { .. } | CloudEvent::Preempted { .. }
            )),
            "no notice, no graceful kill: {evs:?}"
        );
        assert_eq!(cloud.live_count(InstanceKind::Spot), 1);
    }

    #[test]
    fn truncated_notices_keep_sub_grace_deadlines() {
        let trace =
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 2), (SimTime::from_secs(300), 0)]);
        let spec = FaultSpec::calm().with_notice_truncation(1.0);
        let mut cloud = faulted(trace, &spec, 11);
        cloud.request_spot(SimTime::ZERO, 2);
        let evs = drain(&mut cloud);
        let mut notices = 0;
        for (t, ev) in &evs {
            if let CloudEvent::PreemptionNotice { kill_at, .. } = ev {
                notices += 1;
                let grace = kill_at.saturating_since(*t);
                assert!(
                    grace < SimDuration::from_secs(30),
                    "truncated grace must undercut the configured 30 s, got {grace}"
                );
            }
        }
        assert_eq!(notices, 2, "both victims still get (late) notices");
    }

    #[test]
    fn lapsed_grants_surface_and_free_the_slot() {
        let spec = FaultSpec::calm().with_grant_lapse(1.0);
        let mut cloud = faulted(AvailabilityTrace::constant(2), &spec, 5);
        cloud.request_spot(SimTime::ZERO, 2);
        let evs = drain(&mut cloud);
        assert_eq!(evs.len(), 2);
        assert!(
            evs.iter().all(|(_, e)| matches!(
                e,
                CloudEvent::RequestLapsed {
                    kind: InstanceKind::Spot,
                    ..
                }
            )),
            "p=1 lapse grants nothing: {evs:?}"
        );
        assert_eq!(cloud.lapsed_spot(), 2);
        assert_eq!(cloud.live_count(InstanceKind::Spot), 0);
        // The slots freed: a later request provisions (and lapses) again
        // rather than queueing behind phantom capacity.
        cloud.request_spot(SimTime::from_secs(100), 1);
        assert_eq!(cloud.provisioning_spot(), 1, "the slot is free again");
    }

    #[test]
    fn degraded_link_windows_read_back() {
        let spec = FaultSpec::calm().with_degraded_link(
            SimTime::from_secs(200),
            SimTime::from_secs(500),
            0.25,
        );
        let cloud = faulted(AvailabilityTrace::constant(1), &spec, 1);
        assert_eq!(cloud.bandwidth_factor_at(SimTime::from_secs(100)), 1.0);
        assert_eq!(cloud.bandwidth_factor_at(SimTime::from_secs(300)), 0.25);
        assert_eq!(cloud.bandwidth_factor_at(SimTime::from_secs(500)), 1.0);
        let calm = sim(AvailabilityTrace::constant(1));
        assert_eq!(calm.bandwidth_factor_at(SimTime::from_secs(300)), 1.0);
    }

    #[test]
    fn faulted_replay_is_deterministic() {
        let run = || {
            let spec = FaultSpec::pack(0.7);
            let mut cloud = faulted(AvailabilityTrace::paper_as(), &spec, 13);
            cloud.request_spot(SimTime::ZERO, 8);
            let evs: Vec<(SimTime, String)> = std::iter::from_fn(|| cloud.pop_next())
                .take_while(|&(t, _)| t <= SimTime::from_secs(7200))
                .map(|(t, e)| (t, format!("{e:?}")))
                .collect();
            (
                evs,
                cloud.meter().total_usd(SimTime::from_secs(7200)).to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn priced_replay_is_deterministic() {
        let run = || {
            let model = PriceModel::Ou(crate::price::OuParams::around(1.9));
            let mut cloud = CloudSim::for_pool_priced(
                CloudConfig::default(),
                AvailabilityTrace::paper_as(),
                11,
                crate::PoolId(2),
                Some(&model),
            );
            cloud.request_spot(SimTime::ZERO, 8);
            let evs = drain(&mut cloud);
            (
                evs.iter()
                    .map(|(t, e)| (*t, format!("{e:?}")))
                    .collect::<Vec<_>>(),
                cloud.meter().total_usd(SimTime::from_secs(1200)).to_bits(),
            )
        };
        assert_eq!(run(), run());
    }
}
