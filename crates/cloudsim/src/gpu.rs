//! GPU hardware descriptions.

/// Static description of one GPU model.
///
/// Only the quantities the analytical cost model consumes are captured:
/// usable memory, peak dense-math throughput, and memory bandwidth. The
/// numbers for presets come from vendor datasheets; *effective* utilization
/// factors live in the cost model, not here.
///
/// # Example
///
/// ```
/// use cloudsim::GpuSpec;
/// let t4 = GpuSpec::t4();
/// assert_eq!(t4.name, "T4");
/// assert!(t4.memory_bytes > 15 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"T4"`.
    pub name: &'static str,
    /// Device memory available to the serving process, in bytes.
    pub memory_bytes: u64,
    /// Peak dense math throughput in FLOP/s (tensor-core mixed precision).
    pub peak_flops: f64,
    /// Peak device memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla T4 (the GPU on AWS `g4dn` instances used in the paper).
    pub const fn t4() -> Self {
        GpuSpec {
            name: "T4",
            memory_bytes: 16 * (1 << 30),
            peak_flops: 65e12,
            mem_bandwidth: 300e9,
        }
    }

    /// NVIDIA A100-40GB, for what-if experiments beyond the paper.
    pub const fn a100_40g() -> Self {
        GpuSpec {
            name: "A100-40G",
            memory_bytes: 40 * (1 << 30),
            peak_flops: 312e12,
            mem_bandwidth: 1_555e9,
        }
    }

    /// NVIDIA V100-16GB, for what-if experiments beyond the paper.
    pub const fn v100_16g() -> Self {
        GpuSpec {
            name: "V100-16G",
            memory_bytes: 16 * (1 << 30),
            peak_flops: 125e12,
            mem_bandwidth: 900e9,
        }
    }

    /// NVIDIA L4-24GB: the T4's Ada successor — cheap inference spot
    /// capacity on `g6`-class instances.
    pub const fn l4() -> Self {
        GpuSpec {
            name: "L4",
            memory_bytes: 24 * (1 << 30),
            peak_flops: 121e12,
            mem_bandwidth: 300e9,
        }
    }

    /// NVIDIA H100-80GB (SXM): the top-end on-demand backstop SKU.
    pub const fn h100() -> Self {
        GpuSpec {
            name: "H100-80G",
            memory_bytes: 80 * (1 << 30),
            peak_flops: 989e12,
            mem_bandwidth: 3_350e9,
        }
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::t4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_plausible() {
        for g in [
            GpuSpec::t4(),
            GpuSpec::a100_40g(),
            GpuSpec::v100_16g(),
            GpuSpec::l4(),
            GpuSpec::h100(),
        ] {
            assert!(g.memory_bytes >= 8 << 30, "{}: memory too small", g.name);
            assert!(g.peak_flops > 1e12, "{}: flops too small", g.name);
            assert!(g.mem_bandwidth > 1e11, "{}: bandwidth too small", g.name);
        }
    }

    #[test]
    fn default_is_t4() {
        assert_eq!(GpuSpec::default(), GpuSpec::t4());
    }
}
