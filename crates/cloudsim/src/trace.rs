//! Spot-capacity availability traces.
//!
//! An [`AvailabilityTrace`] is a step function `t -> capacity`: how many
//! spot instances the cloud is willing to lease us at simulated time `t`.
//! The paper extracts two 20-minute segments, `A_S` and `B_S`, from a real
//! 12-hour AWS `g4dn` spot trace (Figure 5). The real segments are not
//! published, so [`AvailabilityTrace::paper_as`] / [`paper_bs`] are
//! hand-authored to match the figure's envelopes: `A_S` is moderately
//! dynamic (5–10 instances), `B_S` is volatile with deep dips (3–10).
//! [`TraceGenerator`] synthesizes additional segments with the same texture
//! for robustness experiments.
//!
//! [`paper_bs`]: AvailabilityTrace::paper_bs

use simkit::{SimDuration, SimRng, SimTime};

/// A step function from simulated time to spot-instance capacity.
///
/// # Example
///
/// ```
/// use cloudsim::AvailabilityTrace;
/// use simkit::SimTime;
///
/// let tr = AvailabilityTrace::paper_as();
/// assert_eq!(tr.capacity_at(SimTime::ZERO), 8);
/// assert!(tr.max_capacity() <= 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityTrace {
    /// `(time, capacity)` steps; strictly increasing in time, first at t=0.
    steps: Vec<(SimTime, u32)>,
}

impl AvailabilityTrace {
    /// Builds a trace from `(time, capacity)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, does not start at `t = 0`, or is not
    /// strictly increasing in time.
    pub fn from_steps(steps: Vec<(SimTime, u32)>) -> Self {
        assert!(!steps.is_empty(), "trace must have at least one step");
        assert_eq!(steps[0].0, SimTime::ZERO, "trace must start at t=0");
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "trace steps must be strictly increasing");
        }
        AvailabilityTrace { steps }
    }

    /// A trace with constant capacity forever.
    pub fn constant(capacity: u32) -> Self {
        AvailabilityTrace {
            steps: vec![(SimTime::ZERO, capacity)],
        }
    }

    /// Capacity at time `t`.
    pub fn capacity_at(&self, t: SimTime) -> u32 {
        match self.steps.binary_search_by_key(&t, |&(st, _)| st) {
            Ok(i) => self.steps[i].1,
            Err(0) => unreachable!("first step is at t=0"),
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// The raw `(time, capacity)` steps.
    pub fn steps(&self) -> &[(SimTime, u32)] {
        &self.steps
    }

    /// The largest capacity the trace ever reaches.
    pub fn max_capacity(&self) -> u32 {
        self.steps.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// The smallest capacity the trace ever reaches.
    pub fn min_capacity(&self) -> u32 {
        self.steps.iter().map(|&(_, c)| c).min().unwrap_or(0)
    }

    /// Timestamp of the last step (the trace is constant afterwards).
    pub fn last_change(&self) -> SimTime {
        self.steps.last().expect("non-empty").0
    }

    /// Hand-authored stand-in for the paper's `A_S` segment (Figure 5):
    /// 20 minutes, moderately dynamic, 5–10 four-GPU instances.
    pub fn paper_as() -> Self {
        let s = |t: u64, c: u32| (SimTime::from_secs(t), c);
        AvailabilityTrace::from_steps(vec![
            s(0, 8),
            s(90, 9),
            s(180, 8),
            s(300, 6),
            s(420, 7),
            s(480, 5),
            s(560, 6),
            s(660, 8),
            s(780, 7),
            s(840, 9),
            s(960, 10),
            s(1050, 8),
            s(1140, 9),
        ])
    }

    /// Hand-authored stand-in for the paper's `B_S` segment (Figure 5):
    /// 20 minutes, volatile with deep dips, 3–10 four-GPU instances.
    pub fn paper_bs() -> Self {
        let s = |t: u64, c: u32| (SimTime::from_secs(t), c);
        AvailabilityTrace::from_steps(vec![
            s(0, 10),
            s(60, 8),
            s(150, 5),
            s(240, 6),
            s(330, 3),
            s(450, 5),
            s(540, 3),
            s(630, 6),
            s(720, 8),
            s(810, 4),
            s(900, 6),
            s(990, 9),
            s(1080, 7),
            s(1140, 8),
        ])
    }

    /// Availability trace used for the Figure 8 fluctuating-workload study
    /// (`A'_S`): like `A_S` but with preemptions at the narrative times
    /// (t = 120 s and t = 240 s) and head-room for later acquisitions.
    pub fn paper_as_prime() -> Self {
        let s = |t: u64, c: u32| (SimTime::from_secs(t), c);
        AvailabilityTrace::from_steps(vec![
            s(0, 10),
            s(120, 9),
            s(240, 8),
            s(390, 10),
            s(540, 11),
            s(700, 9),
            s(840, 10),
        ])
    }

    /// Volatile availability trace for Figure 8 (`B'_S`).
    pub fn paper_bs_prime() -> Self {
        let s = |t: u64, c: u32| (SimTime::from_secs(t), c);
        AvailabilityTrace::from_steps(vec![
            s(0, 10),
            s(120, 8),
            s(240, 7),
            s(330, 5),
            s(450, 8),
            s(600, 10),
            s(720, 7),
            s(840, 9),
        ])
    }
}

/// Synthesizes availability traces statistically similar to spot-market
/// behaviour: alternating calm plateaus and change bursts.
///
/// # Example
///
/// ```
/// use cloudsim::TraceGenerator;
/// use simkit::{SimDuration, SimRng};
///
/// let gen = TraceGenerator {
///     duration: SimDuration::from_secs(1200),
///     min_capacity: 3,
///     max_capacity: 12,
///     mean_dwell: SimDuration::from_secs(90),
///     ..TraceGenerator::default()
/// };
/// let trace = gen.generate(&mut SimRng::new(7).stream("trace"));
/// assert!(trace.max_capacity() <= 12);
/// assert!(trace.min_capacity() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenerator {
    /// Total trace length.
    pub duration: SimDuration,
    /// Capacity floor.
    pub min_capacity: u32,
    /// Capacity ceiling.
    pub max_capacity: u32,
    /// Initial capacity (clamped into range).
    pub start_capacity: u32,
    /// Mean dwell time between capacity changes (exponential).
    pub mean_dwell: SimDuration,
    /// Probability that a change is a drop (vs a rise).
    pub drop_probability: f64,
    /// Maximum magnitude of a single change.
    pub max_step: u32,
}

impl Default for TraceGenerator {
    fn default() -> Self {
        TraceGenerator {
            duration: SimDuration::from_secs(1200),
            min_capacity: 3,
            max_capacity: 12,
            start_capacity: 9,
            mean_dwell: SimDuration::from_secs(100),
            drop_probability: 0.5,
            max_step: 3,
        }
    }
}

impl TraceGenerator {
    /// Draws one trace using the supplied random stream.
    ///
    /// # Panics
    ///
    /// Panics if `min_capacity > max_capacity` or `max_step == 0`.
    pub fn generate(&self, rng: &mut SimRng) -> AvailabilityTrace {
        assert!(
            self.min_capacity <= self.max_capacity,
            "invalid capacity range"
        );
        assert!(self.max_step > 0, "max_step must be positive");
        let mut cap = self
            .start_capacity
            .clamp(self.min_capacity, self.max_capacity);
        let mut steps = vec![(SimTime::ZERO, cap)];
        let mut t = SimTime::ZERO;
        loop {
            let dwell =
                SimDuration::from_secs_f64(rng.exp(1.0 / self.mean_dwell.as_secs_f64()).max(1.0));
            t += dwell;
            if t.saturating_since(SimTime::ZERO) >= self.duration {
                break;
            }
            let step = 1 + rng.below(self.max_step as u64) as u32;
            let next = if rng.chance(self.drop_probability) {
                cap.saturating_sub(step).max(self.min_capacity)
            } else {
                (cap + step).min(self.max_capacity)
            };
            if next != cap {
                cap = next;
                steps.push((t, cap));
            }
        }
        AvailabilityTrace::from_steps(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_lookup_between_steps() {
        let tr = AvailabilityTrace::from_steps(vec![
            (SimTime::ZERO, 5),
            (SimTime::from_secs(100), 3),
            (SimTime::from_secs(200), 7),
        ]);
        assert_eq!(tr.capacity_at(SimTime::ZERO), 5);
        assert_eq!(tr.capacity_at(SimTime::from_secs(99)), 5);
        assert_eq!(tr.capacity_at(SimTime::from_secs(100)), 3);
        assert_eq!(tr.capacity_at(SimTime::from_secs(150)), 3);
        assert_eq!(tr.capacity_at(SimTime::from_secs(10_000)), 7);
    }

    #[test]
    fn paper_traces_have_documented_envelopes() {
        let a = AvailabilityTrace::paper_as();
        assert_eq!((a.min_capacity(), a.max_capacity()), (5, 10));
        assert_eq!(a.last_change(), SimTime::from_secs(1140));

        let b = AvailabilityTrace::paper_bs();
        assert_eq!((b.min_capacity(), b.max_capacity()), (3, 10));
        // B_S is the more volatile trace: larger total variation.
        let variation = |tr: &AvailabilityTrace| -> i64 {
            tr.steps()
                .windows(2)
                .map(|w| (w[1].1 as i64 - w[0].1 as i64).abs())
                .sum()
        };
        assert!(variation(&b) > variation(&a));
    }

    #[test]
    fn constant_trace() {
        let tr = AvailabilityTrace::constant(4);
        assert_eq!(tr.capacity_at(SimTime::from_secs(1_000_000)), 4);
        assert_eq!(tr.min_capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "start at t=0")]
    fn trace_must_start_at_zero() {
        AvailabilityTrace::from_steps(vec![(SimTime::from_secs(1), 4)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn trace_steps_must_increase() {
        AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 4), (SimTime::ZERO, 5)]);
    }

    #[test]
    fn generator_respects_bounds_and_is_deterministic() {
        let gen = TraceGenerator::default();
        let t1 = gen.generate(&mut SimRng::new(11).stream("t"));
        let t2 = gen.generate(&mut SimRng::new(11).stream("t"));
        assert_eq!(t1, t2, "same seed, same trace");
        assert!(t1.min_capacity() >= gen.min_capacity);
        assert!(t1.max_capacity() <= gen.max_capacity);
        assert!(
            t1.last_change().saturating_since(SimTime::ZERO) < gen.duration,
            "no steps beyond duration"
        );
    }

    #[test]
    fn generator_produces_changes() {
        let gen = TraceGenerator::default();
        let tr = gen.generate(&mut SimRng::new(5).stream("t"));
        assert!(tr.steps().len() > 3, "expected a dynamic trace, got {tr:?}");
    }
}
