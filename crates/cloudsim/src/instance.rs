//! Instance identity and instance-type catalogue.

use std::fmt;

use crate::gpu::GpuSpec;
use crate::network::NetFabric;

/// Unique identifier of one leased instance (monotonic per [`CloudSim`]).
///
/// [`CloudSim`]: crate::CloudSim
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A single GPU slot on an instance.
///
/// # Example
///
/// ```
/// use cloudsim::{GpuRef, InstanceId};
/// let g = GpuRef::new(InstanceId(3), 1);
/// assert_eq!(format!("{g}"), "i3/g1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuRef {
    /// Owning instance.
    pub instance: InstanceId,
    /// GPU slot on the instance, `0..gpus_per_instance`.
    pub slot: u8,
}

impl GpuRef {
    /// Creates a reference to GPU `slot` of `instance`.
    pub fn new(instance: InstanceId, slot: u8) -> Self {
        GpuRef { instance, slot }
    }

    /// Whether two GPUs share an instance (and hence the fast local fabric).
    pub fn same_instance(&self, other: &GpuRef) -> bool {
        self.instance == other.instance
    }
}

impl fmt::Display for GpuRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/g{}", self.instance, self.slot)
    }
}

/// How an instance is billed and whether the cloud may reclaim it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceKind {
    /// Preemptible capacity: cheap, reclaimable with a grace-period notice.
    Spot,
    /// Dedicated capacity: expensive, never preempted.
    OnDemand,
}

impl fmt::Display for InstanceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceKind::Spot => write!(f, "spot"),
            InstanceKind::OnDemand => write!(f, "on-demand"),
        }
    }
}

/// Static description of an instance type: the named bundle of GPU model,
/// GPU count, network fabric, and pricing that a pool leases.
///
/// # Example
///
/// ```
/// use cloudsim::InstanceType;
/// let ty = InstanceType::g4dn_12xlarge();
/// assert_eq!(ty.gpus_per_instance, 4);
/// assert!(ty.spot_price_per_hour < ty.ondemand_price_per_hour);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceType {
    /// Cloud SKU name.
    pub name: &'static str,
    /// Number of GPUs per instance.
    pub gpus_per_instance: u8,
    /// The GPU model installed.
    pub gpu: GpuSpec,
    /// The instance's intra/inter network fabric.
    pub net: NetFabric,
    /// On-demand price, USD per instance-hour.
    pub ondemand_price_per_hour: f64,
    /// Spot price, USD per instance-hour.
    pub spot_price_per_hour: f64,
}

impl InstanceType {
    /// AWS `g4dn.12xlarge`: 4× T4, the paper's evaluation platform (§6.1).
    ///
    /// Prices follow the paper's Figure 7 discussion: 3.9 USD/h on-demand
    /// vs 1.9 USD/h spot.
    pub const fn g4dn_12xlarge() -> Self {
        InstanceType {
            name: "g4dn.12xlarge",
            gpus_per_instance: 4,
            gpu: GpuSpec::t4(),
            net: NetFabric::g4dn_default(),
            ondemand_price_per_hour: 3.9,
            spot_price_per_hour: 1.9,
        }
    }

    /// The paper's platform under its GPU name ([`g4dn_12xlarge`]).
    ///
    /// [`g4dn_12xlarge`]: InstanceType::g4dn_12xlarge
    pub const fn t4() -> Self {
        InstanceType::g4dn_12xlarge()
    }

    /// 8×A100 with NVSwitch + EFA (`p4d.24xlarge`).
    pub const fn p4d_24xlarge() -> Self {
        InstanceType {
            name: "p4d.24xlarge",
            gpus_per_instance: 8,
            gpu: GpuSpec::a100_40g(),
            net: NetFabric::nvlink_a100(),
            ondemand_price_per_hour: 32.77,
            spot_price_per_hour: 9.83,
        }
    }

    /// The A100 pool SKU ([`p4d_24xlarge`]) under its GPU name.
    ///
    /// [`p4d_24xlarge`]: InstanceType::p4d_24xlarge
    pub const fn a100() -> Self {
        InstanceType::p4d_24xlarge()
    }

    /// 4×L4 over PCIe (`g6.12xlarge`): the cheap recovery SKU — close to
    /// g4dn pricing with 50% more memory per GPU.
    pub const fn l4() -> Self {
        InstanceType {
            name: "g6.12xlarge",
            gpus_per_instance: 4,
            gpu: GpuSpec::l4(),
            net: NetFabric::pcie_l4(),
            ondemand_price_per_hour: 4.6,
            spot_price_per_hour: 1.8,
        }
    }

    /// 8×H100 with NVSwitch + EFA (`p5.48xlarge`): the premium on-demand
    /// backstop.
    pub const fn h100() -> Self {
        InstanceType {
            name: "p5.48xlarge",
            gpus_per_instance: 8,
            gpu: GpuSpec::h100(),
            net: NetFabric::nvlink_h100(),
            ondemand_price_per_hour: 98.32,
            spot_price_per_hour: 39.33,
        }
    }

    /// The four SKU presets a heterogeneous fleet draws from.
    pub fn presets() -> [InstanceType; 4] {
        [
            InstanceType::t4(),
            InstanceType::a100(),
            InstanceType::l4(),
            InstanceType::h100(),
        ]
    }

    /// Hourly price for the given billing kind.
    pub fn price_per_hour(&self, kind: InstanceKind) -> f64 {
        match kind {
            InstanceKind::Spot => self.spot_price_per_hour,
            InstanceKind::OnDemand => self.ondemand_price_per_hour,
        }
    }

    /// All GPU slots of instance `id`.
    pub fn gpus_of(&self, id: InstanceId) -> impl Iterator<Item = GpuRef> + '_ {
        (0..self.gpus_per_instance).map(move |slot| GpuRef::new(id, slot))
    }
}

impl Default for InstanceType {
    fn default() -> Self {
        InstanceType::g4dn_12xlarge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_refs_enumerate_slots() {
        let ty = InstanceType::g4dn_12xlarge();
        let id = InstanceId(7);
        let gpus: Vec<GpuRef> = ty.gpus_of(id).collect();
        assert_eq!(gpus.len(), 4);
        assert!(gpus.iter().all(|g| g.instance == id));
        assert_eq!(gpus[2].slot, 2);
    }

    #[test]
    fn same_instance_detection() {
        let a = GpuRef::new(InstanceId(1), 0);
        let b = GpuRef::new(InstanceId(1), 3);
        let c = GpuRef::new(InstanceId(2), 0);
        assert!(a.same_instance(&b));
        assert!(!a.same_instance(&c));
    }

    #[test]
    fn pricing_by_kind() {
        let ty = InstanceType::g4dn_12xlarge();
        assert_eq!(ty.price_per_hour(InstanceKind::Spot), 1.9);
        assert_eq!(ty.price_per_hour(InstanceKind::OnDemand), 3.9);
    }

    #[test]
    fn presets_are_distinct_and_priced_sanely() {
        let presets = InstanceType::presets();
        for ty in &presets {
            assert!(
                ty.spot_price_per_hour < ty.ondemand_price_per_hour,
                "{}",
                ty.name
            );
            assert!(ty.gpus_per_instance > 0, "{}", ty.name);
            assert!(ty.net.intra_bw >= ty.net.inter_bw, "{}", ty.name);
        }
        for (i, a) in presets.iter().enumerate() {
            for b in presets.iter().skip(i + 1) {
                assert_ne!(a.name, b.name);
            }
        }
        assert_eq!(InstanceType::t4(), InstanceType::g4dn_12xlarge());
        assert_eq!(InstanceType::a100(), InstanceType::p4d_24xlarge());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", InstanceId(12)), "i12");
        assert_eq!(format!("{}", InstanceKind::Spot), "spot");
        assert_eq!(format!("{}", InstanceKind::OnDemand), "on-demand");
    }
}
