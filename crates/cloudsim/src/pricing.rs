//! Billing: metering instance-time and converting it to dollars.

use std::collections::BTreeMap;

use simkit::{SimDuration, SimTime};

use crate::instance::{InstanceId, InstanceKind, InstanceType};

/// Meters instance leases and computes the total bill.
///
/// Each instance is charged from the moment it is granted until it is
/// released or preempted, at the per-hour price of its billing kind.
/// Per-second granularity (like real clouds since 2017).
///
/// # Example
///
/// ```
/// use cloudsim::{BillingMeter, InstanceId, InstanceKind, InstanceType};
/// use simkit::SimTime;
///
/// let mut bill = BillingMeter::new(InstanceType::g4dn_12xlarge());
/// bill.lease_started(InstanceId(0), InstanceKind::Spot, SimTime::ZERO);
/// bill.lease_ended(InstanceId(0), SimTime::from_secs(3600));
/// assert!((bill.total_usd(SimTime::from_secs(3600)) - 1.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct BillingMeter {
    instance_type: InstanceType,
    // Ordered map: `total_usd` sums open leases in iteration order, and
    // float addition is not associative — a hash map would make the total
    // differ by an ulp between identically-seeded runs.
    open: BTreeMap<InstanceId, (InstanceKind, SimTime)>,
    closed_usd: f64,
    // Per-kind attribution is accumulated *separately* from `closed_usd`
    // rather than derived by summing the two kinds: float addition is not
    // associative, and `total_usd` must keep its original accumulation
    // order bit-for-bit. The split may therefore differ from the total by
    // an ulp; the total is authoritative.
    closed_usd_spot: f64,
    closed_usd_on_demand: f64,
    closed_time: BTreeMap<&'static str, SimDuration>,
}

impl BillingMeter {
    /// Creates a meter for a fleet of the given instance type.
    pub fn new(instance_type: InstanceType) -> Self {
        BillingMeter {
            instance_type,
            open: BTreeMap::new(),
            closed_usd: 0.0,
            closed_usd_spot: 0.0,
            closed_usd_on_demand: 0.0,
            closed_time: BTreeMap::new(),
        }
    }

    /// Records the start of a lease.
    ///
    /// # Panics
    ///
    /// Panics if the instance already has an open lease — leases never nest.
    pub fn lease_started(&mut self, id: InstanceId, kind: InstanceKind, at: SimTime) {
        let prev = self.open.insert(id, (kind, at));
        assert!(prev.is_none(), "{id} already has an open lease");
    }

    /// Records the end of a lease (release or preemption). Unknown ids are
    /// ignored so callers do not need to track double-release corner cases.
    pub fn lease_ended(&mut self, id: InstanceId, at: SimTime) {
        if let Some((kind, start)) = self.open.remove(&id) {
            let dur = at.saturating_since(start);
            let usd = self.cost_of(kind, dur);
            self.closed_usd += usd;
            match kind {
                InstanceKind::Spot => self.closed_usd_spot += usd,
                InstanceKind::OnDemand => self.closed_usd_on_demand += usd,
            }
            let key = match kind {
                InstanceKind::Spot => "spot",
                InstanceKind::OnDemand => "on-demand",
            };
            *self.closed_time.entry(key).or_insert(SimDuration::ZERO) += dur;
        }
    }

    fn cost_of(&self, kind: InstanceKind, dur: SimDuration) -> f64 {
        self.instance_type.price_per_hour(kind) * dur.as_secs_f64() / 3600.0
    }

    /// Total spend in USD as of `now`, counting still-open leases up to `now`.
    pub fn total_usd(&self, now: SimTime) -> f64 {
        let open: f64 = self
            .open
            .values()
            .map(|&(kind, start)| self.cost_of(kind, now.saturating_since(start)))
            .sum();
        self.closed_usd + open
    }

    /// Spend attributed to one billing kind as of `now`, counting
    /// still-open leases of that kind up to `now`. The per-kind split is
    /// accumulated independently of [`BillingMeter::total_usd`], so
    /// `spot + on-demand` may differ from the total by a float ulp.
    pub fn usd_of_kind(&self, kind: InstanceKind, now: SimTime) -> f64 {
        let closed = match kind {
            InstanceKind::Spot => self.closed_usd_spot,
            InstanceKind::OnDemand => self.closed_usd_on_demand,
        };
        let open: f64 = self
            .open
            .values()
            .filter(|&&(k, _)| k == kind)
            .map(|&(k, start)| self.cost_of(k, now.saturating_since(start)))
            .sum();
        closed + open
    }

    /// Total closed lease time per billing kind (`"spot"` / `"on-demand"`).
    pub fn closed_time(&self, kind: InstanceKind) -> SimDuration {
        let key = match kind {
            InstanceKind::Spot => "spot",
            InstanceKind::OnDemand => "on-demand",
        };
        self.closed_time
            .get(key)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of leases currently open.
    pub fn open_leases(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> BillingMeter {
        BillingMeter::new(InstanceType::g4dn_12xlarge())
    }

    #[test]
    fn spot_hour_costs_spot_price() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::ZERO);
        m.lease_ended(InstanceId(1), SimTime::from_secs(3600));
        assert!((m.total_usd(SimTime::from_secs(7200)) - 1.9).abs() < 1e-9);
    }

    #[test]
    fn open_lease_accrues() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::OnDemand, SimTime::ZERO);
        let half_hour = SimTime::from_secs(1800);
        assert!((m.total_usd(half_hour) - 3.9 / 2.0).abs() < 1e-9);
        assert_eq!(m.open_leases(), 1);
    }

    #[test]
    fn mixed_fleet_bill() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::ZERO);
        m.lease_started(InstanceId(2), InstanceKind::OnDemand, SimTime::ZERO);
        let t = SimTime::from_secs(3600);
        m.lease_ended(InstanceId(1), t);
        m.lease_ended(InstanceId(2), t);
        assert!((m.total_usd(t) - (1.9 + 3.9)).abs() < 1e-9);
        assert_eq!(
            m.closed_time(InstanceKind::Spot),
            SimDuration::from_secs(3600)
        );
    }

    #[test]
    fn unknown_release_is_noop() {
        let mut m = meter();
        m.lease_ended(InstanceId(99), SimTime::from_secs(10));
        assert_eq!(m.total_usd(SimTime::from_secs(10)), 0.0);
    }

    #[test]
    #[should_panic(expected = "open lease")]
    fn double_lease_panics() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::ZERO);
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::from_secs(1));
    }
}
