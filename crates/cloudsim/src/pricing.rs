//! Billing: metering instance-time and converting it to dollars.

use std::collections::BTreeMap;

use simkit::{SimDuration, SimTime};

use crate::instance::{InstanceId, InstanceKind, InstanceType};

/// Meters instance leases and computes the total bill.
///
/// Each instance is charged from the moment it is granted until it is
/// released or preempted, at the per-hour price of its billing kind.
/// Per-second granularity (like real clouds since 2017).
///
/// When the pool's spot price moves (see
/// [`PriceModel`](crate::PriceModel)), the meter holds the price *path* —
/// a step function — and integrates each spot lease over it exactly, so
/// the bill reflects the price actually paid during every segment of the
/// lease, not a constant. Without a path (the default), the arithmetic is
/// the original fixed-price expression, bit-for-bit.
///
/// # Example
///
/// ```
/// use cloudsim::{BillingMeter, InstanceId, InstanceKind, InstanceType};
/// use simkit::SimTime;
///
/// let mut bill = BillingMeter::new(InstanceType::g4dn_12xlarge());
/// bill.lease_started(InstanceId(0), InstanceKind::Spot, SimTime::ZERO);
/// bill.lease_ended(InstanceId(0), SimTime::from_secs(3600));
/// assert!((bill.total_usd(SimTime::from_secs(3600)) - 1.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct BillingMeter {
    instance_type: InstanceType,
    // Ordered map: `total_usd` sums open leases in iteration order, and
    // float addition is not associative — a hash map would make the total
    // differ by an ulp between identically-seeded runs.
    open: BTreeMap<InstanceId, (InstanceKind, SimTime)>,
    closed_usd: f64,
    // Per-kind attribution is accumulated *separately* from `closed_usd`
    // rather than derived by summing the two kinds: float addition is not
    // associative, and `total_usd` must keep its original accumulation
    // order bit-for-bit. The split may therefore differ from the total by
    // an ulp; the total is authoritative.
    closed_usd_spot: f64,
    closed_usd_on_demand: f64,
    closed_time: BTreeMap<&'static str, SimDuration>,
    // The spot-price path as `(time, usd_per_hour)` steps. Empty means the
    // price never moves and spot bills at the instance type's list price
    // through the exact legacy expression.
    spot_path: Vec<(SimTime, f64)>,
}

impl BillingMeter {
    /// Creates a meter for a fleet of the given instance type.
    pub fn new(instance_type: InstanceType) -> Self {
        BillingMeter {
            instance_type,
            open: BTreeMap::new(),
            closed_usd: 0.0,
            closed_usd_spot: 0.0,
            closed_usd_on_demand: 0.0,
            closed_time: BTreeMap::new(),
            spot_path: Vec::new(),
        }
    }

    /// Installs a dynamic spot-price path: spot leases integrate this step
    /// function instead of charging the list price. Steps must start at
    /// `t = 0` and be strictly increasing (see
    /// [`PriceModel::path`](crate::PriceModel::path)).
    ///
    /// # Panics
    ///
    /// Panics if leases are already open (re-pricing mid-lease would
    /// rewrite spend already accrued) or the path is malformed.
    pub fn set_spot_path(&mut self, path: Vec<(SimTime, f64)>) {
        assert!(
            self.open.is_empty(),
            "the price path must be installed before any lease opens"
        );
        if !path.is_empty() {
            assert_eq!(path[0].0, SimTime::ZERO, "price path must start at t=0");
            for w in path.windows(2) {
                assert!(w[0].0 < w[1].0, "price path must be strictly increasing");
            }
        }
        self.spot_path = path;
    }

    /// The spot price in force at `t` (the path's step, or the instance
    /// type's list price when no path is installed).
    pub fn spot_price_at(&self, t: SimTime) -> f64 {
        crate::price::price_at(&self.spot_path, t).unwrap_or(self.instance_type.spot_price_per_hour)
    }

    /// Records the start of a lease.
    ///
    /// # Panics
    ///
    /// Panics if the instance already has an open lease — leases never nest.
    pub fn lease_started(&mut self, id: InstanceId, kind: InstanceKind, at: SimTime) {
        let prev = self.open.insert(id, (kind, at));
        assert!(prev.is_none(), "{id} already has an open lease");
    }

    /// Records the end of a lease (release or preemption). Unknown ids are
    /// ignored so callers do not need to track double-release corner cases.
    pub fn lease_ended(&mut self, id: InstanceId, at: SimTime) {
        if let Some((kind, start)) = self.open.remove(&id) {
            let dur = at.saturating_since(start);
            let usd = self.lease_usd(kind, start, at);
            self.closed_usd += usd;
            match kind {
                InstanceKind::Spot => self.closed_usd_spot += usd,
                InstanceKind::OnDemand => self.closed_usd_on_demand += usd,
            }
            let key = match kind {
                InstanceKind::Spot => "spot",
                InstanceKind::OnDemand => "on-demand",
            };
            *self.closed_time.entry(key).or_insert(SimDuration::ZERO) += dur;
        }
    }

    fn cost_of(&self, kind: InstanceKind, dur: SimDuration) -> f64 {
        self.instance_type.price_per_hour(kind) * dur.as_secs_f64() / 3600.0
    }

    /// Spend of one lease over `[start, end)`. On-demand leases and spot
    /// leases without a price path take the legacy fixed-price expression
    /// (bit-for-bit); spot leases with a path integrate it segment by
    /// segment.
    fn lease_usd(&self, kind: InstanceKind, start: SimTime, end: SimTime) -> f64 {
        if kind == InstanceKind::OnDemand || self.spot_path.is_empty() {
            return self.cost_of(kind, end.saturating_since(start));
        }
        let mut usd = 0.0;
        // First step at or before `start` (the path starts at t=0, so any
        // lease start is covered).
        let first = self
            .spot_path
            .partition_point(|&(t, _)| t <= start)
            .saturating_sub(1);
        for (i, &(seg_start, price)) in self.spot_path.iter().enumerate().skip(first) {
            if seg_start >= end {
                break;
            }
            let seg_end = self
                .spot_path
                .get(i + 1)
                .map(|&(t, _)| t.min(end))
                .unwrap_or(end);
            let from = if seg_start > start { seg_start } else { start };
            if seg_end > from {
                usd += price * seg_end.saturating_since(from).as_secs_f64() / 3600.0;
            }
        }
        usd
    }

    /// Total spend in USD as of `now`, counting still-open leases up to `now`.
    pub fn total_usd(&self, now: SimTime) -> f64 {
        let open: f64 = self
            .open
            .values()
            .map(|&(kind, start)| self.lease_usd(kind, start, now))
            .sum();
        self.closed_usd + open
    }

    /// Spend attributed to one billing kind as of `now`, counting
    /// still-open leases of that kind up to `now`. The per-kind split is
    /// accumulated independently of [`BillingMeter::total_usd`], so
    /// `spot + on-demand` may differ from the total by a float ulp.
    pub fn usd_of_kind(&self, kind: InstanceKind, now: SimTime) -> f64 {
        let closed = match kind {
            InstanceKind::Spot => self.closed_usd_spot,
            InstanceKind::OnDemand => self.closed_usd_on_demand,
        };
        let open: f64 = self
            .open
            .values()
            .filter(|&&(k, _)| k == kind)
            .map(|&(k, start)| self.lease_usd(k, start, now))
            .sum();
        closed + open
    }

    /// Total closed lease time per billing kind (`"spot"` / `"on-demand"`).
    pub fn closed_time(&self, kind: InstanceKind) -> SimDuration {
        let key = match kind {
            InstanceKind::Spot => "spot",
            InstanceKind::OnDemand => "on-demand",
        };
        self.closed_time
            .get(key)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of leases currently open.
    pub fn open_leases(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> BillingMeter {
        BillingMeter::new(InstanceType::g4dn_12xlarge())
    }

    #[test]
    fn spot_hour_costs_spot_price() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::ZERO);
        m.lease_ended(InstanceId(1), SimTime::from_secs(3600));
        assert!((m.total_usd(SimTime::from_secs(7200)) - 1.9).abs() < 1e-9);
    }

    #[test]
    fn open_lease_accrues() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::OnDemand, SimTime::ZERO);
        let half_hour = SimTime::from_secs(1800);
        assert!((m.total_usd(half_hour) - 3.9 / 2.0).abs() < 1e-9);
        assert_eq!(m.open_leases(), 1);
    }

    #[test]
    fn mixed_fleet_bill() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::ZERO);
        m.lease_started(InstanceId(2), InstanceKind::OnDemand, SimTime::ZERO);
        let t = SimTime::from_secs(3600);
        m.lease_ended(InstanceId(1), t);
        m.lease_ended(InstanceId(2), t);
        assert!((m.total_usd(t) - (1.9 + 3.9)).abs() < 1e-9);
        assert_eq!(
            m.closed_time(InstanceKind::Spot),
            SimDuration::from_secs(3600)
        );
    }

    #[test]
    fn unknown_release_is_noop() {
        let mut m = meter();
        m.lease_ended(InstanceId(99), SimTime::from_secs(10));
        assert_eq!(m.total_usd(SimTime::from_secs(10)), 0.0);
    }

    #[test]
    #[should_panic(expected = "open lease")]
    fn double_lease_panics() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::ZERO);
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::from_secs(1));
    }

    #[test]
    fn path_bill_integrates_the_path_not_a_constant() {
        // 1.9 for the first half hour, 4.0 for the second: the hour-long
        // lease pays the time-weighted sum, not either endpoint.
        let mut m = meter();
        m.set_spot_path(vec![(SimTime::ZERO, 1.9), (SimTime::from_secs(1800), 4.0)]);
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::ZERO);
        m.lease_ended(InstanceId(1), SimTime::from_secs(3600));
        let want = 1.9 * 0.5 + 4.0 * 0.5;
        assert!((m.total_usd(SimTime::from_secs(3600)) - want).abs() < 1e-9);
    }

    #[test]
    fn path_bill_covers_leases_starting_mid_segment_and_open_accrual() {
        let mut m = meter();
        m.set_spot_path(vec![
            (SimTime::ZERO, 2.0),
            (SimTime::from_secs(600), 6.0),
            (SimTime::from_secs(1200), 1.0),
        ]);
        // Lease spans the tail of segment 1, all of segment 2, and the
        // open accrual reads the last step's price.
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::from_secs(300));
        let now = SimTime::from_secs(1800);
        let want = 2.0 * 300.0 / 3600.0 + 6.0 * 600.0 / 3600.0 + 1.0 * 600.0 / 3600.0;
        assert!((m.total_usd(now) - want).abs() < 1e-9);
        assert!((m.usd_of_kind(InstanceKind::Spot, now) - want).abs() < 1e-9);
    }

    #[test]
    fn path_leaves_on_demand_at_list_price() {
        let mut m = meter();
        m.set_spot_path(vec![(SimTime::ZERO, 100.0)]);
        m.lease_started(InstanceId(1), InstanceKind::OnDemand, SimTime::ZERO);
        m.lease_ended(InstanceId(1), SimTime::from_secs(3600));
        assert!((m.total_usd(SimTime::from_secs(3600)) - 3.9).abs() < 1e-9);
    }

    #[test]
    fn constant_path_is_bit_exact_with_no_path() {
        let run = |with_path: bool| {
            let mut m = meter();
            if with_path {
                // A single-step path at the list price is the same math.
                m.set_spot_path(vec![(SimTime::ZERO, 1.9)]);
            }
            m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::from_secs(7));
            m.lease_ended(InstanceId(1), SimTime::from_secs(12_345));
            m.total_usd(SimTime::from_secs(20_000))
        };
        // Not bit-exact by construction (the integral multiplies segment
        // seconds, the legacy path multiplies total seconds) but the
        // single-segment case collapses to the same product.
        assert_eq!(run(false).to_bits(), run(true).to_bits());
    }

    #[test]
    #[should_panic(expected = "before any lease")]
    fn path_after_open_lease_panics() {
        let mut m = meter();
        m.lease_started(InstanceId(1), InstanceKind::Spot, SimTime::ZERO);
        m.set_spot_path(vec![(SimTime::ZERO, 1.0)]);
    }

    #[test]
    fn spot_price_at_reads_the_path() {
        let mut m = meter();
        assert_eq!(m.spot_price_at(SimTime::from_secs(999)), 1.9);
        m.set_spot_path(vec![(SimTime::ZERO, 1.5), (SimTime::from_secs(60), 9.0)]);
        assert_eq!(m.spot_price_at(SimTime::ZERO), 1.5);
        assert_eq!(m.spot_price_at(SimTime::from_secs(61)), 9.0);
    }
}
