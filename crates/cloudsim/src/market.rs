//! The multi-pool arbiter: several spot pools behind one event stream.
//!
//! A [`CloudMarket`] owns one [`CloudSim`] per [`PoolSpec`] and merges
//! their event streams deterministically (earliest timestamp first, ties
//! broken by pool index). Each pool replays its own
//! [`AvailabilityTrace`], applies its own grant delay and spot price, and
//! meters its own bill; the market exposes both the merged legacy surface
//! (so a single-pool market is a drop-in, bit-exact replacement for a bare
//! [`CloudSim`]) and pool-addressed commands for policy-driven acquisition
//! (see the `fleetctl` crate).
//!
//! Instance ids encode their pool ([`POOL_ID_STRIDE`]): pool 0 allocates
//! the exact id sequence a bare `CloudSim` would, which is what keeps
//! pre-multi-pool replays byte-identical.
//!
//! # Example
//!
//! ```
//! use cloudsim::{AvailabilityTrace, CloudConfig, CloudMarket, PoolId, PoolSpec};
//! use simkit::SimTime;
//!
//! let pools = vec![
//!     PoolSpec::new("us-east-1a", AvailabilityTrace::constant(4)),
//!     PoolSpec::new("us-east-1b", AvailabilityTrace::constant(2)).with_spot_price(1.4),
//! ];
//! let mut market = CloudMarket::new(&CloudConfig::default(), &pools, 7);
//! market.request_spot_in(SimTime::ZERO, PoolId(1), 1);
//! let (_, ev) = market.pop_next().expect("grant");
//! assert_eq!(PoolId::of_instance(ev.instance().unwrap()), PoolId(1));
//! ```

use simkit::SimTime;
use telemetry::{Record, Recorder, TelemetryEvent};

use crate::events::CloudEvent;
use crate::instance::{InstanceId, InstanceKind, InstanceType};
use crate::pool::{PoolId, PoolSpec};
use crate::price::PriceModel;
use crate::provider::{CloudConfig, CloudSim, InstanceInfo};
use crate::trace::AvailabilityTrace;

/// Spend attributed to one pool, split by billing kind.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolCost {
    /// The pool.
    pub pool: PoolId,
    /// The pool's human-readable name.
    pub name: String,
    /// The SKU this pool leases (the instance type's name).
    pub sku: &'static str,
    /// USD spent on spot leases in this pool.
    pub spot_usd: f64,
    /// USD spent on on-demand leases in this pool.
    pub ondemand_usd: f64,
}

/// Per-kind / per-pool cost attribution for one run.
///
/// The per-kind split is accumulated independently of the authoritative
/// total (see [`crate::BillingMeter::usd_of_kind`]), so the sums here may
/// differ from [`CloudMarket::total_usd`] by a float ulp.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostBreakdown {
    /// One entry per pool, in pool order.
    pub pools: Vec<PoolCost>,
}

impl CostBreakdown {
    /// Total spot spend across pools.
    pub fn spot_usd(&self) -> f64 {
        self.pools.iter().map(|p| p.spot_usd).sum()
    }

    /// Total on-demand spend across pools.
    pub fn ondemand_usd(&self) -> f64 {
        self.pools.iter().map(|p| p.ondemand_usd).sum()
    }

    /// Spot plus on-demand spend (may differ from the authoritative meter
    /// total by a float ulp; see the type-level docs).
    pub fn total_usd(&self) -> f64 {
        self.spot_usd() + self.ondemand_usd()
    }
}

/// Several spot pools behind one deterministic event stream.
///
/// See the [module docs](self) for the merge rules. All legacy
/// (pool-less) commands address pool 0, which makes a single-pool market
/// behave exactly like the bare [`CloudSim`] it wraps.
#[derive(Debug, Clone)]
pub struct CloudMarket {
    pools: Vec<CloudSim>,
    names: Vec<String>,
    /// Telemetry capture for delivered events, prewarms, and releases
    /// (disabled by default; see [`CloudMarket::enable_telemetry`]).
    telemetry: Recorder,
}

impl CloudMarket {
    /// A single-pool market: bit-exact with `CloudSim::new(cfg, trace,
    /// seed)` (same random stream, same id sequence, same event order).
    pub fn single(cfg: CloudConfig, trace: AvailabilityTrace, seed: u64) -> Self {
        CloudMarket {
            pools: vec![CloudSim::new(cfg, trace, seed)],
            names: vec!["default".to_string()],
            telemetry: Recorder::disabled(),
        }
    }

    /// A market of `specs.len()` pools. Pool `i` inherits `base` with its
    /// spec's instance-type / grant-delay / spot-price overrides applied
    /// (the price override applies on top of the pool's own SKU), replays
    /// its own trace, and draws from its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(base: &CloudConfig, specs: &[PoolSpec], seed: u64) -> Self {
        assert!(!specs.is_empty(), "a market needs at least one pool");
        let pools = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut cfg = base.clone();
                if let Some(ty) = &spec.instance_type {
                    cfg.instance_type = ty.clone();
                }
                if let Some(d) = spec.spot_grant_delay {
                    cfg.spot_grant_delay = d;
                }
                // A constant price model takes the legacy list-price
                // override path (bit-exact with the pre-dynamics market);
                // dynamic models ride into the provider whole.
                if let Some(p) = spec.price.as_ref().and_then(PriceModel::constant_price) {
                    cfg.instance_type.spot_price_per_hour = p;
                }
                CloudSim::for_pool_faulted(
                    cfg,
                    spec.trace.clone(),
                    seed,
                    PoolId(i as u32),
                    spec.price.as_ref(),
                    spec.faults.as_ref(),
                )
            })
            .collect();
        CloudMarket {
            pools,
            names: specs.iter().map(|s| s.name.clone()).collect(),
            telemetry: Recorder::disabled(),
        }
    }

    // ---- Telemetry --------------------------------------------------

    /// Switches on event capture: every delivered [`CloudEvent`], every
    /// prewarmed grant, and every voluntary release is recorded as a
    /// [`TelemetryEvent`]. Capture is observation-only — it never
    /// changes the event stream, ids, or billing.
    pub fn enable_telemetry(&mut self) {
        self.telemetry.enable();
    }

    /// Takes the captured telemetry records (empty when disabled).
    pub fn take_telemetry(&mut self) -> Vec<Record> {
        self.telemetry.take()
    }

    /// Records the telemetry mirror of a delivered cloud event.
    fn note_event(&mut self, t: SimTime, ev: &CloudEvent) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let tev = match *ev {
            CloudEvent::SpotGranted { id } => TelemetryEvent::InstanceGrant {
                pool: PoolId::of_instance(id).0,
                instance: id.0,
                ondemand: false,
            },
            CloudEvent::OnDemandGranted { id } => TelemetryEvent::InstanceGrant {
                pool: PoolId::of_instance(id).0,
                instance: id.0,
                ondemand: true,
            },
            CloudEvent::PreemptionNotice { id, kill_at } => TelemetryEvent::KillNotice {
                pool: PoolId::of_instance(id).0,
                instance: id.0,
                kill_at_us: kill_at.as_micros(),
            },
            CloudEvent::Preempted { id } => TelemetryEvent::InstanceKill {
                pool: PoolId::of_instance(id).0,
                instance: id.0,
            },
            CloudEvent::SpotPriceStep {
                pool,
                cents_per_hour,
            } => TelemetryEvent::PriceStep {
                pool: pool.0,
                cents_per_hour,
            },
            CloudEvent::InstanceFailed { id } => TelemetryEvent::Fault {
                pool: PoolId::of_instance(id).0,
                instance: id.0,
            },
            CloudEvent::RequestLapsed { pool, kind } => TelemetryEvent::RequestLapsed {
                pool: pool.0,
                ondemand: kind == InstanceKind::OnDemand,
            },
        };
        self.telemetry.emit(t, tev);
    }

    /// Records grants for prewarmed instances (they never appear in the
    /// event stream, so the telemetry stream grants them at `t = 0`).
    fn note_prewarm(&mut self, pool: PoolId, ids: &[InstanceId], ondemand: bool) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for &id in ids {
            self.telemetry.emit(
                SimTime::ZERO,
                TelemetryEvent::InstanceGrant {
                    pool: pool.0,
                    instance: id.0,
                    ondemand,
                },
            );
        }
    }

    /// Number of pools in this market.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// The human-readable name of `pool`.
    pub fn pool_name(&self, pool: PoolId) -> &str {
        &self.names[pool.0 as usize]
    }

    /// Read-only view of one pool's provider.
    pub fn pool(&self, pool: PoolId) -> &CloudSim {
        &self.pools[pool.0 as usize]
    }

    fn pool_mut(&mut self, pool: PoolId) -> &mut CloudSim {
        &mut self.pools[pool.0 as usize]
    }

    // ---- Pool-addressed commands -----------------------------------

    /// Requests `n` spot instances from `pool` at `now`.
    pub fn request_spot_in(&mut self, now: SimTime, pool: PoolId, n: u32) {
        self.pool_mut(pool).request_spot(now, n);
    }

    /// Cancels up to `n` queued spot requests in `pool`, returning how
    /// many were cancelled.
    pub fn cancel_pending_spot_in(&mut self, pool: PoolId, n: u32) -> u32 {
        self.pool_mut(pool).cancel_pending_spot(n)
    }

    /// Immediately grants up to `n` spot instances in `pool` at `t = 0`
    /// (see [`CloudSim::prewarm_spot`]).
    pub fn prewarm_spot_in(&mut self, pool: PoolId, n: u32) -> Vec<InstanceId> {
        let ids = self.pool_mut(pool).prewarm_spot(n);
        self.note_prewarm(pool, &ids, false);
        ids
    }

    /// Current trace capacity of `pool`.
    pub fn capacity_in(&self, pool: PoolId) -> u32 {
        self.pool(pool).current_capacity()
    }

    /// Queued (not yet provisioning) spot requests in `pool`.
    pub fn pending_spot_in(&self, pool: PoolId) -> u32 {
        self.pool(pool).pending_spot()
    }

    /// Spot instances provisioning in `pool` (grant scheduled, not fired).
    pub fn provisioning_spot_in(&self, pool: PoolId) -> u32 {
        self.pool(pool).provisioning_spot()
    }

    /// The instance type `pool` leases.
    pub fn instance_type_in(&self, pool: PoolId) -> &InstanceType {
        &self.pool(pool).config().instance_type
    }

    /// The spot price in force in `pool` at `t` (USD per instance-hour).
    /// For pools without a [`PriceModel`](crate::PriceModel) this is the
    /// SKU's list price; for priced pools it reads the pre-drawn path.
    pub fn spot_price_in(&self, pool: PoolId, t: SimTime) -> f64 {
        self.pool(pool).spot_price_at(t)
    }

    /// Cumulative spot requests in `pool` that will never be granted
    /// (launch failures plus injected grant lapses). The controller's
    /// shortfall signal — see [`CloudEvent::RequestLapsed`].
    pub fn lapsed_spot_in(&self, pool: PoolId) -> u32 {
        self.pool(pool).lapsed_spot()
    }

    /// The effective transfer-bandwidth multiplier of `pool` at `t`
    /// (`1.0` unless a degraded-link fault window is in force).
    pub fn bandwidth_factor_in(&self, pool: PoolId, t: SimTime) -> f64 {
        self.pool(pool).bandwidth_factor_at(t)
    }

    /// Requests `n` on-demand instances *of `pool`'s SKU* at `now` (billed
    /// against that pool). The pool-less [`request_on_demand`] routes to
    /// pool 0.
    ///
    /// [`request_on_demand`]: CloudMarket::request_on_demand
    pub fn request_on_demand_in(&mut self, now: SimTime, pool: PoolId, n: u32) {
        self.pool_mut(pool).request_on_demand(now, n);
    }

    // ---- Legacy (pool-0) surface -----------------------------------

    /// Requests `n` spot instances from pool 0 (the legacy single-market
    /// surface; pool-aware callers use [`CloudMarket::request_spot_in`]).
    pub fn request_spot(&mut self, now: SimTime, n: u32) {
        self.request_spot_in(now, PoolId(0), n);
    }

    /// Cancels up to `n` queued spot requests in pool 0.
    pub fn cancel_pending_spot(&mut self, n: u32) -> u32 {
        self.cancel_pending_spot_in(PoolId(0), n)
    }

    /// Prewarms `n` spot instances in pool 0.
    pub fn prewarm_spot(&mut self, n: u32) -> Vec<InstanceId> {
        self.prewarm_spot_in(PoolId(0), n)
    }

    /// Prewarms `n` on-demand instances (granted by pool 0; on-demand
    /// capacity is pool-agnostic).
    pub fn prewarm_on_demand(&mut self, n: u32) -> Vec<InstanceId> {
        let ids = self.pools[0].prewarm_on_demand(n);
        self.note_prewarm(PoolId(0), &ids, true);
        ids
    }

    /// Requests `n` on-demand instances (granted by pool 0; on-demand
    /// capacity is unlimited and pool-agnostic).
    pub fn request_on_demand(&mut self, now: SimTime, n: u32) {
        self.pools[0].request_on_demand(now, n);
    }

    /// Pool 0's current trace capacity (the legacy single-market view).
    pub fn current_capacity(&self) -> u32 {
        self.pools[0].current_capacity()
    }

    /// Sum of every pool's current trace capacity.
    pub fn total_capacity(&self) -> u32 {
        self.pools.iter().map(CloudSim::current_capacity).sum()
    }

    /// On-demand requests whose grant has not fired yet.
    pub fn pending_on_demand(&self) -> u32 {
        self.pools.iter().map(CloudSim::pending_on_demand).sum()
    }

    // ---- Merged views ----------------------------------------------

    /// Queued spot requests across all pools.
    pub fn pending_spot(&self) -> u32 {
        self.pools.iter().map(CloudSim::pending_spot).sum()
    }

    /// Live leases across all pools, in pool order.
    pub fn fleet(&self) -> impl Iterator<Item = &InstanceInfo> {
        self.pools.iter().flat_map(CloudSim::fleet)
    }

    /// Number of live leases of `kind` across all pools.
    pub fn live_count(&self, kind: InstanceKind) -> usize {
        self.pools.iter().map(|p| p.live_count(kind)).sum()
    }

    /// Releases a lease voluntarily; the id routes to its owning pool.
    pub fn release(&mut self, now: SimTime, id: InstanceId) {
        let pool = PoolId::of_instance(id);
        if (pool.0 as usize) < self.pools.len() {
            // Only a release that ends a live lease is telemetry-worthy
            // (releasing an already-dead id is a silent no-op below).
            let live = self.telemetry.is_enabled() && self.pool(pool).fleet().any(|i| i.id == id);
            self.pool_mut(pool).release(now, id);
            if live {
                self.telemetry.emit(
                    now,
                    TelemetryEvent::InstanceRelease {
                        pool: pool.0,
                        instance: id.0,
                    },
                );
            }
        }
    }

    /// Timestamp of the next deliverable event across all pools.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.pools.iter_mut().filter_map(CloudSim::peek_time).min()
    }

    /// Pops the next deliverable event: earliest timestamp wins, ties
    /// break toward the lowest pool index (deterministic merge).
    pub fn pop_next(&mut self) -> Option<(SimTime, CloudEvent)> {
        let mut best: Option<(SimTime, usize)> = None;
        for i in 0..self.pools.len() {
            if let Some(t) = self.pools[i].peek_time() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        let (_, i) = best?;
        let popped = self.pools[i].pop_next();
        if let Some((t, ev)) = &popped {
            self.note_event(*t, ev);
        }
        popped
    }

    // ---- Per-pool event streams ------------------------------------
    //
    // The sharded simulation core partitions pools across shards; a shard
    // drains exactly its own pools' streams. Interleaving every pool's
    // stream by `(time, pool index)` reproduces `pop_next`'s merged order,
    // so sharded and merged consumers see the same events.

    /// Timestamp of the next deliverable event in one pool's stream.
    pub fn peek_time_in(&mut self, pool: PoolId) -> Option<SimTime> {
        self.pool_mut(pool).peek_time()
    }

    /// Pops the next deliverable event from one pool's stream.
    pub fn pop_next_in(&mut self, pool: PoolId) -> Option<(SimTime, CloudEvent)> {
        let popped = self.pool_mut(pool).pop_next();
        if let Some((t, ev)) = &popped {
            self.note_event(*t, ev);
        }
        popped
    }

    // ---- Billing ---------------------------------------------------

    /// Total spend in USD as of `now`, summed over pools in pool order
    /// (one pool: exactly the bare meter's total).
    pub fn total_usd(&self, now: SimTime) -> f64 {
        self.pools.iter().map(|p| p.meter().total_usd(now)).sum()
    }

    /// Per-kind / per-pool cost attribution as of `now`.
    pub fn cost_breakdown(&self, now: SimTime) -> CostBreakdown {
        CostBreakdown {
            pools: self
                .pools
                .iter()
                .enumerate()
                .map(|(i, p)| PoolCost {
                    pool: PoolId(i as u32),
                    name: self.names[i].clone(),
                    sku: p.config().instance_type.name,
                    spot_usd: p.meter().usd_of_kind(InstanceKind::Spot, now),
                    ondemand_usd: p.meter().usd_of_kind(InstanceKind::OnDemand, now),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    fn drain_sim(c: &mut CloudSim) -> Vec<(SimTime, String)> {
        std::iter::from_fn(|| c.pop_next())
            .map(|(t, e)| (t, format!("{e:?}")))
            .collect()
    }

    fn drain_market(m: &mut CloudMarket) -> Vec<(SimTime, String)> {
        std::iter::from_fn(|| m.pop_next())
            .map(|(t, e)| (t, format!("{e:?}")))
            .collect()
    }

    #[test]
    fn single_pool_market_is_bit_exact_with_bare_cloudsim() {
        // Same trace, same seed, same commands: the merged stream, the ids,
        // and the bill must be *identical* — this is what keeps every
        // pre-multi-pool replay byte-identical.
        let trace = AvailabilityTrace::paper_bs();
        let mut sim = CloudSim::new(CloudConfig::default(), trace.clone(), 99);
        let mut market = CloudMarket::single(CloudConfig::default(), trace, 99);
        sim.request_spot(SimTime::ZERO, 10);
        market.request_spot(SimTime::ZERO, 10);
        sim.request_on_demand(SimTime::from_secs(5), 2);
        market.request_on_demand(SimTime::from_secs(5), 2);
        assert_eq!(drain_sim(&mut sim), drain_market(&mut market));
        let end = SimTime::from_secs(1200);
        assert_eq!(
            sim.meter().total_usd(end).to_bits(),
            market.total_usd(end).to_bits(),
            "billing must be bit-exact"
        );
    }

    #[test]
    fn pools_allocate_disjoint_id_namespaces() {
        let pools = vec![
            PoolSpec::new("a", AvailabilityTrace::constant(2)),
            PoolSpec::new("b", AvailabilityTrace::constant(2)),
        ];
        let mut m = CloudMarket::new(&CloudConfig::default(), &pools, 7);
        m.request_spot_in(SimTime::ZERO, PoolId(0), 2);
        m.request_spot_in(SimTime::ZERO, PoolId(1), 2);
        let evs = drain_market(&mut m);
        assert_eq!(evs.len(), 4);
        let by_pool: Vec<PoolId> = m.fleet().map(|i| PoolId::of_instance(i.id)).collect();
        assert_eq!(by_pool.iter().filter(|p| p.0 == 0).count(), 2);
        assert_eq!(by_pool.iter().filter(|p| p.0 == 1).count(), 2);
    }

    #[test]
    fn merge_breaks_ties_by_pool_index() {
        let pools = vec![
            PoolSpec::new("a", AvailabilityTrace::constant(1)),
            PoolSpec::new("b", AvailabilityTrace::constant(1)),
        ];
        let mut m = CloudMarket::new(&CloudConfig::default(), &pools, 7);
        // Both grants land at t = 40: pool 0's must pop first.
        m.request_spot_in(SimTime::ZERO, PoolId(1), 1);
        m.request_spot_in(SimTime::ZERO, PoolId(0), 1);
        let (t0, e0) = m.pop_next().unwrap();
        let (t1, e1) = m.pop_next().unwrap();
        assert_eq!(t0, t1);
        assert_eq!(
            PoolId::of_instance(e0.instance().expect("grant")),
            PoolId(0)
        );
        assert_eq!(
            PoolId::of_instance(e1.instance().expect("grant")),
            PoolId(1)
        );
    }

    #[test]
    fn per_pool_streams_interleave_to_the_merged_stream() {
        let pools = vec![
            PoolSpec::new("a", AvailabilityTrace::paper_bs()),
            PoolSpec::new("b", AvailabilityTrace::constant(2)).with_spot_price(1.4),
            PoolSpec::new("c", AvailabilityTrace::constant(1))
                .with_grant_delay(SimDuration::from_secs(80)),
        ];
        let make = || {
            let mut m = CloudMarket::new(&CloudConfig::default(), &pools, 17);
            m.request_spot_in(SimTime::ZERO, PoolId(0), 4);
            m.request_spot_in(SimTime::ZERO, PoolId(1), 2);
            m.request_spot_in(SimTime::ZERO, PoolId(2), 1);
            m.request_on_demand(SimTime::from_secs(10), 1);
            m
        };

        let merged = drain_market(&mut make());

        // Drain each pool's stream independently, then interleave by
        // (time, pool index) — must reproduce the merged order exactly.
        let mut m = make();
        let mut per_pool: Vec<Vec<(SimTime, String)>> = (0..3)
            .map(|p| {
                std::iter::from_fn(|| m.pop_next_in(PoolId(p)))
                    .map(|(t, e)| (t, format!("{e:?}")))
                    .collect()
            })
            .collect();
        let mut interleaved = Vec::new();
        loop {
            let mut best: Option<(SimTime, usize)> = None;
            for (p, evs) in per_pool.iter().enumerate() {
                if let Some(&(t, _)) = evs.first() {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, p));
                    }
                }
            }
            let Some((_, p)) = best else { break };
            interleaved.push(per_pool[p].remove(0));
        }
        assert_eq!(interleaved, merged);
        assert_eq!(m.peek_time_in(PoolId(0)), None, "pool 0 fully drained");
    }

    #[test]
    fn per_pool_price_and_grant_delay_overrides_apply() {
        let pools = vec![
            PoolSpec::new("list-price", AvailabilityTrace::constant(1)),
            PoolSpec::new("cheap-slow", AvailabilityTrace::constant(1))
                .with_spot_price(0.95)
                .with_grant_delay(SimDuration::from_secs(80)),
        ];
        let mut m = CloudMarket::new(&CloudConfig::default(), &pools, 7);
        m.request_spot_in(SimTime::ZERO, PoolId(0), 1);
        m.request_spot_in(SimTime::ZERO, PoolId(1), 1);
        let evs = drain_market(&mut m);
        assert_eq!(evs[0].0, SimTime::from_secs(40), "pool 0 keeps the default");
        assert_eq!(evs[1].0, SimTime::from_secs(80), "pool 1 is slower");
        // Run both leases one hour, then compare pool bills.
        let hour = |t: SimTime| t + SimDuration::from_secs(3600);
        let ids: Vec<InstanceId> = m.fleet().map(|i| i.id).collect();
        for id in ids {
            let granted = m.fleet().find(|i| i.id == id).unwrap().granted_at;
            m.release(hour(granted), id);
        }
        let end = SimTime::from_secs(10_000);
        let bd = m.cost_breakdown(end);
        assert!((bd.pools[0].spot_usd - 1.9).abs() < 1e-9);
        assert!((bd.pools[1].spot_usd - 0.95).abs() < 1e-9);
        assert_eq!(bd.ondemand_usd(), 0.0);
    }

    #[test]
    fn breakdown_splits_spot_from_on_demand() {
        let mut m = CloudMarket::single(CloudConfig::default(), AvailabilityTrace::constant(1), 7);
        let spot = m.prewarm_spot(1);
        let od = m.prewarm_on_demand(1);
        let end = SimTime::from_secs(3600);
        m.release(end, spot[0]);
        m.release(end, od[0]);
        let bd = m.cost_breakdown(end);
        assert!((bd.spot_usd() - 1.9).abs() < 1e-9);
        assert!((bd.ondemand_usd() - 3.9).abs() < 1e-9);
        assert!((bd.total_usd() - m.total_usd(end)).abs() < 1e-9);
    }

    #[test]
    fn per_pool_instance_types_flow_into_billing() {
        // A T4 pool and an L4 pool: each bills at its own SKU's list spot
        // price, and on-demand routed to a pool bills at that pool's SKU.
        let pools = vec![
            PoolSpec::new("t4", AvailabilityTrace::constant(2)),
            PoolSpec::new("l4", AvailabilityTrace::constant(2))
                .with_instance_type(InstanceType::l4()),
        ];
        let mut m = CloudMarket::new(&CloudConfig::default(), &pools, 7);
        assert_eq!(m.instance_type_in(PoolId(0)).name, "g4dn.12xlarge");
        assert_eq!(m.instance_type_in(PoolId(1)).name, "g6.12xlarge");
        m.request_spot_in(SimTime::ZERO, PoolId(0), 1);
        m.request_spot_in(SimTime::ZERO, PoolId(1), 1);
        m.request_on_demand_in(SimTime::ZERO, PoolId(1), 1);
        while m.pop_next().is_some() {}
        let hour = SimDuration::from_secs(3600);
        let ids: Vec<(InstanceId, SimTime)> = m.fleet().map(|i| (i.id, i.granted_at)).collect();
        for (id, granted) in ids {
            m.release(granted + hour, id);
        }
        let bd = m.cost_breakdown(SimTime::from_secs(10_000));
        assert_eq!(bd.pools[0].sku, "g4dn.12xlarge");
        assert_eq!(bd.pools[1].sku, "g6.12xlarge");
        assert!((bd.pools[0].spot_usd - 1.9).abs() < 1e-9);
        assert!((bd.pools[1].spot_usd - 1.8).abs() < 1e-9, "L4 spot price");
        assert!(
            (bd.pools[1].ondemand_usd - 4.6).abs() < 1e-9,
            "on-demand billed at the pool's SKU"
        );
    }

    #[test]
    fn price_override_applies_on_top_of_pool_sku() {
        let pools = vec![PoolSpec::new("cheap-l4", AvailabilityTrace::constant(1))
            .with_instance_type(InstanceType::l4())
            .with_spot_price(0.9)];
        let mut m = CloudMarket::new(&CloudConfig::default(), &pools, 7);
        let ty = m.instance_type_in(PoolId(0));
        assert_eq!(ty.gpu.name, "L4");
        assert_eq!(ty.spot_price_per_hour, 0.9);
        let ids = m.prewarm_spot_in(PoolId(0), 1);
        m.release(SimTime::from_secs(3600), ids[0]);
        let bd = m.cost_breakdown(SimTime::from_secs(3600));
        assert!((bd.pools[0].spot_usd - 0.9).abs() < 1e-9);
    }

    #[test]
    fn priced_pool_path_flows_into_billing_and_price_view() {
        use crate::price::PriceTrace;
        // Pool 1 spikes from $1.9 to $5 at t=1840 (1800 s into the lease);
        // pool 0 stays at list price.
        let pools = vec![
            PoolSpec::new("flat", AvailabilityTrace::constant(1)),
            PoolSpec::new("spiky", AvailabilityTrace::constant(1)).with_price(PriceModel::Trace(
                PriceTrace::from_steps(vec![(SimTime::ZERO, 1.9), (SimTime::from_secs(1840), 5.0)]),
            )),
        ];
        let mut m = CloudMarket::new(&CloudConfig::default(), &pools, 7);
        assert_eq!(m.spot_price_in(PoolId(0), SimTime::from_secs(5000)), 1.9);
        assert_eq!(m.spot_price_in(PoolId(1), SimTime::ZERO), 1.9);
        assert_eq!(m.spot_price_in(PoolId(1), SimTime::from_secs(5000)), 5.0);
        m.request_spot_in(SimTime::ZERO, PoolId(0), 1);
        m.request_spot_in(SimTime::ZERO, PoolId(1), 1);
        while m.pop_next().is_some() {}
        let ids: Vec<InstanceId> = m.fleet().map(|i| i.id).collect();
        for id in ids {
            m.release(SimTime::from_secs(40 + 3600), id);
        }
        let bd = m.cost_breakdown(SimTime::from_secs(10_000));
        assert!((bd.pools[0].spot_usd - 1.9).abs() < 1e-9);
        let want = 1.9 * 0.5 + 5.0 * 0.5;
        assert!(
            (bd.pools[1].spot_usd - want).abs() < 1e-9,
            "the bill integrates the path: {}",
            bd.pools[1].spot_usd
        );
    }

    #[test]
    fn deterministic_multi_pool_replay() {
        let run = || {
            let pools = vec![
                PoolSpec::new("a", AvailabilityTrace::paper_as()),
                PoolSpec::new("b", AvailabilityTrace::paper_bs()),
            ];
            let mut m = CloudMarket::new(&CloudConfig::default(), &pools, 11);
            m.request_spot_in(SimTime::ZERO, PoolId(0), 6);
            m.request_spot_in(SimTime::ZERO, PoolId(1), 6);
            drain_market(&mut m)
        };
        assert_eq!(run(), run());
    }
}
