//! Hierarchical network fabric model.
//!
//! GPUs on the same instance talk over the local bus (PCIe on `g4dn`);
//! GPUs on different instances go over the instance NIC. Both links are
//! characterized by bandwidth plus a fixed per-message latency — exactly the
//! quantities SpotServe's migration planner and the tensor-parallel
//! all-reduce cost term depend on.

use simkit::SimDuration;

/// Point-to-point and collective transfer-time model.
///
/// # Example
///
/// ```
/// use cloudsim::NetFabric;
/// let net = NetFabric::g4dn_default();
/// let local = net.p2p_time(1 << 30, true);
/// let remote = net.p2p_time(1 << 30, false);
/// assert!(local < remote, "intra-instance links are faster");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFabric {
    /// Intra-instance (GPU-to-GPU over PCIe/NVLink) bandwidth, bytes/s.
    pub intra_bw: f64,
    /// Inter-instance (NIC) bandwidth, bytes/s.
    pub inter_bw: f64,
    /// Per-message latency for intra-instance transfers.
    pub intra_latency: SimDuration,
    /// Per-message latency for inter-instance transfers.
    pub inter_latency: SimDuration,
}

impl NetFabric {
    /// Fabric of an AWS `g4dn.12xlarge`: PCIe 3.0 x16 locally (~12 GB/s
    /// effective) and a 50 Gbit/s NIC (~6 GB/s effective) between instances.
    /// Latencies are per ring-step values for persistent NCCL connections.
    pub const fn g4dn_default() -> Self {
        NetFabric {
            intra_bw: 12e9,
            inter_bw: 6e9,
            intra_latency: SimDuration::from_micros(20),
            inter_latency: SimDuration::from_micros(40),
        }
    }

    /// Fabric of NVLink-class A100 instances (`p4d.24xlarge`): NVSwitch
    /// locally (~300 GB/s effective) and 400 Gbit/s EFA (~40 GB/s
    /// effective) between instances.
    pub const fn nvlink_a100() -> Self {
        NetFabric {
            intra_bw: 300e9,
            inter_bw: 40e9,
            intra_latency: SimDuration::from_micros(10),
            inter_latency: SimDuration::from_micros(30),
        }
    }

    /// Fabric of `g6`-class L4 instances: PCIe 4.0 x16 locally (~16 GB/s
    /// effective) and a 40 Gbit/s NIC (~4.5 GB/s effective) between
    /// instances.
    pub const fn pcie_l4() -> Self {
        NetFabric {
            intra_bw: 16e9,
            inter_bw: 4.5e9,
            intra_latency: SimDuration::from_micros(20),
            inter_latency: SimDuration::from_micros(40),
        }
    }

    /// Fabric of NVLink-class H100 instances (`p5.48xlarge`): NVSwitch
    /// locally (~450 GB/s effective) and 3200 Gbit/s EFA (~80 GB/s
    /// effective per link) between instances.
    pub const fn nvlink_h100() -> Self {
        NetFabric {
            intra_bw: 450e9,
            inter_bw: 80e9,
            intra_latency: SimDuration::from_micros(10),
            inter_latency: SimDuration::from_micros(25),
        }
    }

    /// Time to move `bytes` point-to-point.
    ///
    /// `same_instance` selects the local or remote link.
    pub fn p2p_time(&self, bytes: u64, same_instance: bool) -> SimDuration {
        let (bw, lat) = if same_instance {
            (self.intra_bw, self.intra_latency)
        } else {
            (self.inter_bw, self.inter_latency)
        };
        lat + SimDuration::from_secs_f64(bytes as f64 / bw)
    }

    /// Time for a ring all-reduce of `bytes` per participant across `n`
    /// GPUs, `spans_instances` indicating whether the ring crosses the NIC.
    ///
    /// Classic ring cost: `2·(n−1)/n · bytes` traverses the slowest link,
    /// plus `2·(n−1)` hop latencies. Returns zero for `n <= 1`.
    pub fn all_reduce_time(&self, bytes: u64, n: u32, spans_instances: bool) -> SimDuration {
        if n <= 1 {
            return SimDuration::ZERO;
        }
        let (bw, lat) = if spans_instances {
            (self.inter_bw, self.inter_latency)
        } else {
            (self.intra_bw, self.intra_latency)
        };
        let volume = 2.0 * (n as f64 - 1.0) / n as f64 * bytes as f64;
        lat * (2 * (n as u64 - 1)) + SimDuration::from_secs_f64(volume / bw)
    }

    /// Effective bandwidth of the link between two GPUs, bytes/s.
    pub fn link_bandwidth(&self, same_instance: bool) -> f64 {
        if same_instance {
            self.intra_bw
        } else {
            self.inter_bw
        }
    }
}

impl Default for NetFabric {
    fn default() -> Self {
        NetFabric::g4dn_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_scales_with_bytes() {
        let net = NetFabric::g4dn_default();
        let small = net.p2p_time(1 << 20, false);
        let big = net.p2p_time(1 << 30, false);
        assert!(
            big > small * 100,
            "1 GiB should dwarf 1 MiB: {big} vs {small}"
        );
    }

    #[test]
    fn p2p_zero_bytes_is_latency_only() {
        let net = NetFabric::g4dn_default();
        assert_eq!(net.p2p_time(0, true), net.intra_latency);
        assert_eq!(net.p2p_time(0, false), net.inter_latency);
    }

    #[test]
    fn all_reduce_trivial_group() {
        let net = NetFabric::g4dn_default();
        assert_eq!(net.all_reduce_time(1 << 20, 1, false), SimDuration::ZERO);
        assert_eq!(net.all_reduce_time(1 << 20, 0, true), SimDuration::ZERO);
    }

    #[test]
    fn all_reduce_cross_instance_slower() {
        let net = NetFabric::g4dn_default();
        let local = net.all_reduce_time(8 << 20, 4, false);
        let remote = net.all_reduce_time(8 << 20, 4, true);
        assert!(remote > local);
    }

    #[test]
    fn all_reduce_volume_term_grows_sublinearly_in_n() {
        // 2(n-1)/n approaches 2; latency term grows linearly.
        let net = NetFabric::g4dn_default();
        let t2 = net.all_reduce_time(64 << 20, 2, false).as_secs_f64();
        let t8 = net.all_reduce_time(64 << 20, 8, false).as_secs_f64();
        assert!(t8 < t2 * 2.0, "volume term should not double: {t2} vs {t8}");
        assert!(t8 > t2, "more hops still cost more");
    }
}
