//! Deterministic per-pool fault injection: the *impolite* failure modes.
//!
//! The baseline provider only fails politely: every kill is preceded by a
//! full grace-period notice, a spot request that cannot launch vanishes
//! without a signal, and links never run slow. Real spot fleets (SkyServe,
//! §2 of the paper's own fault discussion) see uglier failures, and a
//! robustness claim is only worth what survives them. A [`FaultSpec`]
//! describes four adversarial channels for one pool:
//!
//! | channel | knob | what happens |
//! |---|---|---|
//! | unannounced kill | [`kill_rate_per_hour`](FaultSpec::kill_rate_per_hour) | a live spot lease dies with **zero grace** ([`CloudEvent::InstanceFailed`](crate::CloudEvent::InstanceFailed)); context on it is lost |
//! | lost notice | [`notice_loss`](FaultSpec::notice_loss) | a capacity/price preemption skips its notice — the kill fires immediately |
//! | truncated notice | [`notice_truncation`](FaultSpec::notice_truncation) | the notice arrives, but with a uniformly truncated grace budget |
//! | lapsed grant | [`grant_lapse`](FaultSpec::grant_lapse) | a scheduled spot grant never produces an instance ([`CloudEvent::RequestLapsed`](crate::CloudEvent::RequestLapsed)) |
//! | degraded link | [`degraded`](FaultSpec::degraded) | a scripted window scales the pool's effective transfer bandwidth by a factor ≤ 1 |
//!
//! Determinism contract, mirrored from [`PriceModel`](crate::PriceModel)
//! paths: the unannounced-kill schedule is **pre-drawn at construction**
//! from a dedicated named stream (`"faults"` for pool 0,
//! `"faults/pool{i}"` otherwise), so it is a pure function of the scenario
//! seed. Fire-time draws (victim choice, notice fate, lapse coin flips)
//! come from a separate `"…/fire"` stream and are consumed in event order
//! — deterministic because each pool processes its own events in a single
//! total order regardless of worker-thread count. A pool without a
//! [`FaultSpec`] builds no plan and draws *nothing*: faults-off replays
//! are byte-identical to a build without this module.

use simkit::{SimDuration, SimRng, SimTime};

use crate::instance::InstanceId;
use crate::pool::PoolId;

/// One scripted degraded-link window: between [`from`](DegradedLink::from)
/// and [`until`](DegradedLink::until), the pool's effective transfer
/// bandwidth is multiplied by [`factor`](DegradedLink::factor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedLink {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Bandwidth multiplier in `(0, 1]`: `0.25` means transfers run at a
    /// quarter of nominal speed.
    pub factor: f64,
}

/// Chaos knobs for one pool. All channels default to off; a spec with
/// every knob at zero injects nothing (but still allocates its streams, so
/// prefer `None` on [`PoolSpec::faults`](crate::PoolSpec::faults) for a
/// truly quiet pool).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Expected unannounced kills per hour. Attempts are pre-drawn on the
    /// [`step`](FaultSpec::step) grid over [`horizon`](FaultSpec::horizon)
    /// (Bernoulli per step, `p = rate · dt`, clamped to 1); an attempt
    /// with no live spot victim is a no-op.
    pub kill_rate_per_hour: f64,
    /// Probability that a preemption's notice is lost outright: the kill
    /// fires at notice time with zero grace, surfacing as
    /// [`CloudEvent::InstanceFailed`](crate::CloudEvent::InstanceFailed).
    pub notice_loss: f64,
    /// Probability (evaluated after the loss draw misses) that a notice's
    /// grace period is truncated to a uniform fraction of the configured
    /// one — the notice arrives *late*.
    pub notice_truncation: f64,
    /// Probability that a scheduled spot grant lapses: no instance
    /// appears, and the provider emits
    /// [`CloudEvent::RequestLapsed`](crate::CloudEvent::RequestLapsed)
    /// at what would have been grant time.
    pub grant_lapse: f64,
    /// Scripted degraded-link windows (deterministic by construction).
    pub degraded: Vec<DegradedLink>,
    /// Grid step for pre-drawing unannounced-kill attempts.
    pub step: SimDuration,
    /// Horizon for pre-drawing unannounced-kill attempts.
    pub horizon: SimDuration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            kill_rate_per_hour: 0.0,
            notice_loss: 0.0,
            notice_truncation: 0.0,
            grant_lapse: 0.0,
            degraded: Vec::new(),
            step: SimDuration::from_secs(60),
            horizon: SimDuration::from_secs(24 * 3600),
        }
    }
}

impl FaultSpec {
    /// A spec with every channel off (identical to `Default`).
    pub fn calm() -> Self {
        FaultSpec::default()
    }

    /// The standard chaos pack at `intensity` in `[0, 1]`: every channel
    /// scaled together. Intensity 1 means ~6 unannounced kills per hour,
    /// 40% of notices lost, another 30% truncated, 25% of grants lapsing,
    /// and a half-speed link window over t = 200 s – 500 s (squarely across
    /// the usual collapse/migration window of the scripted scenarios).
    /// This is the pack `fig_chaos` sweeps and the CI gate pins.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not in `[0, 1]`.
    pub fn pack(intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "chaos intensity must be in [0, 1], got {intensity}"
        );
        FaultSpec {
            kill_rate_per_hour: 6.0 * intensity,
            notice_loss: 0.4 * intensity,
            notice_truncation: 0.3 * intensity,
            grant_lapse: 0.25 * intensity,
            degraded: if intensity > 0.0 {
                vec![DegradedLink {
                    from: SimTime::from_secs(200),
                    until: SimTime::from_secs(500),
                    factor: 1.0 - 0.5 * intensity,
                }]
            } else {
                Vec::new()
            },
            ..FaultSpec::default()
        }
    }

    /// Sets the unannounced-kill rate (expected kills per hour).
    pub fn with_kill_rate(mut self, per_hour: f64) -> Self {
        self.kill_rate_per_hour = per_hour;
        self
    }

    /// Sets the lost-notice probability.
    pub fn with_notice_loss(mut self, p: f64) -> Self {
        self.notice_loss = p;
        self
    }

    /// Sets the truncated-notice probability.
    pub fn with_notice_truncation(mut self, p: f64) -> Self {
        self.notice_truncation = p;
        self
    }

    /// Sets the lapsed-grant probability.
    pub fn with_grant_lapse(mut self, p: f64) -> Self {
        self.grant_lapse = p;
        self
    }

    /// Adds one degraded-link window.
    pub fn with_degraded_link(mut self, from: SimTime, until: SimTime, factor: f64) -> Self {
        self.degraded.push(DegradedLink {
            from,
            until,
            factor,
        });
        self
    }

    /// Validates every knob; called once when a plan is drawn.
    ///
    /// # Panics
    ///
    /// Panics on a probability outside `[0, 1]`, a negative or non-finite
    /// kill rate, a zero draw step, or a malformed degraded window
    /// (`from >= until` or factor outside `(0, 1]`).
    pub fn validate(&self) {
        for (name, p) in [
            ("notice_loss", self.notice_loss),
            ("notice_truncation", self.notice_truncation),
            ("grant_lapse", self.grant_lapse),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability in [0, 1], got {p}"
            );
        }
        assert!(
            self.kill_rate_per_hour.is_finite() && self.kill_rate_per_hour >= 0.0,
            "kill rate must be finite and non-negative"
        );
        assert!(self.step > SimDuration::ZERO, "fault draw step must be > 0");
        for w in &self.degraded {
            assert!(w.from < w.until, "degraded window must have from < until");
            assert!(
                w.factor > 0.0 && w.factor <= 1.0,
                "bandwidth factor must be in (0, 1], got {}",
                w.factor
            );
        }
    }

    /// The effective bandwidth multiplier at `t`: the smallest factor of
    /// any window containing `t`, or `1.0` outside every window. Pure
    /// lookup — never depends on event progress.
    pub fn bandwidth_factor_at(&self, t: SimTime) -> f64 {
        self.degraded
            .iter()
            .filter(|w| w.from <= t && t < w.until)
            .map(|w| w.factor)
            .fold(1.0, f64::min)
    }

    /// Whether any channel can actually fire.
    pub fn is_active(&self) -> bool {
        self.kill_rate_per_hour > 0.0
            || self.notice_loss > 0.0
            || self.notice_truncation > 0.0
            || self.grant_lapse > 0.0
            || !self.degraded.is_empty()
    }
}

/// What the plan decides about one preemption notice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum NoticeFate {
    /// The notice is delivered with its full grace period.
    Delivered,
    /// The notice is delivered late: only this much grace survives.
    Truncated(SimDuration),
    /// The notice never arrives — the kill fires immediately.
    Lost,
}

/// One pool's materialized fault schedule plus its fire-time stream. Built
/// once at provider construction; see the module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub(crate) struct FaultPlan {
    spec: FaultSpec,
    /// Pre-drawn unannounced-kill attempt instants, strictly increasing.
    kill_times: Vec<SimTime>,
    /// Fire-time draws: victim choice, notice fate, lapse coin flips.
    rng: SimRng,
}

impl FaultPlan {
    /// Draws the plan for `pool` from the scenario `seed`.
    pub(crate) fn draw(spec: &FaultSpec, seed: u64, pool: PoolId) -> Self {
        spec.validate();
        let label = if pool.0 == 0 {
            "faults".to_string()
        } else {
            format!("faults/pool{}", pool.0)
        };
        let mut sched = SimRng::new(seed).stream(&label);
        let mut kill_times = Vec::new();
        if spec.kill_rate_per_hour > 0.0 {
            let p = (spec.kill_rate_per_hour * spec.step.as_secs_f64() / 3600.0).min(1.0);
            let mut t = SimTime::ZERO + spec.step;
            while t.saturating_since(SimTime::ZERO) <= spec.horizon {
                if sched.chance(p) {
                    kill_times.push(t);
                }
                t += spec.step;
            }
        }
        let rng = SimRng::new(seed).stream(&format!("{label}/fire"));
        FaultPlan {
            spec: spec.clone(),
            kill_times,
            rng,
        }
    }

    /// The pre-drawn unannounced-kill attempt instants.
    pub(crate) fn kill_times(&self) -> &[SimTime] {
        &self.kill_times
    }

    /// Picks the victim of an unannounced kill from `candidates` (sorted
    /// by the caller). `None` when the pool holds no live spot lease — the
    /// attempt is a no-op and consumes no draw.
    pub(crate) fn pick_victim(&mut self, candidates: &[InstanceId]) -> Option<InstanceId> {
        self.rng.choose(candidates).copied()
    }

    /// Decides one notice's fate. Draws nothing when both notice channels
    /// are off, so a plan used only for kills or lapses leaves the polite
    /// preemption path untouched draw-for-draw.
    pub(crate) fn notice_fate(&mut self, grace: SimDuration) -> NoticeFate {
        if self.spec.notice_loss == 0.0 && self.spec.notice_truncation == 0.0 {
            return NoticeFate::Delivered;
        }
        if self.spec.notice_loss > 0.0 && self.rng.chance(self.spec.notice_loss) {
            return NoticeFate::Lost;
        }
        if self.spec.notice_truncation > 0.0 && self.rng.chance(self.spec.notice_truncation) {
            let frac = self.rng.f64();
            return NoticeFate::Truncated(SimDuration::from_secs_f64(grace.as_secs_f64() * frac));
        }
        NoticeFate::Delivered
    }

    /// Decides whether one scheduled spot grant lapses. Draws nothing when
    /// the channel is off.
    pub(crate) fn grant_lapses(&mut self) -> bool {
        self.spec.grant_lapse > 0.0 && self.rng.chance(self.spec.grant_lapse)
    }

    /// See [`FaultSpec::bandwidth_factor_at`].
    pub(crate) fn bandwidth_factor_at(&self, t: SimTime) -> f64 {
        self.spec.bandwidth_factor_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_spec_is_inert() {
        let spec = FaultSpec::calm();
        assert!(!spec.is_active());
        assert_eq!(spec.bandwidth_factor_at(SimTime::from_secs(300)), 1.0);
        let plan = FaultPlan::draw(&spec, 7, PoolId(0));
        assert!(plan.kill_times().is_empty(), "no rate, no kills");
    }

    #[test]
    fn kill_schedule_is_a_pure_function_of_the_seed() {
        let spec = FaultSpec::calm().with_kill_rate(8.0);
        let a = FaultPlan::draw(&spec, 42, PoolId(1));
        let b = FaultPlan::draw(&spec, 42, PoolId(1));
        assert_eq!(a.kill_times(), b.kill_times());
        assert!(!a.kill_times().is_empty(), "8/h over 24h must draw kills");
        let other_pool = FaultPlan::draw(&spec, 42, PoolId(2));
        assert_ne!(
            a.kill_times(),
            other_pool.kill_times(),
            "pools draw from independent streams"
        );
    }

    #[test]
    fn kill_times_are_strictly_increasing_on_the_grid() {
        let spec = FaultSpec::calm().with_kill_rate(30.0);
        let plan = FaultPlan::draw(&spec, 3, PoolId(0));
        for w in plan.kill_times().windows(2) {
            assert!(w[0] < w[1]);
        }
        let step = spec.step;
        for &t in plan.kill_times() {
            let micros = t.saturating_since(SimTime::ZERO).as_micros();
            assert_eq!(micros % step.as_micros(), 0, "kills land on the grid");
        }
    }

    #[test]
    fn notice_fate_draws_nothing_when_channels_are_off() {
        let spec = FaultSpec::calm().with_grant_lapse(1.0);
        let mut a = FaultPlan::draw(&spec, 9, PoolId(0));
        let mut b = FaultPlan::draw(&spec, 9, PoolId(0));
        // Fates on `a`, none on `b`: the lapse draws must stay aligned.
        for _ in 0..5 {
            assert_eq!(
                a.notice_fate(SimDuration::from_secs(30)),
                NoticeFate::Delivered
            );
        }
        for _ in 0..8 {
            assert_eq!(a.grant_lapses(), b.grant_lapses());
        }
    }

    #[test]
    fn lost_notices_dominate_truncation() {
        let spec = FaultSpec::calm()
            .with_notice_loss(1.0)
            .with_notice_truncation(1.0);
        let mut plan = FaultPlan::draw(&spec, 1, PoolId(0));
        for _ in 0..4 {
            assert_eq!(
                plan.notice_fate(SimDuration::from_secs(30)),
                NoticeFate::Lost
            );
        }
    }

    #[test]
    fn truncated_notices_keep_a_sub_grace_budget() {
        let spec = FaultSpec::calm().with_notice_truncation(1.0);
        let mut plan = FaultPlan::draw(&spec, 5, PoolId(0));
        let grace = SimDuration::from_secs(30);
        for _ in 0..16 {
            match plan.notice_fate(grace) {
                NoticeFate::Truncated(left) => assert!(left < grace),
                other => panic!("p=1 truncation must truncate, got {other:?}"),
            }
        }
    }

    #[test]
    fn degraded_windows_compose_by_min() {
        let spec = FaultSpec::calm()
            .with_degraded_link(SimTime::from_secs(100), SimTime::from_secs(400), 0.5)
            .with_degraded_link(SimTime::from_secs(200), SimTime::from_secs(300), 0.25);
        assert_eq!(spec.bandwidth_factor_at(SimTime::from_secs(50)), 1.0);
        assert_eq!(spec.bandwidth_factor_at(SimTime::from_secs(150)), 0.5);
        assert_eq!(spec.bandwidth_factor_at(SimTime::from_secs(250)), 0.25);
        assert_eq!(spec.bandwidth_factor_at(SimTime::from_secs(400)), 1.0);
    }

    #[test]
    fn pack_scales_every_channel_together() {
        let off = FaultSpec::pack(0.0);
        assert!(!off.is_active());
        let half = FaultSpec::pack(0.5);
        let full = FaultSpec::pack(1.0);
        assert!(half.kill_rate_per_hour < full.kill_rate_per_hour);
        assert!(half.notice_loss < full.notice_loss);
        assert!(half.grant_lapse < full.grant_lapse);
        assert!(
            full.degraded[0].factor < half.degraded[0].factor,
            "stronger chaos, slower links"
        );
        full.validate();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_fails_fast() {
        FaultSpec::calm().with_notice_loss(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn zero_bandwidth_factor_fails_fast() {
        FaultSpec::calm()
            .with_degraded_link(SimTime::ZERO, SimTime::from_secs(1), 0.0)
            .validate();
    }
}
