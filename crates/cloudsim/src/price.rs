//! Deterministic per-pool spot-price processes.
//!
//! Availability traces move *capacity*; a [`PriceModel`] moves the spot
//! *price* of a pool over simulated time. Real spot markets do both at
//! once, and they co-move: when a pool gets expensive it is because
//! capacity is scarce, which is exactly when preemptions cluster. The
//! [`Ou`](PriceModel::Ou) variant models this with an Ornstein–Uhlenbeck
//! mean-reverting process (volatility + reversion toward a daily-periodic
//! baseline) whose preemption probability rises with the price excursion.
//!
//! Every model is deterministic: the OU path is drawn once, up front, from
//! a dedicated named [`simkit::SimRng`] stream (`"price"` for pool 0,
//! `"price/pool{i}"` otherwise), so it is a pure function of the scenario
//! seed — independent of command order, event interleaving, and every
//! other random stream. Billing integrates the resulting step function
//! exactly (see [`BillingMeter`](crate::BillingMeter)); a
//! [`Constant`](PriceModel::Constant) model compiles down to the legacy
//! fixed-price arithmetic bit-for-bit.
//!
//! # Example
//!
//! ```
//! use cloudsim::{OuParams, PriceModel};
//! use simkit::{SimRng, SimTime};
//!
//! let model = PriceModel::Ou(OuParams::around(1.9));
//! let mut rng = SimRng::new(42).stream("price");
//! let path = model.path(1.9, &mut rng);
//! assert_eq!(path[0].0, SimTime::ZERO);
//! assert!(path.iter().all(|&(_, p)| p > 0.0));
//! ```

use simkit::{SimDuration, SimRng, SimTime};

/// A validated spot-price step function: `(time, usd_per_hour)` pairs.
///
/// # Example
///
/// ```
/// use cloudsim::PriceTrace;
/// use simkit::SimTime;
///
/// let tr = PriceTrace::from_steps(vec![
///     (SimTime::ZERO, 1.9),
///     (SimTime::from_secs(300), 5.0),
///     (SimTime::from_secs(600), 1.9),
/// ]);
/// assert_eq!(tr.price_at(SimTime::from_secs(450)), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTrace {
    /// `(time, price)` steps; strictly increasing in time, first at t=0.
    steps: Vec<(SimTime, f64)>,
}

impl PriceTrace {
    /// Builds a price trace from `(time, usd_per_hour)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, does not start at `t = 0`, is not
    /// strictly increasing in time, or names a non-finite / non-positive
    /// price.
    pub fn from_steps(steps: Vec<(SimTime, f64)>) -> Self {
        assert!(!steps.is_empty(), "price trace must have at least one step");
        assert_eq!(steps[0].0, SimTime::ZERO, "price trace must start at t=0");
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "price steps must be strictly increasing");
        }
        for &(_, p) in &steps {
            assert!(p.is_finite() && p > 0.0, "prices must be finite and > 0");
        }
        PriceTrace { steps }
    }

    /// Price at time `t` (constant after the last step).
    pub fn price_at(&self, t: SimTime) -> f64 {
        price_at(&self.steps, t).expect("trace is non-empty and starts at t=0")
    }

    /// The raw `(time, price)` steps.
    pub fn steps(&self) -> &[(SimTime, f64)] {
        &self.steps
    }
}

/// Looks up a step-function price at `t`; `None` before the first step or
/// on an empty path.
pub(crate) fn price_at(steps: &[(SimTime, f64)], t: SimTime) -> Option<f64> {
    match steps.binary_search_by_key(&t, |&(st, _)| st) {
        Ok(i) => Some(steps[i].1),
        Err(0) => None,
        Err(i) => Some(steps[i - 1].1),
    }
}

/// Parameters of the Ornstein–Uhlenbeck spot-price process.
///
/// Discretized Euler–Maruyama at [`step`](OuParams::step) granularity:
///
/// `x += reversion_per_hour · (baseline(t) − x) · dt + volatility · √dt · N(0,1)`
///
/// where `baseline(t) = mean · (1 + daily_amplitude · sin(2πt / 24h))` —
/// the business-hours cycle — and the result is clamped to
/// [`floor`](OuParams::floor). The path stops stepping after
/// [`horizon`](OuParams::horizon) and holds its last value.
#[derive(Debug, Clone, PartialEq)]
pub struct OuParams {
    /// Long-run mean spot price, USD per instance-hour.
    pub mean: f64,
    /// Mean-reversion rate θ, per hour.
    pub reversion_per_hour: f64,
    /// Volatility σ, USD per instance-hour per √hour.
    pub volatility: f64,
    /// Relative amplitude of the daily (24 h) baseline cycle.
    pub daily_amplitude: f64,
    /// Discretization step of the price path.
    pub step: SimDuration,
    /// Path length; the price holds its last value afterwards.
    pub horizon: SimDuration,
    /// Price floor, USD per instance-hour.
    pub floor: f64,
    /// Price–preemption coupling: at each step the per-step probability
    /// of one extra preemption is `kill_coupling · max(0, price/mean − 1)`
    /// (clamped to 1). Zero decouples preemptions from price entirely.
    pub kill_coupling: f64,
}

impl OuParams {
    /// Sensible defaults around a mean price: moderate reversion (2/h),
    /// ~10%-of-mean volatility per √hour, a 15% daily swing, one-minute
    /// steps over a 24 h horizon, and preemption risk coupled to spikes.
    pub fn around(mean: f64) -> Self {
        OuParams {
            mean,
            reversion_per_hour: 2.0,
            volatility: mean * 0.1,
            daily_amplitude: 0.15,
            step: SimDuration::from_secs(60),
            horizon: SimDuration::from_secs(24 * 3600),
            floor: mean * 0.25,
            kill_coupling: 0.2,
        }
    }
}

/// How a pool's spot price evolves over simulated time.
///
/// Set per pool via [`PoolSpec::with_price`](crate::PoolSpec::with_price).
/// [`Constant`](PriceModel::Constant) takes the legacy fixed-price billing
/// path bit-for-bit; the dynamic variants pre-draw a step-function path
/// that billing integrates exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum PriceModel {
    /// Fixed price forever — the pre-dynamics behaviour,
    /// byte-identical to `PoolSpec::with_spot_price`.
    Constant(f64),
    /// A scripted price path (e.g. a reproducible price spike).
    Trace(PriceTrace),
    /// Ornstein–Uhlenbeck dynamics with daily periodicity and
    /// price-correlated preemption probability.
    Ou(OuParams),
}

impl PriceModel {
    /// The fixed price, if this model is static.
    pub fn constant_price(&self) -> Option<f64> {
        match self {
            PriceModel::Constant(p) => Some(*p),
            _ => None,
        }
    }

    /// Whether the price actually moves (and hence needs a path).
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, PriceModel::Constant(_))
    }

    /// Materializes the price path as `(time, usd_per_hour)` steps.
    ///
    /// `base` is the pool's list price (the OU start value); `rng` must be
    /// this pool's dedicated price stream. Constant models return a single
    /// step and draw nothing.
    pub fn path(&self, base: f64, rng: &mut SimRng) -> Vec<(SimTime, f64)> {
        match self {
            PriceModel::Constant(p) => vec![(SimTime::ZERO, *p)],
            PriceModel::Trace(tr) => tr.steps().to_vec(),
            PriceModel::Ou(ou) => {
                assert!(ou.step > SimDuration::ZERO, "OU step must be positive");
                let dt = ou.step.as_secs_f64() / 3600.0;
                let sqrt_dt = dt.sqrt();
                let mut x = base.max(ou.floor);
                let mut steps = vec![(SimTime::ZERO, x)];
                let mut t = SimTime::ZERO;
                loop {
                    t += ou.step;
                    let elapsed = t.saturating_since(SimTime::ZERO);
                    if elapsed >= ou.horizon {
                        break;
                    }
                    let hours = elapsed.as_secs_f64() / 3600.0;
                    let baseline = ou.mean
                        * (1.0
                            + ou.daily_amplitude
                                * (2.0 * std::f64::consts::PI * hours / 24.0).sin());
                    x += ou.reversion_per_hour * (baseline - x) * dt
                        + ou.volatility * sqrt_dt * rng.normal();
                    x = x.max(ou.floor);
                    steps.push((t, x));
                }
                steps
            }
        }
    }

    /// Per-step probability that the current price triggers one extra
    /// preemption (the price–preemption coupling; zero for models without
    /// one).
    pub fn kill_probability(&self, price: f64) -> f64 {
        match self {
            PriceModel::Ou(ou) if ou.kill_coupling > 0.0 && ou.mean > 0.0 => {
                (ou.kill_coupling * (price / ou.mean - 1.0).max(0.0)).min(1.0)
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_is_static() {
        let m = PriceModel::Constant(1.4);
        assert!(!m.is_dynamic());
        assert_eq!(m.constant_price(), Some(1.4));
        assert_eq!(m.kill_probability(99.0), 0.0);
        let mut rng = SimRng::new(1).stream("price");
        assert_eq!(m.path(1.9, &mut rng), vec![(SimTime::ZERO, 1.4)]);
    }

    #[test]
    fn trace_lookup_between_steps() {
        let tr = PriceTrace::from_steps(vec![
            (SimTime::ZERO, 1.9),
            (SimTime::from_secs(100), 6.0),
            (SimTime::from_secs(200), 2.0),
        ]);
        assert_eq!(tr.price_at(SimTime::ZERO), 1.9);
        assert_eq!(tr.price_at(SimTime::from_secs(99)), 1.9);
        assert_eq!(tr.price_at(SimTime::from_secs(100)), 6.0);
        assert_eq!(tr.price_at(SimTime::from_secs(10_000)), 2.0);
    }

    #[test]
    #[should_panic(expected = "start at t=0")]
    fn trace_must_start_at_zero() {
        PriceTrace::from_steps(vec![(SimTime::from_secs(1), 2.0)]);
    }

    #[test]
    #[should_panic(expected = "finite and > 0")]
    fn trace_rejects_free_gpus() {
        PriceTrace::from_steps(vec![(SimTime::ZERO, 0.0)]);
    }

    #[test]
    fn ou_path_is_deterministic_and_floored() {
        let m = PriceModel::Ou(OuParams {
            horizon: SimDuration::from_secs(3600),
            ..OuParams::around(1.9)
        });
        let draw = || m.path(1.9, &mut SimRng::new(7).stream("price"));
        let p1 = draw();
        assert_eq!(p1, draw(), "same seed, same path");
        assert_eq!(p1.len(), 60, "one step per minute over one hour");
        assert!(p1.iter().all(|&(_, p)| p >= 1.9 * 0.25));
    }

    #[test]
    fn ou_reverts_toward_the_mean() {
        // Start far above the mean: strong reversion pulls the tail of the
        // path well below the start even with volatility on.
        let m = PriceModel::Ou(OuParams {
            reversion_per_hour: 8.0,
            horizon: SimDuration::from_secs(4 * 3600),
            ..OuParams::around(2.0)
        });
        let path = m.path(10.0, &mut SimRng::new(3).stream("price"));
        let tail_avg: f64 = path[path.len() - 30..].iter().map(|&(_, p)| p).sum::<f64>() / 30.0;
        assert!(tail_avg < 4.0, "tail average {tail_avg} should revert");
    }

    #[test]
    fn kill_probability_rises_with_price() {
        let m = PriceModel::Ou(OuParams::around(2.0));
        assert_eq!(m.kill_probability(1.0), 0.0, "below mean: no coupling");
        assert_eq!(m.kill_probability(2.0), 0.0, "at mean: no coupling");
        let p_high = m.kill_probability(4.0);
        let p_higher = m.kill_probability(6.0);
        assert!(p_high > 0.0);
        assert!(p_higher > p_high);
        assert!(m.kill_probability(1e9) <= 1.0);
    }
}
