//! Events the cloud delivers to the serving system.

use simkit::SimTime;

use crate::instance::InstanceId;

/// Notifications produced by [`CloudSim`](crate::CloudSim).
///
/// The event kinds mirror the real cloud APIs the paper builds on: grants
/// for earlier capacity requests, ahead-of-time preemption *notices*
/// (the grace-period mechanism, §3.2), and the final forced termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudEvent {
    /// A previously requested spot instance is now leased to us.
    SpotGranted {
        /// The newly leased instance.
        id: InstanceId,
    },
    /// A previously requested on-demand instance is now leased to us.
    OnDemandGranted {
        /// The newly leased instance.
        id: InstanceId,
    },
    /// The cloud will reclaim `id` at `kill_at` (grace period runs now).
    PreemptionNotice {
        /// The instance being reclaimed.
        id: InstanceId,
        /// When the instance will be forcibly terminated.
        kill_at: SimTime,
    },
    /// The grace period elapsed and the instance is gone.
    Preempted {
        /// The terminated instance.
        id: InstanceId,
    },
}

impl CloudEvent {
    /// The instance this event concerns.
    pub fn instance(&self) -> InstanceId {
        match *self {
            CloudEvent::SpotGranted { id }
            | CloudEvent::OnDemandGranted { id }
            | CloudEvent::PreemptionNotice { id, .. }
            | CloudEvent::Preempted { id } => id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_accessor_covers_all_variants() {
        let id = InstanceId(4);
        let evs = [
            CloudEvent::SpotGranted { id },
            CloudEvent::OnDemandGranted { id },
            CloudEvent::PreemptionNotice {
                id,
                kill_at: SimTime::from_secs(30),
            },
            CloudEvent::Preempted { id },
        ];
        assert!(evs.iter().all(|e| e.instance() == id));
    }
}
