//! Events the cloud delivers to the serving system.

use simkit::SimTime;

use crate::instance::{InstanceId, InstanceKind};
use crate::pool::PoolId;

/// Notifications produced by [`CloudSim`](crate::CloudSim).
///
/// The event kinds mirror the real cloud APIs the paper builds on: grants
/// for earlier capacity requests, ahead-of-time preemption *notices*
/// (the grace-period mechanism, §3.2), the final forced termination, and
/// spot-market re-quotes (the price feed a cost-aware controller trades
/// against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudEvent {
    /// A previously requested spot instance is now leased to us.
    SpotGranted {
        /// The newly leased instance.
        id: InstanceId,
    },
    /// A previously requested on-demand instance is now leased to us.
    OnDemandGranted {
        /// The newly leased instance.
        id: InstanceId,
    },
    /// The cloud will reclaim `id` at `kill_at` (grace period runs now).
    PreemptionNotice {
        /// The instance being reclaimed.
        id: InstanceId,
        /// When the instance will be forcibly terminated.
        kill_at: SimTime,
    },
    /// The grace period elapsed and the instance is gone.
    Preempted {
        /// The terminated instance.
        id: InstanceId,
    },
    /// The pool's spot market re-quoted: a new price is in force from
    /// now on. Constant-priced pools never emit this; a dynamic
    /// [`PriceModel`](crate::PriceModel) emits one per path step, so a
    /// price-aware controller gets a steering point at every re-quote.
    SpotPriceStep {
        /// The pool whose market re-priced.
        pool: PoolId,
        /// The new spot price, in cents per instance-hour (the same
        /// integer quote a controller's pool capability card carries).
        cents_per_hour: u32,
    },
    /// The instance died **without a notice**: an unannounced kill (or a
    /// preemption whose notice was lost). There was no grace period — any
    /// context held only on this instance is gone.
    InstanceFailed {
        /// The dead instance.
        id: InstanceId,
    },
    /// A previously scheduled grant will never fire: the launch failed
    /// (capacity shed an in-flight request) or the grant lapsed under
    /// fault injection. The capacity the controller was counting on is
    /// *not* coming — it must re-request or escalate.
    RequestLapsed {
        /// The pool whose request was lost.
        pool: PoolId,
        /// The billing kind of the lost request.
        kind: InstanceKind,
    },
}

impl CloudEvent {
    /// The instance this event concerns, if any ([`SpotPriceStep`] and
    /// [`RequestLapsed`] events concern a whole pool, not one lease).
    ///
    /// [`SpotPriceStep`]: CloudEvent::SpotPriceStep
    /// [`RequestLapsed`]: CloudEvent::RequestLapsed
    pub fn instance(&self) -> Option<InstanceId> {
        match *self {
            CloudEvent::SpotGranted { id }
            | CloudEvent::OnDemandGranted { id }
            | CloudEvent::PreemptionNotice { id, .. }
            | CloudEvent::Preempted { id }
            | CloudEvent::InstanceFailed { id } => Some(id),
            CloudEvent::SpotPriceStep { .. } | CloudEvent::RequestLapsed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_accessor_covers_all_variants() {
        let id = InstanceId(4);
        let evs = [
            CloudEvent::SpotGranted { id },
            CloudEvent::OnDemandGranted { id },
            CloudEvent::PreemptionNotice {
                id,
                kill_at: SimTime::from_secs(30),
            },
            CloudEvent::Preempted { id },
            CloudEvent::InstanceFailed { id },
        ];
        assert!(evs.iter().all(|e| e.instance() == Some(id)));
        let quote = CloudEvent::SpotPriceStep {
            pool: PoolId(2),
            cents_per_hour: 630,
        };
        assert_eq!(quote.instance(), None, "a re-quote names no lease");
        let lapse = CloudEvent::RequestLapsed {
            pool: PoolId(1),
            kind: InstanceKind::Spot,
        };
        assert_eq!(lapse.instance(), None, "a lapse never got a lease");
    }
}
