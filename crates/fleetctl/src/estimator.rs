//! Per-pool preemption-rate estimation.
//!
//! The hedge policy needs to know how *churny* each pool is: a pool that
//! killed three instances in the last few minutes deserves a bigger
//! hedge than one that has been quiet for an hour. The estimator keeps a
//! windowed EWMA over observed kills per pool: each kill contributes
//! weight `exp(-(now - t_kill) / window)`, so the decayed kill count is an
//! exponentially weighted count over roughly one window, and the rate is
//! that count divided by the window.

use simkit::{SimDuration, SimTime};

/// Windowed EWMA of observed kills per pool.
///
/// # Example
///
/// ```
/// use fleetctl::PreemptionEstimator;
/// use simkit::{SimDuration, SimTime};
///
/// let mut est = PreemptionEstimator::new(2, SimDuration::from_secs(300));
/// est.record_kill(0, SimTime::from_secs(100));
/// assert!(est.rate(0, SimTime::from_secs(100)) > 0.0);
/// assert_eq!(est.rate(1, SimTime::from_secs(100)), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PreemptionEstimator {
    window: SimDuration,
    /// Per pool: decayed kill count and the instant it was last decayed to.
    pools: Vec<(f64, SimTime)>,
}

impl PreemptionEstimator {
    /// An estimator over `n_pools` pools with the given decay window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(n_pools: usize, window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "a zero window cannot decay");
        PreemptionEstimator {
            window,
            pools: vec![(0.0, SimTime::ZERO); n_pools],
        }
    }

    /// The configured decay window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn decayed(&self, pool: usize, now: SimTime) -> f64 {
        let (count, at) = self.pools[pool];
        let dt = now.saturating_since(at).as_secs_f64();
        count * (-dt / self.window.as_secs_f64()).exp()
    }

    /// Records one observed kill in `pool` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is out of range.
    pub fn record_kill(&mut self, pool: usize, now: SimTime) {
        self.record_pressure(pool, 1.0, now);
    }

    /// Records a fractional, *anticipatory* kill signal: `weight` kills'
    /// worth of pressure in `pool` at `now`. Price-aware policies feed
    /// spot-price spikes through this — on clouds where preemption
    /// probability correlates with price, a spike predicts kills before
    /// any notice arrives, and the hedge should widen ahead of them.
    /// Pressure decays exactly like observed kills.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is out of range or `weight` is negative or
    /// non-finite.
    pub fn record_pressure(&mut self, pool: usize, weight: f64, now: SimTime) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "pressure weight must be finite and non-negative, got {weight}"
        );
        let fresh = self.decayed(pool, now) + weight;
        self.pools[pool] = (fresh, now);
    }

    /// Estimated kill rate of `pool` in kills per second (the decayed
    /// windowed count divided by the window).
    pub fn rate(&self, pool: usize, now: SimTime) -> f64 {
        self.decayed(pool, now) / self.window.as_secs_f64()
    }

    /// Estimated kill rate summed over every pool.
    pub fn total_rate(&self, now: SimTime) -> f64 {
        (0..self.pools.len()).map(|p| self.rate(p, now)).sum()
    }

    /// Expected kills across the fleet over the next `horizon` — the
    /// exposure window the hedge must cover (typically the grant delay:
    /// instances that die before a replacement can possibly arrive).
    pub fn expected_kills(&self, now: SimTime, horizon: SimDuration) -> f64 {
        self.total_rate(now) * horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn kills_decay_over_the_window() {
        let mut est = PreemptionEstimator::new(1, SimDuration::from_secs(100));
        est.record_kill(0, t(0));
        let fresh = est.rate(0, t(0));
        let later = est.rate(0, t(100));
        let much_later = est.rate(0, t(1000));
        assert!(fresh > later && later > much_later);
        assert!(
            (later / fresh - (-1.0f64).exp()).abs() < 1e-12,
            "one window = e^-1"
        );
        assert!(much_later < fresh * 1e-4);
    }

    #[test]
    fn repeated_kills_accumulate() {
        let mut est = PreemptionEstimator::new(1, SimDuration::from_secs(100));
        for k in 0..5 {
            est.record_kill(0, t(k * 10));
        }
        let single = {
            let mut e = PreemptionEstimator::new(1, SimDuration::from_secs(100));
            e.record_kill(0, t(40));
            e.rate(0, t(40))
        };
        assert!(est.rate(0, t(40)) > 3.0 * single, "burst must dominate");
    }

    #[test]
    fn pools_are_independent() {
        let mut est = PreemptionEstimator::new(3, SimDuration::from_secs(100));
        est.record_kill(1, t(10));
        assert_eq!(est.rate(0, t(10)), 0.0);
        assert!(est.rate(1, t(10)) > 0.0);
        assert_eq!(est.rate(2, t(10)), 0.0);
        assert!((est.total_rate(t(10)) - est.rate(1, t(10))).abs() < 1e-15);
    }

    #[test]
    fn expected_kills_scale_with_horizon() {
        let mut est = PreemptionEstimator::new(1, SimDuration::from_secs(100));
        est.record_kill(0, t(0));
        let one = est.expected_kills(t(0), SimDuration::from_secs(40));
        let two = est.expected_kills(t(0), SimDuration::from_secs(80));
        assert!((two - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn pressure_is_a_fractional_kill() {
        let mut by_kill = PreemptionEstimator::new(1, SimDuration::from_secs(100));
        by_kill.record_kill(0, t(10));
        let mut by_pressure = PreemptionEstimator::new(1, SimDuration::from_secs(100));
        by_pressure.record_pressure(0, 0.5, t(10));
        by_pressure.record_pressure(0, 0.5, t(10));
        assert!((by_pressure.rate(0, t(50)) - by_kill.rate(0, t(50))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_pressure_panics() {
        let mut est = PreemptionEstimator::new(1, SimDuration::from_secs(100));
        est.record_pressure(0, -0.1, t(0));
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn zero_window_panics() {
        PreemptionEstimator::new(1, SimDuration::ZERO);
    }
}
