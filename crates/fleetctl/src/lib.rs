//! Policy-driven fleet controller for multi-pool spot markets.
//!
//! SpotServe (§8) reacts to whatever a single spot market grants: when the
//! trace shrinks, the fleet shrinks, and serving degrades until capacity
//! returns. This crate adds the *proactive* layer that SkyServe argues for
//! (spread spot capacity across pools and hedge with a small
//! over-provision) and that ShuntServe motivates for heterogeneous spot
//! clusters: a [`FleetController`] that sits between the serving system
//! and the [`cloudsim::CloudMarket`], observes grants and preemptions, and
//! decides *where* and *what kind* of capacity to acquire.
//!
//! Five [`FleetPolicy`]s are provided:
//!
//! * [`FleetPolicy::ReactiveSpot`] — the paper baseline: top the single
//!   market (pool 0) back up after losses, never mix in on-demand. The
//!   serving system's legacy acquisition path is kept *bit-exact* under
//!   this policy.
//! * [`FleetPolicy::OnDemandFallback`] — ride spot, but whenever live
//!   capacity falls below the optimizer's target `N`, top up with
//!   on-demand instances (released again once spot recovers). Availability
//!   becomes a cost knob instead of a trace artifact.
//! * [`FleetPolicy::SpotHedge`] — SkyServe-style: spread `target + hedge`
//!   instances evenly across pools (capacity-capped water-filling), sizing
//!   the hedge so that losing any *single* pool still leaves at least
//!   `target` live instances, inflated further when the
//!   [`PreemptionEstimator`] observes churn.
//! * [`FleetPolicy::CostAwareHedge`] — the hedge for heterogeneous
//!   fleets: each pool carries a [`PoolCaps`] capability/price card,
//!   incapable SKUs are excluded, the spread biases toward cheap spot,
//!   and the on-demand backstop lands in the cheapest capable pool.
//! * [`FleetPolicy::CostPerToken`] — the cost-aware hedge under *dynamic*
//!   spot prices: pools whose spot price spikes to parity with on-demand
//!   are masked from the spread, on-demand bridges the gap, and price
//!   spikes feed the [`PreemptionEstimator`] as an anticipatory
//!   (price-correlated) kill signal.
//!
//! The controller is pure decision logic over a [`FleetView`] snapshot —
//! it holds no cloud handles — which keeps it deterministic, replayable,
//! and unit-testable without a simulation loop.

pub mod controller;
pub mod estimator;
pub mod policy;
pub mod tracker;

pub use controller::{FleetCommand, FleetController, FleetView, PoolCaps, PoolView};
pub use estimator::PreemptionEstimator;
pub use policy::FleetPolicy;
pub use tracker::{RequestTracker, RetryDecision};

/// Spreads `total` instances across pools by capacity-capped round-robin
/// water-filling: one instance at a time, pool 0 first, skipping pools
/// whose capacity is exhausted. Deterministic; a pool in outage
/// (capacity 0) receives nothing and its share flows to the others.
///
/// # Example
///
/// ```
/// assert_eq!(fleetctl::spread(7, &[3, 10, 10]), vec![3, 2, 2]);
/// assert_eq!(fleetctl::spread(6, &[0, 4, 4]), vec![0, 3, 3]);
/// ```
pub fn spread(total: u32, caps: &[u32]) -> Vec<u32> {
    let mut alloc = vec![0u32; caps.len()];
    let mut left = total;
    loop {
        let mut progressed = false;
        for (a, &cap) in alloc.iter_mut().zip(caps) {
            if left == 0 {
                return alloc;
            }
            if *a < cap {
                *a += 1;
                left -= 1;
                progressed = true;
            }
        }
        if !progressed {
            return alloc; // every pool is at capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_is_even_when_capacity_allows() {
        assert_eq!(spread(6, &[10, 10, 10]), vec![2, 2, 2]);
        assert_eq!(spread(7, &[10, 10, 10]), vec![3, 2, 2]);
    }

    #[test]
    fn spread_respects_capacity_and_redistributes() {
        assert_eq!(spread(9, &[1, 10, 10]), vec![1, 4, 4]);
        assert_eq!(spread(4, &[0, 0, 10]), vec![0, 0, 4]);
    }

    #[test]
    fn spread_saturates_at_total_capacity() {
        assert_eq!(spread(100, &[1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(spread(0, &[5, 5]), vec![0, 0]);
        assert_eq!(spread(5, &[]), Vec::<u32>::new());
    }
}
