//! The fleet controller: snapshot in, acquisition command out.

use cloudsim::InstanceType;
use simkit::{SimDuration, SimTime};
use telemetry::{TelemetryEvent, TelemetrySink};

use crate::estimator::PreemptionEstimator;
use crate::policy::FleetPolicy;
use crate::spread;
use crate::tracker::{RequestTracker, RetryDecision};

/// One pool's capability and price card: what the controller needs to
/// hedge across unlike SKUs. Prices are integer cents per hour so the
/// snapshot types keep their derived `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCaps {
    /// The pool's instance-type name (e.g. `"g4dn.12xlarge"`).
    pub sku: &'static str,
    /// Spot price, cents per instance-hour.
    pub spot_cents_per_hour: u32,
    /// On-demand price, cents per instance-hour.
    pub ondemand_cents_per_hour: u32,
    /// GPUs per instance of this SKU.
    pub gpus_per_instance: u8,
    /// Whether the served model fits this SKU at all (any enumerable
    /// configuration) — set by the serving system, which owns the memory
    /// model. Incapable pools are invisible to capability-aware policies.
    pub fits_model: bool,
}

impl PoolCaps {
    /// The capability card of `ty`, assuming the model fits (the caller
    /// owns the memory model and clears [`PoolCaps::fits_model`] itself).
    pub fn of(ty: &InstanceType) -> Self {
        PoolCaps {
            sku: ty.name,
            spot_cents_per_hour: (ty.spot_price_per_hour * 100.0).round() as u32,
            ondemand_cents_per_hour: (ty.ondemand_price_per_hour * 100.0).round() as u32,
            gpus_per_instance: ty.gpus_per_instance,
            fits_model: true,
        }
    }
}

impl Default for PoolCaps {
    /// An anonymous, free, capable pool: price-blind policies behave
    /// identically whether or not anyone filled the card in.
    fn default() -> Self {
        PoolCaps {
            sku: "",
            spot_cents_per_hour: 0,
            ondemand_cents_per_hour: 0,
            gpus_per_instance: 4,
            fits_model: true,
        }
    }
}

/// One pool's state as the controller sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolView {
    /// Spot leases alive with no preemption notice pending.
    pub live_spot: u32,
    /// Spot leases inside their grace period (kill scheduled): they still
    /// serve, but the controller treats them as already lost.
    pub noticed_spot: u32,
    /// Spot instances provisioning (grant scheduled, not fired).
    pub provisioning_spot: u32,
    /// Spot requests queued behind the pool's capacity.
    pub queued_spot: u32,
    /// The pool's current trace capacity.
    pub capacity: u32,
    /// Cumulative spot requests this pool will never grant (launch
    /// failures and injected lapses) — the shortfall the cloud used to
    /// swallow silently.
    pub lapsed_spot: u32,
    /// The pool's SKU capability card (ignored by price-blind policies).
    pub caps: PoolCaps,
}

impl PoolView {
    /// Capacity already secured or en route: live (unnoticed) +
    /// provisioning + queued.
    pub fn committed(&self) -> u32 {
        self.live_spot + self.provisioning_spot + self.queued_spot
    }
}

/// A point-in-time snapshot of the whole fleet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetView {
    /// Per-pool state, in pool order.
    pub pools: Vec<PoolView>,
    /// On-demand leases alive (never preempted).
    pub live_ondemand: u32,
    /// On-demand requests whose grant has not fired yet.
    pub pending_ondemand: u32,
    /// The optimizer's target fleet size `N` (serving need, excluding
    /// spares).
    pub target: u32,
    /// Warm spare instances kept beyond the target (§3.2 keeps two).
    pub spares: u32,
}

impl FleetView {
    fn committed_spot(&self) -> u32 {
        self.pools.iter().map(PoolView::committed).sum()
    }

    fn live_spot(&self) -> u32 {
        self.pools.iter().map(|p| p.live_spot).sum()
    }
}

/// What the controller wants done, expressed against the market's
/// pool-addressed surface. All fields are deltas from the snapshot the
/// command was computed on; executing them converges the fleet toward the
/// policy's desired shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetCommand {
    /// Additional spot instances to request, per pool.
    pub spot: Vec<u32>,
    /// Queued spot requests to cancel, per pool.
    pub cancel_spot: Vec<u32>,
    /// Additional on-demand instances to request.
    pub ondemand: u32,
    /// Which pool the on-demand request should land in (its SKU, its
    /// bill). `None` keeps the legacy routing: pool 0.
    pub ondemand_pool: Option<u32>,
    /// Surplus instances to release (idle first, on-demand before spot —
    /// the Algorithm 1 line 10 release priority).
    pub release: u32,
}

impl FleetCommand {
    fn idle(n_pools: usize) -> Self {
        FleetCommand {
            spot: vec![0; n_pools],
            cancel_spot: vec![0; n_pools],
            ondemand: 0,
            ondemand_pool: None,
            release: 0,
        }
    }

    /// This command's telemetry mirror: the deltas summed over pools
    /// (per-pool detail is recoverable from the grant/release events
    /// that executing the command produces).
    pub fn telemetry_event(&self) -> TelemetryEvent {
        TelemetryEvent::FleetCommand {
            spot: self.spot.iter().sum(),
            cancel_spot: self.cancel_spot.iter().sum(),
            ondemand: self.ondemand,
            release: self.release,
        }
    }

    /// Whether the command changes nothing.
    pub fn is_noop(&self) -> bool {
        self.ondemand == 0
            && self.release == 0
            && self.spot.iter().all(|&n| n == 0)
            && self.cancel_spot.iter().all(|&n| n == 0)
    }
}

/// Policy-driven fleet controller (see the [crate docs](crate)).
///
/// # Example
///
/// ```
/// use fleetctl::{FleetController, FleetPolicy, FleetView, PoolView};
/// use simkit::{SimDuration, SimTime};
///
/// let ctl = FleetController::new(
///     FleetPolicy::spot_hedge(),
///     3,
///     SimDuration::from_secs(40),
/// );
/// let view = FleetView {
///     pools: vec![PoolView { capacity: 4, ..Default::default() }; 3],
///     target: 4,
///     spares: 0,
///     ..Default::default()
/// };
/// let cmd = ctl.command(&view, SimTime::ZERO);
/// // target 4 + hedge spread over three healthy pools
/// assert_eq!(cmd.spot.iter().sum::<u32>() >= 4, true);
/// ```
#[derive(Debug, Clone)]
pub struct FleetController {
    policy: FleetPolicy,
    estimator: PreemptionEstimator,
    /// Request-lifecycle tracker: grant deadlines, backoff masks, and
    /// the escalation verdicts (chaos-recovery layer, PR 10).
    tracker: RequestTracker,
    /// Exposure horizon the churn hedge covers: how long a replacement
    /// takes to arrive (the spot grant delay).
    grant_delay: SimDuration,
}

impl FleetController {
    /// A controller for `n_pools` pools under `policy`. `grant_delay` is
    /// the replacement latency the churn hedge must cover; the estimator
    /// window defaults to ten grant delays (a few minutes of memory).
    ///
    /// # Panics
    ///
    /// Panics if `policy` is a [`FleetPolicy::SpotHedge`] with
    /// `min_hedge > max_hedge` — failing fast at construction instead of
    /// deep inside the simulation loop.
    pub fn new(policy: FleetPolicy, n_pools: usize, grant_delay: SimDuration) -> Self {
        if let FleetPolicy::SpotHedge {
            min_hedge,
            max_hedge,
            ..
        }
        | FleetPolicy::CostAwareHedge {
            min_hedge,
            max_hedge,
            ..
        }
        | FleetPolicy::CostPerToken {
            min_hedge,
            max_hedge,
            ..
        } = policy
        {
            assert!(
                min_hedge <= max_hedge,
                "SpotHedge bounds are inverted: min_hedge {min_hedge} > max_hedge {max_hedge}"
            );
        }
        if let FleetPolicy::CostPerToken {
            parity_permille, ..
        } = policy
        {
            assert!(
                parity_permille > 0,
                "a zero parity threshold masks every pool unconditionally"
            );
        }
        let window = SimDuration::from_micros((grant_delay.as_micros()).max(1) * 10);
        FleetController {
            policy,
            estimator: PreemptionEstimator::new(n_pools, window),
            tracker: RequestTracker::new(n_pools, grant_delay),
            grant_delay,
        }
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> &FleetPolicy {
        &self.policy
    }

    /// The preemption-rate estimator (read access for reporting).
    pub fn estimator(&self) -> &PreemptionEstimator {
        &self.estimator
    }

    /// Feeds one observed kill in `pool` into the rate estimator.
    pub fn observe_kill(&mut self, pool: usize, now: SimTime) {
        self.estimator.record_kill(pool, now);
    }

    /// The request-lifecycle tracker (read access for reporting).
    pub fn tracker(&self) -> &RequestTracker {
        &self.tracker
    }

    /// Records `n` spot requests issued to `pool` at `now` (arms the
    /// tracker's grant deadlines).
    pub fn note_request(&mut self, pool: usize, n: u32, now: SimTime) {
        self.tracker.note_request(pool, n, now);
    }

    /// Records `n` voluntarily cancelled spot requests in `pool`: their
    /// tracker deadlines retire without counting as failures.
    pub fn note_cancel(&mut self, pool: usize, n: u32) {
        self.tracker.note_cancel(pool, n);
    }

    /// Records a successful spot grant in `pool`: the pool's failure
    /// streak and backoff mask reset.
    pub fn observe_grant(&mut self, pool: usize) {
        self.tracker.observe_grant(pool);
    }

    /// Records a lapsed request in `pool` at `now`: the failure streak
    /// grows, the backoff doubles (bounded), and the returned decision
    /// says whether the pool escalated to on-demand. Lapses also feed
    /// the rate estimator — a pool that cannot launch is under the same
    /// capacity pressure that precedes kills.
    pub fn observe_lapse(&mut self, pool: usize, now: SimTime) -> RetryDecision {
        self.estimator.record_pressure(pool, 1.0, now);
        self.tracker.observe_failure(pool, now)
    }

    /// Converts requests overdue past their grant deadline into tracker
    /// failures (the safety net for grants that vanish without even a
    /// lapse event). Call from a periodic tick.
    pub fn sweep_overdue(&mut self, now: SimTime) -> Vec<RetryDecision> {
        self.tracker.sweep_overdue(now)
    }

    /// Feeds an anticipatory, price-correlated kill signal into the rate
    /// estimator: `weight` kills' worth of pressure in `pool`. The
    /// serving system calls this when a pool's spot price steps past the
    /// policy's parity threshold — on clouds where preemption probability
    /// correlates with price, the spike predicts the kills, so the hedge
    /// widens *before* the notices arrive.
    pub fn observe_price_pressure(&mut self, pool: usize, weight: f64, now: SimTime) {
        self.estimator.record_pressure(pool, weight, now);
    }

    /// The hedge size for `target` over pools with capacities `caps`:
    /// large enough that losing the single biggest even-spread share still
    /// leaves `target` live, inflated to the churn estimate (expected
    /// kills over one grant delay), clamped to the policy's bounds. Zero
    /// for non-hedge policies.
    pub fn hedge(&self, target: u32, caps: &[u32], now: SimTime) -> u32 {
        let (min_hedge, max_hedge) = match self.policy {
            FleetPolicy::SpotHedge {
                min_hedge,
                max_hedge,
                ..
            }
            | FleetPolicy::CostAwareHedge {
                min_hedge,
                max_hedge,
                ..
            }
            | FleetPolicy::CostPerToken {
                min_hedge,
                max_hedge,
                ..
            } => (min_hedge, max_hedge),
            _ => return 0,
        };
        let churn = self.estimator.expected_kills(now, self.grant_delay).ceil() as u32;
        let zone_floor = Self::zone_safe_hedge(target, caps);
        zone_floor.max(churn).clamp(min_hedge, max_hedge)
    }

    /// The smallest `h` such that spreading `target + h` evenly over
    /// `caps` leaves at least `target` after removing the largest single
    /// share — i.e. a full one-pool outage cannot take the fleet below
    /// target. With fewer than two pools holding capacity no hedge can
    /// achieve that, so the floor is 0 and the churn term governs.
    fn zone_safe_hedge(target: u32, caps: &[u32]) -> u32 {
        if caps.iter().filter(|&&c| c > 0).count() < 2 {
            return 0;
        }
        for h in 0..=target {
            let alloc = spread(target + h, caps);
            let worst = alloc.iter().copied().max().unwrap_or(0);
            if alloc.iter().sum::<u32>() == target + h && h >= worst {
                return h;
            }
        }
        target
    }

    /// Computes the acquisition command for `view` at `now`.
    ///
    /// [`FleetPolicy::ReactiveSpot`] reproduces the legacy top-up (all
    /// spot, pool 0); the serving system keeps its own paper-exact path
    /// for that policy and only consults the controller for the others.
    pub fn command(&self, view: &FleetView, now: SimTime) -> FleetCommand {
        let n = view.pools.len();
        let mut cmd = FleetCommand::idle(n);
        match self.policy {
            FleetPolicy::ReactiveSpot => {
                let have = view.committed_spot() + view.live_ondemand;
                let want = (view.target + view.spares).saturating_sub(have);
                if n > 0 {
                    cmd.spot[0] = want;
                }
            }
            FleetPolicy::OnDemandFallback => {
                // Ride spot exactly like the reactive baseline...
                let desired = view.target + view.spares;
                let have = view.committed_spot();
                if n > 0 {
                    cmd.spot[0] = desired.saturating_sub(have);
                }
                // ...but keep *live* capacity at the target: whatever spot
                // cannot cover right now, on-demand does. Provisioning spot
                // is deliberately not counted — it may still be shed by a
                // capacity drop, and the fallback's contract is live
                // instances, not promises.
                let live = view.live_spot() + view.live_ondemand + view.pending_ondemand;
                cmd.ondemand = view.target.saturating_sub(live);
                // Shed the full surplus when the target shrinks or spot
                // recovers: queued requests are cancelled first, then live
                // instances release (idle first, on-demand before spot —
                // the executor's release priority).
                let mut cancel = have.saturating_sub(desired);
                for (i, pool) in view.pools.iter().enumerate() {
                    let k = cancel.min(pool.queued_spot);
                    cmd.cancel_spot[i] = k;
                    cancel -= k;
                }
                cmd.release = (view.live_spot() + view.live_ondemand).saturating_sub(desired);
            }
            FleetPolicy::SpotHedge {
                ondemand_backstop, ..
            } => {
                // Backoff mask: a pool inside its retry window after
                // lapsed grants contributes no capacity and receives no
                // requests until the window expires.
                let caps: Vec<u32> = view
                    .pools
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        if self.tracker.is_backed_off(i, now) {
                            0
                        } else {
                            p.capacity
                        }
                    })
                    .collect();
                let hedge = self.hedge(view.target, &caps, now);
                let desired_total = view.target + view.spares + hedge;
                let alloc = spread(desired_total, &caps);
                for (i, (&want, pool)) in alloc.iter().zip(&view.pools).enumerate() {
                    let have = pool.committed();
                    cmd.spot[i] = want.saturating_sub(have);
                    cmd.cancel_spot[i] = have.saturating_sub(want).min(pool.queued_spot);
                }
                if ondemand_backstop {
                    // Even the hedged spread cannot reach the target: every
                    // pool is short at once. Bridge the rest with on-demand.
                    let spot_reachable: u32 = alloc.iter().sum();
                    cmd.ondemand = view.target.saturating_sub(
                        spot_reachable + view.live_ondemand + view.pending_ondemand,
                    );
                }
                let live = view.live_spot() + view.live_ondemand;
                cmd.release = live.saturating_sub(desired_total);
            }
            FleetPolicy::CostAwareHedge {
                ondemand_backstop, ..
            } => {
                // Capability mask (pools whose SKU cannot host the model)
                // plus the backoff mask (pools cooling down after lapsed
                // grants): neither contributes capacity nor receives
                // requests.
                let caps: Vec<u32> = view
                    .pools
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        if p.caps.fits_model && !self.tracker.is_backed_off(i, now) {
                            p.capacity
                        } else {
                            0
                        }
                    })
                    .collect();
                let hedge = self.hedge(view.target, &caps, now);
                let desired_total = view.target + view.spares + hedge;
                // Price-ordered spread: same share *multiset* as the even
                // spread (so one-outage survivability is unchanged), with
                // the remainder shares biased toward cheap spot pools.
                let alloc = spread_by_price(desired_total, &caps, |i| {
                    view.pools[i].caps.spot_cents_per_hour
                });
                for (i, (&want, pool)) in alloc.iter().zip(&view.pools).enumerate() {
                    let have = pool.committed();
                    cmd.spot[i] = want.saturating_sub(have);
                    cmd.cancel_spot[i] = have.saturating_sub(want).min(pool.queued_spot);
                }
                if ondemand_backstop {
                    let spot_reachable: u32 = alloc.iter().sum();
                    cmd.ondemand = view.target.saturating_sub(
                        spot_reachable + view.live_ondemand + view.pending_ondemand,
                    );
                    // The backstop lands in the cheapest *capable* pool —
                    // its SKU, its bill — instead of defaulting to pool 0.
                    cmd.ondemand_pool = view
                        .pools
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.caps.fits_model)
                        .min_by_key(|(i, p)| (p.caps.ondemand_cents_per_hour, *i))
                        .map(|(i, _)| i as u32);
                }
                let live = view.live_spot() + view.live_ondemand;
                cmd.release = live.saturating_sub(desired_total);
            }
            FleetPolicy::CostPerToken {
                parity_permille, ..
            } => {
                // Parity mask on top of the capability mask: a pool whose
                // spot price has spiked to `parity_permille`/1000 of its
                // on-demand price buys tokens no cheaper than guaranteed
                // capacity would, while still carrying preemption risk —
                // stop feeding it. Pools with no price card on file
                // (on-demand price 0) are never considered spiked.
                let past_parity = |p: &PoolView| {
                    p.caps.ondemand_cents_per_hour > 0
                        && u64::from(p.caps.spot_cents_per_hour) * 1000
                            >= u64::from(parity_permille)
                                * u64::from(p.caps.ondemand_cents_per_hour)
                };
                let caps: Vec<u32> = view
                    .pools
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        if p.caps.fits_model
                            && !past_parity(p)
                            && !self.tracker.is_backed_off(i, now)
                        {
                            p.capacity
                        } else {
                            0
                        }
                    })
                    .collect();
                let hedge = self.hedge(view.target, &caps, now);
                let desired_total = view.target + view.spares + hedge;
                let alloc = spread_by_price(desired_total, &caps, |i| {
                    view.pools[i].caps.spot_cents_per_hour
                });
                for (i, (&want, pool)) in alloc.iter().zip(&view.pools).enumerate() {
                    let have = pool.committed();
                    cmd.spot[i] = want.saturating_sub(have);
                    cmd.cancel_spot[i] = have.saturating_sub(want).min(pool.queued_spot);
                }
                // On-demand bridges whatever the below-parity pools cannot
                // reach — including the everything-spiked case, where the
                // whole target rides guaranteed capacity until spot prices
                // come back down.
                let spot_reachable: u32 = alloc.iter().sum();
                cmd.ondemand = view
                    .target
                    .saturating_sub(spot_reachable + view.live_ondemand + view.pending_ondemand);
                cmd.ondemand_pool = view
                    .pools
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.caps.fits_model)
                    .min_by_key(|(i, p)| (p.caps.ondemand_cents_per_hour, *i))
                    .map(|(i, _)| i as u32);
                let live = view.live_spot() + view.live_ondemand;
                cmd.release = live.saturating_sub(desired_total);
            }
        }
        // Escalation: a pool that failed K consecutive times no longer
        // earns the spread's patience. Bridge the live gap with
        // guaranteed capacity — routed to the cheapest capable pool —
        // while the backoff keeps re-probing the spot side.
        if self.policy.is_hedged() && self.tracker.any_escalated() {
            let live = view.live_spot() + view.live_ondemand + view.pending_ondemand;
            cmd.ondemand = cmd.ondemand.max(view.target.saturating_sub(live));
            if cmd.ondemand > 0 && cmd.ondemand_pool.is_none() {
                cmd.ondemand_pool = view
                    .pools
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.caps.fits_model)
                    .min_by_key(|(i, p)| (p.caps.ondemand_cents_per_hour, *i))
                    .map(|(i, _)| i as u32);
            }
        }
        cmd
    }

    /// [`FleetController::command`], recording a
    /// [`TelemetryEvent::FleetCommand`] into `sink` when the command is
    /// not a noop. With [`telemetry::NoopSink`] this monomorphizes to
    /// exactly `command` — the event is never even constructed.
    pub fn command_traced<S: TelemetrySink>(
        &self,
        view: &FleetView,
        now: SimTime,
        sink: &mut S,
    ) -> FleetCommand {
        let cmd = self.command(view, now);
        if S::ACTIVE && !cmd.is_noop() {
            sink.record(now, cmd.telemetry_event());
        }
        cmd
    }
}

/// [`spread`] with the pools visited cheapest-first: permute capacities by
/// `(price, index)`, spread, unpermute. The resulting share multiset is
/// identical to the even spread's (spreading is order-blind up to
/// remainder placement), so hedge sizing transfers unchanged.
fn spread_by_price(total: u32, caps: &[u32], price: impl Fn(usize) -> u32) -> Vec<u32> {
    let mut order: Vec<usize> = (0..caps.len()).collect();
    order.sort_by_key(|&i| (price(i), i));
    let permuted: Vec<u32> = order.iter().map(|&i| caps[i]).collect();
    let permuted_alloc = spread(total, &permuted);
    let mut alloc = vec![0u32; caps.len()];
    for (slot, &i) in order.iter().enumerate() {
        alloc[i] = permuted_alloc[slot];
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(live: u32, cap: u32) -> PoolView {
        PoolView {
            live_spot: live,
            capacity: cap,
            ..Default::default()
        }
    }

    fn ctl(policy: FleetPolicy, n: usize) -> FleetController {
        FleetController::new(policy, n, SimDuration::from_secs(40))
    }

    #[test]
    fn reactive_tops_up_pool_zero_only() {
        let c = ctl(FleetPolicy::ReactiveSpot, 3);
        let view = FleetView {
            pools: vec![pool(2, 8), pool(0, 8), pool(0, 8)],
            target: 5,
            spares: 2,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.spot, vec![5, 0, 0]);
        assert_eq!(cmd.ondemand, 0);
    }

    #[test]
    fn fallback_covers_live_shortfall_with_on_demand() {
        let c = ctl(FleetPolicy::OnDemandFallback, 1);
        // 2 live, 2 provisioning, target 6: on-demand bridges the *live*
        // gap (4), spot keeps being requested for the rest.
        let view = FleetView {
            pools: vec![PoolView {
                live_spot: 2,
                provisioning_spot: 2,
                capacity: 8,
                ..Default::default()
            }],
            target: 6,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.ondemand, 4, "live gap bridged regardless of promises");
        assert_eq!(cmd.spot, vec![2]);
    }

    #[test]
    fn fallback_sheds_on_demand_when_spot_recovers() {
        let c = ctl(FleetPolicy::OnDemandFallback, 1);
        let view = FleetView {
            pools: vec![pool(6, 8)],
            live_ondemand: 3,
            target: 6,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.ondemand, 0);
        assert_eq!(cmd.release, 3, "all on-demand is surplus");
    }

    #[test]
    fn fallback_sheds_surplus_spot_when_the_target_shrinks() {
        // Target dropped from 8 to 4 with no on-demand held: the full spot
        // surplus must go — queued requests cancelled first, live surplus
        // released — or idle instances bill until run end.
        let c = ctl(FleetPolicy::OnDemandFallback, 1);
        let view = FleetView {
            pools: vec![PoolView {
                live_spot: 10,
                queued_spot: 2,
                capacity: 12,
                ..Default::default()
            }],
            target: 4,
            spares: 2,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.cancel_spot, vec![2], "queued surplus cancels first");
        assert_eq!(cmd.release, 4, "live surplus beyond target+spares releases");
        assert_eq!(cmd.ondemand, 0);
        assert_eq!(cmd.spot, vec![0]);
    }

    #[test]
    #[should_panic(expected = "bounds are inverted")]
    fn inverted_hedge_bounds_fail_fast_at_construction() {
        ctl(
            FleetPolicy::SpotHedge {
                min_hedge: 8,
                max_hedge: 2,
                ondemand_backstop: true,
            },
            2,
        );
    }

    #[test]
    fn fallback_does_not_double_request_while_od_pending() {
        let c = ctl(FleetPolicy::OnDemandFallback, 1);
        let view = FleetView {
            pools: vec![pool(2, 8)],
            pending_ondemand: 4,
            target: 6,
            spares: 0,
            ..Default::default()
        };
        assert_eq!(c.command(&view, SimTime::ZERO).ondemand, 0);
    }

    #[test]
    fn hedge_spreads_across_pools_and_survives_one_outage() {
        let c = ctl(FleetPolicy::spot_hedge(), 3);
        let view = FleetView {
            pools: vec![pool(0, 8), pool(0, 8), pool(0, 8)],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        let total: u32 = cmd.spot.iter().sum();
        let worst = cmd.spot.iter().copied().max().unwrap();
        assert!(total > 4, "target plus at least min_hedge");
        assert!(
            total - worst >= 4,
            "losing the biggest share {worst} of {cmd:?} must keep target"
        );
    }

    #[test]
    fn hedge_routes_around_a_dead_pool() {
        let c = ctl(FleetPolicy::spot_hedge(), 3);
        let view = FleetView {
            pools: vec![pool(0, 0), pool(1, 6), pool(1, 6)],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.spot[0], 0, "no requests into an outage");
        assert!(
            cmd.spot[1] + cmd.spot[2] >= 3,
            "healthy pools absorb: {cmd:?}"
        );
    }

    #[test]
    fn hedge_backstops_with_on_demand_when_all_pools_are_short() {
        let c = ctl(FleetPolicy::spot_hedge(), 2);
        let view = FleetView {
            pools: vec![pool(1, 1), pool(1, 1)],
            target: 6,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.ondemand, 4, "2 reachable spot, 4 bridged: {cmd:?}");
    }

    #[test]
    fn churn_inflates_the_hedge_up_to_the_cap() {
        let mut c = ctl(FleetPolicy::spot_hedge(), 2);
        let caps = [8, 8];
        let calm = c.hedge(4, &caps, SimTime::ZERO);
        for k in 0..60 {
            c.observe_kill(k % 2, SimTime::from_secs(k as u64));
        }
        let churny = c.hedge(4, &caps, SimTime::from_secs(60));
        assert!(churny > calm, "observed kills must grow the hedge");
        assert!(churny <= 8, "max_hedge caps the inflation");
    }

    #[test]
    fn zone_floor_is_zero_with_a_single_pool() {
        let c = ctl(FleetPolicy::spot_hedge(), 1);
        // One pool: no spread can survive losing it; only min_hedge/churn
        // apply.
        assert_eq!(c.hedge(4, &[8], SimTime::ZERO), 1);
    }

    #[test]
    fn hedge_cancels_queued_surplus() {
        let c = ctl(FleetPolicy::spot_hedge(), 2);
        let view = FleetView {
            pools: vec![
                PoolView {
                    live_spot: 1,
                    queued_spot: 5,
                    capacity: 2,
                    ..Default::default()
                },
                pool(1, 8),
            ],
            target: 2,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert!(
            cmd.cancel_spot[0] > 0,
            "queued surplus is cancelled: {cmd:?}"
        );
    }

    // ---- Cost-aware hedging ------------------------------------------

    fn priced_pool(cap: u32, spot_cents: u32, od_cents: u32, fits: bool) -> PoolView {
        PoolView {
            capacity: cap,
            caps: PoolCaps {
                sku: "x",
                spot_cents_per_hour: spot_cents,
                ondemand_cents_per_hour: od_cents,
                gpus_per_instance: 4,
                fits_model: fits,
            },
            ..Default::default()
        }
    }

    #[test]
    fn pool_caps_card_reads_off_the_instance_type() {
        let l4 = PoolCaps::of(&InstanceType::l4());
        assert_eq!(l4.sku, "g6.12xlarge");
        assert_eq!(l4.gpus_per_instance, 4);
        assert!(l4.spot_cents_per_hour < l4.ondemand_cents_per_hour);
        assert!(l4.fits_model, "capability defaults to capable");
    }

    #[test]
    fn cost_aware_biases_the_remainder_toward_cheap_spot() {
        let c = ctl(FleetPolicy::cost_aware_hedge(), 3);
        // Target 5 hedges to a desired total of 8 over three pools — an
        // uneven 3/3/2 spread. The even spread leaves the short share on
        // the last pool; price order (pool 2 cheapest, pool 1 dearest)
        // must instead short the most expensive pool.
        let view = FleetView {
            pools: vec![
                priced_pool(8, 190, 390, true),
                priced_pool(8, 300, 390, true),
                priced_pool(8, 45, 460, true),
            ],
            target: 5,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        let total: u32 = cmd.spot.iter().sum();
        assert!(
            cmd.spot[1] < cmd.spot[2],
            "dearest pool gets the short share: {cmd:?}"
        );
        assert!(cmd.spot[0] >= cmd.spot[1] && cmd.spot[2] >= cmd.spot[0]);
        // Survivability transfers from the even spread: losing the biggest
        // share keeps the target.
        assert!(total - cmd.spot.iter().max().unwrap() >= view.target);
    }

    #[test]
    fn cost_aware_excludes_incapable_pools() {
        let c = ctl(FleetPolicy::cost_aware_hedge(), 3);
        // Pool 1's SKU cannot host the model: nothing may be requested
        // there, however cheap it is.
        let view = FleetView {
            pools: vec![
                priced_pool(8, 190, 390, true),
                priced_pool(8, 10, 50, false),
                priced_pool(8, 180, 460, true),
            ],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.spot[1], 0, "incapable pool gets nothing: {cmd:?}");
        assert!(cmd.spot[0] + cmd.spot[2] >= 4);
    }

    #[test]
    fn cost_aware_backstop_routes_to_the_cheapest_capable_pool() {
        let c = ctl(FleetPolicy::cost_aware_hedge(), 3);
        // Every pool is short: the bridge must land in pool 2 (cheapest
        // *capable* on-demand), not pool 0 and not the incapable pool 1.
        let view = FleetView {
            pools: vec![
                priced_pool(1, 190, 390, true),
                priced_pool(0, 10, 50, false),
                priced_pool(1, 180, 330, true),
            ],
            target: 6,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.ondemand, 4, "2 reachable spot, 4 bridged: {cmd:?}");
        assert_eq!(cmd.ondemand_pool, Some(2));
    }

    #[test]
    fn price_blind_policies_leave_ondemand_routing_alone() {
        for policy in [
            FleetPolicy::ReactiveSpot,
            FleetPolicy::OnDemandFallback,
            FleetPolicy::spot_hedge(),
        ] {
            let c = ctl(policy, 2);
            let view = FleetView {
                pools: vec![priced_pool(1, 190, 390, true); 2],
                target: 6,
                spares: 0,
                ..Default::default()
            };
            let cmd = c.command(&view, SimTime::ZERO);
            assert_eq!(cmd.ondemand_pool, None, "{policy:?} stays legacy");
        }
    }

    #[test]
    fn spread_by_price_preserves_the_share_multiset() {
        let caps = [5u32, 8, 8, 3];
        let prices = [400u32, 100, 300, 50];
        for total in 0..=24u32 {
            let even = spread(total, &caps);
            let priced = spread_by_price(total, &caps, |i| prices[i]);
            let mut a: Vec<u32> = even.clone();
            let mut b: Vec<u32> = priced.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "total {total}: {even:?} vs {priced:?}");
            assert_eq!(priced.iter().sum::<u32>(), even.iter().sum::<u32>());
            assert!(priced.iter().zip(&caps).all(|(x, c)| x <= c));
        }
    }

    // ---- $/token optimization under dynamic prices -------------------

    #[test]
    fn cost_per_token_masks_pools_spiked_past_parity() {
        let c = ctl(FleetPolicy::cost_per_token(), 2);
        // Pool 0's spot has spiked to $6.00 against $3.90 on-demand —
        // far past the 90% parity threshold. Everything must land in
        // pool 1 ($1.80 spot).
        let view = FleetView {
            pools: vec![
                priced_pool(8, 600, 390, true),
                priced_pool(8, 180, 390, true),
            ],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.spot[0], 0, "spiked pool gets nothing: {cmd:?}");
        assert!(cmd.spot[1] >= 4, "cheap pool absorbs the fleet: {cmd:?}");
        assert_eq!(cmd.ondemand, 0, "cheap spot still covers the target");
    }

    #[test]
    fn cost_per_token_buys_on_demand_when_every_pool_is_spiked() {
        let c = ctl(FleetPolicy::cost_per_token(), 2);
        let view = FleetView {
            pools: vec![
                priced_pool(8, 600, 390, true),
                priced_pool(8, 400, 390, true),
            ],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert_eq!(cmd.spot, vec![0, 0], "no spot at on-demand parity");
        assert_eq!(
            cmd.ondemand, 4,
            "the whole target rides guaranteed capacity"
        );
        assert_eq!(cmd.ondemand_pool, Some(0), "cheapest capable on-demand");
    }

    #[test]
    fn cost_per_token_matches_cost_aware_below_parity() {
        // With every spot price well below parity the mask is inert and
        // the spread is the cost-aware one.
        let view = FleetView {
            pools: vec![
                priced_pool(8, 190, 390, true),
                priced_pool(8, 300, 390, true),
                priced_pool(8, 45, 460, true),
            ],
            target: 5,
            spares: 0,
            ..Default::default()
        };
        let aware = ctl(FleetPolicy::cost_aware_hedge(), 3).command(&view, SimTime::ZERO);
        let per_token = ctl(FleetPolicy::cost_per_token(), 3).command(&view, SimTime::ZERO);
        assert_eq!(per_token.spot, aware.spot);
        assert_eq!(per_token.release, aware.release);
    }

    #[test]
    fn cost_per_token_ignores_parity_without_a_price_card() {
        // Pools with no price card on file (on-demand 0 cents) must never
        // count as spiked — price-blind views keep working.
        let c = ctl(FleetPolicy::cost_per_token(), 2);
        let view = FleetView {
            pools: vec![pool(0, 8), pool(0, 8)],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, SimTime::ZERO);
        assert!(cmd.spot.iter().sum::<u32>() >= 4, "{cmd:?}");
    }

    #[test]
    fn price_pressure_widens_the_hedge_before_any_kill() {
        let mut c = ctl(FleetPolicy::cost_per_token(), 2);
        let caps = [8, 8];
        let calm = c.hedge(4, &caps, SimTime::ZERO);
        for k in 0..80 {
            c.observe_price_pressure(k % 2, 1.0, SimTime::from_secs(k as u64));
        }
        let spiked = c.hedge(4, &caps, SimTime::from_secs(80));
        assert!(
            spiked > calm,
            "pressure must widen the hedge: {spiked} vs {calm}"
        );
        assert!(spiked <= 8, "max_hedge still caps it");
    }

    #[test]
    #[should_panic(expected = "zero parity threshold")]
    fn zero_parity_threshold_fails_fast() {
        ctl(
            FleetPolicy::CostPerToken {
                min_hedge: 1,
                max_hedge: 8,
                parity_permille: 0,
            },
            2,
        );
    }

    #[test]
    fn command_traced_records_non_noop_commands_only() {
        use telemetry::Recorder;
        let c = ctl(FleetPolicy::OnDemandFallback, 1);
        let mut rec = Recorder::enabled();
        // Satisfied fleet: noop, nothing recorded.
        let satisfied = FleetView {
            pools: vec![pool(6, 8)],
            target: 6,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command_traced(&satisfied, SimTime::ZERO, &mut rec);
        assert!(cmd.is_noop() && rec.is_empty());
        // Short fleet: the command and its event agree.
        let short = FleetView {
            pools: vec![pool(2, 8)],
            target: 6,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command_traced(&short, SimTime::from_secs(9), &mut rec);
        assert_eq!(cmd, c.command(&short, SimTime::from_secs(9)));
        assert_eq!(rec.records().len(), 1);
        assert_eq!(rec.records()[0].event, cmd.telemetry_event());
        // The noop sink compiles the emission away entirely.
        let via_noop = c.command_traced(&short, SimTime::from_secs(9), &mut telemetry::NoopSink);
        assert_eq!(via_noop, cmd);
    }

    // ---- Chaos recovery: backoff masks and escalation ----------------

    #[test]
    fn backed_off_pools_are_masked_until_the_window_expires() {
        let mut c = ctl(FleetPolicy::spot_hedge(), 3);
        let now = SimTime::from_secs(100);
        let d = c.observe_lapse(0, now);
        let view = FleetView {
            pools: vec![pool(0, 8), pool(0, 8), pool(0, 8)],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, now);
        assert_eq!(cmd.spot[0], 0, "cooling pool receives nothing: {cmd:?}");
        assert!(
            cmd.spot[1] + cmd.spot[2] >= 4,
            "healthy pools absorb the spread: {cmd:?}"
        );
        // The window is bounded: at its end the pool is re-probed.
        let cmd = c.command(&view, d.until);
        assert!(cmd.spot[0] > 0, "backoff expired, pool re-probed: {cmd:?}");
    }

    #[test]
    fn a_grant_lifts_the_backoff_mask() {
        let mut c = ctl(FleetPolicy::spot_hedge(), 2);
        let now = SimTime::from_secs(50);
        c.observe_lapse(1, now);
        c.observe_grant(1);
        let view = FleetView {
            pools: vec![pool(0, 8), pool(0, 8)],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, now);
        assert!(cmd.spot[1] > 0, "granted pool is trusted again: {cmd:?}");
    }

    #[test]
    fn k_failures_escalate_to_the_cheapest_capable_on_demand() {
        let mut c = ctl(FleetPolicy::cost_aware_hedge(), 2);
        let now = SimTime::from_secs(10);
        for _ in 0..3 {
            assert!(!c.tracker().is_escalated(0) || c.tracker().failures(0) >= 3);
            c.observe_lapse(0, now);
        }
        assert!(c.tracker().is_escalated(0), "K = 3 consecutive failures");
        let view = FleetView {
            pools: vec![
                priced_pool(8, 190, 390, true),
                priced_pool(8, 180, 330, true),
            ],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, now);
        assert_eq!(
            cmd.ondemand, 4,
            "escalation bridges the whole live gap: {cmd:?}"
        );
        assert_eq!(cmd.ondemand_pool, Some(1), "cheapest capable on-demand");
    }

    #[test]
    fn reactive_baseline_ignores_the_tracker() {
        let mut c = ctl(FleetPolicy::ReactiveSpot, 2);
        let now = SimTime::from_secs(10);
        for _ in 0..5 {
            c.observe_lapse(0, now);
        }
        let view = FleetView {
            pools: vec![pool(0, 8), pool(0, 8)],
            target: 4,
            spares: 0,
            ..Default::default()
        };
        let cmd = c.command(&view, now);
        assert_eq!(cmd.spot, vec![4, 0], "paper baseline retries blindly");
        assert_eq!(cmd.ondemand, 0, "and never escalates");
    }

    #[test]
    fn noop_command_on_a_satisfied_fleet() {
        let c = ctl(FleetPolicy::OnDemandFallback, 1);
        let view = FleetView {
            pools: vec![pool(6, 8)],
            target: 6,
            spares: 0,
            ..Default::default()
        };
        assert!(c.command(&view, SimTime::ZERO).is_noop());
    }
}
