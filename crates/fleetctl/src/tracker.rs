//! Request lifecycle tracking: grant deadlines, bounded exponential
//! backoff, and on-demand escalation after repeated failures.
//!
//! The polite cloud always answers a capacity request — with a grant or,
//! since the chaos harness, a visible
//! [`RequestLapsed`](cloudsim::CloudEvent::RequestLapsed). A
//! [`RequestTracker`] turns those answers into acquisition *patience*:
//! each pool carries a count of consecutive failures (lapses, or grants
//! overdue past their deadline) and a backoff window that masks the pool
//! from spot spreads while it cools down. The backoff doubles per
//! consecutive failure up to a cap, so a flapping pool is re-probed at a
//! bounded, geometric cadence instead of hammered every steering tick.
//! After [`escalate_after`](RequestTracker::escalate_after) consecutive
//! failures the pool is *escalated*: the controller stops trusting the
//! spot spread to cover the gap and bridges with guaranteed on-demand
//! capacity (in the cheapest capable pool) until a grant lands.
//!
//! All state is plain counters and timestamps updated from the
//! deterministic event stream — no randomness, no wall clock — so replay
//! stays exact.

use std::collections::VecDeque;

use simkit::{SimDuration, SimTime};

/// What the tracker decided about one observed failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryDecision {
    /// The failing pool.
    pub pool: u32,
    /// Consecutive failures including this one (the backoff exponent
    /// driver).
    pub attempt: u32,
    /// The pool is masked from spot spreads until this instant.
    pub until: SimTime,
    /// Whether this failure tripped the escalation threshold.
    pub escalate: bool,
}

#[derive(Debug, Clone, Default)]
struct PoolState {
    /// Deadlines of outstanding spot requests, oldest first.
    deadlines: VecDeque<SimTime>,
    /// Consecutive failures with no successful grant in between.
    failures: u32,
    /// Masked from spot spreads until this instant.
    backoff_until: SimTime,
}

/// Per-pool grant deadlines plus bounded-exponential-backoff state (see
/// the [module docs](self)).
#[derive(Debug, Clone)]
pub struct RequestTracker {
    pools: Vec<PoolState>,
    /// Base backoff unit: one grant delay.
    base_delay: SimDuration,
    /// A request not answered within this many base delays is overdue.
    deadline_slack: u32,
    /// Consecutive failures after which a pool escalates to on-demand.
    escalate_after: u32,
    /// Cap on the backoff exponent (`base · 2^min(attempt-1, cap)`).
    max_shift: u32,
}

impl RequestTracker {
    /// A tracker for `n_pools` pools with `base_delay` (the spot grant
    /// delay) as the backoff unit. Defaults: requests are overdue after
    /// 8 base delays, pools escalate after 3 consecutive failures, and
    /// the backoff exponent caps at 6 (64 base delays).
    pub fn new(n_pools: usize, base_delay: SimDuration) -> Self {
        RequestTracker {
            pools: vec![PoolState::default(); n_pools],
            base_delay,
            deadline_slack: 8,
            escalate_after: 3,
            max_shift: 6,
        }
    }

    /// The escalation threshold (consecutive failures).
    pub fn escalate_after(&self) -> u32 {
        self.escalate_after
    }

    /// Records `n` spot requests issued to `pool` at `now`, each due a
    /// grant (or a lapse) within the deadline window.
    pub fn note_request(&mut self, pool: usize, n: u32, now: SimTime) {
        let deadline = now + self.scaled_delay(self.deadline_slack);
        let p = &mut self.pools[pool];
        for _ in 0..n {
            p.deadlines.push_back(deadline);
        }
    }

    /// Records `n` voluntarily cancelled requests in `pool`: their
    /// deadlines retire (newest first) without touching the failure
    /// streak — the controller chose to withdraw them, nothing failed.
    pub fn note_cancel(&mut self, pool: usize, n: u32) {
        for _ in 0..n {
            if self.pools[pool].deadlines.pop_back().is_none() {
                break;
            }
        }
    }

    /// Records a successful grant in `pool`: the oldest outstanding
    /// deadline retires and the failure streak resets.
    pub fn observe_grant(&mut self, pool: usize) {
        let p = &mut self.pools[pool];
        p.deadlines.pop_front();
        p.failures = 0;
        p.backoff_until = SimTime::ZERO;
    }

    /// Records one failed request (a lapse, or an overdue grant) in
    /// `pool` at `now`: the streak grows and the backoff doubles, up to
    /// the cap.
    pub fn observe_failure(&mut self, pool: usize, now: SimTime) -> RetryDecision {
        let shift = self.pools[pool].failures.min(self.max_shift);
        let until = now + self.scaled_delay(1 << shift);
        let p = &mut self.pools[pool];
        p.deadlines.pop_front();
        p.failures += 1;
        p.backoff_until = until;
        RetryDecision {
            pool: pool as u32,
            attempt: p.failures,
            until,
            escalate: p.failures >= self.escalate_after,
        }
    }

    /// Converts every outstanding request whose deadline passed into a
    /// failure (the safety net for grants that vanish without even a
    /// lapse event). Returns the decisions in pool order.
    pub fn sweep_overdue(&mut self, now: SimTime) -> Vec<RetryDecision> {
        let mut out = Vec::new();
        for pool in 0..self.pools.len() {
            while self.pools[pool]
                .deadlines
                .front()
                .is_some_and(|&d| d <= now)
            {
                out.push(self.observe_failure(pool, now));
            }
        }
        out
    }

    /// Whether `pool` is inside its backoff window at `now` (masked from
    /// spot spreads).
    pub fn is_backed_off(&self, pool: usize, now: SimTime) -> bool {
        now < self.pools[pool].backoff_until
    }

    /// Whether `pool` has failed enough consecutive times to escalate.
    pub fn is_escalated(&self, pool: usize) -> bool {
        self.pools[pool].failures >= self.escalate_after
    }

    /// Whether any pool is currently escalated.
    pub fn any_escalated(&self) -> bool {
        (0..self.pools.len()).any(|p| self.is_escalated(p))
    }

    /// Consecutive failures of `pool`.
    pub fn failures(&self, pool: usize) -> u32 {
        self.pools[pool].failures
    }

    /// Outstanding (unanswered) requests of `pool`.
    pub fn outstanding(&self, pool: usize) -> usize {
        self.pools[pool].deadlines.len()
    }

    fn scaled_delay(&self, units: u32) -> SimDuration {
        SimDuration::from_micros(self.base_delay.as_micros().saturating_mul(units as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> RequestTracker {
        RequestTracker::new(2, SimDuration::from_secs(40))
    }

    #[test]
    fn backoff_doubles_per_consecutive_failure() {
        let mut t = tracker();
        let now = SimTime::from_secs(100);
        let d1 = t.observe_failure(0, now);
        let d2 = t.observe_failure(0, now);
        let d3 = t.observe_failure(0, now);
        assert_eq!(d1.until, now + SimDuration::from_secs(40));
        assert_eq!(d2.until, now + SimDuration::from_secs(80));
        assert_eq!(d3.until, now + SimDuration::from_secs(160));
        assert_eq!((d1.attempt, d2.attempt, d3.attempt), (1, 2, 3));
    }

    #[test]
    fn backoff_exponent_is_capped() {
        let mut t = tracker();
        let now = SimTime::from_secs(0);
        let mut last = SimTime::ZERO;
        for _ in 0..12 {
            last = t.observe_failure(1, now).until;
        }
        assert_eq!(
            last,
            now + SimDuration::from_secs(40 * 64),
            "shift caps at 6"
        );
    }

    #[test]
    fn a_grant_resets_the_streak_and_the_mask() {
        let mut t = tracker();
        let now = SimTime::from_secs(10);
        t.observe_failure(0, now);
        t.observe_failure(0, now);
        assert!(t.is_backed_off(0, now + SimDuration::from_secs(1)));
        t.observe_grant(0);
        assert_eq!(t.failures(0), 0);
        assert!(!t.is_backed_off(0, now + SimDuration::from_secs(1)));
    }

    #[test]
    fn escalation_trips_at_the_threshold() {
        let mut t = tracker();
        let now = SimTime::ZERO;
        assert!(!t.observe_failure(0, now).escalate);
        assert!(!t.observe_failure(0, now).escalate);
        assert!(t.observe_failure(0, now).escalate, "K = 3");
        assert!(t.is_escalated(0));
        assert!(t.any_escalated());
        assert!(!t.is_escalated(1), "streaks are per pool");
    }

    #[test]
    fn backoff_expires_on_its_own() {
        let mut t = tracker();
        let d = t.observe_failure(0, SimTime::from_secs(100));
        assert!(t.is_backed_off(0, SimTime::from_secs(120)));
        assert!(!t.is_backed_off(0, d.until), "window end is exclusive");
    }

    #[test]
    fn overdue_requests_sweep_into_failures() {
        let mut t = tracker();
        t.note_request(0, 2, SimTime::ZERO);
        assert_eq!(t.outstanding(0), 2);
        // Deadline is 8 base delays = 320 s; nothing sweeps before it.
        assert!(t.sweep_overdue(SimTime::from_secs(319)).is_empty());
        let swept = t.sweep_overdue(SimTime::from_secs(320));
        assert_eq!(swept.len(), 2);
        assert_eq!(t.failures(0), 2);
        assert_eq!(t.outstanding(0), 0);
    }

    #[test]
    fn grants_retire_deadlines_oldest_first() {
        let mut t = tracker();
        t.note_request(0, 1, SimTime::ZERO);
        t.note_request(0, 1, SimTime::from_secs(100));
        t.observe_grant(0);
        assert_eq!(t.outstanding(0), 1);
        // The surviving deadline is the later one.
        assert!(t.sweep_overdue(SimTime::from_secs(321)).is_empty());
        assert_eq!(t.sweep_overdue(SimTime::from_secs(420)).len(), 1);
    }
}
