//! Acquisition policies: how the fleet reacts to a spot market.

/// How the fleet controller acquires and sheds capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetPolicy {
    /// The paper baseline (§3.2): request spot from the single market
    /// (pool 0), top back up after losses, never mix in on-demand unless
    /// the serving system's own `+O` mixing flag says so. The serving
    /// system keeps its legacy acquisition path bit-exact under this
    /// policy.
    #[default]
    ReactiveSpot,
    /// Ride spot, but keep *live* capacity at the optimizer's target `N`:
    /// whenever live spot (plus already-held on-demand) falls below the
    /// target, request on-demand instances to cover the gap, and release
    /// them again once spot recovers (on-demand has release priority —
    /// the paper's Algorithm 1 line 10 rule, applied continuously).
    OnDemandFallback,
    /// SkyServe-style hedge: spread `target + hedge` spot instances across
    /// every pool (capacity-capped even spread), sizing `hedge` so that a
    /// full single-pool outage still leaves `target` live instances, and
    /// inflating it when the preemption-rate estimator observes churn.
    SpotHedge {
        /// Floor on the hedge (extra instances beyond target), applied
        /// even when the estimator sees no churn and one pool could
        /// absorb everything.
        min_hedge: u32,
        /// Ceiling on the hedge: over-provisioning is a cost knob, and
        /// this caps what churn can inflate it to.
        max_hedge: u32,
        /// Also fall back to on-demand when even the hedged spread cannot
        /// reach `target` (every pool short on capacity at once).
        ondemand_backstop: bool,
    },
    /// [`FleetPolicy::SpotHedge`] for heterogeneous fleets: pools whose
    /// SKU cannot host the model are excluded outright, the hedged spread
    /// biases its remainder toward the cheapest spot pools (same share
    /// multiset as the even spread, so one-outage survivability is
    /// unchanged), and the on-demand backstop lands in the *cheapest
    /// capable* pool's SKU instead of pool 0's.
    CostAwareHedge {
        /// Floor on the hedge, as in [`FleetPolicy::SpotHedge`].
        min_hedge: u32,
        /// Ceiling on the hedge, as in [`FleetPolicy::SpotHedge`].
        max_hedge: u32,
        /// Bridge to on-demand (in the cheapest capable pool) when the
        /// hedged spread cannot reach `target`.
        ondemand_backstop: bool,
    },
    /// [`FleetPolicy::CostAwareHedge`] optimizing $ per token under
    /// *dynamic* spot prices: pools whose current spot price has spiked
    /// to at or past `parity_permille`/1000 of their on-demand price are
    /// masked out of the spot spread entirely — preemptible capacity at
    /// on-demand parity buys nothing but risk — and on-demand (in the
    /// cheapest capable pool) bridges whatever the cheap pools cannot
    /// reach. Price spikes also feed the preemption estimator as an
    /// anticipatory kill signal, widening the hedge *before* the
    /// price-correlated kills land.
    CostPerToken {
        /// Floor on the hedge, as in [`FleetPolicy::SpotHedge`].
        min_hedge: u32,
        /// Ceiling on the hedge, as in [`FleetPolicy::SpotHedge`].
        max_hedge: u32,
        /// Spot/on-demand parity threshold, in permille: spot at or above
        /// `parity_permille`/1000 of on-demand masks the pool. `900`
        /// means "stop riding spot once it costs 90% of guaranteed
        /// capacity".
        parity_permille: u32,
    },
}

impl FleetPolicy {
    /// The default [`FleetPolicy::SpotHedge`] tuning: hedge between 1 and
    /// 8 instances, on-demand backstop enabled.
    pub fn spot_hedge() -> Self {
        FleetPolicy::SpotHedge {
            min_hedge: 1,
            max_hedge: 8,
            ondemand_backstop: true,
        }
    }

    /// The default [`FleetPolicy::CostAwareHedge`] tuning: the
    /// [`FleetPolicy::spot_hedge`] bounds, with the backstop routed by
    /// price.
    pub fn cost_aware_hedge() -> Self {
        FleetPolicy::CostAwareHedge {
            min_hedge: 1,
            max_hedge: 8,
            ondemand_backstop: true,
        }
    }

    /// The default [`FleetPolicy::CostPerToken`] tuning: the
    /// [`FleetPolicy::spot_hedge`] bounds with a 90% price-parity
    /// threshold.
    pub fn cost_per_token() -> Self {
        FleetPolicy::CostPerToken {
            min_hedge: 1,
            max_hedge: 8,
            parity_permille: 900,
        }
    }

    /// Whether the serving system should keep its legacy (paper-exact)
    /// acquisition path instead of consulting the controller.
    pub fn is_reactive(&self) -> bool {
        matches!(self, FleetPolicy::ReactiveSpot)
    }

    /// Whether this policy spreads a hedge across pools — the policies
    /// that honor the request tracker's backoff masks and escalation
    /// verdicts. The reactive baseline stays paper-exact and retries
    /// blindly; the fallback already rides on-demand continuously.
    pub fn is_hedged(&self) -> bool {
        matches!(
            self,
            FleetPolicy::SpotHedge { .. }
                | FleetPolicy::CostAwareHedge { .. }
                | FleetPolicy::CostPerToken { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactive_is_the_default() {
        assert_eq!(FleetPolicy::default(), FleetPolicy::ReactiveSpot);
        assert!(FleetPolicy::default().is_reactive());
        assert!(!FleetPolicy::spot_hedge().is_reactive());
    }

    #[test]
    fn cost_per_token_defaults_stop_short_of_parity() {
        let FleetPolicy::CostPerToken {
            min_hedge,
            max_hedge,
            parity_permille,
        } = FleetPolicy::cost_per_token()
        else {
            panic!("cost_per_token() must build a CostPerToken");
        };
        assert!(min_hedge <= max_hedge);
        assert!(
            parity_permille < 1000,
            "the default must bail out strictly below on-demand parity"
        );
    }

    #[test]
    fn hedge_defaults_are_bounded() {
        let FleetPolicy::SpotHedge {
            min_hedge,
            max_hedge,
            ondemand_backstop,
        } = FleetPolicy::spot_hedge()
        else {
            panic!("spot_hedge() must build a SpotHedge");
        };
        assert!(min_hedge <= max_hedge);
        assert!(ondemand_backstop);
    }
}
