//! Kuhn–Munkres matching speed at device-mapper scales (§3.3).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kmatch::{max_weight_assignment, WeightMatrix};

fn bench_km(c: &mut Criterion) {
    let mut g = c.benchmark_group("hungarian");
    for n in [8usize, 16, 32, 64] {
        let w = WeightMatrix::from_fn(n, n, |r, c| ((r * 2654435761 + c * 40503) % 100_000) as i64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| max_weight_assignment(black_box(w)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_km);
criterion_main!(benches);
