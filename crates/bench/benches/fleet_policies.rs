//! The fleet controller sits on the serving hot path (every cloud event
//! is a steering point), so its decision must be cheap — microseconds,
//! not the optimizer's milliseconds — and the multi-pool market's merged
//! event pump must stay linear in events, not pools.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cloudsim::{AvailabilityTrace, CloudConfig, CloudMarket, PoolId, PoolSpec};
use fleetctl::{FleetController, FleetPolicy, FleetView, PoolCaps, PoolView};
use simkit::{SimDuration, SimTime};

fn controller_view(pools: usize) -> FleetView {
    FleetView {
        pools: (0..pools)
            .map(|i| PoolView {
                live_spot: (i % 3) as u32,
                provisioning_spot: (i % 2) as u32,
                queued_spot: 0,
                noticed_spot: 0,
                lapsed_spot: 0,
                capacity: 4 + (i % 5) as u32,
                caps: PoolCaps {
                    sku: "g4dn.12xlarge",
                    spot_cents_per_hour: 190 + (i % 4) as u32 * 75,
                    ondemand_cents_per_hour: 390 + (i % 4) as u32 * 110,
                    gpus_per_instance: 4,
                    fits_model: i % 7 != 6,
                },
            })
            .collect(),
        live_ondemand: 1,
        pending_ondemand: 0,
        target: 8,
        spares: 2,
    }
}

fn bench_controller(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_controller");
    for pools in [2usize, 8, 32] {
        let view = controller_view(pools);
        let mut hedged =
            FleetController::new(FleetPolicy::spot_hedge(), pools, SimDuration::from_secs(40));
        // Warm estimator: every pool has seen churn.
        for p in 0..pools {
            hedged.observe_kill(p, SimTime::from_secs(p as u64));
        }
        g.bench_function(format!("spot_hedge/{pools}_pools"), |b| {
            b.iter(|| hedged.command(black_box(&view), black_box(SimTime::from_secs(100))))
        });
        let fallback = FleetController::new(
            FleetPolicy::OnDemandFallback,
            pools,
            SimDuration::from_secs(40),
        );
        g.bench_function(format!("ondemand_fallback/{pools}_pools"), |b| {
            b.iter(|| fallback.command(black_box(&view), black_box(SimTime::from_secs(100))))
        });
        let cost_aware = FleetController::new(
            FleetPolicy::cost_aware_hedge(),
            pools,
            SimDuration::from_secs(40),
        );
        g.bench_function(format!("cost_aware_hedge/{pools}_pools"), |b| {
            b.iter(|| cost_aware.command(black_box(&view), black_box(SimTime::from_secs(100))))
        });
    }
    g.finish();
}

fn bench_market_pump(c: &mut Criterion) {
    let mut g = c.benchmark_group("cloud_market");
    for pools in [1usize, 4, 16] {
        let specs: Vec<PoolSpec> = (0..pools)
            .map(|i| PoolSpec::new(format!("z{i}"), AvailabilityTrace::paper_bs()))
            .collect();
        g.bench_function(format!("drain/{pools}_pools"), |b| {
            b.iter(|| {
                let mut m = CloudMarket::new(&CloudConfig::default(), &specs, 7);
                for i in 0..pools {
                    m.request_spot_in(SimTime::ZERO, PoolId(i as u32), 6);
                }
                let mut n = 0u32;
                while let Some(ev) = m.pop_next() {
                    black_box(&ev);
                    n += 1;
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_controller, bench_market_pump);
criterion_main!(benches);
