//! Algorithm 1 runs online: the paper claims < 1 s overhead (§3.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llmsim::ModelSpec;
use spotserve::ConfigOptimizer;

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("config_optimizer");
    for model in ModelSpec::paper_models() {
        let opt = ConfigOptimizer::paper_defaults(model.clone(), 16);
        g.bench_function(model.name, |b| {
            b.iter(|| opt.decide(black_box(10), black_box(0.35)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
