//! Algorithm 2 planning cost for a realistic GPT-20B reconfiguration.

use cloudsim::{ColdStorage, GpuRef, InstanceId, NetFabric};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llmsim::ModelSpec;
use migration::{evaluate_plan, plan_migration, DeviceAssignment, MigrationTask, PlannerOptions};
use parallelism::ParallelConfig;

fn task() -> MigrationTask {
    let old = ParallelConfig::new(2, 2, 8, 8);
    let new = ParallelConfig::new(2, 3, 4, 8);
    let gpus: Vec<GpuRef> = (0..8u64)
        .flat_map(|i| (0..4u8).map(move |s| GpuRef::new(InstanceId(i), s)))
        .collect();
    MigrationTask {
        model: ModelSpec::gpt_20b(),
        old_config: old,
        new_config: new,
        old_assignment: DeviceAssignment::contiguous(&old, &gpus),
        new_assignment: DeviceAssignment::contiguous(&new, &gpus),
        cache_bytes_per_pipeline: vec![1 << 30; 2],
        pipeline_inheritance: vec![Some(0), Some(1)],
    }
}

fn bench_planning(c: &mut Criterion) {
    let t = task();
    let opts = PlannerOptions::default();
    c.bench_function("plan_migration_gpt20b", |b| {
        b.iter(|| plan_migration(black_box(&t), black_box(&opts)))
    });
    let plan = plan_migration(&t, &opts);
    let net = NetFabric::g4dn_default();
    let storage = ColdStorage::default();
    c.bench_function("evaluate_plan_gpt20b", |b| {
        b.iter(|| evaluate_plan(black_box(&plan), &net, &storage))
    });
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
