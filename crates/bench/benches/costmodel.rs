//! Cost-model evaluation speed (called inside every optimizer pass).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llmsim::{calibration, ModelSpec};

fn bench_costmodel(c: &mut Criterion) {
    let model = ModelSpec::gpt_20b();
    let cost = calibration::calibrated_cost_model(&model);
    c.bench_function("exec_latency_gpt20b", |b| {
        b.iter(|| cost.exec_latency(black_box(&model), 3, 4, 8, 512, 128))
    });
    c.bench_function("decode_time_gpt20b", |b| {
        b.iter(|| cost.decode_time(black_box(&model), 3, 4, 8, 576))
    });
}

criterion_group!(benches, bench_costmodel);
criterion_main!(benches);
