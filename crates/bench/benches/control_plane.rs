//! The PR 5 hot-path benches.
//!
//! **`control_plane`** — Algorithm 1 at fleet ceilings of 16/64/256
//! instances, three ways per ceiling:
//!
//! * `decide_reference/<N>` — the pre-frontier path (fresh enumeration +
//!   per-candidate cost-model pricing on every call), kept as the
//!   before/after baseline;
//! * `decide_frontier/<N>` — the frontier-backed path with the memo
//!   defeated (a fresh `α` every call), i.e. the cost of one real
//!   re-decision at event-churn time;
//! * `decide_warm/<N>` — the steady-state path (same `(N, α)` repeated),
//!   i.e. a memo hit. This is the number CI's perf-smoke step holds
//!   against the paper's 1 s re-decision budget.
//!
//! **`scheduler_hot_loop`** — the continuous engine's per-boundary work:
//! the allocation-free SLO admission verdict at a full batch, the EDF
//! re-sort skip (`PendingQueue` dirty flag vs a bare `VecDeque`), and a
//! best-effort admit/advance drive over reused segment buffers.

use std::collections::VecDeque;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use enginesim::{IterationScheduler, PendingQueue};
use llmsim::ModelSpec;
use parallelism::{ParallelConfig, PerfModel};
use simkit::{SimDuration, SimTime};
use spotserve::ConfigOptimizer;
use workload::{Request, RequestId};

fn bench_control_plane(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_plane");
    for ceiling in [16u32, 64, 256] {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), ceiling);
        let n = ceiling - 2;
        // Build the frontier once outside the timed region: the steady
        // state under event churn is a warm frontier, and the reference
        // path never uses it anyway.
        let warmup = opt.decide(n, 0.35);
        assert_eq!(warmup, opt.decide_reference(n, 0.35), "equivalence");

        g.bench_function(BenchmarkId::new("decide_reference", ceiling), |b| {
            b.iter(|| opt.decide_reference(black_box(n), black_box(0.35)))
        });
        g.bench_function(BenchmarkId::new("decide_frontier", ceiling), |b| {
            // A fresh α each call defeats the memo (and keeps evicting
            // it), so this measures a genuine frontier-scan re-decision.
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                opt.decide(black_box(n), 0.1 + (i % 1024) as f64 * 1e-4)
            })
        });
        g.bench_function(BenchmarkId::new("decide_warm", ceiling), |b| {
            b.iter(|| opt.decide(black_box(n), black_box(0.35)))
        });
    }
    g.finish();
}

fn req(id: u64, s_in: u32, s_out: u32) -> Request {
    Request::new(RequestId(id), SimTime::ZERO, s_in, s_out)
}

fn bench_scheduler_hot_loop(c: &mut Criterion) {
    let model = ModelSpec::opt_6_7b();
    let perf = PerfModel::paper_defaults(model.clone());
    let kvbpt = model.kv_bytes_per_token();
    let mut g = c.benchmark_group("scheduler_hot_loop");

    // The admission verdict against a full batch of deadline carriers —
    // priced from the incrementally maintained resident entries through
    // the reused scratch buffer (the pre-PR path rebuilt both vectors per
    // verdict).
    let cfg = ParallelConfig::new(1, 1, 4, 8);
    let mut sched = IterationScheduler::new(cfg, kvbpt, u64::MAX);
    let mut seed: VecDeque<Request> = (0..8)
        .map(|i| req(i, 512, 128).with_slo(SimDuration::from_secs(5000)))
        .collect();
    sched.admit(&mut seed, SimTime::ZERO, &perf);
    assert_eq!(sched.in_flight(), 8);
    let candidate = req(99, 512, 128).with_slo(SimDuration::from_secs(5000));
    g.bench_function("slo_verdict_full_batch", |b| {
        b.iter(|| sched.slo_verdict(black_box(&candidate), SimTime::ZERO, &perf))
    });

    // The EDF re-sort at a boundary whose queue did not change: a bare
    // VecDeque re-sorts a 64-deep deadline queue on every admit; the
    // PendingQueue's dirty flag skips it. The queue is built so every
    // request *defers* on an idle engine — its deadline sits between the
    // solo best-case floor and the worst-case projection — so admission
    // never seats anyone and the boundary scan can repeat indefinitely.
    use llmsim::SeqWork;
    let (s_in, s_out) = (512u32, 64u32);
    let worst = perf.mixed_iteration_time(
        &cfg,
        &[SeqWork {
            new_tokens: s_in,
            ctx: s_in + s_out,
        }],
    ) * s_out as u64;
    let floor = perf.mixed_iteration_time(&cfg, &[SeqWork::prefill(s_in)])
        + perf.mixed_iteration_time(&cfg, &[SeqWork::decode(s_in + 1)]) * (s_out - 1) as u64;
    assert!(floor < worst);
    let mid = floor + (worst - floor) / 2;
    let deferring: Vec<Request> = (0..64)
        .map(|i| req(i, s_in, s_out).with_slo(mid + SimDuration::from_micros(i)))
        .collect();
    g.bench_function("edf_admit_vecdeque_resort", |b| {
        let mut s = IterationScheduler::new(cfg, kvbpt, u64::MAX);
        let mut q: VecDeque<Request> = deferring.iter().copied().collect();
        assert_eq!(s.admit(&mut q, SimTime::ZERO, &perf), 0, "all defer");
        assert_eq!(q.len(), 64);
        assert!(s.take_rejected().is_empty());
        b.iter(|| black_box(s.admit(&mut q, SimTime::ZERO, &perf)))
    });
    g.bench_function("edf_admit_dirty_skip", |b| {
        let mut s = IterationScheduler::new(cfg, kvbpt, u64::MAX);
        let mut q = PendingQueue::new();
        for r in &deferring {
            q.push_back(*r);
        }
        assert_eq!(s.admit(&mut q, SimTime::ZERO, &perf), 0, "all defer");
        assert_eq!(q.len(), 64);
        assert!(s.take_rejected().is_empty());
        b.iter(|| black_box(s.admit(&mut q, SimTime::ZERO, &perf)))
    });

    // Best-effort churn: drive a varied 32-request queue through a B=8
    // engine to idle — segment pricing over the reused SeqWork buffers,
    // retire/admit at every boundary.
    let drive_template: Vec<Request> = (0..32)
        .map(|i| req(i, 256 + (i as u32 % 7) * 64, 8 + (i as u32 % 11) * 6))
        .collect();
    g.bench_function("best_effort_drive_to_idle", |b| {
        b.iter(|| {
            let mut s = IterationScheduler::new(cfg, kvbpt, u64::MAX);
            let mut q: VecDeque<Request> = drive_template.iter().copied().collect();
            s.admit(&mut q, SimTime::ZERO, &perf);
            let mut done = 0usize;
            while let Some(end) = s.next_event() {
                done += s.advance(end, &mut q, &perf).len();
            }
            assert_eq!(done, 32);
            done
        })
    });
    g.finish();
}

criterion_group!(benches, bench_control_plane, bench_scheduler_hot_loop);
criterion_main!(benches);
