//! Whole-run simulation throughput: one 20-minute serving trace end to end,
//! plus the continuous-vs-fixed engine comparison at equal configuration.

use cloudsim::AvailabilityTrace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llmsim::ModelSpec;
use spotserve::{EngineMode, Scenario, ServingSystem, SystemOptions};

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("serving_run");
    g.sample_size(10);
    g.bench_function("spotserve_opt67b_as", |b| {
        b.iter(|| {
            let sc = Scenario::paper_stable(
                ModelSpec::opt_6_7b(),
                AvailabilityTrace::paper_as(),
                1.5,
                1,
            );
            ServingSystem::new(SystemOptions::spotserve(), sc).run()
        })
    });
    g.bench_function("spotserve_gpt20b_bs", |b| {
        b.iter(|| {
            let sc = Scenario::paper_stable(
                ModelSpec::gpt_20b(),
                AvailabilityTrace::paper_bs(),
                0.35,
                1,
            );
            ServingSystem::new(SystemOptions::spotserve(), sc).run()
        })
    });
    g.finish();
}

/// Continuous batching vs run-to-completion at the same configuration on
/// the paper's stable workload (§6.1, Gamma CV 6). Besides the ns/iter
/// numbers, the measured serving throughput of each engine is printed so
/// regressions in the continuous engine's admission/retirement logic are
/// visible in CI logs: continuous must serve at least as fast as fixed.
fn bench_engine_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_comparison");
    g.sample_size(10);
    for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
        g.bench_function(
            BenchmarkId::new("spotserve_opt67b_stable", format!("{engine:?}")),
            |b| {
                b.iter(|| {
                    let sc = Scenario::paper_stable(
                        ModelSpec::opt_6_7b(),
                        AvailabilityTrace::constant(6),
                        1.5,
                        1,
                    );
                    ServingSystem::new(SystemOptions::spotserve().with_engine(engine), sc).run()
                })
            },
        );
    }
    g.finish();
    // One verification run per engine: report the serving-side throughput.
    for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
        let sc = Scenario::paper_stable(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(6),
            1.5,
            1,
        );
        let mut report =
            ServingSystem::new(SystemOptions::spotserve().with_engine(engine), sc).run();
        let p = report.latency.percentiles();
        let thr = p.count as f64 / report.finished_at.as_micros() as f64 * 1e6;
        println!(
            "engine_comparison/served  {engine:?}: {:.4} req/s, mean latency {:.2}s, p99 {:.2}s",
            thr, p.mean, p.p99
        );
    }
}

criterion_group!(benches, bench_e2e, bench_engine_comparison);
criterion_main!(benches);
