//! Whole-run simulation throughput: one 20-minute serving trace end to end.

use cloudsim::AvailabilityTrace;
use criterion::{criterion_group, criterion_main, Criterion};
use llmsim::ModelSpec;
use spotserve::{Scenario, ServingSystem, SystemOptions};

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("serving_run");
    g.sample_size(10);
    g.bench_function("spotserve_opt67b_as", |b| {
        b.iter(|| {
            let sc = Scenario::paper_stable(
                ModelSpec::opt_6_7b(),
                AvailabilityTrace::paper_as(),
                1.5,
                1,
            );
            ServingSystem::new(SystemOptions::spotserve(), sc).run()
        })
    });
    g.bench_function("spotserve_gpt20b_bs", |b| {
        b.iter(|| {
            let sc = Scenario::paper_stable(
                ModelSpec::gpt_20b(),
                AvailabilityTrace::paper_bs(),
                0.35,
                1,
            );
            ServingSystem::new(SystemOptions::spotserve(), sc).run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
