//! Whole-run simulation throughput: one 20-minute serving trace end to end,
//! the continuous-vs-fixed engine comparison at equal configuration, and
//! the chunked-prefill long-prompt/tight-SLO case.

use cloudsim::AvailabilityTrace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llmsim::ModelSpec;
use simkit::{SimDuration, SimRng, SimTime};
use spotserve::{EngineMode, Scenario, ServingSystem, SystemOptions};
use workload::{LengthDist, WorkloadSpec};

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("serving_run");
    g.sample_size(10);
    g.bench_function("spotserve_opt67b_as", |b| {
        b.iter(|| {
            let sc = Scenario::paper_stable(
                ModelSpec::opt_6_7b(),
                AvailabilityTrace::paper_as(),
                1.5,
                1,
            );
            ServingSystem::new(SystemOptions::spotserve(), sc).run()
        })
    });
    g.bench_function("spotserve_gpt20b_bs", |b| {
        b.iter(|| {
            let sc = Scenario::paper_stable(
                ModelSpec::gpt_20b(),
                AvailabilityTrace::paper_bs(),
                0.35,
                1,
            );
            ServingSystem::new(SystemOptions::spotserve(), sc).run()
        })
    });
    g.finish();
}

/// Continuous batching vs run-to-completion at the same configuration on
/// the paper's stable workload (§6.1, Gamma CV 6). Besides the ns/iter
/// numbers, the measured serving throughput of each engine is printed so
/// regressions in the continuous engine's admission/retirement logic are
/// visible in CI logs: continuous must serve at least as fast as fixed.
fn bench_engine_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_comparison");
    g.sample_size(10);
    for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
        g.bench_function(
            BenchmarkId::new("spotserve_opt67b_stable", format!("{engine:?}")),
            |b| {
                b.iter(|| {
                    let sc = Scenario::paper_stable(
                        ModelSpec::opt_6_7b(),
                        AvailabilityTrace::constant(6),
                        1.5,
                        1,
                    );
                    ServingSystem::new(SystemOptions::spotserve().with_engine(engine), sc).run()
                })
            },
        );
    }
    g.finish();
    // One verification run per engine: report the serving-side throughput.
    for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
        let sc = Scenario::paper_stable(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(6),
            1.5,
            1,
        );
        let mut report =
            ServingSystem::new(SystemOptions::spotserve().with_engine(engine), sc).run();
        let p = report.latency.percentiles();
        let thr = p.count as f64 / report.finished_at.as_micros() as f64 * 1e6;
        println!(
            "engine_comparison/served  {engine:?}: {:.4} req/s, mean latency {:.2}s, p99 {:.2}s",
            thr, p.mean, p.p99
        );
    }
}

/// The long-prompt/short-prompt + tight-SLO mix that chunked prefill
/// targets: 20% of prompts are 3072 tokens, every request carries a
/// deadline. Besides the ns/iter numbers, a verification pass reports the
/// p99 decode inter-token latency of each engine variant (measured over
/// every request's token-commit gaps in a driven scheduler) — chunked must
/// beat PR 2's unchunked continuous engine, since a monolithic 3072-token
/// prefill stalls every decoding neighbour for the whole pass.
fn bench_chunked_slo(c: &mut Criterion) {
    let requests = || {
        let spec = WorkloadSpec::paper_stable(1.0);
        let inputs = LengthDist::LongTail {
            common: 256,
            tail: 3072,
            tail_fraction: 0.2,
        };
        let outputs = LengthDist::Uniform { lo: 16, hi: 128 };
        let mut reqs =
            spec.generate_with_lengths(&inputs, &outputs, &mut SimRng::new(5).stream("arrivals"));
        reqs.retain(|r| r.arrival < SimTime::from_secs(300));
        workload::apply_slo(&mut reqs, SimDuration::from_secs(240));
        reqs
    };
    let mut g = c.benchmark_group("chunked_slo");
    g.sample_size(10);
    for chunk in [Some(128u32), None] {
        let label = match chunk {
            Some(n) => format!("chunk{n}"),
            None => "monolithic".into(),
        };
        g.bench_function(BenchmarkId::new("long_prompt_tight_slo", label), |b| {
            b.iter(|| {
                let sc = Scenario::with_requests(
                    ModelSpec::opt_6_7b(),
                    AvailabilityTrace::constant(4),
                    requests(),
                    1.0,
                    5,
                );
                let mut opts = SystemOptions::spotserve();
                if let Some(n) = chunk {
                    opts = opts.with_prefill_chunk(n);
                }
                ServingSystem::new(opts, sc).run()
            })
        });
    }
    g.finish();
    // Verification pass: p99 decode inter-token latency per engine, from a
    // directly driven scheduler over the same mix.
    let mut p99s = Vec::new();
    for chunk in [Some(128u32), None] {
        let p99 = p99_inter_token_gap(chunk, &requests());
        let label = match chunk {
            Some(n) => format!("chunk={n}"),
            None => "monolithic".into(),
        };
        println!("chunked_slo/inter_token  {label}: p99 decode inter-token {p99:.4}s");
        p99s.push(p99);
    }
    println!(
        "chunked_slo/inter_token  improvement: {:.1}x (chunked vs monolithic)",
        p99s[1] / p99s[0].max(1e-12)
    );
}

/// p99 over every request's decode inter-token gaps (prefill pass
/// excluded) when the request mix is pushed through one iteration
/// scheduler as fast as it admits.
fn p99_inter_token_gap(chunk: Option<u32>, requests: &[workload::Request]) -> f64 {
    use std::collections::{BTreeMap, VecDeque};

    let model = ModelSpec::opt_6_7b();
    let perf = parallelism::PerfModel::paper_defaults(model.clone());
    let cfg = parallelism::ParallelConfig::new(1, 1, 4, 8);
    let mut sched = enginesim::IterationScheduler::new(cfg, model.kv_bytes_per_token(), u64::MAX)
        .with_prefill_chunk(chunk);
    let mut pending: VecDeque<workload::Request> = requests.iter().copied().collect();
    // Strip deadlines: this measures raw engine behaviour; admission
    // control is benchmarked in the whole-system runs above.
    for r in &mut pending {
        r.deadline = None;
    }
    let mut last_commit: BTreeMap<u64, (SimTime, u32)> = BTreeMap::new();
    let mut gaps: Vec<f64> = Vec::new();
    sched.admit(&mut pending, SimTime::ZERO, &perf);
    let mut t = SimTime::ZERO;
    while sched.next_event().is_some() {
        while let Some(b) = sched.next_boundary_after(t) {
            for (id, committed) in sched.committed_per_request_at(b) {
                let entry = last_commit.entry(id.0).or_insert((b, 0));
                if committed > entry.1 {
                    if entry.1 > 0 {
                        // `committed - entry.1` tokens landed over this
                        // boundary gap; attribute the gap to each.
                        let per = b.saturating_since(entry.0).as_secs_f64()
                            / (committed - entry.1) as f64;
                        for _ in 0..(committed - entry.1) {
                            gaps.push(per);
                        }
                    }
                    *entry = (b, committed);
                }
            }
            t = b;
            if b >= sched.next_event().expect("running") {
                break;
            }
        }
        let end = sched.next_event().expect("running");
        sched.advance(end, &mut pending, &perf);
    }
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if gaps.is_empty() {
        return 0.0;
    }
    gaps[((gaps.len() as f64 - 1.0) * 0.99) as usize]
}

criterion_group!(
    benches,
    bench_e2e,
    bench_engine_comparison,
    bench_chunked_slo
);
criterion_main!(benches);
