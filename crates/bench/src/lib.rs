//! Experiment drivers that regenerate every table and figure of the paper.
//!
//! Each binary in `src/bin/` prints one table/figure in row/series form:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1: model sizes, min #GPUs, minimal `(P,M)`, `l_exe(B=1)` |
//! | `fig5`   | Figure 5: availability traces `A_S`, `B_S` and the mixed `+O` fleets |
//! | `fig6`   | Figure 6: avg/P90…P99 latency, 3 systems × 3 models × 4 traces |
//! | `fig7`   | Figure 7: monetary cost (USD/token) vs latency on GPT-20B |
//! | `fig8`   | Figure 8: fluctuating (MAF) workload study |
//! | `fig9`   | Figure 9: component ablation on GPT-20B |
//! | `fig_fleet` | Fleet policies: availability + cost split under a zone outage (beyond-paper) |
//! | `fig_hetero` | Heterogeneous SKUs: A100 collapse → L4/H100 recovery, per-policy cost (beyond-paper) |
//! | `fig_chaos` | Chaos pack: per-policy SLO attainment / cost / loss vs fault intensity, auditor-verified (beyond-paper) |
//!
//! The criterion benches (`benches/`) cover the paper's systems claims:
//! the online optimizer runs in well under a second (§3.2), KM mapping is
//! fast at fleet scale (§3.3), and migration planning is cheap (§3.4).

use cloudsim::{AvailabilityTrace, FaultSpec, InstanceType, PoolSpec, PriceModel, PriceTrace};
use llmsim::ModelSpec;
use simkit::metrics::Percentiles;
use simkit::{SimDuration, SimTime};
use spotserve::{AblationFlags, FleetPolicy, RunReport, Scenario, ServingSystem, SystemOptions};

/// The three serving systems of §6.1, in the paper's comparison order.
pub fn paper_systems() -> Vec<(&'static str, SystemOptions)> {
    vec![
        ("SpotServe", SystemOptions::spotserve()),
        ("Reparallelization", SystemOptions::reparallelization()),
        ("Rerouting", SystemOptions::rerouting()),
    ]
}

/// The paper's per-model request rates (§6.1): OPT 1.5, GPT 0.35,
/// LLaMA 0.2 requests/s.
pub fn paper_rate(model: &ModelSpec) -> f64 {
    match model.name {
        "OPT-6.7B" => 1.5,
        "GPT-20B" => 0.35,
        "LLaMA-30B" => 0.2,
        _ => 1.0,
    }
}

/// The four §6.2 trace variants: `A_S`, `B_S` spot-only, and the same
/// spot traces with on-demand mixing enabled (`A_S+O`, `B_S+O`).
pub fn paper_traces() -> Vec<(&'static str, AvailabilityTrace, bool)> {
    vec![
        ("AS", AvailabilityTrace::paper_as(), false),
        ("BS", AvailabilityTrace::paper_bs(), false),
        ("AS+O", AvailabilityTrace::paper_as(), true),
        ("BS+O", AvailabilityTrace::paper_bs(), true),
    ]
}

/// Runs one `(system, model, trace)` cell of Figure 6 and returns the
/// report. `seed` controls workload + cloud randomness.
pub fn run_cell(
    mut opts: SystemOptions,
    model: &ModelSpec,
    trace: &AvailabilityTrace,
    mixing: bool,
    rate: f64,
    seed: u64,
) -> RunReport {
    if mixing {
        opts = opts.with_on_demand_mixing();
    }
    let scenario = Scenario::paper_stable(model.clone(), trace.clone(), rate, seed);
    ServingSystem::new(opts, scenario).run()
}

/// The fleet acquisition policies compared by the `fig_fleet` figure, in
/// escalation order: the paper baseline, the on-demand bridge, and the
/// SkyServe-style multi-pool hedge.
pub fn fleet_policy_ladder() -> Vec<(&'static str, FleetPolicy)> {
    vec![
        ("ReactiveSpot", FleetPolicy::ReactiveSpot),
        ("OnDemandFallback", FleetPolicy::OnDemandFallback),
        ("SpotHedge", FleetPolicy::spot_hedge()),
    ]
}

/// The scripted zone-outage scenario behind `fig_fleet` and the pinned
/// acceptance test: three pools, `z0` collapsing entirely at t = 300 s
/// while `z1`/`z2` stay healthy (`z2` priced below list). OPT-6.7B at
/// 1 req/s for 480 s of arrivals, every request carrying a 900 s SLO.
pub fn zone_outage_scenario(seed: u64) -> Scenario {
    let pools = vec![
        PoolSpec::new(
            "z0",
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(300), 0)]),
        ),
        PoolSpec::new("z1", AvailabilityTrace::constant(4)),
        PoolSpec::new("z2", AvailabilityTrace::constant(4)).with_spot_price(1.4),
    ];
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(480));
    workload::apply_slo(&mut scenario.requests, SimDuration::from_secs(900));
    scenario
}

/// The acquisition policies compared on the heterogeneous-SKU scenario:
/// the single-SKU-minded on-demand bridge, the price-blind multi-pool
/// hedge, and the SKU/price-aware hedge that routes its on-demand
/// backstop to the cheapest capable pool.
pub fn hetero_policy_ladder() -> Vec<(&'static str, FleetPolicy)> {
    vec![
        ("OnDemandFallback", FleetPolicy::OnDemandFallback),
        ("SpotHedge", FleetPolicy::spot_hedge()),
        ("CostAwareHedge", FleetPolicy::cost_aware_hedge()),
    ]
}

/// The heterogeneous-fleet collapse behind `fig_hetero`: three pools with
/// *different* SKUs. The A100 pool (`p4d.24xlarge`) carries the fleet
/// until its spot market collapses entirely at t = 300 s; the cheap L4
/// pool (`g6.12xlarge`) stays healthy, and the premium H100 pool
/// (`p5.48xlarge`) has zero spot capacity — it only matters as an
/// on-demand backstop. OPT-6.7B at 1 req/s for 480 s of arrivals, every
/// request carrying a 900 s SLO. Recovery therefore *must* cross SKUs:
/// the optimizer's L4 lane (or on-demand H100) picks up the traffic.
pub fn hetero_outage_scenario(seed: u64) -> Scenario {
    let pools = vec![
        PoolSpec::new(
            "a100",
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(300), 0)]),
        )
        .with_instance_type(InstanceType::a100()),
        PoolSpec::new("l4", AvailabilityTrace::constant(6)).with_instance_type(InstanceType::l4()),
        PoolSpec::new("h100", AvailabilityTrace::constant(0))
            .with_instance_type(InstanceType::h100()),
    ];
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(480));
    workload::apply_slo(&mut scenario.requests, SimDuration::from_secs(900));
    scenario
}

/// The acquisition policies compared on the price-spike scenario: the
/// price-blind hedge, the price-biased hedge, and the $/token optimizer
/// that masks spiked pools and bridges with on-demand past parity.
pub fn price_policy_ladder() -> Vec<(&'static str, FleetPolicy)> {
    vec![
        ("SpotHedge", FleetPolicy::spot_hedge()),
        ("CostAwareHedge", FleetPolicy::cost_aware_hedge()),
        ("CostPerToken", FleetPolicy::cost_per_token()),
    ]
}

/// The spot-market squeeze behind `fig_price`: two same-SKU pools where
/// the cheap pool's market *tightens* mid-run — capacity collapses at
/// t = 300 s while the clearing price spikes from \$1.9/h to \$6.0/h
/// (well past on-demand parity: the SKU lists at \$3.9/h on-demand),
/// capacity returns at t = 450 s *at the spiked price* (re-quoted at
/// \$6.3/h at t = 480 s), and the market only cools long after the run.
/// The calm pool stays at \$2.1/h but is too small to hold the target
/// alone, so every policy must find capacity somewhere:
///
/// * `SpotHedge` is price-blind — once `spiky` re-opens it re-spreads
///   into it and pays the spiked price for the rest of the run;
/// * `CostPerToken` masks the pool past its parity threshold and bridges
///   the shortfall with on-demand at \$3.9/h — strictly cheaper than
///   spiked spot, and acquired sooner (it never waits for `spiky` to
///   re-open).
///
/// OPT-6.7B at 1 req/s for 900 s of arrivals, every request carrying a
/// 900 s SLO. Price re-quotes reach the controller as
/// [`SpotPriceStep`](cloudsim::CloudEvent::SpotPriceStep) events.
pub fn price_spike_scenario(seed: u64) -> Scenario {
    let pools = vec![
        PoolSpec::new(
            "spiky",
            AvailabilityTrace::from_steps(vec![
                (SimTime::ZERO, 6),
                (SimTime::from_secs(300), 0),
                (SimTime::from_secs(450), 6),
            ]),
        )
        .with_price(PriceModel::Trace(PriceTrace::from_steps(vec![
            (SimTime::ZERO, 1.9),
            (SimTime::from_secs(300), 6.0),
            (SimTime::from_secs(480), 6.3),
            (SimTime::from_secs(3600), 1.9),
        ]))),
        PoolSpec::new("calm", AvailabilityTrace::constant(3)).with_spot_price(2.1),
    ];
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(900));
    workload::apply_slo(&mut scenario.requests, SimDuration::from_secs(900));
    scenario
}

/// The acquisition policies compared on the chaos pack: the single-market
/// reactive baseline (which stalls when its pool degrades), the
/// price-blind hedge, and the $/token optimizer — both hedged policies
/// carry the retry/backoff/escalation machinery.
pub fn chaos_policy_ladder() -> Vec<(&'static str, FleetPolicy)> {
    vec![
        ("ReactiveSpot", FleetPolicy::ReactiveSpot),
        ("SpotHedge", FleetPolicy::spot_hedge()),
        ("CostPerToken", FleetPolicy::cost_per_token()),
    ]
}

/// The intensity the CI gate pins: high enough that every fault channel
/// fires, low enough that a hedged policy recovers with zero loss.
pub const STANDARD_CHAOS_INTENSITY: f64 = 0.6;

/// The chaos-pack scenario behind `fig_chaos`: the pinned zone outage
/// (`z0` collapses at t = 300 s, recovers at t = 600 s) with the
/// [`FaultSpec::pack`] layered on top at `intensity` — unannounced kills,
/// lost and truncated notices, lapsed grants, and a degraded link on
/// `z0`; `z1`/`z2` run a half-intensity pack so the survivors churn too.
/// OPT-6.7B at 1 req/s for 480 s of arrivals, every request carrying a
/// 900 s SLO. At `intensity = 0`, the packs are all-off (`calm`) and the
/// scenario degenerates to the plain scripted outage.
pub fn chaos_pack_scenario(intensity: f64, seed: u64) -> Scenario {
    let pack = |scale: f64| {
        let i = intensity * scale;
        if i > 0.0 {
            FaultSpec::pack(i)
        } else {
            FaultSpec::calm()
        }
    };
    let pools = vec![
        PoolSpec::new(
            "z0",
            AvailabilityTrace::from_steps(vec![
                (SimTime::ZERO, 6),
                (SimTime::from_secs(300), 0),
                (SimTime::from_secs(600), 6),
            ]),
        )
        .with_faults(pack(1.0)),
        PoolSpec::new("z1", AvailabilityTrace::constant(4)).with_faults(pack(0.5)),
        PoolSpec::new("z2", AvailabilityTrace::constant(4)).with_faults(pack(0.5)),
    ];
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(480));
    workload::apply_slo(&mut scenario.requests, SimDuration::from_secs(900));
    scenario
}

/// The Figure 9 ablation ladder: components disabled cumulatively, in the
/// paper's order.
pub fn ablation_ladder() -> Vec<(&'static str, AblationFlags)> {
    let mut flags = AblationFlags::default();
    let mut out = vec![("SpotServe", flags)];
    flags.no_controller = true;
    out.push(("-Controller", flags));
    flags.no_migration_planner = true;
    out.push(("-Migration Planner", flags));
    flags.no_interruption_arranger = true;
    out.push(("-Interruption Arranger", flags));
    flags.no_device_mapper = true;
    out.push(("-Device Mapper", flags));
    out
}

/// The million-request replay behind `fig_scale`: `pools` stable zones
/// (one per shard), OPT-6.7B at a per-pool-sustainable aggregate rate,
/// exactly `requests` Gamma arrivals. Every pool carries a price trace
/// with a re-quote step every simulated hour, so the sharded run crosses
/// a `SpotPriceStep` barrier each hour — the epoch machinery is
/// exercised, not idled, at scale.
///
/// # Panics
///
/// Panics if the generated stream falls short of `requests` (the
/// duration carries 3% slack, so this means the workload model changed).
pub fn scale_replay_scenario(pools: usize, requests: usize, seed: u64) -> Scenario {
    // ~1.5 req/s per pool: the paper's sustainable OPT-6.7B rate, so
    // per-shard queues stay bounded over the whole replay.
    let rate = 1.5 * pools as f64;
    let mut spec = workload::WorkloadSpec::paper_stable(rate);
    spec.duration = SimDuration::from_secs_f64(requests as f64 / rate * 1.03);
    let mut stream = simkit::SimRng::new(seed).stream("arrivals");
    let mut all = spec.generate(&mut stream);
    assert!(
        all.len() >= requests,
        "workload produced {} < {requests} requests",
        all.len()
    );
    all.truncate(requests);
    let horizon = spec.duration.as_secs_f64() as u64;
    let pool_specs = (0..pools)
        .map(|i| {
            let steps: Vec<(SimTime, f64)> = (0..=horizon / 3600)
                .map(|h| {
                    // Deterministic +/-10% wobble around $1.9/h, staggered
                    // per pool so the hourly barriers are real re-quotes.
                    let wobble = ((h + i as u64) % 5) as f64 * 0.05 - 0.1;
                    (SimTime::from_secs(h * 3600), 1.9 * (1.0 + wobble))
                })
                .collect();
            PoolSpec::new(format!("z{i}"), AvailabilityTrace::constant(4))
                .with_price(PriceModel::Trace(PriceTrace::from_steps(steps)))
        })
        .collect();
    Scenario::with_requests(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        all,
        rate,
        seed,
    )
    .with_pools(pool_specs)
}

/// Formats a Figure 6 style row: `Avg  P90 P95 P96 P97 P98 P99` (seconds).
pub fn latency_row(p: &Percentiles) -> String {
    format!(
        "avg={:7.1}  p90={:7.1}  p95={:7.1}  p96={:7.1}  p97={:7.1}  p98={:7.1}  p99={:7.1}",
        p.mean, p.p90, p.p95, p.p96, p.p97, p.p98, p.p99
    )
}

/// Prints a boxed section header.
pub fn header(title: &str) {
    println!();
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// The machine-readable output path named by `CRITERION_JSON`, if set —
/// the growing JSON array document the vendored criterion shim writes
/// ns/iter records into and the figure binaries append their summary
/// records to, so CI jq-gates one file per run.
pub fn criterion_json_path() -> Option<std::path::PathBuf> {
    std::env::var_os("CRITERION_JSON").map(std::path::PathBuf::from)
}

/// Appends one record to the JSON array document at `path`, creating the
/// array if the file is missing or empty. Mirrors the vendored criterion
/// shim's format so figure records and ns/iter records share one file.
pub fn append_json_record(path: &std::path::Path, record: &str) {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(init) if !init.trim_end().ends_with('[') => {
                    format!("{init},\n  {record}\n]\n", init = init.trim_end())
                }
                _ => format!("[\n  {record}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {record}\n]\n"),
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("append_json_record: cannot write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_cover_paper_models() {
        for m in ModelSpec::paper_models() {
            assert!(paper_rate(&m) > 0.0);
        }
        assert_eq!(paper_rate(&ModelSpec::llama_13b()), 1.0);
    }

    #[test]
    fn ablation_ladder_is_cumulative() {
        let ladder = ablation_ladder();
        assert_eq!(ladder.len(), 5);
        assert!(!ladder[0].1.no_controller);
        assert!(ladder[4].1.no_controller && ladder[4].1.no_device_mapper);
    }

    #[test]
    fn fleet_ladder_and_outage_scenario_are_well_formed() {
        let ladder = fleet_policy_ladder();
        assert_eq!(ladder.len(), 3);
        assert!(ladder[0].1.is_reactive());
        let s = zone_outage_scenario(1);
        assert_eq!(s.pools.len(), 3);
        assert_eq!(s.pools[0].trace.min_capacity(), 0, "z0 collapses");
        assert!(s.requests.iter().all(|r| r.deadline.is_some()));
    }

    #[test]
    fn hetero_ladder_and_scenario_are_well_formed() {
        let ladder = hetero_policy_ladder();
        assert_eq!(ladder.len(), 3);
        let s = hetero_outage_scenario(1);
        assert_eq!(s.pools.len(), 3);
        let skus: Vec<&str> = s
            .pools
            .iter()
            .map(|p| p.instance_type.as_ref().unwrap().name)
            .collect();
        assert_eq!(skus, ["p4d.24xlarge", "g6.12xlarge", "p5.48xlarge"]);
        assert_eq!(s.pools[0].trace.min_capacity(), 0, "a100 pool collapses");
        assert_eq!(s.pools[2].trace.min_capacity(), 0, "h100 is on-demand only");
        assert!(s.requests.iter().all(|r| r.deadline.is_some()));
    }

    #[test]
    fn price_ladder_and_spike_scenario_are_well_formed() {
        let ladder = price_policy_ladder();
        assert_eq!(ladder.len(), 3);
        assert!(matches!(ladder[2].1, FleetPolicy::CostPerToken { .. }));
        let s = price_spike_scenario(1);
        assert_eq!(s.pools.len(), 2);
        let spiky = s.pools[0].price.as_ref().expect("spiky pool is priced");
        assert!(spiky.is_dynamic(), "the squeeze needs a moving price");
        assert_eq!(s.pools[0].trace.min_capacity(), 0, "spiky pool collapses");
        assert!(s.requests.iter().all(|r| r.deadline.is_some()));
    }

    #[test]
    fn traces_cover_four_variants() {
        let ts = paper_traces();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.iter().filter(|(_, _, mix)| *mix).count(), 2);
    }
}
