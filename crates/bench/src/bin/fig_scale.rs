//! Million-request scale replay (beyond-paper): the sharded simulation
//! core at 10⁶ requests across 8 pools, swept over worker-thread counts.
//!
//! One scenario, one shard layout (8 shards, one pool each), three
//! thread budgets. Every run must produce the same
//! [`ScaleReport::digest`] — threads buy wall-clock time, never a
//! different answer — and the max-thread run must clear 100k simulated
//! requests per second, the scale claim CI gates on.
//!
//! When `CRITERION_JSON` names a file, a record per thread count is
//! appended there (same growing-array document the vendored criterion
//! shim writes ns/iter records into) so CI can jq-gate both the
//! throughput floor and the 1-thread ≡ N-thread digest.

use std::path::Path;
use std::time::Instant;

use spotserve::{ScaleReport, ShardedSystem, SystemOptions};
use spotserve_bench::{header, scale_replay_scenario};

const POOLS: usize = 8;
const REQUESTS: usize = 1_000_000;
const SEED: u64 = 8;

/// Appends one record to the JSON array document at `path`, creating the
/// array if the file is missing or empty. Mirrors the vendored criterion
/// shim's format so figure records and ns/iter records share one file.
fn append_json_record(path: &Path, record: &str) {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(init) if !init.trim_end().ends_with('[') => {
                    format!("{init},\n  {record}\n]\n", init = init.trim_end())
                }
                _ => format!("[\n  {record}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {record}\n]\n"),
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("fig_scale: cannot write {}: {e}", path.display());
    }
}

fn total_events(report: &ScaleReport) -> u64 {
    report
        .epochs
        .last()
        .map(|e| e.events.iter().sum())
        .unwrap_or(0)
}

fn main() {
    header(&format!(
        "Million-request replay: {REQUESTS} requests, {POOLS} pools, OPT-6.7B, sharded x{POOLS}"
    ));
    let json_path = std::env::var_os("CRITERION_JSON").map(std::path::PathBuf::from);
    let scenario = scale_replay_scenario(POOLS, REQUESTS, SEED);

    println!(
        "{:<10} {:>9} {:>14} {:>8} {:>9} {:>7} {:>12} {:>18}",
        "Run", "wall s", "sim req/s", "epochs", "events", "unfin", "completed", "digest"
    );
    let mut first_digest = None;
    for threads in [1usize, 4, POOLS] {
        let sys = ShardedSystem::new(SystemOptions::spotserve(), scenario.clone(), POOLS)
            .with_threads(threads);
        let t0 = Instant::now();
        let report = sys.run();
        let wall = t0.elapsed().as_secs_f64();
        let digest = report.digest();
        let sim_req_per_s = REQUESTS as f64 / wall;
        println!(
            "{:<10} {wall:>9.2} {sim_req_per_s:>14.0} {:>8} {:>9} {:>7} {:>12} {digest:#018x}",
            format!("replay_{threads}t"),
            report.epochs.len(),
            total_events(&report),
            report.unfinished,
            report.completed,
        );
        match first_digest {
            None => first_digest = Some(digest),
            Some(d) => assert_eq!(
                d, digest,
                "thread count changed the canonical output — determinism broken"
            ),
        }
        if let Some(path) = &json_path {
            append_json_record(
                path,
                &format!(
                    concat!(
                        r#"{{"group":"fig_scale","bench":"replay_{threads}t","threads":{threads},"#,
                        r#""requests":{req},"pools":{pools},"shards":{pools},"wall_s":{wall:.3},"#,
                        r#""sim_req_per_s":{rps:.0},"epochs":{epochs},"events":{events},"#,
                        r#""completed":{completed},"unfinished":{unfin},"digest":"{digest:016x}"}}"#
                    ),
                    threads = threads,
                    req = REQUESTS,
                    pools = POOLS,
                    wall = wall,
                    rps = sim_req_per_s,
                    epochs = report.epochs.len(),
                    events = total_events(&report),
                    completed = report.completed,
                    unfin = report.unfinished,
                    digest = digest,
                ),
            );
        }
    }
    println!();
    println!("Shards share nothing between barriers, so the digest is identical for");
    println!("every thread budget; threads only buy wall-clock time. Barriers fall on");
    println!("the hourly SpotPriceStep re-quotes each pool's price trace schedules.");
}
