//! Million-request scale replay (beyond-paper): the sharded simulation
//! core at 10⁶ requests across 8 pools, swept over worker-thread counts
//! with telemetry off and on.
//!
//! One scenario, one shard layout (8 shards, one pool each), three
//! thread budgets, two telemetry modes. Every run must produce the same
//! [`ScaleReport::digest`] — threads buy wall-clock time and telemetry
//! buys observability, never a different answer — the max-thread run
//! must clear 100k simulated requests per second, and the telemetry-on
//! runs must agree on [`ScaleReport::stream_digest`] for every thread
//! budget (the export is thread-count invariant). CI gates on all three.
//!
//! When `CRITERION_JSON` names a file, a record per run is appended
//! there (same growing-array document the vendored criterion shim
//! writes ns/iter records into) so CI can jq-gate the throughput floor,
//! the 1-thread ≡ N-thread digest, the telemetry overhead ceiling, and
//! the stream-digest invariance. When `TELEMETRY_JSONL` names a file,
//! the max-thread run's merged event stream is exported there as JSONL.

use std::time::Instant;

use spotserve::{ScaleReport, ShardedSystem, SystemOptions};
use spotserve_bench::{append_json_record, criterion_json_path, header, scale_replay_scenario};

const POOLS: usize = 8;
const REQUESTS: usize = 1_000_000;
const SEED: u64 = 8;

fn total_events(report: &ScaleReport) -> u64 {
    report
        .epochs
        .last()
        .map(|e| e.events.iter().sum())
        .unwrap_or(0)
}

fn main() {
    header(&format!(
        "Million-request replay: {REQUESTS} requests, {POOLS} pools, OPT-6.7B, sharded x{POOLS}"
    ));
    let json_path = criterion_json_path();
    let jsonl_path = std::env::var_os("TELEMETRY_JSONL").map(std::path::PathBuf::from);
    let scenario = scale_replay_scenario(POOLS, REQUESTS, SEED);

    println!(
        "{:<14} {:>9} {:>14} {:>8} {:>9} {:>7} {:>12} {:>18}",
        "Run", "wall s", "sim req/s", "epochs", "events", "unfin", "completed", "digest"
    );
    let mut first_digest = None;
    let mut first_stream_digest = None;
    for telemetry in [false, true] {
        for threads in [1usize, 4, POOLS] {
            let opts = if telemetry {
                SystemOptions::spotserve().with_telemetry()
            } else {
                SystemOptions::spotserve()
            };
            let sys = ShardedSystem::new(opts, scenario.clone(), POOLS).with_threads(threads);
            let t0 = Instant::now();
            let report = sys.run();
            let wall = t0.elapsed().as_secs_f64();
            let digest = report.digest();
            let stream_digest = report.stream_digest();
            let sim_req_per_s = REQUESTS as f64 / wall;
            let bench = if telemetry {
                format!("replay_{threads}t_tel")
            } else {
                format!("replay_{threads}t")
            };
            println!(
                "{bench:<14} {wall:>9.2} {sim_req_per_s:>14.0} {:>8} {:>9} {:>7} {:>12} {digest:#018x}",
                report.epochs.len(),
                total_events(&report),
                report.unfinished,
                report.completed,
            );
            match first_digest {
                None => first_digest = Some(digest),
                Some(d) => assert_eq!(
                    d, digest,
                    "thread count or telemetry changed the canonical output — determinism broken"
                ),
            }
            if telemetry {
                let sd = stream_digest.expect("telemetry-on run carries a stream");
                match first_stream_digest {
                    None => first_stream_digest = Some(sd),
                    Some(d) => assert_eq!(
                        d, sd,
                        "thread count changed the telemetry stream — export not invariant"
                    ),
                }
                if threads == POOLS {
                    if let (Some(path), Some(stream)) = (&jsonl_path, &report.telemetry) {
                        match stream.write_jsonl_file(path) {
                            Ok(()) => println!(
                                "    exported {} telemetry records to {}",
                                stream.len(),
                                path.display()
                            ),
                            Err(e) => {
                                eprintln!("fig_scale: cannot write {}: {e}", path.display())
                            }
                        }
                    }
                }
            }
            if let Some(path) = &json_path {
                append_json_record(
                    path,
                    &format!(
                        concat!(
                            r#"{{"group":"fig_scale","bench":"{bench}","threads":{threads},"#,
                            r#""telemetry":"{tel}","requests":{req},"pools":{pools},"#,
                            r#""shards":{pools},"wall_s":{wall:.3},"sim_req_per_s":{rps:.0},"#,
                            r#""epochs":{epochs},"events":{events},"completed":{completed},"#,
                            r#""unfinished":{unfin},"digest":"{digest:016x}","#,
                            r#""stream_digest":"{sd}","stream_len":{slen}}}"#
                        ),
                        bench = bench,
                        threads = threads,
                        tel = if telemetry { "on" } else { "off" },
                        req = REQUESTS,
                        pools = POOLS,
                        wall = wall,
                        rps = sim_req_per_s,
                        epochs = report.epochs.len(),
                        events = total_events(&report),
                        completed = report.completed,
                        unfin = report.unfinished,
                        digest = digest,
                        sd = stream_digest
                            .map(|d| format!("{d:016x}"))
                            .unwrap_or_default(),
                        slen = report.telemetry.as_ref().map_or(0, |s| s.len()),
                    ),
                );
            }
        }
    }
    println!();
    println!("Shards share nothing between barriers, so the digest is identical for");
    println!("every thread budget; threads only buy wall-clock time. Barriers fall on");
    println!("the hourly SpotPriceStep re-quotes each pool's price trace schedules.");
    println!("Telemetry-on runs replay the same bytes and merge per-shard streams by");
    println!("(time, shard, seq), so the JSONL export never depends on thread count.");
}
