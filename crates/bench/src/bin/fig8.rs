//! Regenerates Figure 8: the fluctuating-workload (rescaled MAF) study.
//!
//! Panels: (a) the raw synthetic MAF-shaped rate curve, (b) the selected
//! 15-minute rescaled segment, (c)(d) the fleets held on the two
//! availability traces, (e)(f) latency statistics for the three systems,
//! (g)(h) per-request latency over time with the configurations adopted
//! after each reparallelization.

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use simkit::{SimDuration, SimRng};
use spotserve::{Scenario, ServingSystem};
use spotserve_bench::{header, latency_row, paper_systems};
use workload::{ArrivalProcess, RateProfile, WorkloadSpec};

fn requests_for(profile: &RateProfile, seed: u64) -> Vec<workload::Request> {
    let spec = WorkloadSpec {
        process: ArrivalProcess::Gamma { rate: 1.0, cv: 6.0 },
        duration: SimDuration::from_secs(900),
        s_in: 512,
        s_out: 128,
    };
    spec.generate_with_profile(profile, &mut SimRng::new(seed).stream("arrivals"))
}

fn main() {
    header("Figure 8: fluctuating (rescaled MAF) workload, GPT-20B, +O mixing");

    // (a) raw MAF-shaped trace.
    println!("\n(a) raw MAF-shaped arrival-rate curve (req/s per minute):");
    let raw = RateProfile::maf_raw(&mut SimRng::new(7).stream("maf"));
    for (i, &(t, r)) in raw.steps().iter().enumerate() {
        if i % 15 == 0 {
            println!("  t={:>6.0}s rate={:.2}", t.as_secs_f64(), r);
        }
    }

    // (b) the selected, rescaled segment.
    let profile = RateProfile::maf_like(0.35, 2.2);
    println!("\n(b) selected rescaled segment (drives the experiment):");
    for &(t, r) in profile.steps() {
        println!("  t={:>5.0}s rate={:.3} req/s", t.as_secs_f64(), r);
    }

    let model = ModelSpec::gpt_20b();
    for (tname, trace) in [
        ("A'S+O", AvailabilityTrace::paper_as_prime()),
        ("B'S+O", AvailabilityTrace::paper_bs_prime()),
    ] {
        println!("\n=== Trace {tname} ===");
        let requests = requests_for(&profile, 11);
        println!("workload: {} requests over 900 s", requests.len());
        for (sname, opts) in paper_systems() {
            let opts = opts.with_on_demand_mixing();
            let scenario =
                Scenario::with_requests(model.clone(), trace.clone(), requests.clone(), 0.35, 11);
            let mut report = ServingSystem::new(opts, scenario).run();
            let p = report.latency.percentiles();
            // (e)(f) latency statistics.
            println!("{:<18} {}", sname, latency_row(&p));
            if sname == "SpotServe" {
                // (c)(d) the fleet held over time.
                println!("  fleet (spot/od):");
                let mut last = (u32::MAX, u32::MAX);
                for &(t, s, o) in &report.fleet_timeline {
                    if (s, o) != last && t.as_secs_f64() <= 900.0 {
                        last = (s, o);
                        println!("    t={:>5.0}s spot={s:>2} od={o}", t.as_secs_f64());
                    }
                }
                // (g)(h) configurations adopted over time.
                println!("  configurations adopted:");
                for c in &report.config_changes {
                    if c.at.as_secs_f64() > 900.0 {
                        break;
                    }
                    match c.config {
                        Some(cfg) => println!(
                            "    t={:>5.0}s {} (pause {:.1}s)",
                            c.at.as_secs_f64(),
                            cfg,
                            c.pause.as_secs_f64()
                        ),
                        None => println!("    t={:>5.0}s HALTED", c.at.as_secs_f64()),
                    }
                }
                // (g)(h) per-request latency timeline, bucketed by minute.
                println!("  per-request latency (per-minute mean):");
                let mut sums = vec![(0.0f64, 0u32); 15];
                for (arr, lat) in report.latency.timeline() {
                    let b = (arr.as_secs_f64() / 60.0) as usize;
                    if b < sums.len() {
                        sums[b].0 += lat;
                        sums[b].1 += 1;
                    }
                }
                for (i, (sum, n)) in sums.iter().enumerate() {
                    if *n > 0 {
                        println!(
                            "    minute {:>2}: {:>6.1}s ({} reqs)",
                            i,
                            sum / *n as f64,
                            n
                        );
                    }
                }
            }
        }
    }
}
