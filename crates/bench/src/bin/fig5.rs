//! Regenerates Figure 5: the spot availability traces `A_S` / `B_S` and
//! the mixed-fleet traces `A_S+O` / `B_S+O` produced by running Algorithm 1
//! with on-demand mixing (each instance has four GPUs).

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use spotserve::SystemOptions;
use spotserve_bench::{header, run_cell};

fn print_trace(name: &str, trace: &AvailabilityTrace) {
    println!("\n--- Trace {name} (spot capacity, #instances over time) ---");
    for &(t, c) in trace.steps() {
        println!(
            "t={:>6.0}s  capacity={:>2}  {}",
            t.as_secs_f64(),
            c,
            "#".repeat(c as usize)
        );
    }
}

fn print_mixed(name: &str, trace: &AvailabilityTrace) {
    // The +O fleets come out of an actual SpotServe run with mixing on
    // (the paper generates them "following Algorithm 1").
    let model = ModelSpec::gpt_20b();
    let report = run_cell(SystemOptions::spotserve(), &model, trace, true, 0.35, 42);
    println!("\n--- Trace {name}+O (spot + on-demand held by SpotServe, GPT-20B) ---");
    let mut last = (u32::MAX, u32::MAX);
    for &(t, spot, od) in &report.fleet_timeline {
        if (spot, od) == last || t.as_secs_f64() > 1200.0 {
            continue;
        }
        last = (spot, od);
        println!(
            "t={:>6.0}s  spot={:>2} od={:>2} total={:>2}  {}{}",
            t.as_secs_f64(),
            spot,
            od,
            spot + od,
            "#".repeat(spot as usize),
            "o".repeat(od as usize)
        );
    }
}

fn main() {
    header("Figure 5: availability traces (4 GPUs per instance)");
    let a = AvailabilityTrace::paper_as();
    let b = AvailabilityTrace::paper_bs();
    print_trace("AS", &a);
    print_trace("BS", &b);
    print_mixed("AS", &a);
    print_mixed("BS", &b);
}
