//! Regenerates Figure 6: end-to-end serving performance of SpotServe vs
//! Reparallelization vs Rerouting — three models × four traces, reporting
//! average and P90–P99 tail latencies plus SpotServe's P99 improvement
//! factors (the numbers printed inside each paper subplot).

use llmsim::ModelSpec;
use spotserve_bench::{header, latency_row, paper_rate, paper_systems, paper_traces, run_cell};

fn main() {
    header("Figure 6: end-to-end latency, 3 systems x 3 models x 4 traces");
    let seed = 1;
    for model in ModelSpec::paper_models() {
        let rate = paper_rate(&model);
        for (tname, trace, mixing) in paper_traces() {
            println!("\n--- {} @ {} req/s on {} ---", model.name, rate, tname);
            let mut p99s = Vec::new();
            for (sname, opts) in paper_systems() {
                let mut report = run_cell(opts, &model, &trace, mixing, rate, seed);
                let p = report.latency.percentiles();
                println!(
                    "{:<18} {}  (unfinished={}, preemptions={})",
                    sname,
                    latency_row(&p),
                    report.unfinished,
                    report.preemptions
                );
                p99s.push(p.p99);
            }
            println!(
                "SpotServe P99 improvement: {:.2}x vs Reparallelization, {:.2}x vs Rerouting",
                p99s[1] / p99s[0],
                p99s[2] / p99s[0]
            );
        }
    }
    println!();
    println!("Paper reference (P99 improvements): LLaMA-30B 1.34-2.43x vs");
    println!("Reparallelization and 2.14-9.13x vs Rerouting across traces;");
    println!("the qualitative claim is that SpotServe wins every metric on");
    println!("every trace, with the largest gaps on the volatile BS trace.");
}
