//! Fleet-policy figure (beyond-paper): availability and cost across
//! acquisition policies under a scripted single-zone capacity collapse.
//!
//! Three pools (`z0` dies at t = 300 s; `z1`/`z2` healthy, `z2` cheaper),
//! OPT-6.7B at 1 req/s with a 900 s SLO on every request. For each
//! [`FleetPolicy`](spotserve::FleetPolicy) the figure reports the minimum
//! live fleet after the collapse settles — event-exact, from the
//! telemetry stream's grant/kill/release records rather than the sampled
//! fleet timeline — request loss, SLO rejections, the spot vs on-demand
//! cost split (and per-pool attribution), and USD per generated token —
//! the availability-vs-cost frontier the fleet controller opens.

use simkit::SimTime;
use spotserve::{ServingSystem, SystemOptions};
use spotserve_bench::{fleet_policy_ladder, header, zone_outage_scenario};

fn main() {
    header("Fleet policies: single-zone collapse (z0 dies at t=300s), OPT-6.7B @ 1 req/s");
    let seed = 1;
    // Collapse + grace + grant delay + scheduling slack.
    let settled = SimTime::from_secs(300 + 30 + 40 + 30);

    println!(
        "{:<18} {:>9} {:>7} {:>8} {:>10} {:>10} {:>14} {:>10}",
        "Policy", "min live", "unfin", "slo rej", "spot USD", "od USD", "USD/token", "avg lat"
    );
    for (name, policy) in fleet_policy_ladder() {
        let opts = SystemOptions::spotserve()
            .with_fleet_policy(policy)
            .with_telemetry();
        let mut report = ServingSystem::new(opts, zone_outage_scenario(seed)).run();
        let stream = report.telemetry.take().expect("run built with telemetry");
        let p = report.latency.percentiles();
        let cost = report.cost();
        let cpt = cost.usd_per_token.unwrap_or(f64::NAN);
        println!(
            "{name:<18} {:>9} {:>7} {:>8} {:>10.3} {:>10.3} {:>11.2}e-5 {:>10.1}",
            stream.live_floor_after(settled),
            report.unfinished,
            report.slo_rejections.len(),
            cost.spot_usd,
            cost.ondemand_usd,
            cpt * 1e5,
            p.mean,
        );
        for pc in &cost.pools {
            println!(
                "    {:<14} {:<4} spot={:>8.3} USD  on-demand={:>8.3} USD",
                format!("pool {}", pc.pool),
                pc.name,
                pc.spot_usd,
                pc.ondemand_usd
            );
        }
    }
    println!();
    println!("ReactiveSpot is bound to z0's market and stalls when it collapses;");
    println!("OnDemandFallback bridges the gap at on-demand prices; SpotHedge");
    println!("spreads target+hedge across zones so the survivors alone hold the");
    println!("optimizer's target N (SkyServe-style spot hedging).");
}
