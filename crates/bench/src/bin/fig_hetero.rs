//! Heterogeneity figure (beyond-paper): recovery across *unlike* GPU SKUs.
//!
//! Three pools, three SKUs: the A100 pool (`p4d.24xlarge`) carries the
//! fleet until its spot market collapses at t = 300 s, the cheap L4 pool
//! (`g6.12xlarge`) stays healthy, and the H100 pool (`p5.48xlarge`) has
//! zero spot capacity — useful only as an on-demand backstop. Recovery
//! must therefore cross SKUs: Algorithm 1's per-SKU lanes re-decide
//! `(SKU, C, B)` jointly and the SKU-aware KM mapper prices the
//! cross-fabric migration. For each policy the figure reports the minimum
//! live fleet after the collapse settles, request loss, SLO rejections,
//! the spot vs on-demand cost split with per-pool/SKU attribution, and
//! USD per generated token.
//!
//! When `CRITERION_JSON` names a file, the per-policy cost summary is
//! also appended there as machine-readable records (same growing-array
//! document the vendored criterion shim writes ns/iter records into), so
//! CI can jq-gate the heterogeneity cost win.

use std::path::Path;

use simkit::SimTime;
use spotserve::{RunReport, ServingSystem, SystemOptions};
use spotserve_bench::{header, hetero_outage_scenario, hetero_policy_ladder};

/// Minimum live instances (spot + on-demand) from `t0` to run end, with
/// the step level at `t0` taken from the last sample at or before it.
fn min_live_after(report: &RunReport, t0: SimTime) -> u32 {
    let at_t0 = report
        .fleet_timeline
        .iter()
        .take_while(|(t, _, _)| *t <= t0)
        .last()
        .map(|(_, s, o)| s + o)
        .unwrap_or(0);
    report
        .fleet_timeline
        .iter()
        .filter(|(t, _, _)| *t > t0)
        .map(|(_, s, o)| s + o)
        .fold(at_t0, u32::min)
}

/// Appends one record to the JSON array document at `path`, creating the
/// array if the file is missing or empty. Mirrors the vendored criterion
/// shim's format so figure records and ns/iter records share one file.
fn append_json_record(path: &Path, record: &str) {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(init) if !init.trim_end().ends_with('[') => {
                    format!("{init},\n  {record}\n]\n", init = init.trim_end())
                }
                _ => format!("[\n  {record}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {record}\n]\n"),
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("fig_hetero: cannot write {}: {e}", path.display());
    }
}

fn main() {
    header("Heterogeneous SKUs: a100 pool dies at t=300s; recovery on l4/h100, OPT-6.7B @ 1 req/s");
    let seed = 1;
    // Collapse + grace + grant delay + scheduling slack.
    let settled = SimTime::from_secs(300 + 30 + 40 + 30);
    let json_path = std::env::var_os("CRITERION_JSON").map(std::path::PathBuf::from);

    println!(
        "{:<18} {:>9} {:>7} {:>8} {:>10} {:>10} {:>14} {:>10}",
        "Policy", "min live", "unfin", "slo rej", "spot USD", "od USD", "USD/token", "avg lat"
    );
    for (name, policy) in hetero_policy_ladder() {
        let opts = SystemOptions::spotserve().with_fleet_policy(policy);
        let mut report = ServingSystem::new(opts, hetero_outage_scenario(seed)).run();
        let p = report.latency.percentiles();
        let cpt = report.cost_per_token().unwrap_or(f64::NAN);
        let (spot_usd, od_usd) = (report.spot_usd(), report.ondemand_usd());
        println!(
            "{name:<18} {:>9} {:>7} {:>8} {:>10.3} {:>10.3} {:>11.2}e-5 {:>10.1}",
            min_live_after(&report, settled),
            report.unfinished,
            report.slo_rejections.len(),
            spot_usd,
            od_usd,
            cpt * 1e5,
            p.mean,
        );
        for pc in &report.cost_breakdown.pools {
            println!(
                "    {:<8} {:<14} spot={:>8.3} USD  on-demand={:>8.3} USD",
                pc.name, pc.sku, pc.spot_usd, pc.ondemand_usd
            );
        }
        if let Some(path) = &json_path {
            append_json_record(
                path,
                &format!(
                    concat!(
                        r#"{{"group":"fig_hetero","bench":"{name}","total_usd":{total:.6},"#,
                        r#""spot_usd":{spot:.6},"ondemand_usd":{od:.6},"unfinished":{unfin},"#,
                        r#""min_live_after_collapse":{live}}}"#
                    ),
                    name = name,
                    total = spot_usd + od_usd,
                    spot = spot_usd,
                    od = od_usd,
                    unfin = report.unfinished,
                    live = min_live_after(&report, settled),
                ),
            );
        }
    }
    println!();
    println!("OnDemandFallback never leaves the dead A100 market for spot and bridges");
    println!("the collapse with premium on-demand capacity; SpotHedge spreads across");
    println!("pools but prices every SKU alike; CostAwareHedge masks pools that cannot");
    println!("fit the model, biases the spread toward cheap capable SKUs (L4), and");
    println!("routes its on-demand backstop to the cheapest capable pool.");
}
