//! Heterogeneity figure (beyond-paper): recovery across *unlike* GPU SKUs.
//!
//! Three pools, three SKUs: the A100 pool (`p4d.24xlarge`) carries the
//! fleet until its spot market collapses at t = 300 s, the cheap L4 pool
//! (`g6.12xlarge`) stays healthy, and the H100 pool (`p5.48xlarge`) has
//! zero spot capacity — useful only as an on-demand backstop. Recovery
//! must therefore cross SKUs: Algorithm 1's per-SKU lanes re-decide
//! `(SKU, C, B)` jointly and the SKU-aware KM mapper prices the
//! cross-fabric migration. For each policy the figure reports the minimum
//! live fleet after the collapse settles — event-exact, from the
//! telemetry stream's grant/kill/release records — request loss, SLO
//! rejections, the spot vs on-demand cost split with per-pool/SKU
//! attribution, and USD per generated token.
//!
//! When `CRITERION_JSON` names a file, the per-policy cost summary is
//! also appended there as machine-readable records (same growing-array
//! document the vendored criterion shim writes ns/iter records into), so
//! CI can jq-gate the heterogeneity cost win.

use simkit::SimTime;
use spotserve::{ServingSystem, SystemOptions};
use spotserve_bench::{append_json_record, criterion_json_path, header};
use spotserve_bench::{hetero_outage_scenario, hetero_policy_ladder};

fn main() {
    header("Heterogeneous SKUs: a100 pool dies at t=300s; recovery on l4/h100, OPT-6.7B @ 1 req/s");
    let seed = 1;
    // Collapse + grace + grant delay + scheduling slack.
    let settled = SimTime::from_secs(300 + 30 + 40 + 30);
    let json_path = criterion_json_path();

    println!(
        "{:<18} {:>9} {:>7} {:>8} {:>10} {:>10} {:>14} {:>10}",
        "Policy", "min live", "unfin", "slo rej", "spot USD", "od USD", "USD/token", "avg lat"
    );
    for (name, policy) in hetero_policy_ladder() {
        let opts = SystemOptions::spotserve()
            .with_fleet_policy(policy)
            .with_telemetry();
        let mut report = ServingSystem::new(opts, hetero_outage_scenario(seed)).run();
        let stream = report.telemetry.take().expect("run built with telemetry");
        let min_live = stream.live_floor_after(settled);
        let p = report.latency.percentiles();
        let cost = report.cost();
        let cpt = cost.usd_per_token.unwrap_or(f64::NAN);
        let (spot_usd, od_usd) = (cost.spot_usd, cost.ondemand_usd);
        println!(
            "{name:<18} {min_live:>9} {:>7} {:>8} {:>10.3} {:>10.3} {:>11.2}e-5 {:>10.1}",
            report.unfinished,
            report.slo_rejections.len(),
            spot_usd,
            od_usd,
            cpt * 1e5,
            p.mean,
        );
        for pc in &cost.pools {
            println!(
                "    {:<8} {:<14} spot={:>8.3} USD  on-demand={:>8.3} USD",
                pc.name, pc.sku, pc.spot_usd, pc.ondemand_usd
            );
        }
        if let Some(path) = &json_path {
            append_json_record(
                path,
                &format!(
                    concat!(
                        r#"{{"group":"fig_hetero","bench":"{name}","total_usd":{total:.6},"#,
                        r#""spot_usd":{spot:.6},"ondemand_usd":{od:.6},"unfinished":{unfin},"#,
                        r#""min_live_after_collapse":{live}}}"#
                    ),
                    name = name,
                    total = spot_usd + od_usd,
                    spot = spot_usd,
                    od = od_usd,
                    unfin = report.unfinished,
                    live = min_live,
                ),
            );
        }
    }
    println!();
    println!("OnDemandFallback never leaves the dead A100 market for spot and bridges");
    println!("the collapse with premium on-demand capacity; SpotHedge spreads across");
    println!("pools but prices every SKU alike; CostAwareHedge masks pools that cannot");
    println!("fit the model, biases the spread toward cheap capable SKUs (L4), and");
    println!("routes its on-demand backstop to the cheapest capable pool.");
}
