//! Regenerates Figure 9: component ablation of GPT-20B on traces A_S and
//! B_S. Components are disabled cumulatively (controller → migration
//! planner → interruption arranger → device mapper), reporting P99 tail and
//! average latency normalized to the full system.

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use spotserve::{AblationFlags, SystemOptions};
use spotserve_bench::{ablation_ladder, header, run_cell};

fn main() {
    header("Figure 9: ablation study, GPT-20B @0.35 req/s");
    let model = ModelSpec::gpt_20b();
    for (tname, trace) in [
        ("AS", AvailabilityTrace::paper_as()),
        ("BS", AvailabilityTrace::paper_bs()),
    ] {
        println!("\n--- Trace {tname} ---");
        let mut base: Option<(f64, f64)> = None;
        for (vname, flags) in ablation_ladder() {
            let opts = SystemOptions::spotserve().with_ablation(flags);
            let mut report = run_cell(opts, &model, &trace, false, 0.35, 1);
            let p = report.latency.percentiles();
            let (b99, bavg) = *base.get_or_insert((p.p99, p.mean));
            println!(
                "{:<24} p99={:>7.1}s ({:>5.2}x)   avg={:>7.1}s ({:>5.2}x)  unfinished={}",
                vname,
                p.p99,
                p.p99 / b99,
                p.mean,
                p.mean / bavg,
                report.unfinished,
            );
        }
    }
    println!();
    println!("Paper reference: the full ladder degrades P99 by 1.61x on AS");
    println!("and 3.41x on BS; every removed component makes the tail worse.");

    // Extension beyond the paper's cumulative bars: leave-one-out, which
    // isolates each component's contribution with the controller active
    // (e.g. the migration planner's larger buffers shrink the feasible
    // configuration space, §6.2).
    header("Fig 9 extension: leave-one-out ablation, GPT-20B");
    let single = [
        ("SpotServe", AblationFlags::default()),
        (
            "w/o Controller",
            AblationFlags {
                no_controller: true,
                ..Default::default()
            },
        ),
        (
            "w/o Migration Planner",
            AblationFlags {
                no_migration_planner: true,
                ..Default::default()
            },
        ),
        (
            "w/o Interruption Arranger",
            AblationFlags {
                no_interruption_arranger: true,
                ..Default::default()
            },
        ),
        (
            "w/o Device Mapper",
            AblationFlags {
                no_device_mapper: true,
                ..Default::default()
            },
        ),
    ];
    for (tname, trace) in [
        ("AS", AvailabilityTrace::paper_as()),
        ("BS", AvailabilityTrace::paper_bs()),
    ] {
        println!("\n--- Trace {tname} ---");
        let mut base: Option<(f64, f64)> = None;
        for (vname, flags) in single {
            let opts = SystemOptions::spotserve().with_ablation(flags);
            let mut report = run_cell(opts, &model, &trace, false, 0.35, 1);
            let p = report.latency.percentiles();
            let (b99, bavg) = *base.get_or_insert((p.p99, p.mean));
            println!(
                "{:<26} p99={:>7.1}s ({:>5.2}x)   avg={:>7.1}s ({:>5.2}x)",
                vname,
                p.p99,
                p.p99 / b99,
                p.mean,
                p.mean / bavg,
            );
        }
    }
}
