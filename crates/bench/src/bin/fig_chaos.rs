//! Chaos figure (beyond-paper): SLO attainment, $-cost and loss per
//! acquisition policy as fault intensity rises.
//!
//! The scenario is the pinned zone outage with the standard fault pack
//! layered on top: `z0` collapses at t = 300 s and recovers at t = 600 s
//! while every pool injects unannounced kills, lost/truncated preemption
//! notices, lapsed grants and a degraded link at the swept intensity.
//! `ReactiveSpot` is bound to `z0` and eats every fault; the hedged
//! policies re-request with exponential backoff, escalate to on-demand
//! after repeated lapses, and spread the target across the survivors.
//! Every run — all policies, all intensities — is replayed through the
//! [`InvariantAuditor`]: a run may degrade under chaos, never corrupt.
//!
//! When `CRITERION_JSON` names a file, one record per (policy,
//! intensity) cell is appended there so CI can jq-gate graceful
//! degradation: at the standard intensity the hedged policies finish
//! with zero unfinished requests and a clean audit, while the reactive
//! baseline's loss is strictly worse.

use spotserve::{InvariantAuditor, ServingSystem, SystemOptions};
use spotserve_bench::{append_json_record, criterion_json_path, header};
use spotserve_bench::{chaos_pack_scenario, chaos_policy_ladder, STANDARD_CHAOS_INTENSITY};

fn main() {
    header("Chaos pack over the zone outage: z0 collapses at t=300s under injected faults, OPT-6.7B @ 1 req/s");
    let seed = 1;
    let json_path = criterion_json_path();

    println!(
        "{:<14} {:>9} {:>7} {:>7} {:>7} {:>8} {:>10} {:>10} {:>7}",
        "Policy",
        "intensity",
        "faults",
        "lapses",
        "unfin",
        "slo rej",
        "total USD",
        "USD/token",
        "audit"
    );
    for intensity in [0.0, 0.3, STANDARD_CHAOS_INTENSITY, 1.0] {
        for (name, policy) in chaos_policy_ladder() {
            let scenario = chaos_pack_scenario(intensity, seed);
            let total = scenario.requests.len();
            let opts = SystemOptions::spotserve()
                .with_fleet_policy(policy)
                .with_telemetry();
            let report = ServingSystem::new(opts, scenario).run();
            let audit = InvariantAuditor::new()
                .with_expected_requests(total)
                .audit(&report);
            let cost = report.cost();
            let cpt = cost.usd_per_token.unwrap_or(f64::NAN);
            println!(
                "{name:<14} {intensity:>9.2} {:>7} {:>7} {:>7} {:>8} {:>10.3} {:>7.2}e-5 {:>7}",
                report.faults,
                report.lapses,
                report.unfinished,
                report.slo_rejections.len(),
                cost.total_usd,
                cpt * 1e5,
                if audit.is_clean() { "clean" } else { "DIRTY" },
            );
            if !audit.is_clean() {
                eprintln!("{audit}");
            }
            if let Some(path) = &json_path {
                append_json_record(
                    path,
                    &format!(
                        concat!(
                            r#"{{"group":"fig_chaos","bench":"{name}","intensity":{intensity:.2},"#,
                            r#""faults":{faults},"lapses":{lapses},"unfinished":{unfin},"#,
                            r#""slo_rejections":{rej},"total_usd":{total_usd:.6},"#,
                            r#""usd_per_token":{cpt:.9},"audit_clean":{clean}}}"#
                        ),
                        name = name,
                        intensity = intensity,
                        faults = report.faults,
                        lapses = report.lapses,
                        unfin = report.unfinished,
                        rej = report.slo_rejections.len(),
                        total_usd = cost.total_usd,
                        cpt = cpt,
                        clean = audit.is_clean(),
                    ),
                );
            }
        }
    }
    println!();
    println!("ReactiveSpot is bound to z0: every injected kill, lost notice and");
    println!("lapsed grant lands on the only market it can draw from, so its loss");
    println!("grows with intensity. The hedged policies re-request with backoff,");
    println!("escalate to on-demand after repeated lapses, and keep loss at zero");
    println!("through the standard pack. Every cell is auditor-verified.");
}
