//! Regenerates Table 1: overview of the LLMs evaluated.
//!
//! Columns: model size (fp32 GiB), minimum #GPUs on T4s, the minimal
//! `(P, M)` witness, and the single-request execution latency `l_exe(B=1)`
//! on the paper's minimal configuration, next to the published values.

use cloudsim::GpuSpec;
use llmsim::{calibration, MemoryModel, ModelSpec};
use spotserve_bench::header;

fn main() {
    header("Table 1: Overview of LLMs evaluated (paper values in brackets)");
    println!(
        "{:<12} {:>14} {:>10} {:>12} {:>22}",
        "Model", "Size (GiB)", "min #GPUs", "min (P,M)", "l_exe(B=1) [paper]"
    );
    let mem = MemoryModel::default();
    let paper = [
        ("OPT-6.7B", 25.0, 4, (1, 4), 5.447),
        ("GPT-20B", 74.5, 12, (3, 4), 14.373),
        ("LLaMA-30B", 111.8, 16, (2, 8), 17.540),
    ];
    for (model, (pname, psize, pgpus, ppm, plat)) in ModelSpec::paper_models().iter().zip(paper) {
        assert_eq!(model.name, pname);
        let size = model.param_bytes() as f64 / (1u64 << 30) as f64;
        let (n, (p, m)) = mem
            .min_gpus(model, &GpuSpec::t4(), 64)
            .expect("paper models fit in 64 GPUs");
        let cost = calibration::calibrated_cost_model(model);
        let (pp, pm) = ppm;
        let lat = cost
            .exec_latency(
                model,
                pp,
                pm,
                1,
                calibration::PAPER_S_IN,
                calibration::PAPER_S_OUT,
            )
            .as_secs_f64();
        println!(
            "{:<12} {:>7.1} [{psize:>5.1}] {:>4} [{pgpus:>2}] ({p},{m}) [({},{})] {:>8.3}s [{plat:.3}s]",
            model.name, size, n, pp, pm, lat
        );
    }
    println!();
    println!("(min (P,M) is this implementation's witness; the paper's");
    println!(" minimal configuration is the bracketed one, whose latency");
    println!(" anchors the cost-model calibration.)");
}
