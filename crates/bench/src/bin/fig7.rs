//! Regenerates Figure 7: monetary cost vs latency on GPT-20B.
//!
//! Per-token cost (USD/token, the paper plots ×1e-5) against average and
//! P99 latency for the three spot systems on all four traces, plus the
//! on-demand-only frontier (fleet sizes swept downward, which trades cost
//! for latency).

use llmsim::ModelSpec;
use spotserve::SystemOptions;
use spotserve_bench::{header, paper_systems, paper_traces, run_cell};

fn main() {
    header("Figure 7: monetary cost vs latency, GPT-20B");
    let model = ModelSpec::gpt_20b();
    let rate = 0.35;
    let seed = 1;

    println!(
        "{:<20} {:<6} {:>16} {:>12} {:>12}",
        "System", "Trace", "cost (USD/token)", "avg lat (s)", "P99 lat (s)"
    );

    let mut spot_costs: Vec<f64> = Vec::new();
    let mut spot_avg: Vec<f64> = Vec::new();
    for (sname, opts) in paper_systems() {
        for (tname, trace, mixing) in paper_traces() {
            let mut report = run_cell(opts.clone(), &model, &trace, mixing, rate, seed);
            let p = report.latency.percentiles();
            let cpt = report.cost().usd_per_token.unwrap_or(f64::NAN);
            println!(
                "{sname:<20} {tname:<6} {:>13.2}e-5 {:>12.1} {:>12.1}",
                cpt * 1e5,
                p.mean,
                p.p99
            );
            if sname == "SpotServe" && !mixing {
                spot_costs.push(cpt);
                spot_avg.push(p.mean);
            }
        }
    }

    println!("\n--- On-demand-only frontier (no preemptions, fixed fleet) ---");
    let mut od_points: Vec<(u32, f64, f64)> = Vec::new();
    for k in [8u32, 7, 6, 5, 4, 3] {
        let mut report = run_cell(
            SystemOptions::on_demand_only(k),
            &model,
            &cloudsim::AvailabilityTrace::constant(0),
            false,
            rate,
            seed,
        );
        let p = report.latency.percentiles();
        let cpt = report.cost().usd_per_token.unwrap_or(f64::NAN);
        println!(
            "{:<20} {:<6} {:>13.2}e-5 {:>12.1} {:>12.1}",
            format!("OnDemand(k={k})"),
            "-",
            cpt * 1e5,
            p.mean,
            p.p99
        );
        od_points.push((k, cpt, p.mean));
    }

    // The paper's headline (Figure 7 / §6.2): serving on spot instances
    // saves up to 54% per-token cost vs the on-demand fleet provisioned
    // for the same workload, at a modest latency increase. Compare the
    // best spot-only SpotServe point against the on-demand fleet the
    // optimizer would provision (8 instances for GPT-20B at 0.35 req/s).
    let (best_cost, best_avg) = spot_costs
        .iter()
        .zip(&spot_avg)
        .map(|(&c, &a)| (c, a))
        .min_by(|x, y| x.0.partial_cmp(&y.0).expect("finite"))
        .expect("spot points exist");
    if let Some(&(_, od_cost, od_avg)) = od_points.iter().find(|&&(k, _, _)| k == 8) {
        println!(
            "\nSpotServe (spot-only, best point) {:.2}e-5 vs on-demand fleet k=8 {:.2}e-5:",
            best_cost * 1e5,
            od_cost * 1e5
        );
        println!(
            "  {:.0}% monetary saving (paper: up to 54%) at {:+.0}% average latency (paper: <18%)",
            (1.0 - best_cost / od_cost) * 100.0,
            (best_avg / od_avg - 1.0) * 100.0
        );
    }
}
