//! Price-dynamics figure (beyond-paper): $/token across acquisition
//! policies under a spot-market squeeze.
//!
//! Two same-SKU pools: the cheap `spiky` pool collapses at t = 300 s
//! while its clearing price spikes past on-demand parity, then re-opens
//! at the spiked price; the `calm` pool stays cheap but is too small to
//! hold the target alone. Re-quotes reach the controller as
//! `SpotPriceStep` events, so each policy steers the moment the market
//! moves: `SpotHedge` re-enters the spiked pool and pays its price,
//! `CostAwareHedge` biases away from it, and `CostPerToken` masks it
//! past the parity threshold and bridges the shortfall with on-demand —
//! the $/token frontier this figure reports. The "min live" column is
//! event-exact, derived from the telemetry stream's grant/kill/release
//! records rather than the sampled fleet timeline.
//!
//! When `CRITERION_JSON` names a file, the per-policy cost summary is
//! also appended there as machine-readable records (same growing-array
//! document the vendored criterion shim writes ns/iter records into), so
//! CI can jq-gate the $/token win.

use simkit::SimTime;
use spotserve::{ServingSystem, SystemOptions};
use spotserve_bench::{append_json_record, criterion_json_path, header};
use spotserve_bench::{price_policy_ladder, price_spike_scenario};

fn main() {
    header("Spot-market squeeze: spiky pool collapses at t=300s and re-opens past parity, OPT-6.7B @ 1 req/s");
    let seed = 1;
    // Collapse + grace + grant delay + scheduling slack.
    let settled = SimTime::from_secs(300 + 30 + 40 + 30);
    let json_path = criterion_json_path();

    println!(
        "{:<18} {:>9} {:>7} {:>8} {:>10} {:>10} {:>14} {:>10}",
        "Policy", "min live", "unfin", "slo rej", "spot USD", "od USD", "USD/token", "avg lat"
    );
    for (name, policy) in price_policy_ladder() {
        let opts = SystemOptions::spotserve()
            .with_fleet_policy(policy)
            .with_telemetry();
        let mut report = ServingSystem::new(opts, price_spike_scenario(seed)).run();
        let stream = report.telemetry.take().expect("run built with telemetry");
        let p = report.latency.percentiles();
        let cost = report.cost();
        let cpt = cost.usd_per_token.unwrap_or(f64::NAN);
        println!(
            "{name:<18} {:>9} {:>7} {:>8} {:>10.3} {:>10.3} {:>11.2}e-5 {:>10.1}",
            stream.live_floor_after(settled),
            report.unfinished,
            report.slo_rejections.len(),
            cost.spot_usd,
            cost.ondemand_usd,
            cpt * 1e5,
            p.mean,
        );
        for pc in &cost.pools {
            println!(
                "    {:<8} {:<14} spot={:>8.3} USD  on-demand={:>8.3} USD",
                pc.name, pc.sku, pc.spot_usd, pc.ondemand_usd
            );
        }
        if let Some(path) = &json_path {
            append_json_record(
                path,
                &format!(
                    concat!(
                        r#"{{"group":"fig_price","bench":"{name}","usd_per_token":{cpt:.9},"#,
                        r#""total_usd":{total:.6},"spot_usd":{spot:.6},"ondemand_usd":{od:.6},"#,
                        r#""unfinished":{unfin},"slo_rejections":{rej}}}"#
                    ),
                    name = name,
                    cpt = cpt,
                    total = cost.total_usd,
                    spot = cost.spot_usd,
                    od = cost.ondemand_usd,
                    unfin = report.unfinished,
                    rej = report.slo_rejections.len(),
                ),
            );
        }
    }
    println!();
    println!("SpotHedge is price-blind: when the spiky pool re-opens it re-spreads");
    println!("into it and pays the spiked price for the rest of the run.");
    println!("CostPerToken masks pools quoted past its parity threshold and bridges");
    println!("the shortfall with on-demand below the spiked spot price, so its");
    println!("$/token stays strictly lower at equal-or-better SLO attainment.");
}
