//! Layer and shard partitioning: what a mesh position physically owns.
//!
//! Pipeline parallelism assigns each stage a contiguous, balanced range of
//! layers; tensor parallelism slices every owned layer into `M` equal
//! shards along the head/FFN dimension. Context reuse between two positions
//! of *different* configurations (the edge weights of the device-mapping
//! bipartite graph, §3.3 / Figure 4b) is the intersection of their layer
//! ranges times the overlap of their shard intervals.

use std::ops::Range;

/// The layer range owned by `stage` of `stages` total, splitting
/// `num_layers` as evenly as possible (earlier stages take the remainder).
///
/// # Panics
///
/// Panics if `stages == 0`, `stage >= stages`, or `stages > num_layers`.
///
/// # Example
///
/// ```
/// use parallelism::stage_layers;
/// assert_eq!(stage_layers(32, 3, 0), 0..11);
/// assert_eq!(stage_layers(32, 3, 1), 11..22);
/// assert_eq!(stage_layers(32, 3, 2), 22..32);
/// ```
pub fn stage_layers(num_layers: u32, stages: u32, stage: u32) -> Range<u32> {
    assert!(stages > 0 && stage < stages, "stage {stage} of {stages}");
    assert!(stages <= num_layers, "more stages than layers");
    let base = num_layers / stages;
    let rem = num_layers % stages;
    let extra_before = stage.min(rem);
    let start = stage * base + extra_before;
    let len = base + u32::from(stage < rem);
    start..start + len
}

/// The fraction of one layer shared by shard `a` of a `da`-way split and
/// shard `b` of a `db`-way split, as an exact rational `(numerator,
/// denominator)` with `denominator = da · db`.
///
/// # Panics
///
/// Panics if a shard index is out of range or a degree is zero.
///
/// # Example
///
/// ```
/// use parallelism::shard_overlap;
/// // Shard 0 of 2 vs shard 0 of 4: the quarter is inside the half.
/// assert_eq!(shard_overlap(0, 2, 0, 4), (2, 8));
/// // Shard 0 of 2 vs shard 3 of 4: disjoint.
/// assert_eq!(shard_overlap(0, 2, 3, 4), (0, 8));
/// ```
pub fn shard_overlap(a: u32, da: u32, b: u32, db: u32) -> (u64, u64) {
    assert!(da > 0 && db > 0, "zero shard degree");
    assert!(a < da && b < db, "shard out of range");
    let (a, da, b, db) = (a as u64, da as u64, b as u64, db as u64);
    let den = da * db;
    let lo = (a * db).max(b * da);
    let hi = ((a + 1) * db).min((b + 1) * da);
    (hi.saturating_sub(lo), den)
}

/// The model context owned by one mesh position: a contiguous layer range,
/// each layer sliced to the `shard`-th of `tensor` equal intervals.
///
/// # Example
///
/// ```
/// use parallelism::PositionContext;
/// // Stage 0 of 2 over 32 layers, shard 1 of 8.
/// let ctx = PositionContext::new(32, 2, 0, 8, 1);
/// assert_eq!(ctx.layers(), 0..16);
/// // Overlap with stage 0' of 3, shard 0' of 4 (Figure 4a geometry):
/// let ctx2 = PositionContext::new(32, 3, 0, 4, 0);
/// assert!(ctx.weight_overlap_bytes(&ctx2, 1000) > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PositionContext {
    layers: Range<u32>,
    tensor: u32,
    shard: u32,
}

impl PositionContext {
    /// Context of shard `shard`/`tensor` of stage `stage`/`stages` over a
    /// model with `num_layers` layers.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range stage/shard (see [`stage_layers`] and
    /// [`shard_overlap`]).
    pub fn new(num_layers: u32, stages: u32, stage: u32, tensor: u32, shard: u32) -> Self {
        assert!(tensor > 0 && shard < tensor, "shard {shard} of {tensor}");
        PositionContext {
            layers: stage_layers(num_layers, stages, stage),
            tensor,
            shard,
        }
    }

    /// The owned layer range.
    pub fn layers(&self) -> Range<u32> {
        self.layers.clone()
    }

    /// The owned shard index and tensor degree.
    pub fn shard(&self) -> (u32, u32) {
        (self.shard, self.tensor)
    }

    /// Whether this context contains any part of `layer`.
    pub fn covers_layer(&self, layer: u32) -> bool {
        self.layers.contains(&layer)
    }

    /// Bytes of layer weights shared with `other`, with each full layer
    /// weighing `layer_bytes`.
    pub fn weight_overlap_bytes(&self, other: &PositionContext, layer_bytes: u64) -> u64 {
        let lo = self.layers.start.max(other.layers.start);
        let hi = self.layers.end.min(other.layers.end);
        if lo >= hi {
            return 0;
        }
        let common_layers = (hi - lo) as u64;
        let (num, den) = shard_overlap(self.shard, self.tensor, other.shard, other.tensor);
        // layer_bytes ≤ ~2^31, num/den ≤ 1, common_layers ≤ ~2^7: fits u64
        // comfortably via u128 intermediate.
        ((common_layers as u128 * layer_bytes as u128 * num as u128) / den as u128) as u64
    }

    /// Bytes of this context's own weights, with each full layer weighing
    /// `layer_bytes` (i.e. the self-overlap).
    pub fn weight_bytes(&self, layer_bytes: u64) -> u64 {
        self.weight_overlap_bytes(self, layer_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_layers_cover_exactly_once() {
        for (layers, stages) in [(32u32, 1u32), (32, 2), (32, 3), (44, 3), (60, 7), (5, 5)] {
            let mut covered = vec![0u32; layers as usize];
            for s in 0..stages {
                for l in stage_layers(layers, stages, s) {
                    covered[l as usize] += 1;
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "{layers} layers, {stages} stages"
            );
        }
    }

    #[test]
    fn stage_sizes_are_balanced() {
        for s in 0..3 {
            let r = stage_layers(44, 3, s);
            let len = r.end - r.start;
            assert!((14..=15).contains(&len));
        }
    }

    #[test]
    #[should_panic(expected = "more stages than layers")]
    fn too_many_stages_panics() {
        stage_layers(4, 5, 0);
    }

    #[test]
    fn shard_overlap_same_split_is_identity() {
        for m in 0..4 {
            assert_eq!(shard_overlap(m, 4, m, 4), (4, 16)); // == 1/4 of a layer
            for other in 0..4 {
                if other != m {
                    assert_eq!(shard_overlap(m, 4, other, 4).0, 0);
                }
            }
        }
    }

    #[test]
    fn shard_overlap_is_symmetric() {
        for (a, da, b, db) in [(1u32, 2u32, 2u32, 4u32), (0, 3, 0, 5), (2, 8, 0, 2)] {
            let (n1, d1) = shard_overlap(a, da, b, db);
            let (n2, d2) = shard_overlap(b, db, a, da);
            assert_eq!(n1 * d2, n2 * d1, "fractions must be equal");
        }
    }

    #[test]
    fn shard_overlap_partitions_unity() {
        // Summing overlap of one shard against all shards of another split
        // must give exactly the shard's own size.
        let (da, db) = (2u32, 8u32);
        for a in 0..da {
            let total: u64 = (0..db).map(|b| shard_overlap(a, da, b, db).0).sum();
            let (_, den) = shard_overlap(a, da, 0, db);
            // Shard a's size is 1/da = (db)/(da*db).
            assert_eq!(total, den / da as u64);
        }
    }

    #[test]
    fn figure_4b_geometry() {
        // Figure 4b: current (D=2,P=2,M=2), target (D=2,P=3,M=1).
        // u1 holds stage 0 shard 1 of pipeline 0 over a 12-layer model:
        // layers 0..6, half-sharded. Target v0 = stage 0' of 3, full layer:
        // layers 0..4. Overlap = 4 layers × 1/2.
        let u1 = PositionContext::new(12, 2, 0, 2, 1);
        let v0 = PositionContext::new(12, 3, 0, 1, 0);
        assert_eq!(u1.weight_overlap_bytes(&v0, 1000), 4 * 500);
        // Against stage 2' (layers 8..12) there is no layer overlap.
        let v2 = PositionContext::new(12, 3, 2, 1, 0);
        assert_eq!(u1.weight_overlap_bytes(&v2, 1000), 0);
    }

    #[test]
    fn self_overlap_is_own_size() {
        let ctx = PositionContext::new(32, 2, 1, 4, 3);
        // 16 layers × 1/4 × 1000 bytes.
        assert_eq!(ctx.weight_bytes(1000), 4000);
    }

    #[test]
    fn figure_4a_reconfiguration_preserves_total_weights() {
        // (D=1,P=2,M=8) -> (D=1,P=3,M=4) over 16 "layers" (Figure 4a uses
        // 16 position boxes): total overlap summed over all old-new pairs
        // must equal the full model size (every byte lives somewhere).
        let layers = 16u32;
        let layer_bytes = 1 << 20;
        let old: Vec<PositionContext> = (0..2)
            .flat_map(|p| (0..8).map(move |m| PositionContext::new(layers, 2, p, 8, m)))
            .collect();
        let new: Vec<PositionContext> = (0..3)
            .flat_map(|p| (0..4).map(move |m| PositionContext::new(layers, 3, p, 4, m)))
            .collect();
        let total: u64 = old
            .iter()
            .flat_map(|o| {
                new.iter()
                    .map(move |n| o.weight_overlap_bytes(n, layer_bytes))
            })
            .sum();
        assert_eq!(total, layers as u64 * layer_bytes);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn stage_layers_partition(layers in 1u32..128, stages in 1u32..16) {
            prop_assume!(stages <= layers);
            let mut total = 0u32;
            let mut prev_end = 0u32;
            for s in 0..stages {
                let r = stage_layers(layers, stages, s);
                prop_assert_eq!(r.start, prev_end, "contiguous");
                prev_end = r.end;
                total += r.end - r.start;
            }
            prop_assert_eq!(total, layers);
            prop_assert_eq!(prev_end, layers);
        }

        #[test]
        fn overlap_bounded_by_each_side(
            a in 0u32..8, da in 1u32..9, b in 0u32..8, db in 1u32..9
        ) {
            prop_assume!(a < da && b < db);
            let (num, den) = shard_overlap(a, da, b, db);
            // overlap ≤ 1/da and ≤ 1/db.
            prop_assert!(num * da as u64 <= den);
            prop_assert!(num * db as u64 <= den);
        }
    }
}
