//! The paper's parallel configuration tuple `C = (D, P, M, B)`.

use std::fmt;

use crate::mesh::MeshPosition;

/// A parallelization strategy for serving one LLM.
///
/// * `data` (`D`) — number of independent inference pipelines,
/// * `pipeline` (`P`) — pipeline-model parallel stages per pipeline,
/// * `tensor` (`M`) — tensor-model parallel shards per stage,
/// * `batch` (`B`) — maximum mini-batch size per pipeline.
///
/// # Example
///
/// ```
/// use parallelism::ParallelConfig;
/// let c = ParallelConfig::new(2, 2, 8, 4);
/// assert_eq!(c.gpus_per_pipeline(), 16);
/// assert_eq!(c.total_gpus(), 32);
/// assert_eq!(c.instances_needed(4), 8);
/// assert_eq!(c.concurrent_requests(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParallelConfig {
    /// Data-parallel degree `D`: number of inference pipelines.
    pub data: u32,
    /// Pipeline-model parallel degree `P`: stages per pipeline.
    pub pipeline: u32,
    /// Tensor-model parallel degree `M`: shards per stage.
    pub tensor: u32,
    /// Maximum mini-batch size `B` per pipeline.
    pub batch: u32,
}

impl ParallelConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any degree is zero.
    pub fn new(data: u32, pipeline: u32, tensor: u32, batch: u32) -> Self {
        assert!(
            data > 0 && pipeline > 0 && tensor > 0 && batch > 0,
            "degenerate config (D={data},P={pipeline},M={tensor},B={batch})"
        );
        ParallelConfig {
            data,
            pipeline,
            tensor,
            batch,
        }
    }

    /// GPUs in one inference pipeline (`P·M`).
    pub fn gpus_per_pipeline(&self) -> u32 {
        self.pipeline * self.tensor
    }

    /// GPUs the whole configuration occupies (`D·P·M`).
    pub fn total_gpus(&self) -> u32 {
        self.data * self.gpus_per_pipeline()
    }

    /// Instances needed on a fleet with `gpus_per_instance` GPUs each
    /// (rounded up).
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_instance == 0`.
    pub fn instances_needed(&self, gpus_per_instance: u8) -> u32 {
        assert!(gpus_per_instance > 0);
        self.total_gpus().div_ceil(gpus_per_instance as u32)
    }

    /// Total concurrent requests the configuration can hold (`D·B`), the
    /// quantity compared when deciding whether cached results must be
    /// discarded on a shrink (§3.3, footnote 2).
    pub fn concurrent_requests(&self) -> u32 {
        self.data * self.batch
    }

    /// All mesh positions of this configuration, in canonical order
    /// (pipeline-major, then stage, then shard).
    pub fn positions(&self) -> impl Iterator<Item = MeshPosition> + '_ {
        let (d, p, m) = (self.data, self.pipeline, self.tensor);
        (0..d).flat_map(move |dd| {
            (0..p).flat_map(move |pp| (0..m).map(move |mm| MeshPosition::new(dd, pp, mm)))
        })
    }

    /// Canonical dense index of `pos` in [`ParallelConfig::positions`] order.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside this mesh.
    pub fn position_index(&self, pos: MeshPosition) -> usize {
        assert!(
            pos.pipeline < self.data && pos.stage < self.pipeline && pos.shard < self.tensor,
            "{pos} outside mesh {self}"
        );
        ((pos.pipeline * self.pipeline + pos.stage) * self.tensor + pos.shard) as usize
    }

    /// The same strategy ignoring batch size, as used for device mapping
    /// (`(D, P, M)` in §3.3).
    pub fn mesh_key(&self) -> (u32, u32, u32) {
        (self.data, self.pipeline, self.tensor)
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(D={},P={},M={},B={})",
            self.data, self.pipeline, self.tensor, self.batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let c = ParallelConfig::new(3, 3, 4, 8);
        assert_eq!(c.total_gpus(), 36);
        assert_eq!(c.instances_needed(4), 9);
        assert_eq!(c.concurrent_requests(), 24);
    }

    #[test]
    fn instances_round_up() {
        let c = ParallelConfig::new(1, 3, 2, 1);
        assert_eq!(c.total_gpus(), 6);
        assert_eq!(c.instances_needed(4), 2);
    }

    #[test]
    fn positions_enumerate_whole_mesh_in_order() {
        let c = ParallelConfig::new(2, 2, 2, 1);
        let ps: Vec<MeshPosition> = c.positions().collect();
        assert_eq!(ps.len(), 8);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(c.position_index(*p), i);
        }
        assert_eq!(ps[0], MeshPosition::new(0, 0, 0));
        assert_eq!(ps[7], MeshPosition::new(1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "degenerate config")]
    fn zero_degree_panics() {
        ParallelConfig::new(1, 0, 4, 8);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn position_index_bounds() {
        let c = ParallelConfig::new(1, 1, 1, 1);
        c.position_index(MeshPosition::new(0, 1, 0));
    }
}
