//! Parallel configurations and device meshes for distributed LLM inference.
//!
//! A [`ParallelConfig`] is the paper's tuple `C = (D, P, M, B)`: data,
//! pipeline-model and tensor-model parallel degrees plus the maximum
//! mini-batch size (§3.2). A configuration induces a logical *device mesh*
//! of [`MeshPosition`]s `(d, p, m)`; [`partition`] describes which layers
//! and which shard-interval of each layer a position owns, which is what
//! context-overlap computations (device mapping, §3.3) are built on.
//!
//! [`enumerate_configs`] lists every
//! memory-feasible configuration for a fleet size, and [`PerfModel`]
//! estimates `l_exe`, serving throughput `φ(C)` and the end-to-end request
//! latency `l_req(C)` that Algorithm 1 optimizes.
//!
//! # Example
//!
//! ```
//! use parallelism::ParallelConfig;
//!
//! let c = ParallelConfig::new(2, 3, 4, 8);
//! assert_eq!(c.total_gpus(), 24);
//! assert_eq!(c.positions().count(), 24);
//! assert_eq!(format!("{c}"), "(D=2,P=3,M=4,B=8)");
//! ```

pub mod config;
pub mod enumerate;
pub mod frontier;
pub mod mesh;
pub mod partition;
pub mod perf;

pub use config::ParallelConfig;
pub use enumerate::{enumerate_configs, ConfigSpace};
pub use frontier::{Candidate, CandidateFrontier, PricingMode};
pub use mesh::MeshPosition;
pub use partition::{shard_overlap, stage_layers, PositionContext};
pub use perf::PerfModel;
