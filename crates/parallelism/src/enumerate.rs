//! Enumeration of memory-feasible parallel configurations.

use cloudsim::GpuSpec;
use llmsim::{MemoryModel, ModelSpec};

use crate::config::ParallelConfig;

/// The configuration search space of Algorithm 1.
///
/// The paper sweeps `B ∈ {1,2,4,8}` (§6.1) and tensor degrees that form
/// NCCL-friendly rings (powers of two up to 8); pipeline depth is bounded
/// only by the layer count and fleet size. SpotServe's space deliberately
/// includes all three parallelism axes — "much larger than prior approaches
/// like Varuna which only consider data and pipeline parallelism" (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpace {
    /// Candidate batch sizes.
    pub batch_sizes: Vec<u32>,
    /// Candidate tensor-parallel degrees.
    pub tensor_degrees: Vec<u32>,
    /// Upper bound on pipeline depth (further bounded by layer count).
    pub max_pipeline: u32,
    /// Upper bound on data parallelism.
    pub max_data: u32,
}

impl Default for ConfigSpace {
    fn default() -> Self {
        ConfigSpace {
            batch_sizes: vec![1, 2, 4, 8],
            tensor_degrees: vec![1, 2, 4, 8],
            max_pipeline: 16,
            max_data: 16,
        }
    }
}

impl ConfigSpace {
    /// The ablation space of Varuna-style systems: data + pipeline only
    /// (tensor degree pinned to `m`).
    pub fn data_pipeline_only(m: u32) -> Self {
        ConfigSpace {
            tensor_degrees: vec![m],
            ..ConfigSpace::default()
        }
    }
}

/// Lists every configuration in `space` that fits on `available_gpus` GPUs
/// of type `gpu` under `mem`, in canonical order.
///
/// # Example
///
/// ```
/// use cloudsim::GpuSpec;
/// use llmsim::{MemoryModel, ModelSpec};
/// use parallelism::{enumerate_configs, ConfigSpace};
///
/// let configs = enumerate_configs(
///     &ModelSpec::gpt_20b(),
///     &MemoryModel::default(),
///     &GpuSpec::t4(),
///     &ConfigSpace::default(),
///     16,
/// );
/// // GPT-20B needs ≥12 GPUs, so (D=1,P=3,M=4,·) is present but no D=2.
/// assert!(configs.iter().any(|c| c.mesh_key() == (1, 3, 4)));
/// assert!(configs.iter().all(|c| c.data == 1));
/// ```
pub fn enumerate_configs(
    model: &ModelSpec,
    mem: &MemoryModel,
    gpu: &GpuSpec,
    space: &ConfigSpace,
    available_gpus: u32,
) -> Vec<ParallelConfig> {
    let mut out = Vec::new();
    if available_gpus == 0 {
        return out;
    }
    for &m in &space.tensor_degrees {
        if m == 0 || m > model.num_heads || !model.num_heads.is_multiple_of(m) {
            continue;
        }
        let max_p = space.max_pipeline.min(model.num_layers);
        for p in 1..=max_p {
            if p * m > available_gpus {
                break;
            }
            if !mem.fits(model, p, m, gpu) {
                continue;
            }
            let max_d = space.max_data.min(available_gpus / (p * m));
            for d in 1..=max_d {
                for &b in &space.batch_sizes {
                    out.push(ParallelConfig::new(d, p, m, b));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs_for(model: &ModelSpec, gpus: u32) -> Vec<ParallelConfig> {
        enumerate_configs(
            model,
            &MemoryModel::default(),
            &GpuSpec::t4(),
            &ConfigSpace::default(),
            gpus,
        )
    }

    #[test]
    fn zero_gpus_is_empty() {
        assert!(configs_for(&ModelSpec::opt_6_7b(), 0).is_empty());
    }

    #[test]
    fn too_few_gpus_for_model_is_empty() {
        // GPT-20B needs 12 GPUs (Table 1).
        assert!(configs_for(&ModelSpec::gpt_20b(), 8).is_empty());
        assert!(!configs_for(&ModelSpec::gpt_20b(), 12).is_empty());
    }

    #[test]
    fn all_results_respect_gpu_budget_and_memory() {
        let mem = MemoryModel::default();
        let gpu = GpuSpec::t4();
        for gpus in [4u32, 12, 16, 32] {
            for model in ModelSpec::paper_models() {
                for c in configs_for(&model, gpus) {
                    assert!(c.total_gpus() <= gpus, "{c} over budget {gpus}");
                    assert!(
                        mem.fits(&model, c.pipeline, c.tensor, &gpu),
                        "{c} infeasible"
                    );
                }
            }
        }
    }

    #[test]
    fn gpt20b_on_32_gpus_contains_paper_configs() {
        // §6.2 discusses (D=2,P=2,M=8) and (D=2,P=3,M=4) for GPT-20B.
        let cs = configs_for(&ModelSpec::gpt_20b(), 32);
        assert!(
            cs.iter().any(|c| c.mesh_key() == (2, 2, 8)),
            "missing (2,2,8)"
        );
        assert!(
            cs.iter().any(|c| c.mesh_key() == (2, 3, 4)),
            "missing (2,3,4)"
        );
    }

    #[test]
    fn no_duplicates_and_sorted() {
        let cs = configs_for(&ModelSpec::opt_6_7b(), 16);
        let mut sorted = cs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cs, sorted);
    }

    #[test]
    fn data_pipeline_only_space_pins_tensor_degree() {
        let cs = enumerate_configs(
            &ModelSpec::opt_6_7b(),
            &MemoryModel::default(),
            &GpuSpec::t4(),
            &ConfigSpace::data_pipeline_only(4),
            16,
        );
        assert!(!cs.is_empty());
        assert!(cs.iter().all(|c| c.tensor == 4));
    }

    #[test]
    fn batch_sizes_come_from_space() {
        let space = ConfigSpace {
            batch_sizes: vec![2],
            ..ConfigSpace::default()
        };
        let cs = enumerate_configs(
            &ModelSpec::opt_6_7b(),
            &MemoryModel::default(),
            &GpuSpec::t4(),
            &space,
            8,
        );
        assert!(!cs.is_empty());
        assert!(cs.iter().all(|c| c.batch == 2));
    }
}
