//! Logical mesh positions.

use std::fmt;

/// A pipeline-stage-shard topology position `(d, p, m)` (§3.3): the `m`-th
/// tensor shard of the `p`-th pipeline stage in the `d`-th data-parallel
/// pipeline. All indices are 0-based.
///
/// # Example
///
/// ```
/// use parallelism::MeshPosition;
/// let pos = MeshPosition::new(1, 0, 3);
/// assert_eq!(format!("{pos}"), "d1.s0.t3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeshPosition {
    /// Data-parallel pipeline index `d`.
    pub pipeline: u32,
    /// Pipeline stage index `p`.
    pub stage: u32,
    /// Tensor shard index `m`.
    pub shard: u32,
}

impl MeshPosition {
    /// Creates a position.
    pub fn new(pipeline: u32, stage: u32, shard: u32) -> Self {
        MeshPosition {
            pipeline,
            stage,
            shard,
        }
    }
}

impl fmt::Display for MeshPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}.s{}.t{}", self.pipeline, self.stage, self.shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_pipeline_major() {
        let a = MeshPosition::new(0, 5, 5);
        let b = MeshPosition::new(1, 0, 0);
        assert!(a < b);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", MeshPosition::new(2, 1, 0)), "d2.s1.t0");
    }
}
