//! The memoized candidate frontier: Algorithm 1's search space, enumerated
//! once and priced up front.
//!
//! `ConfigOptimizer::decide*` used to re-run [`enumerate_configs`] three to
//! four times per invocation and re-price every candidate's `φ(C)` and
//! `l_req(C, α)` from the cost model each time. Every availability change in
//! every pool hits the optimizer, so at multi-pool event churn this is the
//! control plane's hot loop. A [`CandidateFrontier`] makes the steady-state
//! path allocation-free:
//!
//! * **enumerate once** at the fleet ceiling — the set feasible at `n`
//!   instances is exactly the candidates with `instances_needed(n) ≤ n`, so
//!   candidates are sorted by `(instances_needed, canonical order)` and
//!   `feasible_at(n)` is a prefix range behind a cumulative index;
//! * **price once** — `l_exe` (fixed-batch) and the per-occupancy
//!   slot/steady-iteration tables (continuous) are computed per candidate
//!   at build time; `l_req(C, α)` then runs the shared [`PerfModel`]
//!   kernels over the cached components, bit-identical to fresh pricing;
//! * **Pareto-prune** — candidates dominated at equal instance cost
//!   (throughput no higher, latency no lower *for every* `α`, and losing
//!   every tie-break) can never be chosen by any of Algorithm 1's
//!   objectives, so the decision loops skip them entirely.
//!
//! The domination test is deliberately conservative: it only fires on
//! component-wise orderings that imply `l_req(y, α) ≤ l_req(x, α)` for all
//! `α` through the estimators' monotone structure (the fill term is
//! monotone in `B`, the queueing term in `ρ = α/φ` and the server count,
//! the continuous fixed-point iteration in the slot-time table), with the
//! canonical-order tie-break required to agree — so a pruned candidate
//! loses to its dominator under *every* selection key the optimizer uses,
//! and frontier-backed decisions stay bit-identical with fresh
//! enumeration. That contract is pinned by the equivalence property test
//! in `tests/optimizer_properties.rs`.

use cloudsim::GpuSpec;
use llmsim::MemoryModel;
use simkit::SimDuration;

use crate::config::ParallelConfig;
use crate::enumerate::{enumerate_configs, ConfigSpace};
use crate::perf::PerfModel;

/// Which engine's estimator prices candidates — the frontier caches both
/// so an optimizer can switch engines without re-enumerating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricingMode {
    /// The paper's fixed-batch formulas (`φ`, Eq. 1 `l_req`).
    FixedBatch,
    /// The re-derived iteration-level estimator
    /// ([`PerfModel::request_latency_continuous`]).
    ContinuousBatching,
}

/// One enumerated configuration with its precomputed pricing components.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The configuration.
    pub config: ParallelConfig,
    /// `instances_needed` on the frontier's instance size.
    pub instances: u32,
    /// Cached `exec_latency` (the fixed-batch `l_exe`).
    l_exe: SimDuration,
    /// Cached fixed-batch `φ(C)`.
    phi_fixed: f64,
    /// Cached continuous `φ(C)`.
    phi_cont: f64,
    /// `slot_time(C, b)` for `b = 1..=B` (index `b − 1`).
    slot_times: Box<[SimDuration]>,
    /// `steady_iteration(C, b)` for `b = 1..=B` (index `b − 1`).
    steady_times: Box<[SimDuration]>,
}

impl Candidate {
    fn price(perf: &PerfModel, config: ParallelConfig, gpus_per_instance: u8) -> Self {
        let l_exe = perf.exec_latency(&config);
        let slot_times: Box<[SimDuration]> = (1..=config.batch)
            .map(|b| perf.slot_time(&config, b))
            .collect();
        let steady_times: Box<[SimDuration]> = (1..=config.batch)
            .map(|b| perf.steady_iteration(&config, b))
            .collect();
        // Bitwise the same computations as `PerfModel::throughput` /
        // `throughput_continuous` over the cached components.
        let phi_fixed = (config.data * config.batch) as f64 / l_exe.as_secs_f64();
        let phi_cont = (config.data * config.batch) as f64
            / slot_times[config.batch as usize - 1].as_secs_f64();
        Candidate {
            config,
            instances: config.instances_needed(gpus_per_instance),
            l_exe,
            phi_fixed,
            phi_cont,
            slot_times,
            steady_times,
        }
    }

    /// Cached `φ(C)` under `mode` — bit-identical to
    /// [`PerfModel::throughput`] / [`PerfModel::throughput_continuous`].
    pub fn throughput(&self, mode: PricingMode) -> f64 {
        match mode {
            PricingMode::FixedBatch => self.phi_fixed,
            PricingMode::ContinuousBatching => self.phi_cont,
        }
    }

    /// `l_req(C, α)` under `mode`, via the shared [`PerfModel`] kernels
    /// over the cached components — bit-identical to fresh pricing.
    pub fn latency(&self, perf: &PerfModel, mode: PricingMode, alpha: f64) -> SimDuration {
        match mode {
            PricingMode::FixedBatch => {
                perf.request_latency_with_exec(&self.config, self.l_exe, alpha)
            }
            PricingMode::ContinuousBatching => perf.request_latency_continuous_with(
                &self.config,
                alpha,
                |b| self.slot_times[b as usize - 1],
                |b| self.steady_times[b as usize - 1],
            ),
        }
    }

    /// Whether `self` dominates `x` under `mode`: no Algorithm 1 objective
    /// — minimum-latency-among-sustaining, maximum-throughput, or
    /// cheapest-meeting-SLO — can ever select `x` while `self` is present,
    /// for *any* arrival rate, including every exact-tie case.
    ///
    /// Requirements (all conservative, see the module docs):
    /// * equal instance cost and strictly earlier canonical order, so
    ///   `self` wins every `(instances, config)` and `Reverse(config)`
    ///   tie-break;
    /// * `φ(self) ≥ φ(x)`, so `self` is in every sustaining/feasible set
    ///   `x` is in, and wins the throughput objective;
    /// * component-wise latency ordering that implies
    ///   `l_req(self, α) ≤ l_req(x, α)` for all `α` through the
    ///   estimator's monotone structure.
    fn dominates(&self, x: &Candidate, mode: PricingMode) -> bool {
        if self.instances != x.instances || self.config >= x.config {
            return false;
        }
        match mode {
            PricingMode::FixedBatch => {
                // l_req = l_exe + (B−1)/2α + l_exe·ρ^√(2(D+1))/(2D(1−ρ)):
                // monotone in l_exe, B, ρ = α/φ and anti-monotone in D.
                self.phi_fixed >= x.phi_fixed
                    && self.l_exe <= x.l_exe
                    && self.config.batch <= x.config.batch
                    && self.config.data >= x.config.data
            }
            PricingMode::ContinuousBatching => {
                // The occupancy fixed point iterates b ← clamp((α/D)·slot(b))
                // from the same seed over the same clamp range (equal B):
                // a pointwise-≤ slot table and D ≥ keep the iterate ≤ at
                // every step, so every component (slot(b̄), steady(b̄)/2,
                // queueing over slot(B)) is ≤.
                self.config.batch == x.config.batch
                    && self.config.data >= x.config.data
                    && self.phi_cont >= x.phi_cont
                    && self
                        .slot_times
                        .iter()
                        .zip(x.slot_times.iter())
                        .all(|(a, b)| a <= b)
                    && self
                        .steady_times
                        .iter()
                        .zip(x.steady_times.iter())
                        .all(|(a, b)| a <= b)
            }
        }
    }
}

/// The enumerated, priced and pruned candidate set for one
/// `(model, space, gpu, mem)` at a fleet ceiling. See the module docs.
///
/// # Example
///
/// ```
/// use cloudsim::GpuSpec;
/// use llmsim::{MemoryModel, ModelSpec};
/// use parallelism::{CandidateFrontier, ConfigSpace, PerfModel, PricingMode};
///
/// let model = ModelSpec::gpt_20b();
/// let perf = PerfModel::paper_defaults(model.clone());
/// let f = CandidateFrontier::new(
///     &perf,
///     &MemoryModel::default(),
///     &GpuSpec::t4(),
///     &ConfigSpace::default(),
///     4,
///     16,
/// );
/// // GPT-20B needs 12 GPUs = 3 instances: nothing fits at 2.
/// assert!(f.feasible_at(2).is_empty());
/// assert!(!f.feasible_at(3).is_empty());
/// // Every survivor of pruning is still priced exactly.
/// let c = f.pruned_at(16, PricingMode::FixedBatch).next().unwrap();
/// assert_eq!(c.throughput(PricingMode::FixedBatch), perf.throughput(&c.config));
/// ```
#[derive(Debug, Clone)]
pub struct CandidateFrontier {
    gpus_per_instance: u8,
    /// Fleet ceiling (instances) this frontier was enumerated at.
    ceiling: u32,
    /// All candidates, sorted by `(instances, canonical config order)`.
    candidates: Vec<Candidate>,
    /// `cum[n]` = number of candidates needing at most `n` instances
    /// (`n = 0..=ceiling`), so `feasible_at(n)` is `candidates[..cum[n]]`.
    cum: Vec<u32>,
    /// Indices (ascending) of candidates surviving fixed-batch pruning,
    /// with its own cumulative per-instance index.
    pruned_fixed: Vec<u32>,
    pruned_fixed_cum: Vec<u32>,
    /// Same for the continuous estimator.
    pruned_cont: Vec<u32>,
    pruned_cont_cum: Vec<u32>,
}

impl CandidateFrontier {
    /// Enumerates, prices and prunes the space for a fleet of up to
    /// `ceiling_instances` instances of `gpus_per_instance` GPUs each.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_instance` or `ceiling_instances` is zero.
    pub fn new(
        perf: &PerfModel,
        mem: &MemoryModel,
        gpu: &GpuSpec,
        space: &ConfigSpace,
        gpus_per_instance: u8,
        ceiling_instances: u32,
    ) -> Self {
        assert!(gpus_per_instance > 0 && ceiling_instances > 0);
        let mut candidates: Vec<Candidate> = enumerate_configs(
            perf.model(),
            mem,
            gpu,
            space,
            ceiling_instances * gpus_per_instance as u32,
        )
        .into_iter()
        .map(|c| Candidate::price(perf, c, gpus_per_instance))
        .collect();
        // Stable sort: within one instance bucket the canonical
        // (enumeration) order is preserved.
        candidates.sort_by_key(|a| (a.instances, a.config));
        let cum = cumulative(candidates.iter().map(|c| c.instances), ceiling_instances);
        let (pruned_fixed, pruned_fixed_cum) =
            prune(&candidates, ceiling_instances, PricingMode::FixedBatch);
        let (pruned_cont, pruned_cont_cum) = prune(
            &candidates,
            ceiling_instances,
            PricingMode::ContinuousBatching,
        );
        CandidateFrontier {
            gpus_per_instance,
            ceiling: ceiling_instances,
            candidates,
            cum,
            pruned_fixed,
            pruned_fixed_cum,
            pruned_cont,
            pruned_cont_cum,
        }
    }

    /// The fleet ceiling (instances) this frontier covers.
    pub fn ceiling(&self) -> u32 {
        self.ceiling
    }

    /// GPUs per instance the cumulative index was built for.
    pub fn gpus_per_instance(&self) -> u8 {
        self.gpus_per_instance
    }

    /// Total enumerated candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the space is empty at the ceiling.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Candidates surviving pruning under `mode`, at the ceiling.
    pub fn pruned_len(&self, mode: PricingMode) -> usize {
        match mode {
            PricingMode::FixedBatch => self.pruned_fixed.len(),
            PricingMode::ContinuousBatching => self.pruned_cont.len(),
        }
    }

    /// Every candidate feasible on a fleet of `n` instances — the range
    /// lookup replacing a fresh `enumerate_configs` call. `n` above the
    /// ceiling clamps to the ceiling (callers grow the frontier instead).
    pub fn feasible_at(&self, n: u32) -> &[Candidate] {
        let n = n.min(self.ceiling) as usize;
        &self.candidates[..self.cum[n] as usize]
    }

    /// The candidates feasible at `n` instances that survive Pareto
    /// pruning under `mode` — the set the decision loops scan. Skipped
    /// candidates are exactly those that can never be selected (see
    /// [`Candidate`] `dominates`), so a scan over this iterator picks the
    /// same winner as a scan over [`CandidateFrontier::feasible_at`].
    pub fn pruned_at(&self, n: u32, mode: PricingMode) -> impl Iterator<Item = &Candidate> + '_ {
        let n = n.min(self.ceiling) as usize;
        let (idx, cum) = match mode {
            PricingMode::FixedBatch => (&self.pruned_fixed, &self.pruned_fixed_cum),
            PricingMode::ContinuousBatching => (&self.pruned_cont, &self.pruned_cont_cum),
        };
        idx[..cum[n] as usize]
            .iter()
            .map(move |&i| &self.candidates[i as usize])
    }

    /// Whether `c` is feasible on a fleet of `n` instances — the direct
    /// membership test replacing `feasible(n).contains(&c)` (a binary
    /// search over the enumerated set instead of an `O(|space|)`
    /// re-enumeration). `n` must be within the ceiling.
    pub fn contains(&self, c: &ParallelConfig, n: u32) -> bool {
        let inst = c.instances_needed(self.gpus_per_instance);
        inst <= n.min(self.ceiling) && self.lookup(c).is_some()
    }

    /// The priced candidate for `c`, if `c` is in the enumerated space.
    pub fn lookup(&self, c: &ParallelConfig) -> Option<&Candidate> {
        let inst = c.instances_needed(self.gpus_per_instance);
        self.candidates
            .binary_search_by(|cand| (cand.instances, cand.config).cmp(&(inst, *c)))
            .ok()
            .map(|i| &self.candidates[i])
    }
}

/// `out[n]` = number of entries needing at most `n` instances, for
/// `n = 0..=ceiling` (entries are instance-sorted, each within the
/// ceiling).
fn cumulative(instances: impl Iterator<Item = u32>, ceiling: u32) -> Vec<u32> {
    let mut cum = vec![0u32; ceiling as usize + 1];
    for inst in instances {
        debug_assert!(inst >= 1 && inst <= ceiling);
        cum[inst as usize] += 1;
    }
    for n in 1..cum.len() {
        cum[n] += cum[n - 1];
    }
    cum
}

/// Pareto pruning within equal-instance buckets: drop every candidate
/// dominated by another of the same instance cost. Domination is
/// transitive, so any dominated candidate has a *surviving* dominator.
fn prune(candidates: &[Candidate], ceiling: u32, mode: PricingMode) -> (Vec<u32>, Vec<u32>) {
    let mut keep: Vec<u32> = Vec::new();
    let mut start = 0;
    while start < candidates.len() {
        let inst = candidates[start].instances;
        let mut end = start;
        while end < candidates.len() && candidates[end].instances == inst {
            end += 1;
        }
        let bucket = &candidates[start..end];
        for (i, x) in bucket.iter().enumerate() {
            let dominated = bucket
                .iter()
                .enumerate()
                .any(|(j, y)| j != i && y.dominates(x, mode));
            if !dominated {
                keep.push((start + i) as u32);
            }
        }
        start = end;
    }
    // Cumulative index over the kept (still instance-sorted) list.
    let cum = cumulative(
        keep.iter().map(|&i| candidates[i as usize].instances),
        ceiling,
    );
    (keep, cum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::ModelSpec;

    fn frontier(model: ModelSpec, ceiling: u32) -> (PerfModel, CandidateFrontier) {
        let perf = PerfModel::paper_defaults(model);
        let f = CandidateFrontier::new(
            &perf,
            &MemoryModel::default(),
            &GpuSpec::t4(),
            &ConfigSpace::default(),
            4,
            ceiling,
        );
        (perf, f)
    }

    #[test]
    fn feasible_at_matches_fresh_enumeration_at_every_fleet_size() {
        let (perf, f) = frontier(ModelSpec::gpt_20b(), 16);
        for n in 0..=16u32 {
            let mut from_frontier: Vec<ParallelConfig> =
                f.feasible_at(n).iter().map(|c| c.config).collect();
            from_frontier.sort_unstable();
            let fresh = enumerate_configs(
                perf.model(),
                &MemoryModel::default(),
                &GpuSpec::t4(),
                &ConfigSpace::default(),
                n * 4,
            );
            assert_eq!(from_frontier, fresh, "fleet of {n}");
        }
    }

    #[test]
    fn cached_pricing_is_bit_identical_with_fresh_pricing() {
        let (perf, f) = frontier(ModelSpec::gpt_20b(), 12);
        for cand in f.feasible_at(12) {
            let c = &cand.config;
            assert_eq!(cand.throughput(PricingMode::FixedBatch), perf.throughput(c));
            assert_eq!(
                cand.throughput(PricingMode::ContinuousBatching),
                perf.throughput_continuous(c)
            );
            for alpha in [0.0, 0.1, 0.35, 1.0, 3.0] {
                assert_eq!(
                    cand.latency(&perf, PricingMode::FixedBatch, alpha),
                    perf.request_latency(c, alpha),
                    "{c} fixed @ {alpha}"
                );
                assert_eq!(
                    cand.latency(&perf, PricingMode::ContinuousBatching, alpha),
                    perf.request_latency_continuous(c, alpha),
                    "{c} continuous @ {alpha}"
                );
            }
        }
    }

    #[test]
    fn pruning_never_drops_an_optimum() {
        // For a sweep of (n, α): the best (latency, instances, config) key
        // over the pruned set equals the best over the full feasible set,
        // under both estimators — the domination contract, checked
        // exhaustively at a small ceiling.
        let (perf, f) = frontier(ModelSpec::gpt_20b(), 10);
        for mode in [PricingMode::FixedBatch, PricingMode::ContinuousBatching] {
            for n in [3u32, 5, 8, 10] {
                for alpha in [0.0, 0.05, 0.2, 0.35, 0.6, 1.5] {
                    let best_full = f
                        .feasible_at(n)
                        .iter()
                        .map(|c| (c.latency(&perf, mode, alpha), c.instances, c.config))
                        .min();
                    let best_pruned = f
                        .pruned_at(n, mode)
                        .map(|c| (c.latency(&perf, mode, alpha), c.instances, c.config))
                        .min();
                    assert_eq!(best_full, best_pruned, "latency {mode:?} n={n} α={alpha}");
                    let phi_full = f
                        .feasible_at(n)
                        .iter()
                        .map(|c| (c.throughput(mode), std::cmp::Reverse(c.config)))
                        .max_by(|a, b| a.partial_cmp(b).expect("finite"));
                    let phi_pruned = f
                        .pruned_at(n, mode)
                        .map(|c| (c.throughput(mode), std::cmp::Reverse(c.config)))
                        .max_by(|a, b| a.partial_cmp(b).expect("finite"));
                    assert_eq!(phi_full, phi_pruned, "throughput {mode:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn pruning_actually_removes_candidates() {
        let (_, f) = frontier(ModelSpec::gpt_20b(), 16);
        assert!(
            f.pruned_len(PricingMode::FixedBatch) < f.len(),
            "fixed-batch pruning must bite: {} of {}",
            f.pruned_len(PricingMode::FixedBatch),
            f.len()
        );
    }

    #[test]
    fn contains_matches_linear_membership() {
        let (_, f) = frontier(ModelSpec::opt_6_7b(), 8);
        for n in [0u32, 1, 3, 8] {
            let set: Vec<ParallelConfig> = f.feasible_at(n).iter().map(|c| c.config).collect();
            for cand in f.feasible_at(8) {
                assert_eq!(
                    f.contains(&cand.config, n),
                    set.contains(&cand.config),
                    "{} at {n}",
                    cand.config
                );
            }
        }
        // A config outside the space is never contained.
        assert!(!f.contains(&ParallelConfig::new(1, 1, 3, 5), 8));
    }

    #[test]
    fn lookup_finds_every_candidate() {
        let (_, f) = frontier(ModelSpec::llama_30b(), 8);
        for cand in f.feasible_at(8) {
            assert_eq!(f.lookup(&cand.config).unwrap().config, cand.config);
        }
    }
}
