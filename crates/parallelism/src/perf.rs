//! Performance estimation for parallel configurations.
//!
//! Algorithm 1 needs two quantities per candidate configuration: the peak
//! serving throughput `φ(C)` and the expected end-to-end request latency
//! `l_req(C)` at the current arrival rate (§3.2). Both come from the
//! calibrated cost model; the scheduling-delay component uses a standard
//! multi-server queueing heuristic, mirroring the paper's offline profiler.

use llmsim::{CostModel, ModelSpec, SeqWork};
use simkit::SimDuration;

use crate::config::ParallelConfig;

/// Latency/throughput estimator for one model on one cluster.
///
/// # Example
///
/// ```
/// use llmsim::{calibration, ModelSpec};
/// use parallelism::{ParallelConfig, PerfModel};
///
/// let model = ModelSpec::gpt_20b();
/// let perf = PerfModel::paper_defaults(model.clone());
/// let c = ParallelConfig::new(2, 3, 4, 8);
/// let phi = perf.throughput(&c);
/// assert!(phi > 0.35, "paper: this config sustains the 0.35 req/s workload");
/// ```
#[derive(Debug, Clone)]
pub struct PerfModel {
    model: ModelSpec,
    cost: CostModel,
    s_in: u32,
    s_out: u32,
}

impl PerfModel {
    /// Creates an estimator from an explicit cost model and sequence shape.
    ///
    /// # Panics
    ///
    /// Panics if `s_out == 0`.
    pub fn new(model: ModelSpec, cost: CostModel, s_in: u32, s_out: u32) -> Self {
        assert!(s_out > 0, "generation must produce tokens");
        PerfModel {
            model,
            cost,
            s_in,
            s_out,
        }
    }

    /// The paper's evaluation setup: T4 cluster, calibrated scales,
    /// `S_in = 512`, `S_out = 128`.
    pub fn paper_defaults(model: ModelSpec) -> Self {
        let cost = llmsim::calibration::calibrated_cost_model(&model);
        PerfModel::new(
            model,
            cost,
            llmsim::calibration::PAPER_S_IN,
            llmsim::calibration::PAPER_S_OUT,
        )
    }

    /// The model being served.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The `(S_in, S_out)` shape this estimator assumes.
    pub fn sequence_shape(&self) -> (u32, u32) {
        (self.s_in, self.s_out)
    }

    /// Execution latency `l_exe` of one full batch under `c` (Eq. 1).
    pub fn exec_latency(&self, c: &ParallelConfig) -> SimDuration {
        self.cost.exec_latency(
            &self.model,
            c.pipeline,
            c.tensor,
            c.batch,
            self.s_in,
            self.s_out,
        )
    }

    /// Latency of one continuous-batching iteration under `c`: a single
    /// forward pass over the *current* mixed batch, where each running
    /// sequence contributes its own prefill-vs-decode token count and
    /// attention context. This is the per-iteration price the
    /// iteration-level scheduler recomputes whenever the running set
    /// changes; for a uniform batch it reduces bit-exactly to the uniform
    /// cost-model path.
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty (no iteration to price).
    pub fn mixed_iteration_time(&self, c: &ParallelConfig, seqs: &[SeqWork]) -> SimDuration {
        self.cost
            .mixed_forward_time(&self.model, c.pipeline, c.tensor, seqs)
    }

    /// Peak serving throughput `φ(C)` in requests/second: `D·B` requests
    /// complete every `l_exe`.
    pub fn throughput(&self, c: &ParallelConfig) -> f64 {
        (c.data * c.batch) as f64 / self.exec_latency(c).as_secs_f64()
    }

    /// Expected end-to-end request latency `l_req(C) = l_sch + l_exe` at
    /// arrival rate `alpha` (req/s), under the paper's **fixed-batch**
    /// engine (§3.2 / Eq. 1).
    ///
    /// The scheduling component models (a) the wait to fill a batch of `B`
    /// at rate `alpha` and (b) multi-server queueing delay that grows as
    /// utilization `ρ = α / φ(C)` approaches 1 (Allen–Cunneen style
    /// approximation). Returns [`SimDuration::MAX`] when the system is
    /// saturated (`ρ ≥ 1`), matching the optimizer's "overloaded" treatment.
    ///
    /// This is the estimator Algorithm 1 uses under
    /// `EngineMode::FixedBatch`, kept formula-exact so figure comparisons
    /// against the paper stay bit-identical; the continuous engine prices
    /// candidates with [`PerfModel::request_latency_continuous`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn request_latency(&self, c: &ParallelConfig, alpha: f64) -> SimDuration {
        self.request_latency_with_exec(c, self.exec_latency(c), alpha)
    }

    /// The fixed-batch `l_req` formula over a precomputed `l_exe` — the
    /// kernel behind [`PerfModel::request_latency`], exposed so callers
    /// holding a cached `exec_latency` (the candidate frontier) price
    /// bit-identically to the fresh path by running the *same* code.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn request_latency_with_exec(
        &self,
        c: &ParallelConfig,
        l_exe: SimDuration,
        alpha: f64,
    ) -> SimDuration {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "bad arrival rate {alpha}"
        );
        if alpha == 0.0 {
            return l_exe;
        }
        let phi = (c.data * c.batch) as f64 / l_exe.as_secs_f64();
        let rho = alpha / phi;
        if rho >= 1.0 {
            return SimDuration::MAX;
        }
        // Batch-fill delay: the average request waits for half the rest of
        // its batch to arrive.
        let fill = (c.batch as f64 - 1.0) / (2.0 * alpha);
        // Queueing delay: M/D/c heuristic with c = D servers whose service
        // time is l_exe per batch.
        let servers = c.data as f64;
        let queue = l_exe.as_secs_f64() * rho.powf((2.0 * (servers + 1.0)).sqrt())
            / (2.0 * servers * (1.0 - rho));
        l_exe + SimDuration::from_secs_f64(fill + queue)
    }

    // ---- Continuous-batching (iteration-level) estimator --------------
    //
    // Under the iteration-level engine a request never waits for a batch
    // to fill: it joins at the next iteration boundary, runs its prefill
    // as one mixed pass among the residents' decodes, and then holds a
    // *slot* for `S_out` iterations. The natural service unit is the slot,
    // not the batch, which re-derives both φ(C) and l_req(C).

    /// One steady decode iteration at occupancy `b` (each resident at its
    /// mid-lifetime attention context).
    pub fn steady_iteration(&self, c: &ParallelConfig, b: u32) -> SimDuration {
        self.cost.decode_time(
            &self.model,
            c.pipeline,
            c.tensor,
            b,
            self.s_in + self.s_out / 2,
        )
    }

    /// The admission pass at occupancy `b`: one request's prefill carried
    /// through a mixed iteration alongside `b - 1` residents' decodes.
    fn admission_pass(&self, c: &ParallelConfig, b: u32) -> SimDuration {
        let mut seqs = vec![SeqWork::decode(self.s_in + self.s_out / 2); b as usize - 1];
        seqs.push(SeqWork::prefill(self.s_in));
        self.cost
            .mixed_forward_time(&self.model, c.pipeline, c.tensor, &seqs)
    }

    /// How long one request occupies a slot at steady occupancy `b`: its
    /// admission (prefill) pass plus `S_out − 1` decode iterations.
    pub fn slot_time(&self, c: &ParallelConfig, b: u32) -> SimDuration {
        self.admission_pass(c, b) + self.steady_iteration(c, b) * (self.s_out - 1) as u64
    }

    /// Peak serving throughput of the iteration-level engine: `D·B` slots,
    /// each turning over a request every [`slot_time`](Self::slot_time) at
    /// full occupancy. Strictly exceeds the fixed-batch `φ(C)` because the
    /// prefill of one admission rides a single mixed pass instead of a
    /// whole-batch prefill, and no slot idles while the batch drains.
    pub fn throughput_continuous(&self, c: &ParallelConfig) -> f64 {
        (c.data * c.batch) as f64 / self.slot_time(c, c.batch).as_secs_f64()
    }

    /// Expected end-to-end request latency under the iteration-level
    /// engine at arrival rate `alpha` — the re-derived `l_req(C)`.
    ///
    /// Components:
    /// * **no batch-fill delay** — the fixed-batch `(B−1)/2α` term is
    ///   replaced by half a steady iteration of boundary wait;
    /// * **execution at steady occupancy** — the resident batch size `b̄`
    ///   solves Little's law `b̄ = (α/D)·T_slot(b̄)` (iterated to a fixed
    ///   point, clamped to `[1, B]`), and the request's own passes are
    ///   priced at that occupancy;
    /// * **slot queueing** — an Allen–Cunneen style term over `D·B`
    ///   servers of service time `T_slot(B)` as `ρ = α/φ_cont → 1`.
    ///
    /// Returns [`SimDuration::MAX`] when saturated (`ρ ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn request_latency_continuous(&self, c: &ParallelConfig, alpha: f64) -> SimDuration {
        self.request_latency_continuous_with(
            c,
            alpha,
            |b| self.slot_time(c, b),
            |b| self.steady_iteration(c, b),
        )
    }

    /// The continuous `l_req` formula over caller-supplied slot/steady
    /// iteration prices — the kernel behind
    /// [`PerfModel::request_latency_continuous`], exposed so callers
    /// holding per-occupancy tables (the candidate frontier) price
    /// bit-identically to the fresh path by running the *same* code.
    /// `slot(b)` and `steady(b)` are queried for occupancies `1..=c.batch`
    /// and must return exactly [`PerfModel::slot_time`] and
    /// [`PerfModel::steady_iteration`].
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn request_latency_continuous_with(
        &self,
        c: &ParallelConfig,
        alpha: f64,
        slot: impl Fn(u32) -> SimDuration,
        steady: impl Fn(u32) -> SimDuration,
    ) -> SimDuration {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "bad arrival rate {alpha}"
        );
        if alpha == 0.0 {
            // Empty engine: run alone at occupancy 1.
            return slot(1);
        }
        let phi = (c.data * c.batch) as f64 / slot(c.batch).as_secs_f64();
        let rho = alpha / phi;
        if rho >= 1.0 {
            return SimDuration::MAX;
        }
        // Steady occupancy by Little's law, iterated to a fixed point.
        let per_pipeline = alpha / c.data as f64;
        let clamp = |b: f64| b.clamp(1.0, c.batch as f64);
        let mut b = 1.0f64;
        for _ in 0..16 {
            let bi = clamp(b).ceil() as u32;
            b = clamp(per_pipeline * slot(bi).as_secs_f64());
        }
        let bi = clamp(b).ceil() as u32;
        let l_exe = slot(bi);
        let boundary = steady(bi) / 2;
        let servers = (c.data * c.batch) as f64;
        let queue = slot(c.batch).as_secs_f64() * rho.powf((2.0 * (servers + 1.0)).sqrt())
            / (servers * (1.0 - rho));
        l_exe + boundary + SimDuration::from_secs_f64(queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(model: ModelSpec) -> PerfModel {
        PerfModel::paper_defaults(model)
    }

    #[test]
    fn table1_anchor_through_perf_model() {
        let p = perf(ModelSpec::opt_6_7b());
        let c = ParallelConfig::new(1, 1, 4, 1);
        let l = p.exec_latency(&c).as_secs_f64();
        assert!((l - 5.447).abs() / 5.447 < 0.02, "got {l}");
    }

    #[test]
    fn throughput_scales_with_data_parallelism() {
        let p = perf(ModelSpec::gpt_20b());
        let c1 = ParallelConfig::new(1, 3, 4, 8);
        let c2 = ParallelConfig::new(2, 3, 4, 8);
        let r = p.throughput(&c2) / p.throughput(&c1);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_batches_raise_throughput_sublinearly() {
        let p = perf(ModelSpec::gpt_20b());
        let b1 = p.throughput(&ParallelConfig::new(1, 3, 4, 1));
        let b8 = p.throughput(&ParallelConfig::new(1, 3, 4, 8));
        assert!(b8 > 2.0 * b1, "batching must help: {b1} -> {b8}");
        assert!(b8 < 8.0 * b1, "but not perfectly linearly");
    }

    #[test]
    fn saturated_config_reports_max_latency() {
        let p = perf(ModelSpec::llama_30b());
        let c = ParallelConfig::new(1, 2, 8, 1);
        let phi = p.throughput(&c);
        assert_eq!(p.request_latency(&c, phi * 1.1), SimDuration::MAX);
    }

    #[test]
    fn latency_grows_with_load() {
        let p = perf(ModelSpec::gpt_20b());
        let c = ParallelConfig::new(2, 3, 4, 8);
        let lo = p.request_latency(&c, 0.1);
        let hi = p.request_latency(&c, p.throughput(&c) * 0.9);
        assert!(hi > lo);
        assert!(lo >= p.exec_latency(&c));
    }

    #[test]
    fn mixed_iteration_matches_uniform_decode() {
        let p = perf(ModelSpec::gpt_20b());
        let c = ParallelConfig::new(1, 3, 4, 8);
        let seqs = vec![SeqWork::decode(576); 8];
        assert_eq!(
            p.mixed_iteration_time(&c, &seqs),
            p.cost_model().decode_time(p.model(), 3, 4, 8, 576)
        );
    }

    #[test]
    fn zero_load_latency_is_exec_latency() {
        let p = perf(ModelSpec::opt_6_7b());
        let c = ParallelConfig::new(1, 1, 4, 4);
        assert_eq!(p.request_latency(&c, 0.0), p.exec_latency(&c));
    }

    #[test]
    fn continuous_throughput_exceeds_fixed() {
        // Iteration-level slots turn over faster than run-to-completion
        // batches at every configuration shape.
        let p = perf(ModelSpec::gpt_20b());
        for c in [
            ParallelConfig::new(1, 3, 4, 1),
            ParallelConfig::new(1, 3, 4, 8),
            ParallelConfig::new(2, 2, 8, 8),
        ] {
            assert!(
                p.throughput_continuous(&c) > p.throughput(&c),
                "{c}: {} !> {}",
                p.throughput_continuous(&c),
                p.throughput(&c)
            );
        }
    }

    #[test]
    fn continuous_latency_drops_the_batch_fill_delay() {
        // At a low rate the fixed-batch estimator is dominated by waiting
        // for B−1 peers to arrive; the continuous estimator never pays it.
        let p = perf(ModelSpec::gpt_20b());
        let c = ParallelConfig::new(2, 2, 8, 8);
        let alpha = 0.1;
        let fixed = p.request_latency(&c, alpha);
        let cont = p.request_latency_continuous(&c, alpha);
        assert!(cont < fixed, "{cont} !< {fixed}");
        // The fill delay alone is (8−1)/(2·0.1) = 35 s.
        assert!(fixed.as_secs_f64() - cont.as_secs_f64() > 20.0);
    }

    #[test]
    fn continuous_latency_saturates_like_fixed() {
        let p = perf(ModelSpec::gpt_20b());
        let c = ParallelConfig::new(1, 2, 8, 8);
        let phi = p.throughput_continuous(&c);
        assert_eq!(
            p.request_latency_continuous(&c, phi * 1.01),
            SimDuration::MAX
        );
        let near = p.request_latency_continuous(&c, phi * 0.95);
        let calm = p.request_latency_continuous(&c, phi * 0.2);
        assert!(near > calm, "queueing must grow with load");
        assert!(near != SimDuration::MAX);
    }

    #[test]
    fn continuous_zero_load_runs_alone() {
        let p = perf(ModelSpec::opt_6_7b());
        let c = ParallelConfig::new(1, 1, 4, 8);
        // Occupancy 1: an admission pass plus S_out − 1 solo decodes —
        // strictly below the full-batch exec latency.
        let solo = p.request_latency_continuous(&c, 0.0);
        assert!(solo < p.exec_latency(&c));
        assert!(solo > SimDuration::ZERO);
    }

    #[test]
    fn paper_gpt20b_overload_example() {
        // §6.2: for GPT-20B at 0.35 req/s, (D=2,P=2,M=8) has "sufficient
        // throughput", while dropping one pipeline — (D=1,P=2,M=8) — makes
        // requests stack up.
        let p = perf(ModelSpec::gpt_20b());
        let healthy = ParallelConfig::new(2, 2, 8, 8);
        let degraded = ParallelConfig::new(1, 2, 8, 8);
        assert!(p.throughput(&healthy) > 0.35);
        assert!(
            p.throughput(&degraded) < 0.35,
            "one pipeline must be insufficient: {}",
            p.throughput(&degraded)
        );
    }
}
