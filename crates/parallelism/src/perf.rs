//! Performance estimation for parallel configurations.
//!
//! Algorithm 1 needs two quantities per candidate configuration: the peak
//! serving throughput `φ(C)` and the expected end-to-end request latency
//! `l_req(C)` at the current arrival rate (§3.2). Both come from the
//! calibrated cost model; the scheduling-delay component uses a standard
//! multi-server queueing heuristic, mirroring the paper's offline profiler.

use llmsim::{CostModel, ModelSpec, SeqWork};
use simkit::SimDuration;

use crate::config::ParallelConfig;

/// Latency/throughput estimator for one model on one cluster.
///
/// # Example
///
/// ```
/// use llmsim::{calibration, ModelSpec};
/// use parallelism::{ParallelConfig, PerfModel};
///
/// let model = ModelSpec::gpt_20b();
/// let perf = PerfModel::paper_defaults(model.clone());
/// let c = ParallelConfig::new(2, 3, 4, 8);
/// let phi = perf.throughput(&c);
/// assert!(phi > 0.35, "paper: this config sustains the 0.35 req/s workload");
/// ```
#[derive(Debug, Clone)]
pub struct PerfModel {
    model: ModelSpec,
    cost: CostModel,
    s_in: u32,
    s_out: u32,
}

impl PerfModel {
    /// Creates an estimator from an explicit cost model and sequence shape.
    ///
    /// # Panics
    ///
    /// Panics if `s_out == 0`.
    pub fn new(model: ModelSpec, cost: CostModel, s_in: u32, s_out: u32) -> Self {
        assert!(s_out > 0, "generation must produce tokens");
        PerfModel {
            model,
            cost,
            s_in,
            s_out,
        }
    }

    /// The paper's evaluation setup: T4 cluster, calibrated scales,
    /// `S_in = 512`, `S_out = 128`.
    pub fn paper_defaults(model: ModelSpec) -> Self {
        let cost = llmsim::calibration::calibrated_cost_model(&model);
        PerfModel::new(
            model,
            cost,
            llmsim::calibration::PAPER_S_IN,
            llmsim::calibration::PAPER_S_OUT,
        )
    }

    /// The model being served.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The `(S_in, S_out)` shape this estimator assumes.
    pub fn sequence_shape(&self) -> (u32, u32) {
        (self.s_in, self.s_out)
    }

    /// Execution latency `l_exe` of one full batch under `c` (Eq. 1).
    pub fn exec_latency(&self, c: &ParallelConfig) -> SimDuration {
        self.cost.exec_latency(
            &self.model,
            c.pipeline,
            c.tensor,
            c.batch,
            self.s_in,
            self.s_out,
        )
    }

    /// Latency of one continuous-batching iteration under `c`: a single
    /// forward pass over the *current* mixed batch, where each running
    /// sequence contributes its own prefill-vs-decode token count and
    /// attention context. This is the per-iteration price the
    /// iteration-level scheduler recomputes whenever the running set
    /// changes; for a uniform batch it reduces bit-exactly to the uniform
    /// cost-model path.
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty (no iteration to price).
    pub fn mixed_iteration_time(&self, c: &ParallelConfig, seqs: &[SeqWork]) -> SimDuration {
        self.cost
            .mixed_forward_time(&self.model, c.pipeline, c.tensor, seqs)
    }

    /// Peak serving throughput `φ(C)` in requests/second: `D·B` requests
    /// complete every `l_exe`.
    pub fn throughput(&self, c: &ParallelConfig) -> f64 {
        (c.data * c.batch) as f64 / self.exec_latency(c).as_secs_f64()
    }

    /// Expected end-to-end request latency `l_req(C) = l_sch + l_exe` at
    /// arrival rate `alpha` (req/s).
    ///
    /// The scheduling component models (a) the wait to fill a batch of `B`
    /// at rate `alpha` and (b) multi-server queueing delay that grows as
    /// utilization `ρ = α / φ(C)` approaches 1 (Allen–Cunneen style
    /// approximation). Returns [`SimDuration::MAX`] when the system is
    /// saturated (`ρ ≥ 1`), matching the optimizer's "overloaded" treatment.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn request_latency(&self, c: &ParallelConfig, alpha: f64) -> SimDuration {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "bad arrival rate {alpha}"
        );
        let l_exe = self.exec_latency(c);
        if alpha == 0.0 {
            return l_exe;
        }
        let phi = self.throughput(c);
        let rho = alpha / phi;
        if rho >= 1.0 {
            return SimDuration::MAX;
        }
        // Batch-fill delay: the average request waits for half the rest of
        // its batch to arrive.
        let fill = (c.batch as f64 - 1.0) / (2.0 * alpha);
        // Queueing delay: M/D/c heuristic with c = D servers whose service
        // time is l_exe per batch.
        let servers = c.data as f64;
        let queue = l_exe.as_secs_f64() * rho.powf((2.0 * (servers + 1.0)).sqrt())
            / (2.0 * servers * (1.0 - rho));
        l_exe + SimDuration::from_secs_f64(fill + queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(model: ModelSpec) -> PerfModel {
        PerfModel::paper_defaults(model)
    }

    #[test]
    fn table1_anchor_through_perf_model() {
        let p = perf(ModelSpec::opt_6_7b());
        let c = ParallelConfig::new(1, 1, 4, 1);
        let l = p.exec_latency(&c).as_secs_f64();
        assert!((l - 5.447).abs() / 5.447 < 0.02, "got {l}");
    }

    #[test]
    fn throughput_scales_with_data_parallelism() {
        let p = perf(ModelSpec::gpt_20b());
        let c1 = ParallelConfig::new(1, 3, 4, 8);
        let c2 = ParallelConfig::new(2, 3, 4, 8);
        let r = p.throughput(&c2) / p.throughput(&c1);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_batches_raise_throughput_sublinearly() {
        let p = perf(ModelSpec::gpt_20b());
        let b1 = p.throughput(&ParallelConfig::new(1, 3, 4, 1));
        let b8 = p.throughput(&ParallelConfig::new(1, 3, 4, 8));
        assert!(b8 > 2.0 * b1, "batching must help: {b1} -> {b8}");
        assert!(b8 < 8.0 * b1, "but not perfectly linearly");
    }

    #[test]
    fn saturated_config_reports_max_latency() {
        let p = perf(ModelSpec::llama_30b());
        let c = ParallelConfig::new(1, 2, 8, 1);
        let phi = p.throughput(&c);
        assert_eq!(p.request_latency(&c, phi * 1.1), SimDuration::MAX);
    }

    #[test]
    fn latency_grows_with_load() {
        let p = perf(ModelSpec::gpt_20b());
        let c = ParallelConfig::new(2, 3, 4, 8);
        let lo = p.request_latency(&c, 0.1);
        let hi = p.request_latency(&c, p.throughput(&c) * 0.9);
        assert!(hi > lo);
        assert!(lo >= p.exec_latency(&c));
    }

    #[test]
    fn mixed_iteration_matches_uniform_decode() {
        let p = perf(ModelSpec::gpt_20b());
        let c = ParallelConfig::new(1, 3, 4, 8);
        let seqs = vec![SeqWork::decode(576); 8];
        assert_eq!(
            p.mixed_iteration_time(&c, &seqs),
            p.cost_model().decode_time(p.model(), 3, 4, 8, 576)
        );
    }

    #[test]
    fn zero_load_latency_is_exec_latency() {
        let p = perf(ModelSpec::opt_6_7b());
        let c = ParallelConfig::new(1, 1, 4, 4);
        assert_eq!(p.request_latency(&c, 0.0), p.exec_latency(&c));
    }

    #[test]
    fn paper_gpt20b_overload_example() {
        // §6.2: for GPT-20B at 0.35 req/s, (D=2,P=2,M=8) has "sufficient
        // throughput", while dropping one pipeline — (D=1,P=2,M=8) — makes
        // requests stack up.
        let p = perf(ModelSpec::gpt_20b());
        let healthy = ParallelConfig::new(2, 2, 8, 8);
        let degraded = ParallelConfig::new(1, 2, 8, 8);
        assert!(p.throughput(&healthy) > 0.35);
        assert!(
            p.throughput(&degraded) < 0.35,
            "one pipeline must be insufficient: {}",
            p.throughput(&degraded)
        );
    }
}
