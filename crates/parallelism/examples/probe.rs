use parallelism::{ParallelConfig, PerfModel};
fn main() {
    let p = PerfModel::paper_defaults(llmsim::ModelSpec::gpt_20b());
    for (d, pp, m, b) in [
        (2u32, 2u32, 8u32, 8u32),
        (1, 2, 8, 8),
        (2, 3, 4, 8),
        (1, 3, 4, 8),
        (3, 3, 4, 8),
        (3, 2, 8, 8),
    ] {
        let c = ParallelConfig::new(d, pp, m, b);
        println!(
            "{c}: l_exe={:.2}s phi={:.3} req/s",
            p.exec_latency(&c).as_secs_f64(),
            p.throughput(&c)
        );
    }
    let po = PerfModel::paper_defaults(llmsim::ModelSpec::opt_6_7b());
    for (d, pp, m, b) in [(1u32, 1u32, 4u32, 8u32), (2, 1, 4, 8), (2, 2, 2, 8)] {
        let c = ParallelConfig::new(d, pp, m, b);
        println!(
            "OPT {c}: l_exe={:.2}s phi={:.3}",
            po.exec_latency(&c).as_secs_f64(),
            po.throughput(&c)
        );
    }
    let pl = PerfModel::paper_defaults(llmsim::ModelSpec::llama_30b());
    for (d, pp, m, b) in [(1u32, 2u32, 8u32, 8u32), (1, 4, 4, 8), (2, 2, 8, 8)] {
        let c = ParallelConfig::new(d, pp, m, b);
        println!(
            "LLaMA {c}: l_exe={:.2}s phi={:.3}",
            pl.exec_latency(&c).as_secs_f64(),
            pl.throughput(&c)
        );
    }
}
