//! Pluggable event consumers: [`TelemetrySink`] and the provided sinks.

use std::collections::VecDeque;
use std::io;

use simkit::SimTime;

use crate::event::TelemetryEvent;
use crate::record::Record;
use crate::stream;

/// Something that consumes telemetry events as they happen.
///
/// The associated [`ACTIVE`](TelemetrySink::ACTIVE) constant is the
/// zero-cost story: generic emit points route through [`emit`], which
/// compiles to *nothing* — no branch, no event construction — when the
/// sink type is [`NoopSink`].
pub trait TelemetrySink {
    /// Whether this sink type can ever observe an event. `false` lets
    /// the compiler delete emit points wholesale.
    const ACTIVE: bool = true;

    /// Consumes one event.
    fn record(&mut self, time: SimTime, event: TelemetryEvent);
}

/// Emits into `sink`, constructing the event lazily; for a sink type
/// with `ACTIVE = false` the whole call compiles away.
///
/// # Example
///
/// ```
/// use simkit::SimTime;
/// use telemetry::{emit, NoopSink, TelemetryEvent};
/// let mut sink = NoopSink;
/// emit(&mut sink, SimTime::ZERO, || unreachable!("never built"));
/// ```
#[inline(always)]
pub fn emit<S: TelemetrySink>(sink: &mut S, time: SimTime, build: impl FnOnce() -> TelemetryEvent) {
    if S::ACTIVE {
        sink.record(time, build());
    }
}

/// The do-nothing sink: `ACTIVE = false`, so instrumented hot paths
/// monomorphized against it carry no telemetry code at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _time: SimTime, _event: TelemetryEvent) {}
}

/// A bounded ring buffer keeping the most recent `capacity` events —
/// the "flight recorder" shape an operator console tails.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    seq: u64,
    buf: VecDeque<Record>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            seq: 0,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// The retained records, oldest first. `seq` numbers are global to
    /// the sink's lifetime, so evictions are visible as gaps from 0.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.buf.iter()
    }

    /// Number of retained (not total) events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }
}

impl TelemetrySink for RingSink {
    fn record(&mut self, time: SimTime, event: TelemetryEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        let seq = self.seq;
        self.seq += 1;
        self.buf.push_back(Record { time, seq, event });
    }
}

/// Streams events straight to a writer as JSONL, one record per line,
/// after a version header line — the same wire format
/// [`TelemetryStream::jsonl_into`](crate::TelemetryStream::jsonl_into)
/// produces for shard 0.
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    out: W,
    seq: u64,
    line: String,
    /// First I/O error encountered, if any (recording never panics).
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps `out`, writing the stream header immediately.
    pub fn new(mut out: W) -> io::Result<Self> {
        let mut line = String::with_capacity(128);
        stream::jsonl_header_into(&mut line);
        out.write_all(line.as_bytes())?;
        Ok(JsonlSink {
            out,
            seq: 0,
            line,
            error: None,
        })
    }

    /// Flushes and returns the writer; surfaces any deferred I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: io::Write> TelemetrySink for JsonlSink<W> {
    fn record(&mut self, time: SimTime, event: TelemetryEvent) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        let rec = Record {
            time,
            seq: self.seq,
            event,
        };
        stream::jsonl_record_into(&mut self.line, 0, &rec);
        self.seq += 1;
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_inactive_and_skips_construction() {
        const { assert!(!NoopSink::ACTIVE) };
        let mut sink = NoopSink;
        emit(&mut sink, SimTime::ZERO, || {
            panic!("event built for an inactive sink")
        });
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut ring = RingSink::new(2);
        for epoch in 0..5 {
            ring.record(
                SimTime::from_secs(epoch as u64),
                TelemetryEvent::TransitionHalt { epoch },
            );
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_recorded(), 5);
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, [3, 4]);
    }

    #[test]
    fn jsonl_sink_writes_header_and_lines() {
        let mut sink = JsonlSink::new(Vec::new()).unwrap();
        sink.record(
            SimTime::from_secs(1),
            TelemetryEvent::InstanceGrant {
                pool: 2,
                instance: 7,
                ondemand: false,
            },
        );
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().contains("\"version\":"));
        let rec = lines.next().unwrap();
        assert!(rec.contains("\"ev\":\"grant\"") && rec.contains("\"pool\":2"));
        assert_eq!(lines.next(), None);
    }
}
