//! A deterministic telemetry spine for the SpotServe reproduction.
//!
//! Every subsystem — the spot market, the fleet controller, the serving
//! core, the iteration engine — emits typed [`TelemetryEvent`]s into a
//! per-component [`Recorder`]; a finished run merges them into one
//! [`TelemetryStream`] ordered by `(time, shard, seq)`, which renders
//! as versioned JSONL (stable wire contract, [`STREAM_VERSION`]) and
//! digests with [`Fnv1a`] for replay gates. [`TimeSeries`] folds the
//! stream into rolling windows (queue depth, SLO attainment, $/token,
//! preemption rate) for figures and the future operator console.
//!
//! Design rules, enforced across the workspace:
//!
//! - **Observation only.** Emit points read state, never mutate it: a
//!   telemetry-on run replays byte-identical (canonical `RunReport`
//!   bytes) to a telemetry-off run.
//! - **Deterministic order.** Each component's recorder emits at its
//!   non-decreasing simulated `now`; merges are keyed by
//!   `(time, source, seq)` then `(time, shard, seq)`, never by thread
//!   schedule — so the exported stream is thread-count invariant.
//! - **Bounded volume.** Engine state travels as epoch-granular
//!   cumulative rollups, never per-token events.
//! - **Zero cost when off.** [`Recorder`] is one predictable branch;
//!   the generic [`TelemetrySink`] path with [`NoopSink`] compiles to
//!   nothing ([`TelemetrySink::ACTIVE`]).

#![warn(missing_docs)]

mod event;
mod record;
mod series;
mod sink;
mod stream;

pub use event::{TelemetryEvent, TriageVerdict};
pub use record::{Record, Recorder};
pub use series::{TimeSeries, WindowStats};
pub use sink::{emit, JsonlSink, NoopSink, RingSink, TelemetrySink};
pub use stream::{Fnv1a, StreamRecord, TelemetryStream};

/// Version of the JSONL wire format. Bump when the header, record key
/// order, or any variant's field set changes. v2 added the chaos
/// vocabulary: `fault`, `lapse`, `retry`, `escalate`, `downgrade`.
pub const STREAM_VERSION: u32 = 2;
