//! Rolling-window aggregation over a telemetry stream.
//!
//! [`TimeSeries`] turns the flat event stream into fixed-width windows
//! of the quantities the figures (and the future operator console)
//! plot: queue depth, SLO attainment, $/token, preemption rate. It
//! reuses `simkit::metrics` — [`OnlineStats`] per window, a [`Sampler`]
//! across the run — so per-shard series merge exactly the way latency
//! reports already do.

use simkit::metrics::{OnlineStats, Sampler};
use simkit::SimDuration;

use crate::event::TelemetryEvent;
use crate::stream::TelemetryStream;

/// Aggregates for one fixed-width window of simulated time.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Window start, µs since sim start.
    pub start_us: u64,
    /// Instances granted in the window.
    pub grants: u32,
    /// Preemption notices received.
    pub notices: u32,
    /// Instances force-killed (preemptions landing).
    pub kills: u32,
    /// Instances lost to unannounced failures (no notice, zero grace).
    pub faults: u32,
    /// Grants that lapsed (launch failures / injected lapses).
    pub lapses: u32,
    /// Instances voluntarily released.
    pub releases: u32,
    /// Spot-market re-quotes.
    pub price_steps: u32,
    /// Non-noop fleet commands issued.
    pub fleet_commands: u32,
    /// Transitions committed.
    pub transitions: u32,
    /// Bytes migrated by transitions committed in the window.
    pub migrated_bytes: u64,
    /// Bytes reloaded (not migrated) by those transitions.
    pub reloaded_bytes: u64,
    /// Queue depth observed at each engine rollup in the window.
    pub queue_depth: OnlineStats,
    /// Batch residents observed at each engine rollup.
    pub residents: OnlineStats,
    /// Requests completed in the window (rollup delta).
    pub completed: u64,
    /// Requests rejected by SLO admission in the window.
    pub rejected: u64,
    /// Output tokens generated in the window (rollup delta).
    pub tokens: u64,
    /// Spend in the window, micro-USD (cost-rollup delta, all pools).
    pub cost_microusd: u64,
    /// Live instances at window end (summed across shards on merge).
    pub live_end: i64,
}

impl WindowStats {
    /// Fraction of requests resolved in-SLO this window:
    /// `completed / (completed + rejected)`, `None` if neither.
    pub fn slo_attainment(&self) -> Option<f64> {
        let denom = self.completed + self.rejected;
        (denom > 0).then(|| self.completed as f64 / denom as f64)
    }

    /// Dollars per generated token this window, `None` if no tokens.
    pub fn usd_per_token(&self) -> Option<f64> {
        (self.tokens > 0).then(|| self.cost_microusd as f64 / 1e6 / self.tokens as f64)
    }
}

/// A run's telemetry folded into fixed-width windows.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window_us: u64,
    /// The windows, contiguous from sim start.
    pub windows: Vec<WindowStats>,
    /// Every queue-depth observation in the run (for exact quantiles
    /// via [`Sampler::quantiles_into`]).
    pub queue_depth_samples: Sampler,
}

impl TimeSeries {
    /// Folds `stream` into windows of width `window`.
    ///
    /// Cumulative rollup counters ([`TelemetryEvent::EngineRollup`],
    /// [`TelemetryEvent::CostRollup`]) are differenced between
    /// consecutive rollups, so each window holds the activity that
    /// happened *in* it.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn from_stream(stream: &TelemetryStream, window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        let window_us = window.as_micros();
        let mut ts = TimeSeries {
            window_us,
            windows: Vec::new(),
            queue_depth_samples: Sampler::new(),
        };
        let mut live: i64 = 0;
        // Last cumulative engine counters seen (completed, tokens).
        let mut last_completed: u64 = 0;
        let mut last_tokens: u64 = 0;
        // Last cumulative spend per pool, micro-USD.
        let mut last_cost: Vec<u64> = Vec::new();
        for r in stream.records() {
            let idx = (r.time.as_micros() / window_us) as usize;
            while ts.windows.len() <= idx {
                ts.windows.push(WindowStats {
                    start_us: ts.windows.len() as u64 * window_us,
                    live_end: live,
                    ..WindowStats::default()
                });
            }
            let w = &mut ts.windows[idx];
            match r.event {
                TelemetryEvent::InstanceGrant { .. } => {
                    w.grants += 1;
                    live += 1;
                }
                TelemetryEvent::KillNotice { .. } => w.notices += 1,
                TelemetryEvent::InstanceKill { .. } => {
                    w.kills += 1;
                    live -= 1;
                }
                TelemetryEvent::Fault { .. } => {
                    w.faults += 1;
                    live -= 1;
                }
                TelemetryEvent::RequestLapsed { .. } => w.lapses += 1,
                TelemetryEvent::InstanceRelease { .. } => {
                    w.releases += 1;
                    live -= 1;
                }
                TelemetryEvent::PriceStep { .. } => w.price_steps += 1,
                TelemetryEvent::FleetCommand { .. } => w.fleet_commands += 1,
                TelemetryEvent::TransitionCommit {
                    migrated_bytes,
                    reloaded_bytes,
                    ..
                } => {
                    w.transitions += 1;
                    w.migrated_bytes += migrated_bytes;
                    w.reloaded_bytes += reloaded_bytes;
                }
                TelemetryEvent::SloRejection { .. } => w.rejected += 1,
                TelemetryEvent::EngineRollup {
                    queue_depth,
                    residents,
                    completed,
                    tokens,
                    ..
                } => {
                    w.queue_depth.record(queue_depth as f64);
                    w.residents.record(residents as f64);
                    ts.queue_depth_samples.record(queue_depth as f64);
                    w.completed += completed.saturating_sub(last_completed);
                    w.tokens += tokens.saturating_sub(last_tokens);
                    last_completed = completed;
                    last_tokens = tokens;
                }
                TelemetryEvent::CostRollup {
                    pool,
                    spot_microusd,
                    ondemand_microusd,
                    ..
                } => {
                    let pool = pool as usize;
                    if last_cost.len() <= pool {
                        last_cost.resize(pool + 1, 0);
                    }
                    let cum = spot_microusd + ondemand_microusd;
                    w.cost_microusd += cum.saturating_sub(last_cost[pool]);
                    last_cost[pool] = cum;
                }
                TelemetryEvent::TransitionBegin { .. }
                | TelemetryEvent::TransitionHalt { .. }
                | TelemetryEvent::Decision { .. }
                | TelemetryEvent::DecisionHalt { .. }
                | TelemetryEvent::RetryScheduled { .. }
                | TelemetryEvent::RetryEscalated { .. }
                | TelemetryEvent::TriageDowngrade { .. } => {}
            }
            ts.windows[idx].live_end = live;
        }
        ts
    }

    /// Window width in simulated microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Folds another series (same window width) into this one, window
    /// by window — the per-shard aggregation path. Additive counters
    /// sum, [`OnlineStats`] merge via Chan's method, the queue-depth
    /// [`Sampler`] keeps the exact union multiset, and `live_end` sums
    /// (shards own disjoint pools).
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.window_us, other.window_us,
            "cannot merge series with different windows"
        );
        if self.windows.len() < other.windows.len() {
            // Extend with empty windows carrying our final live count.
            let live = self.windows.last().map_or(0, |w| w.live_end);
            while self.windows.len() < other.windows.len() {
                self.windows.push(WindowStats {
                    start_us: self.windows.len() as u64 * self.window_us,
                    live_end: live,
                    ..WindowStats::default()
                });
            }
        }
        let other_live = other.windows.last().map_or(0, |w| w.live_end);
        for (i, mine) in self.windows.iter_mut().enumerate() {
            let theirs = other.windows.get(i);
            if let Some(o) = theirs {
                mine.grants += o.grants;
                mine.notices += o.notices;
                mine.kills += o.kills;
                mine.faults += o.faults;
                mine.lapses += o.lapses;
                mine.releases += o.releases;
                mine.price_steps += o.price_steps;
                mine.fleet_commands += o.fleet_commands;
                mine.transitions += o.transitions;
                mine.migrated_bytes += o.migrated_bytes;
                mine.reloaded_bytes += o.reloaded_bytes;
                mine.queue_depth.merge(&o.queue_depth);
                mine.residents.merge(&o.residents);
                mine.completed += o.completed;
                mine.rejected += o.rejected;
                mine.tokens += o.tokens;
                mine.cost_microusd += o.cost_microusd;
                mine.live_end += o.live_end;
            } else {
                // Past other's horizon its live count stays final.
                mine.live_end += other_live;
            }
        }
        self.queue_depth_samples.merge(&other.queue_depth_samples);
    }

    /// Exact queue-depth quantiles over the whole run, one per entry of
    /// `qs` (single sort — [`Sampler::quantiles_into`]). Appends
    /// nothing if the stream carried no engine rollups.
    pub fn queue_depth_quantiles(&mut self, qs: &[f64], out: &mut Vec<f64>) {
        self.queue_depth_samples.quantiles_into(qs, out);
    }

    /// Preemption kills per simulated hour, averaged over the run.
    pub fn preemption_rate_per_hour(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        let kills: u64 = self.windows.iter().map(|w| w.kills as u64).sum();
        let hours = (self.windows.len() as u64 * self.window_us) as f64 / 3.6e9;
        kills as f64 / hours
    }

    /// Total spend across all windows, USD.
    pub fn total_cost_usd(&self) -> f64 {
        self.windows.iter().map(|w| w.cost_microusd).sum::<u64>() as f64 / 1e6
    }

    /// Total tokens across all windows.
    pub fn total_tokens(&self) -> u64 {
        self.windows.iter().map(|w| w.tokens).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use simkit::SimTime;

    fn rec(t_secs: u64, seq: u64, event: TelemetryEvent) -> Record {
        Record {
            time: SimTime::from_secs(t_secs),
            seq,
            event,
        }
    }

    fn rollup(completed: u64, tokens: u64, queue: u32) -> TelemetryEvent {
        TelemetryEvent::EngineRollup {
            queue_depth: queue,
            residents: 4,
            admitted: completed,
            deferrals: 0,
            rejected: 0,
            completed,
            tokens,
        }
    }

    #[test]
    fn windows_difference_cumulative_rollups() {
        let evs = vec![
            rec(10, 0, rollup(5, 100, 2)),
            rec(70, 1, rollup(9, 260, 6)),
            rec(130, 2, rollup(9, 300, 0)),
        ];
        let s = TelemetryStream::from_sources(vec![evs]);
        let ts = TimeSeries::from_stream(&s, SimDuration::from_secs(60));
        assert_eq!(ts.windows.len(), 3);
        assert_eq!(ts.windows[0].completed, 5);
        assert_eq!(ts.windows[1].completed, 4);
        assert_eq!(ts.windows[2].completed, 0);
        assert_eq!(ts.windows[1].tokens, 160);
        assert_eq!(ts.windows[1].queue_depth.count(), 1);
        assert_eq!(ts.total_tokens(), 300);
    }

    #[test]
    fn live_count_carries_across_empty_windows() {
        let evs = vec![
            rec(
                0,
                0,
                TelemetryEvent::InstanceGrant {
                    pool: 0,
                    instance: 0,
                    ondemand: false,
                },
            ),
            rec(
                200,
                1,
                TelemetryEvent::InstanceKill {
                    pool: 0,
                    instance: 0,
                },
            ),
        ];
        let s = TelemetryStream::from_sources(vec![evs]);
        let ts = TimeSeries::from_stream(&s, SimDuration::from_secs(60));
        assert_eq!(ts.windows.len(), 4);
        assert_eq!(ts.windows[0].live_end, 1);
        assert_eq!(ts.windows[1].live_end, 1, "gap window carries live");
        assert_eq!(ts.windows[2].live_end, 1);
        assert_eq!(ts.windows[3].live_end, 0);
    }

    #[test]
    fn merge_sums_and_preserves_quantiles() {
        let a = TelemetryStream::from_sources(vec![vec![rec(1, 0, rollup(3, 30, 2))]]);
        let b = TelemetryStream::from_sources(vec![vec![
            rec(1, 0, rollup(5, 50, 8)),
            rec(61, 1, rollup(6, 60, 4)),
        ]]);
        let mut ta = TimeSeries::from_stream(&a, SimDuration::from_secs(60));
        let tb = TimeSeries::from_stream(&b, SimDuration::from_secs(60));
        ta.merge(&tb);
        assert_eq!(ta.windows.len(), 2);
        assert_eq!(ta.windows[0].completed, 8);
        assert_eq!(ta.windows[1].completed, 1);
        let mut qs = Vec::new();
        ta.queue_depth_quantiles(&[0.0, 1.0], &mut qs);
        assert_eq!(qs, [2.0, 8.0]);
    }

    #[test]
    fn slo_attainment_counts_rejections() {
        let evs = vec![
            rec(5, 0, TelemetryEvent::SloRejection { request: 1 }),
            rec(10, 1, rollup(3, 90, 0)),
        ];
        let s = TelemetryStream::from_sources(vec![evs]);
        let ts = TimeSeries::from_stream(&s, SimDuration::from_secs(60));
        assert_eq!(ts.windows[0].slo_attainment(), Some(0.75));
        assert_eq!(ts.windows[0].usd_per_token(), Some(0.0));
    }
}
