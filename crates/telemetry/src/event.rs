//! The typed telemetry vocabulary.
//!
//! Every observable state change in the serving stack is one
//! [`TelemetryEvent`] variant. Fields are integers (microseconds,
//! parts-per-million, integer cents, micro-USD) or `&'static str` SKU
//! names so the JSONL rendering is exact and platform-stable — no float
//! formatting can creep into the replay-gated byte stream.

/// The checkpoint-triage verdict a transition committed under
/// (grace-period triage, PR 7): how much of the transferable state was
/// actually worth moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriageVerdict {
    /// Full context migration: (nearly) all transferable bytes moved.
    Full,
    /// Partial migration: a fraction moved, the rest recomputed.
    Partial,
    /// Restart: moving state was not worth it; contexts were rebuilt.
    Restart,
}

impl TriageVerdict {
    /// Stable lowercase wire name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            TriageVerdict::Full => "full",
            TriageVerdict::Partial => "partial",
            TriageVerdict::Restart => "restart",
        }
    }
}

/// One telemetry event, versioned as part of the stream format
/// ([`crate::STREAM_VERSION`]).
///
/// Granularity contract: cloud/fleet/transition/decision events are
/// emitted per occurrence (they are rare), engine state is emitted as
/// *epoch-granular cumulative rollups* only — never per token or per
/// request — so a million-request run produces a bounded stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// The cloud leased us an instance (spot or on-demand), including
    /// prewarmed instances that never appear in the event queue.
    InstanceGrant {
        /// Pool the lease belongs to.
        pool: u32,
        /// The leased instance.
        instance: u64,
        /// `true` for on-demand, `false` for spot.
        ondemand: bool,
    },
    /// Ahead-of-time preemption notice: the grace period is running.
    KillNotice {
        /// Pool the instance belongs to.
        pool: u32,
        /// The instance being reclaimed.
        instance: u64,
        /// When the cloud will force-terminate it.
        kill_at_us: u64,
    },
    /// The grace period elapsed; the instance is gone.
    InstanceKill {
        /// Pool the instance belonged to.
        pool: u32,
        /// The terminated instance.
        instance: u64,
    },
    /// We voluntarily released a lease back to the cloud.
    InstanceRelease {
        /// Pool the instance belonged to.
        pool: u32,
        /// The released instance.
        instance: u64,
    },
    /// The pool's spot market re-quoted.
    PriceStep {
        /// The re-priced pool.
        pool: u32,
        /// New spot price in cents per instance-hour.
        cents_per_hour: u32,
    },
    /// The fleet controller issued a non-noop command (totals across
    /// pools; per-pool detail is recoverable from the grant/release
    /// events that follow).
    FleetCommand {
        /// Spot instances requested.
        spot: u32,
        /// Pending spot requests cancelled.
        cancel_spot: u32,
        /// On-demand instances requested.
        ondemand: u32,
        /// Instances released.
        release: u32,
    },
    /// A migration/reparallelization transition was planned: the clock
    /// is running against the grace deadline.
    TransitionBegin {
        /// Transition epoch (monotone per run).
        epoch: u32,
        /// The deadline the plan must beat, µs since sim start
        /// (`u64::MAX` when unconstrained).
        deadline_us: u64,
    },
    /// A transition committed: the new configuration is serving.
    TransitionCommit {
        /// Transition epoch.
        epoch: u32,
        /// Checkpoint-triage verdict the commit ran under.
        verdict: TriageVerdict,
        /// Fraction of transferable bytes migrated, parts per million.
        fraction_ppm: u32,
        /// Bytes moved over the network (model + KV).
        migrated_bytes: u64,
        /// Bytes re-read from checkpoint/disk instead of migrated.
        reloaded_bytes: u64,
        /// Serving pause the transition cost.
        pause_us: u64,
    },
    /// A transition resolved to "halt serving" (no feasible config).
    TransitionHalt {
        /// Transition epoch.
        epoch: u32,
    },
    /// Algorithm 1 decided a serving configuration `(SKU, C, B)`.
    Decision {
        /// SKU lane the decision picked.
        sku: &'static str,
        /// Data-parallel degree.
        data: u32,
        /// Pipeline-parallel degree.
        pipe: u32,
        /// Tensor/model-parallel degree.
        tensor: u32,
        /// Batch size.
        batch: u32,
        /// Whether the decision was answered from the memo.
        memo_hit: bool,
    },
    /// Algorithm 1 decided no configuration is feasible.
    DecisionHalt {
        /// Whether the verdict was answered from the memo.
        memo_hit: bool,
    },
    /// SLO admission rejected a request (the verdict surface of the
    /// admission controller; admits/deferrals travel in the rollups).
    SloRejection {
        /// The rejected request id.
        request: u64,
    },
    /// Epoch-granular engine rollup. All counters are *cumulative over
    /// the run*; consumers difference adjacent rollups for windows.
    EngineRollup {
        /// Requests waiting in the global queue right now.
        queue_depth: u32,
        /// Requests resident in some pipeline's batch right now.
        residents: u32,
        /// Cumulative admission-verdict admits.
        admitted: u64,
        /// Cumulative admission-verdict deferrals.
        deferrals: u64,
        /// Cumulative admission-verdict rejections.
        rejected: u64,
        /// Cumulative requests fully served.
        completed: u64,
        /// Cumulative output tokens generated.
        tokens: u64,
    },
    /// Epoch-granular spend rollup, one per pool. Cumulative micro-USD
    /// (1e-6 USD) so the export stays integer-exact.
    CostRollup {
        /// The pool being billed.
        pool: u32,
        /// The pool's instance SKU.
        sku: &'static str,
        /// Cumulative spot spend, micro-USD.
        spot_microusd: u64,
        /// Cumulative on-demand spend, micro-USD.
        ondemand_microusd: u64,
    },
    /// An instance died without a notice (unannounced kill or lost
    /// notice, chaos harness PR 10): zero grace, context on it lost.
    Fault {
        /// Pool the instance belonged to.
        pool: u32,
        /// The dead instance.
        instance: u64,
    },
    /// A scheduled grant will never fire: the launch failed or the grant
    /// lapsed under fault injection.
    RequestLapsed {
        /// The pool whose request was lost.
        pool: u32,
        /// `true` for on-demand, `false` for spot.
        ondemand: bool,
    },
    /// The request tracker scheduled a backed-off re-request for a pool
    /// whose grant lapsed or whose instance failed.
    RetryScheduled {
        /// The pool being retried.
        pool: u32,
        /// Consecutive failures so far (drives the backoff exponent).
        attempt: u32,
        /// When the pool becomes eligible again, µs since sim start.
        at_us: u64,
    },
    /// The request tracker gave up on a pool after K consecutive
    /// failures and escalated to on-demand capacity.
    RetryEscalated {
        /// The pool that exhausted its retries.
        pool: u32,
        /// Consecutive failures at escalation time.
        attempts: u32,
    },
    /// A transition's triage was downgraded mid-flight because a
    /// degraded link made the planned tier blow the grace budget.
    TriageDowngrade {
        /// Transition epoch.
        epoch: u32,
        /// The tier the plan was committed under.
        from: TriageVerdict,
        /// The tier actually executed.
        to: TriageVerdict,
    },
}

impl TelemetryEvent {
    /// Stable lowercase wire name of the variant (the JSONL `"ev"` tag).
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::InstanceGrant { .. } => "grant",
            TelemetryEvent::KillNotice { .. } => "notice",
            TelemetryEvent::InstanceKill { .. } => "kill",
            TelemetryEvent::InstanceRelease { .. } => "release",
            TelemetryEvent::PriceStep { .. } => "price",
            TelemetryEvent::FleetCommand { .. } => "fleet",
            TelemetryEvent::TransitionBegin { .. } => "tbegin",
            TelemetryEvent::TransitionCommit { .. } => "tcommit",
            TelemetryEvent::TransitionHalt { .. } => "thalt",
            TelemetryEvent::Decision { .. } => "decide",
            TelemetryEvent::DecisionHalt { .. } => "dhalt",
            TelemetryEvent::SloRejection { .. } => "slorej",
            TelemetryEvent::EngineRollup { .. } => "engine",
            TelemetryEvent::CostRollup { .. } => "cost",
            TelemetryEvent::Fault { .. } => "fault",
            TelemetryEvent::RequestLapsed { .. } => "lapse",
            TelemetryEvent::RetryScheduled { .. } => "retry",
            TelemetryEvent::RetryEscalated { .. } => "escalate",
            TelemetryEvent::TriageDowngrade { .. } => "downgrade",
        }
    }
}
