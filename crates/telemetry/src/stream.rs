//! The merged, exportable event stream: deterministic ordering, JSONL
//! rendering, and a streaming digest.

use std::fmt::{self, Write as _};
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;

use simkit::SimTime;

use crate::event::TelemetryEvent;
use crate::record::Record;
use crate::STREAM_VERSION;

/// One record of a merged stream: a [`Record`] tagged with the shard it
/// came from (shard 0 for single-system runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRecord {
    /// Originating shard (0 for unsharded runs).
    pub shard: u32,
    /// Simulated time of the event.
    pub time: SimTime,
    /// Sequence number within the shard's stream.
    pub seq: u64,
    /// The event.
    pub event: TelemetryEvent,
}

/// A finished run's telemetry, ordered by `(time, shard, seq)`.
///
/// The ordering is the thread-count-invariance contract: per-shard
/// streams depend only on that shard's sequential execution, and the
/// merge key is independent of which worker thread ran which shard —
/// so the exported JSONL (and its digest) is identical at any thread
/// count, run to run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryStream {
    records: Vec<StreamRecord>,
}

impl TelemetryStream {
    /// Merges the per-source buffers of **one** system (market, fleet
    /// controller, serving core, …) into a single shard-0 stream.
    ///
    /// Sources are combined by `(time, source-rank, seq)` — each
    /// source's buffer is already time-ordered because components emit
    /// at their non-decreasing `now` — then re-sequenced 0.. so the
    /// shard stream carries one total order.
    pub fn from_sources(sources: Vec<Vec<Record>>) -> Self {
        let total: usize = sources.iter().map(Vec::len).sum();
        let mut keyed: Vec<(SimTime, u32, u64, TelemetryEvent)> = Vec::with_capacity(total);
        for (rank, source) in sources.into_iter().enumerate() {
            for r in source {
                keyed.push((r.time, rank as u32, r.seq, r.event));
            }
        }
        keyed.sort_by_key(|&(t, rank, seq, _)| (t, rank, seq));
        let records = keyed
            .into_iter()
            .enumerate()
            .map(|(i, (time, _, _, event))| StreamRecord {
                shard: 0,
                time,
                seq: i as u64,
                event,
            })
            .collect();
        TelemetryStream { records }
    }

    /// Merges per-shard streams into one, re-tagging stream `i` as
    /// shard `i` and ordering by `(time, shard, seq)`.
    pub fn merge_shards(shards: Vec<TelemetryStream>) -> Self {
        let total: usize = shards.iter().map(TelemetryStream::len).sum();
        let mut records = Vec::with_capacity(total);
        for (shard, stream) in shards.into_iter().enumerate() {
            records.extend(stream.records.into_iter().map(|mut r| {
                r.shard = shard as u32;
                r
            }));
        }
        records.sort_by_key(|r| (r.time, r.shard, r.seq));
        TelemetryStream { records }
    }

    /// The records, in `(time, shard, seq)` order.
    pub fn records(&self) -> &[StreamRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The minimum live-instance count observed at or after `t0`,
    /// derived from grant/kill/release events (the figure binaries'
    /// "did the floor hold" metric). Returns the count as of `t0` if no
    /// later fleet event occurs.
    pub fn live_floor_after(&self, t0: SimTime) -> i64 {
        let mut live: i64 = 0;
        let mut floor: Option<i64> = None;
        for r in &self.records {
            if r.time >= t0 && floor.is_none() {
                floor = Some(live);
            }
            let delta = match r.event {
                TelemetryEvent::InstanceGrant { .. } => 1,
                TelemetryEvent::InstanceKill { .. }
                | TelemetryEvent::InstanceRelease { .. }
                | TelemetryEvent::Fault { .. } => -1,
                _ => 0,
            };
            if delta != 0 {
                live += delta;
                if r.time >= t0 {
                    let f = floor.get_or_insert(live);
                    *f = (*f).min(live);
                }
            }
        }
        floor.unwrap_or(live).min(live)
    }

    /// Renders the stream as JSONL into any [`fmt::Write`] sink: one
    /// header line carrying [`STREAM_VERSION`], then one compact
    /// integer-exact JSON object per record.
    pub fn jsonl_into(&self, out: &mut impl fmt::Write) {
        jsonl_header_into(out);
        let mut line = String::with_capacity(160);
        for r in &self.records {
            line.clear();
            jsonl_record_into(
                &mut line,
                r.shard,
                &Record {
                    time: r.time,
                    seq: r.seq,
                    event: r.event,
                },
            );
            out.write_str(&line).expect("infallible fmt sink");
        }
    }

    /// The stream as one JSONL string.
    pub fn to_jsonl(&self) -> String {
        // ~96 bytes/line is a good prior for the compact encoding.
        let mut s = String::with_capacity(64 + self.records.len() * 96);
        self.jsonl_into(&mut s);
        s
    }

    /// FNV-1a digest of the JSONL rendering — the cross-thread-count,
    /// cross-run equality check CI pins.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.jsonl_into(&mut h);
        h.finish()
    }

    /// Writes the JSONL rendering to `path` (buffered, overwrites).
    pub fn write_jsonl_file(&self, path: &Path) -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(self.to_jsonl().as_bytes())?;
        out.flush()
    }
}

/// Streaming FNV-1a over anything rendered through [`fmt::Write`] —
/// digest a canonical rendering without materializing it.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    hash: u64,
}

impl Fnv1a {
    /// FNV-1a offset basis.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a prime.
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest at the offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv1a { hash: Self::OFFSET }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl fmt::Write for Fnv1a {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(Self::PRIME);
        }
        Ok(())
    }
}

/// Writes the JSONL stream header (line 1 of every export).
pub(crate) fn jsonl_header_into(out: &mut impl fmt::Write) {
    writeln!(
        out,
        "{{\"stream\":\"spotserve.telemetry\",\"version\":{STREAM_VERSION}}}"
    )
    .expect("infallible fmt sink");
}

/// Writes one record as a single JSONL line (with trailing newline).
///
/// Key order is fixed; every value is an integer, a bool, or a static
/// SKU name — nothing here formats a float, so the byte stream is
/// exactly reproducible.
pub(crate) fn jsonl_record_into(out: &mut String, shard: u32, r: &Record) {
    write!(
        out,
        "{{\"t_us\":{},\"shard\":{},\"seq\":{},\"ev\":\"{}\"",
        r.time.as_micros(),
        shard,
        r.seq,
        r.event.kind()
    )
    .expect("write to String");
    match r.event {
        TelemetryEvent::InstanceGrant {
            pool,
            instance,
            ondemand,
        } => {
            write!(out, ",\"pool\":{pool},\"inst\":{instance},\"od\":{ondemand}")
        }
        TelemetryEvent::KillNotice {
            pool,
            instance,
            kill_at_us,
        } => {
            write!(
                out,
                ",\"pool\":{pool},\"inst\":{instance},\"kill_at_us\":{kill_at_us}"
            )
        }
        TelemetryEvent::InstanceKill { pool, instance }
        | TelemetryEvent::InstanceRelease { pool, instance }
        | TelemetryEvent::Fault { pool, instance } => {
            write!(out, ",\"pool\":{pool},\"inst\":{instance}")
        }
        TelemetryEvent::PriceStep {
            pool,
            cents_per_hour,
        } => {
            write!(out, ",\"pool\":{pool},\"cents_per_hour\":{cents_per_hour}")
        }
        TelemetryEvent::FleetCommand {
            spot,
            cancel_spot,
            ondemand,
            release,
        } => {
            write!(
                out,
                ",\"spot\":{spot},\"cancel\":{cancel_spot},\"ondemand\":{ondemand},\"release\":{release}"
            )
        }
        TelemetryEvent::TransitionBegin { epoch, deadline_us } => {
            write!(out, ",\"epoch\":{epoch},\"deadline_us\":{deadline_us}")
        }
        TelemetryEvent::TransitionCommit {
            epoch,
            verdict,
            fraction_ppm,
            migrated_bytes,
            reloaded_bytes,
            pause_us,
        } => {
            write!(
                out,
                ",\"epoch\":{epoch},\"verdict\":\"{}\",\"fraction_ppm\":{fraction_ppm},\"migrated_bytes\":{migrated_bytes},\"reloaded_bytes\":{reloaded_bytes},\"pause_us\":{pause_us}",
                verdict.as_str()
            )
        }
        TelemetryEvent::TransitionHalt { epoch } => write!(out, ",\"epoch\":{epoch}"),
        TelemetryEvent::Decision {
            sku,
            data,
            pipe,
            tensor,
            batch,
            memo_hit,
        } => {
            write!(
                out,
                ",\"sku\":\"{sku}\",\"data\":{data},\"pipe\":{pipe},\"tensor\":{tensor},\"batch\":{batch},\"memo_hit\":{memo_hit}"
            )
        }
        TelemetryEvent::DecisionHalt { memo_hit } => write!(out, ",\"memo_hit\":{memo_hit}"),
        TelemetryEvent::SloRejection { request } => write!(out, ",\"request\":{request}"),
        TelemetryEvent::EngineRollup {
            queue_depth,
            residents,
            admitted,
            deferrals,
            rejected,
            completed,
            tokens,
        } => {
            write!(
                out,
                ",\"queue\":{queue_depth},\"residents\":{residents},\"admitted\":{admitted},\"deferrals\":{deferrals},\"rejected\":{rejected},\"completed\":{completed},\"tokens\":{tokens}"
            )
        }
        TelemetryEvent::CostRollup {
            pool,
            sku,
            spot_microusd,
            ondemand_microusd,
        } => {
            write!(
                out,
                ",\"pool\":{pool},\"sku\":\"{sku}\",\"spot_microusd\":{spot_microusd},\"ondemand_microusd\":{ondemand_microusd}"
            )
        }
        TelemetryEvent::RequestLapsed { pool, ondemand } => {
            write!(out, ",\"pool\":{pool},\"od\":{ondemand}")
        }
        TelemetryEvent::RetryScheduled { pool, attempt, at_us } => {
            write!(out, ",\"pool\":{pool},\"attempt\":{attempt},\"at_us\":{at_us}")
        }
        TelemetryEvent::RetryEscalated { pool, attempts } => {
            write!(out, ",\"pool\":{pool},\"attempts\":{attempts}")
        }
        TelemetryEvent::TriageDowngrade { epoch, from, to } => {
            write!(
                out,
                ",\"epoch\":{epoch},\"from\":\"{}\",\"to\":\"{}\"",
                from.as_str(),
                to.as_str()
            )
        }
    }
    .expect("write to String");
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, seq: u64, event: TelemetryEvent) -> Record {
        Record {
            time: SimTime::from_micros(t),
            seq,
            event,
        }
    }

    #[test]
    fn from_sources_orders_by_time_then_source_then_seq() {
        let market = vec![
            rec(
                5,
                0,
                TelemetryEvent::InstanceKill {
                    pool: 0,
                    instance: 1,
                },
            ),
            rec(
                10,
                1,
                TelemetryEvent::InstanceGrant {
                    pool: 0,
                    instance: 2,
                    ondemand: false,
                },
            ),
        ];
        let core = vec![rec(
            5,
            0,
            TelemetryEvent::TransitionBegin {
                epoch: 0,
                deadline_us: u64::MAX,
            },
        )];
        let s = TelemetryStream::from_sources(vec![market, core]);
        let kinds: Vec<&str> = s.records().iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds, ["kill", "tbegin", "grant"]);
        let seqs: Vec<u64> = s.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1, 2], "merged stream is re-sequenced");
    }

    #[test]
    fn merge_shards_is_order_invariant_in_output() {
        let a = TelemetryStream::from_sources(vec![vec![rec(
            3,
            0,
            TelemetryEvent::TransitionHalt { epoch: 1 },
        )]]);
        let b = TelemetryStream::from_sources(vec![vec![rec(
            1,
            0,
            TelemetryEvent::TransitionHalt { epoch: 2 },
        )]]);
        let merged = TelemetryStream::merge_shards(vec![a, b]);
        let shards: Vec<u32> = merged.records().iter().map(|r| r.shard).collect();
        assert_eq!(shards, [1, 0], "time order wins over shard index");
    }

    #[test]
    fn jsonl_golden_line() {
        let s = TelemetryStream::from_sources(vec![vec![rec(
            1_500_000,
            0,
            TelemetryEvent::PriceStep {
                pool: 3,
                cents_per_hour: 120,
            },
        )]]);
        assert_eq!(
            s.to_jsonl(),
            format!(
                "{{\"stream\":\"spotserve.telemetry\",\"version\":{STREAM_VERSION}}}\n\
                 {{\"t_us\":1500000,\"shard\":0,\"seq\":0,\"ev\":\"price\",\"pool\":3,\"cents_per_hour\":120}}\n"
            )
        );
    }

    #[test]
    fn digest_matches_fnv_over_jsonl() {
        let s = TelemetryStream::from_sources(vec![vec![rec(
            7,
            0,
            TelemetryEvent::SloRejection { request: 42 },
        )]]);
        let mut h = Fnv1a::new();
        use std::fmt::Write;
        h.write_str(&s.to_jsonl()).unwrap();
        assert_eq!(s.digest(), h.finish());
        assert_ne!(s.digest(), TelemetryStream::default().digest());
    }

    #[test]
    fn live_floor_tracks_grants_and_kills() {
        let evs = vec![
            rec(
                0,
                0,
                TelemetryEvent::InstanceGrant {
                    pool: 0,
                    instance: 0,
                    ondemand: false,
                },
            ),
            rec(
                1,
                1,
                TelemetryEvent::InstanceGrant {
                    pool: 0,
                    instance: 1,
                    ondemand: false,
                },
            ),
            rec(
                5,
                2,
                TelemetryEvent::InstanceKill {
                    pool: 0,
                    instance: 0,
                },
            ),
            rec(
                9,
                3,
                TelemetryEvent::InstanceGrant {
                    pool: 0,
                    instance: 2,
                    ondemand: true,
                },
            ),
        ];
        let s = TelemetryStream::from_sources(vec![evs]);
        assert_eq!(s.live_floor_after(SimTime::ZERO), 0);
        assert_eq!(s.live_floor_after(SimTime::from_micros(2)), 1);
        assert_eq!(s.live_floor_after(SimTime::from_micros(6)), 1);
        assert_eq!(s.live_floor_after(SimTime::from_micros(100)), 2);
    }
}
