//! In-process event capture: [`Record`] and [`Recorder`].

use simkit::SimTime;

use crate::event::TelemetryEvent;
use crate::sink::TelemetrySink;

/// One captured event: when it happened and its emission order among
/// events its recorder captured at the same instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Simulated time of the event.
    pub time: SimTime,
    /// Emission sequence number within the owning recorder (total order
    /// among same-`time` events from one source).
    pub seq: u64,
    /// The event itself.
    pub event: TelemetryEvent,
}

/// A lightweight per-component event buffer.
///
/// Each instrumented component (`CloudMarket`, `FleetController`,
/// `ServingSystem`) owns its own `Recorder`; the streams are merged
/// deterministically at `finish()` by `(time, source, seq)`. A recorder
/// is `Clone + Send`, so sharded systems can carry one per shard across
/// `run_shards` worker threads.
///
/// Disabled is the default and costs one branch per emit point — event
/// construction is skipped entirely via [`Recorder::emit_with`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    enabled: bool,
    seq: u64,
    records: Vec<Record>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// A recorder that captures events.
    pub fn enabled() -> Self {
        Recorder {
            enabled: true,
            ..Recorder::default()
        }
    }

    /// Switches capture on (idempotent; already-captured events stay).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether this recorder captures events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Captures `event` at `time`. Prefer [`Recorder::emit_with`] when
    /// building the event does any work.
    #[inline]
    pub fn emit(&mut self, time: SimTime, event: TelemetryEvent) {
        if self.enabled {
            self.push(time, event);
        }
    }

    /// Captures the event produced by `build` at `time`; `build` is not
    /// called when the recorder is disabled, so emit points that gather
    /// state (queue depths, cost breakdowns) are free when telemetry is
    /// off.
    #[inline]
    pub fn emit_with(&mut self, time: SimTime, build: impl FnOnce() -> TelemetryEvent) {
        if self.enabled {
            let event = build();
            self.push(time, event);
        }
    }

    #[inline(never)]
    fn push(&mut self, time: SimTime, event: TelemetryEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.records.push(Record { time, seq, event });
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Takes the captured records out, leaving the recorder enabled (or
    /// not) as before with an empty buffer and its sequence counter
    /// running on — `(time, seq)` stays a total order across takes.
    pub fn take(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.records)
    }

    /// Read-only view of the captured records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }
}

impl TelemetrySink for Recorder {
    fn record(&mut self, time: SimTime, event: TelemetryEvent) {
        self.emit(time, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_captures_nothing_and_skips_construction() {
        let mut r = Recorder::disabled();
        let mut built = false;
        r.emit_with(SimTime::ZERO, || {
            built = true;
            TelemetryEvent::TransitionHalt { epoch: 0 }
        });
        r.emit(
            SimTime::from_secs(1),
            TelemetryEvent::InstanceKill {
                pool: 0,
                instance: 1,
            },
        );
        assert!(!built, "emit_with must not build when disabled");
        assert!(r.is_empty());
    }

    #[test]
    fn seq_is_total_order_across_takes() {
        let mut r = Recorder::enabled();
        let t = SimTime::from_secs(5);
        r.emit(t, TelemetryEvent::TransitionHalt { epoch: 1 });
        let first = r.take();
        r.emit(t, TelemetryEvent::TransitionHalt { epoch: 2 });
        let second = r.take();
        assert_eq!(first[0].seq, 0);
        assert_eq!(second[0].seq, 1, "seq must keep running across takes");
    }
}
