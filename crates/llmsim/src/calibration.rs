//! Calibration of the cost model against the paper's Table 1.
//!
//! The paper's Table 1 reports single-request end-to-end latencies
//! (`S_in = 512`, `S_out = 128`, `B = 1`) on the minimal parallel
//! configuration of each model. We fit one multiplicative scale per model
//! so our analytical model reproduces those anchors exactly; every other
//! quantity (batching behaviour, configuration ordering, communication
//! penalties) then follows from the model's structure.

use simkit::SimDuration;

use crate::costmodel::CostModel;
use crate::spec::ModelSpec;

/// Table 1 anchor: `(model name, (P, M), l_exe seconds at B=1)`.
pub const TABLE1_ANCHORS: [(&str, (u32, u32), f64); 3] = [
    ("OPT-6.7B", (1, 4), 5.447),
    ("GPT-20B", (3, 4), 14.373),
    ("LLaMA-30B", (2, 8), 17.540),
];

/// Input/output lengths used throughout the paper's evaluation (§6.1).
pub const PAPER_S_IN: u32 = 512;
/// Output length used throughout the paper's evaluation (§6.1).
pub const PAPER_S_OUT: u32 = 128;

/// The fitted calibration scale for `model`, 1.0 for unknown models.
///
/// Scales are fitted once (see `tests::fitted_scales_are_stable`) and baked
/// in so all consumers agree.
pub fn calibration_scale(model: &ModelSpec) -> f64 {
    match model.name {
        "OPT-6.7B" => OPT_SCALE,
        "GPT-20B" => GPT_SCALE,
        "LLaMA-30B" => LLAMA_SCALE,
        _ => 1.0,
    }
}

// Fitted so `exec_latency` matches TABLE1_ANCHORS on the T4 cluster.
// See `fit_scale` below for the procedure.
const OPT_SCALE: f64 = 0.631_33;
const GPT_SCALE: f64 = 0.711_37;
const LLAMA_SCALE: f64 = 0.741_08;

/// A [`CostModel`] for the paper's T4 cluster, calibrated for `model`.
pub fn calibrated_cost_model(model: &ModelSpec) -> CostModel {
    CostModel::t4_cluster().with_scale(calibration_scale(model))
}

/// The Table 1 anchor latency for `model`, if it is one of the paper's
/// models.
pub fn table1_latency(model: &ModelSpec) -> Option<SimDuration> {
    TABLE1_ANCHORS
        .iter()
        .find(|(name, _, _)| *name == model.name)
        .map(|&(_, _, secs)| SimDuration::from_secs_f64(secs))
}

/// Computes the scale that would make the uncalibrated model hit the
/// Table 1 anchor for `model`. Used to (re)fit the baked-in constants
/// whenever the underlying cost model changes.
pub fn fit_scale(model: &ModelSpec) -> Option<f64> {
    let &(_, (p, m), target) = TABLE1_ANCHORS
        .iter()
        .find(|(name, _, _)| *name == model.name)?;
    let raw = CostModel::t4_cluster()
        .exec_latency(model, p, m, 1, PAPER_S_IN, PAPER_S_OUT)
        .as_secs_f64();
    Some(target / raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_models_hit_table1_anchors() {
        for (name, (p, m), target) in TABLE1_ANCHORS {
            let model = ModelSpec::paper_models()
                .into_iter()
                .find(|ms| ms.name == name)
                .expect("anchor model exists");
            let cost = calibrated_cost_model(&model);
            let got = cost
                .exec_latency(&model, p, m, 1, PAPER_S_IN, PAPER_S_OUT)
                .as_secs_f64();
            let rel = (got - target).abs() / target;
            assert!(
                rel < 0.02,
                "{name}: calibrated latency {got:.3}s vs Table 1 {target}s"
            );
        }
    }

    #[test]
    fn fitted_scales_are_stable() {
        // If the cost model changes, this test prints the new constants to
        // bake in.
        for model in ModelSpec::paper_models() {
            let fresh = fit_scale(&model).expect("paper model");
            let baked = calibration_scale(&model);
            assert!(
                (fresh - baked).abs() / baked < 0.02,
                "{}: refit scale to {fresh:.5} (baked {baked:.5})",
                model.name
            );
        }
    }

    #[test]
    fn scales_are_moderate() {
        // A calibration factor far from 1 would mean the structural model is
        // wrong, not just offset.
        for model in ModelSpec::paper_models() {
            let s = calibration_scale(&model);
            assert!((0.5..2.0).contains(&s), "{}: scale {s}", model.name);
        }
    }

    #[test]
    fn unknown_model_gets_unit_scale() {
        let m = ModelSpec::llama_13b();
        assert_eq!(calibration_scale(&m), 1.0);
        assert!(table1_latency(&m).is_none());
    }
}
