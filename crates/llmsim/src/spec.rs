//! Model architecture specifications.

use std::fmt;

/// Architecture of a decoder-only transformer LLM.
///
/// Parameter and KV-cache byte counts are derived from these dimensions.
/// Weights are stored in fp32 (matching the paper's Table 1 sizes, which
/// correspond to 4 bytes/parameter) while the KV cache is fp16 (matching
/// the paper's §2.1 example of 1.7 GB/sequence for LLaMA-13B at 2048
/// context).
///
/// # Example
///
/// ```
/// use llmsim::ModelSpec;
/// let gpt = ModelSpec::gpt_20b();
/// // Table 1 reports 74.5 GB for GPT-20B (fp32).
/// let gib = gpt.param_bytes() as f64 / (1u64 << 30) as f64;
/// assert!((gib - 74.5).abs() / 74.5 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Human-readable model name.
    pub name: &'static str,
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Hidden (embedding) dimension.
    pub hidden_size: u32,
    /// Number of attention heads; tensor parallel degree must divide this.
    pub num_heads: u32,
    /// Feed-forward inner dimension.
    pub ffn_hidden: u32,
    /// Whether the FFN is gated (SwiGLU, 3 projections) like LLaMA,
    /// vs the classic 2-projection GELU MLP.
    pub gated_ffn: bool,
    /// Vocabulary size (embedding + unembedding, tied).
    pub vocab_size: u32,
    /// Maximum supported sequence length (input + output).
    pub max_seq_len: u32,
    /// Bytes per weight parameter (4 = fp32, matching Table 1).
    pub bytes_per_param: u32,
    /// Bytes per KV-cache element (2 = fp16).
    pub bytes_per_kv: u32,
}

impl ModelSpec {
    /// OPT-6.7B (Zhang et al. 2022): the paper's smallest evaluated model.
    pub const fn opt_6_7b() -> Self {
        ModelSpec {
            name: "OPT-6.7B",
            num_layers: 32,
            hidden_size: 4096,
            num_heads: 32,
            ffn_hidden: 16384,
            gated_ffn: false,
            vocab_size: 50272,
            max_seq_len: 2048,
            bytes_per_param: 4,
            bytes_per_kv: 2,
        }
    }

    /// GPT-20B (GPT-NeoX-20B dimensions): the paper's mid-size model.
    pub const fn gpt_20b() -> Self {
        ModelSpec {
            name: "GPT-20B",
            num_layers: 44,
            hidden_size: 6144,
            num_heads: 64,
            ffn_hidden: 24576,
            gated_ffn: false,
            vocab_size: 50257,
            max_seq_len: 2048,
            bytes_per_param: 4,
            bytes_per_kv: 2,
        }
    }

    /// LLaMA-30B (Touvron et al. 2023): the paper's largest evaluated model.
    ///
    /// LLaMA uses a gated SwiGLU FFN; dimensions follow the released 33B
    /// configuration (h=6656, 60 layers), with the FFN width trimmed to
    /// match Table 1's 111.8 GB fp32 footprint and the head count rounded
    /// to 64 so the paper's 8-way tensor-parallel config (Table 1) divides
    /// it evenly.
    pub const fn llama_30b() -> Self {
        ModelSpec {
            name: "LLaMA-30B",
            num_layers: 60,
            hidden_size: 6656,
            num_heads: 64,
            ffn_hidden: 16384,
            gated_ffn: true,
            vocab_size: 32000,
            max_seq_len: 2048,
            bytes_per_param: 4,
            bytes_per_kv: 2,
        }
    }

    /// LLaMA-13B, used for the §2.1 KV-cache sanity check and extra
    /// experiments.
    pub const fn llama_13b() -> Self {
        ModelSpec {
            name: "LLaMA-13B",
            num_layers: 40,
            hidden_size: 5120,
            num_heads: 40,
            ffn_hidden: 13824,
            gated_ffn: true,
            vocab_size: 32000,
            max_seq_len: 2048,
            bytes_per_param: 4,
            bytes_per_kv: 2,
        }
    }

    /// The three models of the paper's Table 1, in size order.
    pub fn paper_models() -> [ModelSpec; 3] {
        [Self::opt_6_7b(), Self::gpt_20b(), Self::llama_30b()]
    }

    /// Weight parameters in one transformer layer.
    ///
    /// Attention contributes `4·h²` (Q, K, V, output projections); the FFN
    /// contributes `2·h·ffn`, or `3·h·ffn` when gated.
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden_size as u64;
        let f = self.ffn_hidden as u64;
        let ffn_mats = if self.gated_ffn { 3 } else { 2 };
        4 * h * h + ffn_mats * h * f
    }

    /// Total weight parameters (layers + tied embedding).
    pub fn param_count(&self) -> u64 {
        self.params_per_layer() * self.num_layers as u64
            + self.vocab_size as u64 * self.hidden_size as u64
    }

    /// Total weight bytes.
    pub fn param_bytes(&self) -> u64 {
        self.param_count() * self.bytes_per_param as u64
    }

    /// Weight bytes of a single layer (the migration planner's unit of
    /// transfer, Algorithm 2).
    pub fn layer_bytes(&self) -> u64 {
        self.params_per_layer() * self.bytes_per_param as u64
    }

    /// KV-cache bytes per token per sequence across the whole model
    /// (2 tensors × layers × hidden).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.num_layers as u64 * self.hidden_size as u64 * self.bytes_per_kv as u64
    }

    /// FLOPs to process one token through one layer (dense projections,
    /// forward pass = 2 FLOPs per weight).
    pub fn flops_per_token_per_layer(&self) -> f64 {
        2.0 * self.params_per_layer() as f64
    }

    /// Extra attention FLOPs per token per layer at context length `ctx`
    /// (QKᵀ and attention-weighted V).
    pub fn attn_flops_per_token_per_layer(&self, ctx: u32) -> f64 {
        4.0 * ctx as f64 * self.hidden_size as f64
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (L={}, h={}, {:.1} GB fp32)",
            self.name,
            self.num_layers,
            self.hidden_size,
            self.param_bytes() as f64 / (1u64 << 30) as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gib(bytes: u64) -> f64 {
        bytes as f64 / (1u64 << 30) as f64
    }

    #[test]
    fn table1_sizes_match_paper() {
        // Paper Table 1: 25.0 / 74.5 / 111.8 GB.
        let cases = [
            (ModelSpec::opt_6_7b(), 25.0),
            (ModelSpec::gpt_20b(), 74.5),
            (ModelSpec::llama_30b(), 111.8),
        ];
        for (m, expect) in cases {
            let got = gib(m.param_bytes());
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.06, "{}: {got:.1} GiB vs paper {expect} GiB", m.name);
        }
    }

    #[test]
    fn llama_13b_kv_cache_matches_section_2_1() {
        // §2.1: "1.7 GB per-sequence in LLaMA-13B" at 2048-token context.
        let m = ModelSpec::llama_13b();
        let per_seq = m.kv_bytes_per_token() * 2048;
        let got = gib(per_seq);
        assert!((got - 1.7).abs() < 0.15, "KV/seq = {got:.2} GiB");
    }

    #[test]
    fn heads_divisible_by_common_tensor_degrees() {
        for m in ModelSpec::paper_models() {
            assert_eq!(m.num_heads % 4, 0, "{}: 4-way TP must divide heads", m.name);
        }
    }

    #[test]
    fn layer_bytes_consistent_with_total() {
        let m = ModelSpec::gpt_20b();
        let layers_total = m.layer_bytes() * m.num_layers as u64;
        assert!(layers_total < m.param_bytes());
        let embed = m.vocab_size as u64 * m.hidden_size as u64 * 4;
        assert_eq!(layers_total + embed, m.param_bytes());
    }

    #[test]
    fn gated_ffn_has_three_matrices() {
        let llama = ModelSpec::llama_30b();
        let h = llama.hidden_size as u64;
        let f = llama.ffn_hidden as u64;
        assert_eq!(llama.params_per_layer(), 4 * h * h + 3 * h * f);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", ModelSpec::opt_6_7b());
        assert!(s.contains("OPT-6.7B") && s.contains("L=32"));
    }
}
