//! Per-GPU memory model and configuration feasibility.
//!
//! A GPU hosting the shard `(p, m)` of a `(D, P, M)` configuration must
//! hold: its weight shard, KV cache provisioned for the engine's maximum
//! batch, activation workspace (FasterTransformer pre-allocates these at
//! engine initialization for the maximum batch), a migration communication
//! buffer, and fixed framework overhead. The feasibility predicate below
//! reproduces Table 1's "min #GPUs" column and the §6.2 ablation
//! observation that the memory-optimized migration planner lowers GPT-20B's
//! minimum fleet from 16 to 12 GPUs (smaller migration buffers ⇒ more room
//! for weights).

use cloudsim::GpuSpec;

use crate::spec::ModelSpec;

/// Memory-sizing rules for one inference engine process.
///
/// # Example
///
/// ```
/// use cloudsim::GpuSpec;
/// use llmsim::{MemoryModel, ModelSpec};
///
/// let mem = MemoryModel::default();
/// let gpt = ModelSpec::gpt_20b();
/// // Table 1: GPT-20B needs at least 12 T4 GPUs, e.g. (P, M) = (3, 4).
/// assert!(mem.fits(&gpt, 3, 4, &GpuSpec::t4()));
/// assert!(!mem.fits(&gpt, 2, 4, &GpuSpec::t4()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Maximum batch size the engine is provisioned for (the paper sweeps
    /// `B ∈ {1,2,4,8}`; buffers are allocated for the maximum).
    pub max_batch: u32,
    /// Tokens per sequence the KV cache is provisioned for. Like
    /// FasterTransformer, the engine pre-allocates the cache for the model's
    /// maximum sequence length at initialization, not for the current
    /// workload's lengths.
    pub provisioned_seq_len: u32,
    /// Activation-workspace coefficient: workspace bytes =
    /// `coeff · B_max · S · h · 4 / M`.
    pub activation_coeff: f64,
    /// Migration communication buffer per GPU (the planner's `U_max`).
    pub migration_buffer: u64,
    /// Fixed per-GPU overhead: CUDA context, cuBLAS/NCCL workspaces,
    /// allocator fragmentation.
    pub framework_reserve: u64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            max_batch: 8,
            provisioned_seq_len: 2048,
            activation_coeff: 12.0,
            migration_buffer: 512 << 20,
            framework_reserve: (43 << 30) / 10, // 4.3 GiB
        }
    }
}

impl MemoryModel {
    /// A model with the migration buffer replaced by `u_max`.
    ///
    /// Algorithm 2's `MemOptMigPlanner` keeps buffer usage under a small
    /// `U_max`; the naive planner ablation must instead reserve space for a
    /// full weight shard (see [`MemoryModel::naive_migration`]).
    pub fn with_migration_buffer(mut self, u_max: u64) -> Self {
        self.migration_buffer = u_max;
        self
    }

    /// The ablation variant without the memory-optimized migration planner:
    /// the transfer order is arbitrary, so in the worst case an entire
    /// incoming weight shard sits in communication buffers.
    pub fn naive_migration(model: &ModelSpec, p: u32, m: u32) -> MemoryModel {
        let base = MemoryModel::default();
        MemoryModel {
            migration_buffer: base_weight_shard(model, p, m),
            ..base
        }
    }

    /// Weight bytes held by one GPU at position `(p, m)` of a `(P, M)` mesh.
    pub fn weight_bytes_per_gpu(&self, model: &ModelSpec, p: u32, m: u32) -> u64 {
        base_weight_shard(model, p, m)
    }

    /// KV-cache bytes per GPU, provisioned for the maximum batch at the
    /// provisioned sequence length.
    pub fn kv_bytes_per_gpu(&self, model: &ModelSpec, p: u32, m: u32) -> u64 {
        let total =
            model.kv_bytes_per_token() * self.provisioned_seq_len as u64 * self.max_batch as u64;
        total.div_ceil((p * m) as u64)
    }

    /// Activation workspace bytes per GPU.
    pub fn activation_bytes_per_gpu(&self, model: &ModelSpec, m: u32) -> u64 {
        let per = self.activation_coeff
            * self.max_batch as f64
            * self.provisioned_seq_len as f64
            * model.hidden_size as f64
            * 4.0
            / m as f64;
        per as u64
    }

    /// Total bytes one GPU must provide for position `(p, m)`.
    pub fn required_bytes_per_gpu(&self, model: &ModelSpec, p: u32, m: u32) -> u64 {
        self.weight_bytes_per_gpu(model, p, m)
            + self.kv_bytes_per_gpu(model, p, m)
            + self.activation_bytes_per_gpu(model, m)
            + self.migration_buffer
            + self.framework_reserve
    }

    /// Whether a `(P, M)` mesh of `gpu`s can serve `model`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `m` is zero.
    pub fn fits(&self, model: &ModelSpec, p: u32, m: u32, gpu: &GpuSpec) -> bool {
        assert!(p > 0 && m > 0, "degenerate mesh ({p},{m})");
        if m > model.num_heads || !model.num_heads.is_multiple_of(m) {
            return false; // tensor parallelism must split heads evenly
        }
        if p > model.num_layers {
            return false; // cannot have more stages than layers
        }
        self.required_bytes_per_gpu(model, p, m) <= gpu.memory_bytes
    }

    /// The smallest GPU count able to serve `model`, together with one
    /// witness `(P, M)`; `None` if no mesh up to `max_gpus` fits.
    ///
    /// Tensor degree is limited to powers of two up to 8 (NCCL-style rings
    /// on 4-GPU instances), matching the paper's configuration space.
    pub fn min_gpus(
        &self,
        model: &ModelSpec,
        gpu: &GpuSpec,
        max_gpus: u32,
    ) -> Option<(u32, (u32, u32))> {
        let mut best: Option<(u32, (u32, u32))> = None;
        for m in [1u32, 2, 4, 8] {
            for p in 1..=model.num_layers.min(max_gpus) {
                let n = p * m;
                if n > max_gpus {
                    break;
                }
                if let Some((bn, _)) = best {
                    if n >= bn {
                        continue;
                    }
                }
                if self.fits(model, p, m, gpu) {
                    best = Some((n, (p, m)));
                }
            }
        }
        best
    }
}

fn base_weight_shard(model: &ModelSpec, p: u32, m: u32) -> u64 {
    model.param_bytes().div_ceil((p * m) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> GpuSpec {
        GpuSpec::t4()
    }

    #[test]
    fn table1_min_gpus() {
        let mem = MemoryModel::default();
        let cases = [
            (ModelSpec::opt_6_7b(), 4),
            (ModelSpec::gpt_20b(), 12),
            (ModelSpec::llama_30b(), 16),
        ];
        for (model, expect) in cases {
            let (n, (p, m)) = mem
                .min_gpus(&model, &t4(), 64)
                .unwrap_or_else(|| panic!("{} should fit in 64 GPUs", model.name));
            assert_eq!(n, expect, "{}: min GPUs (witness P={p}, M={m})", model.name);
        }
    }

    #[test]
    fn table1_witness_configs_fit() {
        let mem = MemoryModel::default();
        assert!(mem.fits(&ModelSpec::opt_6_7b(), 1, 4, &t4()));
        assert!(mem.fits(&ModelSpec::gpt_20b(), 3, 4, &t4()));
        assert!(mem.fits(&ModelSpec::llama_30b(), 2, 8, &t4()));
    }

    #[test]
    fn naive_migration_planner_raises_gpt20b_minimum_to_16() {
        // §6.2 ablation: "the memory efficient migration planner also
        // reduces the minimum number of GPUs to serve GPT-20B from 16 to 12".
        let gpt = ModelSpec::gpt_20b();
        let naive = MemoryModel::naive_migration(&gpt, 3, 4);
        assert!(
            !naive.fits(&gpt, 3, 4, &t4()),
            "12 GPUs must not fit naively"
        );
        // Recompute the shard-sized buffer for a 16-GPU mesh.
        let naive16 = MemoryModel::naive_migration(&gpt, 2, 8);
        assert!(naive16.fits(&gpt, 2, 8, &t4()), "16 GPUs fit even naively");
    }

    #[test]
    fn tensor_degree_must_divide_heads() {
        let mem = MemoryModel::default();
        let mut odd = ModelSpec::opt_6_7b();
        odd.num_heads = 30; // 4 does not divide 30
        assert!(!mem.fits(&odd, 1, 4, &t4()));
        // OPT has 32 heads: m=8 divides and fits.
        assert!(mem.fits(&ModelSpec::opt_6_7b(), 1, 8, &t4()));
    }

    #[test]
    fn more_gpus_never_hurt_weights() {
        let mem = MemoryModel::default();
        let m = ModelSpec::gpt_20b();
        let w12 = mem.weight_bytes_per_gpu(&m, 3, 4);
        let w24 = mem.weight_bytes_per_gpu(&m, 6, 4);
        assert!(w24 < w12);
    }

    #[test]
    fn required_bytes_is_sum_of_parts() {
        let mem = MemoryModel::default();
        let m = ModelSpec::opt_6_7b();
        let total = mem.required_bytes_per_gpu(&m, 1, 4);
        let parts = mem.weight_bytes_per_gpu(&m, 1, 4)
            + mem.kv_bytes_per_gpu(&m, 1, 4)
            + mem.activation_bytes_per_gpu(&m, 4)
            + mem.migration_buffer
            + mem.framework_reserve;
        assert_eq!(total, parts);
    }

    #[test]
    #[should_panic(expected = "degenerate mesh")]
    fn zero_degree_panics() {
        MemoryModel::default().fits(&ModelSpec::opt_6_7b(), 0, 4, &t4());
    }

    #[test]
    fn too_many_stages_is_infeasible() {
        let mem = MemoryModel::default();
        let m = ModelSpec::opt_6_7b(); // 32 layers
        assert!(!mem.fits(&m, 33, 1, &t4()));
    }
}
