//! Analytical iteration-latency model (the stand-in for the paper's
//! offline profiler, §5).

use cloudsim::{GpuSpec, InstanceType, NetFabric};
use simkit::SimDuration;

use crate::spec::ModelSpec;

/// Hardware-utilization knobs of the cost model.
///
/// The paper's profiler "carefully considers the resource under-utilization
/// effects (GPU, network, PCIe) due to several practical factors (rarely
/// small batch size, single input token, over-sharded intra-op parallelism,
/// GPU memory accessing, too small communication data volume)". These three
/// parameters encode exactly those effects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Fraction of [`GpuSpec::peak_flops`] achievable at full occupancy
    /// (fp32 GEMMs on a mixed-precision part run far below tensor peak).
    pub compute_fraction: f64,
    /// Tokens in flight at which compute efficiency reaches half of its
    /// maximum (small decode batches under-utilize the GPU).
    pub compute_half_tokens: f64,
    /// Fraction of [`GpuSpec::mem_bandwidth`] achieved when streaming
    /// weights.
    pub mem_fraction: f64,
    /// Multiplier on KV-cache read traffic: attention reads are strided
    /// (head-major, per-sequence) and achieve far less than streaming
    /// bandwidth, which is what erodes large-batch decode gains.
    pub kv_read_penalty: f64,
    /// Host-side time per forward pass: the engine's decoder loop,
    /// batched sampling, and collective-launch coordination.
    pub host_overhead: f64,
}

impl Default for Efficiency {
    fn default() -> Self {
        Efficiency {
            compute_fraction: 0.06,
            compute_half_tokens: 8.0,
            mem_fraction: 0.65,
            kv_read_penalty: 24.0,
            host_overhead: 12e-3,
        }
    }
}

/// One sequence's contribution to a (possibly mixed) forward pass: how many
/// new tokens it pushes through the model this iteration and the attention
/// context it reads.
///
/// A prefilling request contributes `S_in` new tokens over an `S_in`-token
/// context; a decoding request contributes 1 new token over its current
/// context. Continuous batching (iteration-level scheduling) mixes both in
/// one pass, which uniform `(b, tokens_per_seq, ctx)` pricing cannot
/// express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqWork {
    /// Tokens this sequence pushes through the model in this pass.
    pub new_tokens: u32,
    /// Attention context length (tokens already cached plus the new ones).
    pub ctx: u32,
}

impl SeqWork {
    /// The prefill pass of a fresh request with an `s_in`-token prompt.
    pub fn prefill(s_in: u32) -> Self {
        SeqWork {
            new_tokens: s_in,
            ctx: s_in,
        }
    }

    /// One decode iteration at context length `ctx`.
    pub fn decode(ctx: u32) -> Self {
        SeqWork { new_tokens: 1, ctx }
    }

    /// One chunk of a split (Sarathi-style) prefill: `new` prompt tokens
    /// pushed through the model on top of `prefilled` tokens already cached.
    /// Attention for the chunk reads the whole context so far.
    ///
    /// `prefill_chunk(0, s_in)` is exactly [`SeqWork::prefill`]`(s_in)`.
    ///
    /// # Panics
    ///
    /// Panics if `new == 0`.
    pub fn prefill_chunk(prefilled: u32, new: u32) -> Self {
        assert!(new > 0, "a prefill chunk must carry tokens");
        SeqWork {
            new_tokens: new,
            ctx: prefilled + new,
        }
    }
}

/// Closed-form latency model for one inference pipeline.
///
/// All methods take the *intra-pipeline* parallel degrees `(p, m)`
/// (pipeline stages, tensor shards); data parallelism never changes
/// single-request latency.
///
/// # Example
///
/// ```
/// use llmsim::{CostModel, ModelSpec};
///
/// let cost = CostModel::t4_cluster();
/// let model = ModelSpec::opt_6_7b();
/// let one = cost.decode_time(&model, 1, 4, 1, 512);
/// let eight = cost.decode_time(&model, 1, 4, 8, 512);
/// // Decoding is memory-bound: batching is nearly free.
/// assert!(eight < one * 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    gpu: GpuSpec,
    net: NetFabric,
    gpus_per_instance: u8,
    eff: Efficiency,
    latency_scale: f64,
}

impl CostModel {
    /// Builds a cost model for a cluster of instances with `gpus_per_instance`
    /// GPUs of type `gpu` connected by `net`.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_instance == 0`.
    pub fn new(gpu: GpuSpec, net: NetFabric, gpus_per_instance: u8) -> Self {
        assert!(gpus_per_instance > 0, "instances must have GPUs");
        CostModel {
            gpu,
            net,
            gpus_per_instance,
            eff: Efficiency::default(),
            latency_scale: 1.0,
        }
    }

    /// A cost model for a cluster of `ty` instances: GPU, network fabric,
    /// and GPU count all come from the SKU bundle, so per-pool instance
    /// types price consistently with what the pool actually leases.
    ///
    /// # Examples
    ///
    /// The paper's platform reproduces [`CostModel::t4_cluster`] exactly:
    ///
    /// ```
    /// use cloudsim::InstanceType;
    /// use llmsim::CostModel;
    ///
    /// let t4 = CostModel::for_instance_type(&InstanceType::t4());
    /// assert_eq!(t4, CostModel::t4_cluster());
    /// ```
    ///
    /// The A100 preset is an 8-GPU NVLink box:
    ///
    /// ```
    /// use cloudsim::InstanceType;
    /// use llmsim::CostModel;
    ///
    /// let a100 = CostModel::for_instance_type(&InstanceType::a100());
    /// assert_eq!(a100.gpus_per_instance(), 8);
    /// assert_eq!(a100.gpu().name, "A100-40G");
    /// assert!(a100.net().intra_bw > 100e9, "NVLink-class local fabric");
    /// ```
    ///
    /// The L4 preset keeps the 4-GPU PCIe shape with more memory per GPU:
    ///
    /// ```
    /// use cloudsim::InstanceType;
    /// use llmsim::CostModel;
    ///
    /// let l4 = CostModel::for_instance_type(&InstanceType::l4());
    /// assert_eq!(l4.gpus_per_instance(), 4);
    /// assert_eq!(l4.gpu().memory_bytes, 24 << 30);
    /// ```
    ///
    /// The H100 preset is the premium 8-GPU backstop:
    ///
    /// ```
    /// use cloudsim::InstanceType;
    /// use llmsim::CostModel;
    ///
    /// let h100 = CostModel::for_instance_type(&InstanceType::h100());
    /// assert_eq!(h100.gpu().name, "H100-80G");
    /// assert_eq!(h100.gpus_per_instance(), 8);
    /// ```
    pub fn for_instance_type(ty: &InstanceType) -> Self {
        CostModel::new(ty.gpu, ty.net, ty.gpus_per_instance)
    }

    /// The paper's evaluation platform: 4×T4 `g4dn.12xlarge` instances.
    ///
    /// Deprecated in favor of
    /// [`CostModel::for_instance_type`]`(&InstanceType::t4())`, which keeps
    /// the GPU/fabric/count bundle in one authoritative place; this
    /// constructor survives as its (pinned-identical) shorthand.
    pub fn t4_cluster() -> Self {
        CostModel::for_instance_type(&InstanceType::t4())
    }

    /// Replaces the efficiency knobs.
    pub fn with_efficiency(mut self, eff: Efficiency) -> Self {
        self.eff = eff;
        self
    }

    /// Applies a multiplicative calibration factor to all latencies.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "invalid scale {scale}");
        self.latency_scale = scale;
        self
    }

    /// The network fabric this model assumes.
    pub fn net(&self) -> &NetFabric {
        &self.net
    }

    /// The GPU this model assumes.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// GPUs per instance this model assumes.
    pub fn gpus_per_instance(&self) -> u8 {
        self.gpus_per_instance
    }

    /// Compute-efficiency saturation at `tokens` tokens in flight.
    fn compute_eff(&self, tokens: f64) -> f64 {
        self.eff.compute_fraction * tokens / (tokens + self.eff.compute_half_tokens)
    }

    /// Whether an `m`-way tensor-parallel group spans instances.
    fn tp_spans_instances(&self, m: u32) -> bool {
        m > self.gpus_per_instance as u32
    }

    /// Latency of one full forward pass (all `L` layers) for a batch of `b`
    /// sequences, each contributing `tokens_per_seq` new tokens, with
    /// `ctx` tokens of attention context per sequence.
    ///
    /// # Panics
    ///
    /// Panics if any of `p`, `m`, `b`, `tokens_per_seq` is zero.
    pub fn forward_time(
        &self,
        model: &ModelSpec,
        p: u32,
        m: u32,
        b: u32,
        tokens_per_seq: u32,
        ctx: u32,
    ) -> SimDuration {
        assert!(
            p > 0 && m > 0 && b > 0 && tokens_per_seq > 0,
            "degenerate forward"
        );
        // Closed-form uniform path, kept allocation-free: this underlies
        // prefill/decode pricing on the optimizer's hot loop. The
        // `mixed_reduces_to_uniform_bit_exactly` test pins it equal to
        // `mixed_forward_time` over `b` identical sequences.
        let tokens_total = (b * tokens_per_seq) as f64;
        let flops_per_layer = tokens_total
            * (model.flops_per_token_per_layer() + model.attn_flops_per_token_per_layer(ctx));
        let kv_ctx_total = (b as f64) * (ctx as f64);
        self.assemble_forward_time(model, p, m, tokens_total, flops_per_layer, kv_ctx_total)
    }

    /// Latency of one full forward pass over a *mixed* batch: each sequence
    /// contributes its own new-token count and attention context, so one
    /// pass can combine prefilling and decoding requests at heterogeneous
    /// context lengths (iteration-level continuous batching).
    ///
    /// For a uniform batch this reduces bit-exactly to
    /// [`CostModel::forward_time`] (per-context terms are grouped before
    /// any floating-point multiply).
    ///
    /// # Panics
    ///
    /// Panics if `p` or `m` is zero, `seqs` is empty, or any sequence
    /// contributes zero new tokens.
    pub fn mixed_forward_time(
        &self,
        model: &ModelSpec,
        p: u32,
        m: u32,
        seqs: &[SeqWork],
    ) -> SimDuration {
        assert!(p > 0 && m > 0 && !seqs.is_empty(), "degenerate forward");

        // Integer pre-aggregation keeps the uniform case bit-identical to
        // the closed-form uniform formula: new tokens are grouped by
        // context length and context lengths are summed exactly before any
        // float multiply.
        let mut total_tokens: u64 = 0;
        let mut total_ctx: u64 = 0;
        for s in seqs {
            assert!(s.new_tokens > 0, "degenerate forward");
            total_tokens += s.new_tokens as u64;
            total_ctx += s.ctx as u64;
        }
        let tokens_total = total_tokens as f64;

        // Per-layer compute: dense projections + context attention, one
        // term per distinct context length. Groups form in first-seen
        // order with exact integer token sums — the same order and sums a
        // scratch `Vec<(ctx, tokens)>` would produce, so the f64
        // accumulation is bit-identical to the old buffered grouping — but
        // without allocating: the first sequence at each context owns the
        // group and re-scans the tail for its members. This sits on the
        // continuous engine's per-iteration hot path, where in-flight sets
        // are small and the rescan is cheaper than a heap allocation.
        let mut flops_per_layer = 0.0;
        for (i, s) in seqs.iter().enumerate() {
            if seqs[..i].iter().any(|prev| prev.ctx == s.ctx) {
                continue; // group already accumulated at its first member
            }
            let mut group_tokens: u64 = s.new_tokens as u64;
            for later in &seqs[i + 1..] {
                if later.ctx == s.ctx {
                    group_tokens += later.new_tokens as u64;
                }
            }
            flops_per_layer += group_tokens as f64
                * (model.flops_per_token_per_layer() + model.attn_flops_per_token_per_layer(s.ctx));
        }
        self.assemble_forward_time(model, p, m, tokens_total, flops_per_layer, total_ctx as f64)
    }

    /// The shared tail of the forward-pass model, past per-sequence
    /// aggregation: `tokens_total` new tokens, `flops_per_layer` compute,
    /// and `kv_ctx_total` total attention-context tokens read.
    fn assemble_forward_time(
        &self,
        model: &ModelSpec,
        p: u32,
        m: u32,
        tokens_total: f64,
        flops_per_layer: f64,
        kv_ctx_total: f64,
    ) -> SimDuration {
        let layers = model.num_layers as f64;
        let eff_flops = self.gpu.peak_flops * self.compute_eff(tokens_total);
        let compute_t = flops_per_layer / (m as f64 * eff_flops);

        // Per-layer memory: stream the weight shard once per forward pass,
        // plus KV-cache reads for attention (each sequence reads its own
        // context).
        let eff_bw = self.gpu.mem_bandwidth * self.eff.mem_fraction;
        let weight_bytes = model.layer_bytes() as f64 / m as f64;
        let kv_bytes_layer = kv_ctx_total
            * 2.0
            * model.hidden_size as f64
            * model.bytes_per_kv as f64
            * self.eff.kv_read_penalty
            / m as f64;
        let mem_t = (weight_bytes + kv_bytes_layer) / eff_bw;

        let layer_t = compute_t.max(mem_t);

        // Unembedding (logits projection): stream the V×h matrix and run
        // the GEMM once per forward pass on the last stage's shard group.
        let unembed_bytes =
            model.vocab_size as f64 * model.hidden_size as f64 * model.bytes_per_param as f64
                / m as f64;
        let unembed_flops = 2.0 * tokens_total * model.vocab_size as f64 * model.hidden_size as f64;
        let unembed_t = (unembed_bytes / eff_bw).max(unembed_flops / (m as f64 * eff_flops));

        // Tensor parallelism: two ring all-reduces per layer over the
        // activation tensor (fp32).
        let act_bytes = (tokens_total * model.hidden_size as f64 * 4.0) as u64;
        let ar = if m > 1 {
            self.net
                .all_reduce_time(act_bytes, m, self.tp_spans_instances(m))
                .as_secs_f64()
                * 2.0
        } else {
            0.0
        };

        // Pipeline parallelism: p−1 cross-stage activation hops
        // (stages are placed on distinct instances in the common case).
        let p2p = if p > 1 {
            self.net.p2p_time(act_bytes, false).as_secs_f64() * (p - 1) as f64
        } else {
            0.0
        };

        let total = layers * (layer_t + ar) + p2p + unembed_t + self.eff.host_overhead;
        SimDuration::from_secs_f64(total * self.latency_scale)
    }

    /// Latency of the initial (prefill) phase over `s_in` input tokens.
    pub fn prefill_time(
        &self,
        model: &ModelSpec,
        p: u32,
        m: u32,
        b: u32,
        s_in: u32,
    ) -> SimDuration {
        self.forward_time(model, p, m, b, s_in, s_in)
    }

    /// Latency of one incremental decoding iteration at context length `ctx`.
    pub fn decode_time(&self, model: &ModelSpec, p: u32, m: u32, b: u32, ctx: u32) -> SimDuration {
        self.forward_time(model, p, m, b, 1, ctx)
    }

    /// End-to-end execution latency of Eq. (1):
    /// `l_exe(S_out | S_in) = t_exe(S_in) + Σ_{i=1..S_out} t_exe(1)`.
    pub fn exec_latency(
        &self,
        model: &ModelSpec,
        p: u32,
        m: u32,
        b: u32,
        s_in: u32,
        s_out: u32,
    ) -> SimDuration {
        let mut total = self.prefill_time(model, p, m, b, s_in);
        // Context length grows by one per iteration; the dependence is
        // linear (KV reads + attention FLOPs), so evaluate at the midpoint.
        if s_out > 0 {
            let mid_ctx = s_in + s_out / 2;
            total += self.decode_time(model, p, m, b, mid_ctx) * s_out as u64;
        }
        total
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::t4_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::t4_cluster()
    }

    #[test]
    fn decode_is_memory_bound_at_small_batch() {
        let c = cost();
        let m = ModelSpec::opt_6_7b();
        let b1 = c.decode_time(&m, 1, 4, 1, 512).as_secs_f64();
        let b4 = c.decode_time(&m, 1, 4, 4, 512).as_secs_f64();
        assert!(
            b4 / b1 < 1.6,
            "batching decode should be cheap: {b1} -> {b4}"
        );
    }

    #[test]
    fn prefill_is_compute_bound() {
        let c = cost();
        let m = ModelSpec::opt_6_7b();
        let p1 = c.prefill_time(&m, 1, 4, 1, 512).as_secs_f64();
        let p2 = c.prefill_time(&m, 1, 4, 2, 512).as_secs_f64();
        assert!(
            p2 / p1 > 1.7,
            "doubling prefill work should nearly double time"
        );
    }

    #[test]
    fn more_tensor_shards_speed_up_within_instance() {
        let c = cost();
        let m = ModelSpec::opt_6_7b();
        let t2 = c.decode_time(&m, 1, 2, 1, 512);
        let t4 = c.decode_time(&m, 1, 4, 1, 512);
        assert!(t4 < t2, "m=4 should beat m=2 inside one instance");
    }

    #[test]
    fn cross_instance_tensor_parallelism_pays_latency() {
        let c = cost();
        let m = ModelSpec::llama_30b();
        // m=8 spans two 4-GPU instances; the all-reduce hops get slower.
        let t8 = c.decode_time(&m, 2, 8, 1, 512).as_secs_f64();
        let t4 = c.decode_time(&m, 4, 4, 1, 512).as_secs_f64();
        // Same GPU count; m=8 halves the per-GPU weight stream but pays
        // cross-instance all-reduce. Both effects must be visible.
        assert!(t8 != t4);
    }

    #[test]
    fn exec_latency_is_prefill_plus_decodes() {
        let c = cost();
        let m = ModelSpec::gpt_20b();
        let l = c.exec_latency(&m, 3, 4, 1, 512, 128).as_secs_f64();
        let prefill = c.prefill_time(&m, 3, 4, 1, 512).as_secs_f64();
        let decode = c.decode_time(&m, 3, 4, 1, 512 + 64).as_secs_f64();
        assert!((l - (prefill + 128.0 * decode)).abs() < 1e-6);
    }

    #[test]
    fn scale_is_multiplicative() {
        let c = cost();
        let scaled = cost().with_scale(0.5);
        let m = ModelSpec::opt_6_7b();
        let a = c.exec_latency(&m, 1, 4, 1, 512, 16).as_secs_f64();
        let b = scaled.exec_latency(&m, 1, 4, 1, 512, 16).as_secs_f64();
        // Microsecond rounding per iteration allows a tiny deviation.
        assert!((b - a / 2.0).abs() / a < 1e-4);
    }

    #[test]
    fn longer_context_costs_more() {
        let c = cost();
        let m = ModelSpec::gpt_20b();
        let short = c.decode_time(&m, 3, 4, 8, 64);
        let long = c.decode_time(&m, 3, 4, 8, 2048);
        assert!(long > short);
    }

    #[test]
    #[should_panic(expected = "degenerate forward")]
    fn zero_batch_panics() {
        cost().forward_time(&ModelSpec::opt_6_7b(), 1, 4, 0, 1, 1);
    }

    #[test]
    fn mixed_reduces_to_uniform_bit_exactly() {
        let c = cost();
        let m = ModelSpec::gpt_20b();
        for (b, tokens, ctx) in [(1u32, 1u32, 512u32), (8, 1, 640), (4, 512, 512)] {
            let uniform = c.forward_time(&m, 3, 4, b, tokens, ctx);
            let seqs = vec![
                SeqWork {
                    new_tokens: tokens,
                    ctx
                };
                b as usize
            ];
            assert_eq!(uniform, c.mixed_forward_time(&m, 3, 4, &seqs));
        }
    }

    #[test]
    fn mixed_iteration_lies_between_pure_phases() {
        // One prefill + 3 decodes costs more than a pure 4-decode iteration
        // and less than prefill for 4 full prompts.
        let c = cost();
        let m = ModelSpec::opt_6_7b();
        let mixed = c.mixed_forward_time(
            &m,
            1,
            4,
            &[
                SeqWork::prefill(512),
                SeqWork::decode(520),
                SeqWork::decode(600),
                SeqWork::decode(544),
            ],
        );
        let pure_decode = c.decode_time(&m, 1, 4, 4, 600);
        let pure_prefill = c.prefill_time(&m, 1, 4, 4, 512);
        assert!(mixed > pure_decode, "{mixed} vs {pure_decode}");
        assert!(mixed < pure_prefill, "{mixed} vs {pure_prefill}");
    }

    #[test]
    fn mixed_cost_grows_with_membership() {
        let c = cost();
        let m = ModelSpec::gpt_20b();
        let small = c.mixed_forward_time(&m, 3, 4, &[SeqWork::decode(512)]);
        let big = c.mixed_forward_time(
            &m,
            3,
            4,
            &[
                SeqWork::decode(512),
                SeqWork::decode(513),
                SeqWork::prefill(512),
            ],
        );
        assert!(big > small);
    }

    #[test]
    #[should_panic(expected = "degenerate forward")]
    fn empty_mixed_batch_panics() {
        cost().mixed_forward_time(&ModelSpec::opt_6_7b(), 1, 4, &[]);
    }

    /// The buffered per-context grouping `mixed_forward_time` used before
    /// the allocation-free rewrite, kept verbatim as the equivalence
    /// reference: group by first-seen context into a scratch buffer with
    /// exact integer token sums, then accumulate f64 terms in group order
    /// and price through the shared tail.
    fn mixed_forward_time_buffered_reference(
        c: &CostModel,
        model: &ModelSpec,
        p: u32,
        m: u32,
        seqs: &[SeqWork],
    ) -> SimDuration {
        let mut total_tokens: u64 = 0;
        let mut total_ctx: u64 = 0;
        let mut by_ctx: Vec<(u32, u64)> = Vec::new();
        for s in seqs {
            assert!(s.new_tokens > 0, "degenerate forward");
            total_tokens += s.new_tokens as u64;
            total_ctx += s.ctx as u64;
            match by_ctx.iter_mut().find(|(ctx, _)| *ctx == s.ctx) {
                Some((_, t)) => *t += s.new_tokens as u64,
                None => by_ctx.push((s.ctx, s.new_tokens as u64)),
            }
        }
        let mut flops_per_layer = 0.0;
        for (ctx, t) in &by_ctx {
            flops_per_layer += *t as f64
                * (model.flops_per_token_per_layer() + model.attn_flops_per_token_per_layer(*ctx));
        }
        c.assemble_forward_time(
            model,
            p,
            m,
            total_tokens as f64,
            flops_per_layer,
            total_ctx as f64,
        )
    }

    #[test]
    fn allocation_free_grouping_matches_buffered_reference_bit_exactly() {
        // Adversarial grouping shapes: interleaved repeats, strictly
        // distinct contexts, all-identical, groups appearing out of sorted
        // order, and a long mixed tail. The allocation-free first-seen
        // rescan must reproduce the buffered grouping's result bit-exactly.
        let c = cost();
        let m = ModelSpec::gpt_20b();
        let batches: Vec<Vec<SeqWork>> = vec![
            vec![
                SeqWork::decode(512),
                SeqWork::prefill(256),
                SeqWork::decode(512),
                SeqWork::decode(256),
            ],
            (0..16).map(|i| SeqWork::decode(100 + i * 7)).collect(),
            vec![SeqWork::decode(640); 12],
            vec![
                SeqWork::decode(900),
                SeqWork::decode(100),
                SeqWork::decode(900),
                SeqWork::prefill(100),
                SeqWork::prefill_chunk(64, 36),
            ],
            (0..40)
                .map(|i| {
                    if i % 3 == 0 {
                        SeqWork::prefill(128 + (i % 5) * 32)
                    } else {
                        SeqWork::decode(512 + (i % 4) * 17)
                    }
                })
                .collect(),
        ];
        for seqs in &batches {
            let fast = c.mixed_forward_time(&m, 3, 4, seqs);
            let reference = mixed_forward_time_buffered_reference(&c, &m, 3, 4, seqs);
            assert_eq!(
                fast, reference,
                "grouping rewrite must be bit-identical on {seqs:?}"
            );
        }
    }

    #[test]
    fn prefill_chunks_sum_to_no_less_than_monolithic_prefill() {
        // Splitting a prefill can only add per-pass overhead (the weight
        // stream and host overhead are paid once per pass), never remove
        // work: the chunked passes must sum to >= the monolithic pass.
        let c = cost();
        let m = ModelSpec::opt_6_7b();
        let whole = c.mixed_forward_time(&m, 1, 4, &[SeqWork::prefill(512)]);
        let chunked = (0..4)
            .map(|i| c.mixed_forward_time(&m, 1, 4, &[SeqWork::prefill_chunk(i * 128, 128)]))
            .fold(simkit::SimDuration::ZERO, |a, d| a + d);
        assert!(chunked >= whole, "{chunked} vs {whole}");
        // And the degenerate single chunk is the monolithic prefill.
        assert_eq!(SeqWork::prefill_chunk(0, 512), SeqWork::prefill(512));
    }

    #[test]
    fn pipeline_stages_add_hop_latency() {
        let c = cost();
        let m = ModelSpec::gpt_20b();
        let p2 = c.decode_time(&m, 2, 4, 1, 512);
        let p4 = c.decode_time(&m, 4, 4, 1, 512);
        assert!(p4 > p2, "more stages, more hops");
    }
}
