//! LLM substrate: model specifications, memory model, and the analytical
//! cost model that stands in for profiling FasterTransformer on real GPUs.
//!
//! The paper's offline profiler (§5) measures `t_exe(s)` — the latency of
//! one forward pass over `s` tokens — for every candidate parallel
//! configuration, "carefully considering resource under-utilization
//! effects". We reproduce that with a closed-form model:
//!
//! * compute term — GEMM FLOPs at batch-dependent efficiency (small decode
//!   batches leave ALUs idle; long prefills saturate them),
//! * memory term — every decoding iteration streams the full weight shard
//!   through device memory, which makes decode memory-bandwidth-bound,
//! * communication terms — ring all-reduce per layer for tensor parallelism
//!   and point-to-point hops for pipeline parallelism, using the
//!   hierarchical [`cloudsim::NetFabric`].
//!
//! [`calibration::calibrated_cost_model`] scales the model so the Table 1
//! single-request latencies match the published numbers.
//!
//! # Example
//!
//! ```
//! use llmsim::{calibration, ModelSpec};
//!
//! let model = ModelSpec::opt_6_7b();
//! let cost = calibration::calibrated_cost_model(&model);
//! let l = cost.exec_latency(&model, 1, 4, 1, 512, 128);
//! // Paper Table 1: 5.447 s for OPT-6.7B on (P,M) = (1,4).
//! assert!((l.as_secs_f64() - 5.447).abs() / 5.447 < 0.10);
//! ```

pub mod calibration;
pub mod costmodel;
pub mod memory;
pub mod spec;

pub use costmodel::{CostModel, Efficiency, SeqWork};
pub use memory::MemoryModel;
pub use spec::ModelSpec;
